//! Cross-validation between the exact checker (pa-mdp backward induction)
//! and the statistical estimator (pa-sim Monte-Carlo): independent
//! implementations of the same semantics must agree.

use timebounds::lehmann_rabin::{
    check_arrow, paper, regions, round_cost, sims, RoundConfig, RoundMdp,
};
use timebounds::mdp::{cost_bounded_reach_levels, Explore, Objective};
use timebounds::prob::stats::Z_99;
use timebounds::prob::Prob;
use timebounds::sim::MonteCarlo;

#[test]
fn concrete_schedulers_dominate_the_exact_worst_case() {
    let exact_worst = check_arrow(
        &RoundMdp::new(RoundConfig::new(3).unwrap()),
        &paper::arrow_t_to_c(),
    )
    .unwrap()
    .measured
    .lo();
    let mc = MonteCarlo::new(20_000, 5, 60);
    for which in 0..3 {
        let ci = match which {
            0 => {
                let s = sims::LrSim::new(3, sims::RoundRobin)
                    .unwrap()
                    .with_start(sims::all_trying(3).unwrap());
                mc.hitting_prob_within(&s, |x| regions::in_c(&x.config), 13)
                    .unwrap()
                    .wilson_interval(Z_99)
            }
            1 => {
                let s = sims::LrSim::new(3, sims::UniformRandom)
                    .unwrap()
                    .with_start(sims::all_trying(3).unwrap());
                mc.hitting_prob_within(&s, |x| regions::in_c(&x.config), 13)
                    .unwrap()
                    .wilson_interval(Z_99)
            }
            _ => {
                let s = sims::LrSim::new(3, sims::AntiProgress)
                    .unwrap()
                    .with_start(sims::all_trying(3).unwrap());
                mc.hitting_prob_within(&s, |x| regions::in_c(&x.config), 13)
                    .unwrap()
                    .wilson_interval(Z_99)
            }
        };
        assert!(
            ci.hi().at_least(exact_worst),
            "scheduler {which}: CI {ci} below exact worst case {exact_worst}"
        );
    }
}

/// The exact probability-vs-time curve from the all-trying start must
/// bracket the Monte-Carlo CDF of a concrete scheduler from below (the
/// exact value is the minimum over all adversaries, the simulated scheduler
/// is just one of them).
#[test]
fn exact_curve_lower_bounds_simulated_cdf() {
    let all_trying = sims::all_trying(3).unwrap();
    let mdp = RoundMdp::new(RoundConfig::new(3).unwrap())
        .with_starts(vec![all_trying.clone()])
        .with_absorb(regions::in_c);
    let explored = Explore::new(&mdp)
        .cost(round_cost)
        .limit(10_000_000)
        .run()
        .unwrap();
    let target = explored.target_where(|rs| regions::in_c(&rs.config));
    let start = explored.mdp.initial_states()[0];
    let mut exact_curve = vec![0.0f64]; // t = 0
    cost_bounded_reach_levels(&explored.mdp, &target, 19, Objective::MinProb, |_, v| {
        exact_curve.push(v[start]);
    })
    .unwrap();

    let sim = sims::LrSim::new(3, sims::UniformRandom)
        .unwrap()
        .with_start(all_trying);
    let mc = MonteCarlo::new(30_000, 11, 20);
    let cdf = mc.hitting_cdf(&sim, |s| regions::in_c(&s.config)).unwrap();
    for t in 0..=20u32 {
        let exact = exact_curve[t as usize];
        let ci = cdf.prob_within_ci(t, Z_99);
        assert!(
            ci.hi().value() + 1e-9 >= exact,
            "t={t}: simulated CI {ci} below exact worst case {exact}"
        );
    }
    // And the curve shapes agree qualitatively: both are 0 before round 4
    // (a meal takes flip, wait, second, crit) and near 1 by round 20.
    assert_eq!(exact_curve[3], 0.0);
    assert_eq!(cdf.prob_within(3), Prob::ZERO);
    assert!(exact_curve[20] > 0.99);
    assert!(cdf.prob_within(20).value() > 0.99);
}

/// Replaying the extracted optimal (minimizing) policy through the explicit
/// MDP by direct sampling reproduces the backward-induction value — the
/// policy really is the worst-case adversary it claims to be.
#[test]
fn extracted_worst_case_policy_reproduces_its_value() {
    use rand::RngExt;
    use timebounds::mdp::Query;
    use timebounds::prob::rng::SplitMix64;

    let all_trying = sims::all_trying(3).unwrap();
    let mdp = RoundMdp::new(RoundConfig::new(3).unwrap())
        .with_starts(vec![all_trying])
        .with_absorb(regions::in_c);
    let explored = Explore::new(&mdp)
        .cost(round_cost)
        .limit(10_000_000)
        .run()
        .unwrap();
    let target = explored.target_where(|rs| regions::in_c(&rs.config));
    let budget = 12u32; // time 13
    let analysis = Query::over(&explored.mdp)
        .objective(Objective::MinProb)
        .target(&target)
        .horizon(budget)
        .with_policy()
        .run()
        .unwrap();
    let values = analysis.values;
    let policy = analysis
        .policy
        .expect("with_policy() query returns a policy");
    let start = explored.mdp.initial_states()[0];

    // Sample trajectories following the policy.
    let trials = 40_000u64;
    let mut hits = 0u64;
    for trial in 0..trials {
        let mut rng = SplitMix64::for_trial(99, trial);
        let mut state = start;
        let mut remaining = budget;
        loop {
            if target[state] {
                hits += 1;
                break;
            }
            let Some(choice_idx) = policy.choice(state, remaining) else {
                break; // absorbing non-target state
            };
            let choice = &explored.mdp.choices(state)[choice_idx as usize];
            if choice.cost > remaining {
                break; // out of time budget
            }
            remaining -= choice.cost;
            // Sample the successor.
            let mut x: f64 = rng.random();
            let mut next = choice.transitions[0].0;
            for &(t, p) in &choice.transitions {
                if x < p {
                    next = t;
                    break;
                }
                x -= p;
            }
            state = next;
        }
    }
    let simulated = hits as f64 / trials as f64;
    let exact = values[start];
    assert!(
        (simulated - exact).abs() < 0.01,
        "policy replay {simulated} vs exact {exact}"
    );
}
