//! Integration of the Monte-Carlo substrate with the case study, plus the
//! real threaded implementation (experiment E13).

use std::time::Duration;

use timebounds::lehmann_rabin::{concurrent, lemma_6_1_invariant, regions, sims};
use timebounds::prob::rng::SplitMix64;
use timebounds::sim::{record_trace, rounds_to_hit, MonteCarlo};

#[test]
fn invariant_holds_along_long_simulated_traces() {
    for n in [2, 3, 5, 8] {
        let sim = sims::LrSim::new(n, sims::UniformRandom)
            .unwrap()
            .with_start(sims::all_trying(n).unwrap());
        let mut rng = SplitMix64::new(n as u64);
        let trace = record_trace(&sim, 300, &mut rng);
        for s in &trace.states {
            assert!(lemma_6_1_invariant(&s.config), "n={n}: {}", s.config);
            assert!(
                timebounds::lehmann_rabin::adjacent_exclusion(&s.config),
                "n={n}: {}",
                s.config
            );
        }
    }
}

#[test]
fn every_trial_eventually_eats() {
    let sim = sims::LrSim::new(4, sims::AntiProgress)
        .unwrap()
        .with_start(sims::all_trying(4).unwrap());
    let mc = MonteCarlo::new(2_000, 21, 500);
    let (stats, censored) = mc
        .hitting_time_stats(&sim, |s| regions::in_c(&s.config))
        .unwrap();
    assert_eq!(censored, 0, "progress must happen with probability 1");
    assert!(stats.mean() >= 4.0, "a meal takes at least 4 rounds");
    assert!(stats.min().unwrap() >= 4.0);
}

#[test]
fn hitting_time_is_deterministic_per_seed() {
    let sim = sims::LrSim::new(3, sims::UniformRandom)
        .unwrap()
        .with_start(sims::all_trying(3).unwrap());
    let a = rounds_to_hit(
        &sim,
        |s| regions::in_c(&s.config),
        100,
        &mut SplitMix64::new(77),
    );
    let b = rounds_to_hit(
        &sim,
        |s| regions::in_c(&s.config),
        100,
        &mut SplitMix64::new(77),
    );
    assert_eq!(a, b);
    assert!(a.is_some());
}

#[test]
fn idle_start_with_eager_user_still_progresses() {
    // From the all-idle start the eager user issues try at round starts;
    // progress follows.
    let sim = sims::LrSim::new(3, sims::RoundRobin).unwrap();
    let hit = rounds_to_hit(
        &sim,
        |s| regions::in_c(&s.config),
        200,
        &mut SplitMix64::new(3),
    );
    assert!(hit.is_some());
}

#[test]
fn threads_always_reach_the_critical_section() {
    let report = concurrent::run_trials(5, 25, 2024, Duration::from_secs(20)).unwrap();
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.crit_entries, 25);
    assert!(report.time_to_crit.max().unwrap() < 10.0);
}

#[test]
fn thread_contention_costs_flips() {
    // More philosophers → at least as many flips in total (each trial
    // flips at least once per participating thread that races).
    let small = concurrent::run_trials(2, 10, 5, Duration::from_secs(10)).unwrap();
    assert!(small.total_flips >= 10);
    let large = concurrent::run_trials(8, 10, 5, Duration::from_secs(10)).unwrap();
    assert!(large.total_flips >= 10);
}
