//! Cross-crate semantic checks: the execution-tree view (pa-core), the
//! MDP view (pa-mdp) and the timed patient construction must assign the
//! same probabilities to the same behaviours.

use timebounds::core::{
    schema, Adversary, Automaton, EventSchema, Eventually, ExecTree, FirstEnabled, FnAdversary,
    Fragment, Patient, ReachWithin, TableAutomaton, TimedAction, TimedState,
};
use timebounds::mdp::{Explore, Objective};

type M = TableAutomaton<&'static str, &'static str>;

fn retry_machine() -> M {
    TableAutomaton::builder()
        .start("try")
        .step("try", "flip", [("won", 0.5), ("try", 0.5)])
        .unwrap()
        .build()
        .unwrap()
}

/// On a fully probabilistic system, the exec-tree probability of
/// "eventually won" after k steps equals the MDP's k-cost-bounded
/// reachability (both are 1 − (1/2)^k).
#[test]
fn exec_tree_and_mdp_agree_on_bounded_reachability() {
    let m = retry_machine();
    for k in 1..=6usize {
        let tree = ExecTree::build(&m, &FirstEnabled, Fragment::initial("try"), k).unwrap();
        let tree_prob = Eventually::new(|s: &&str| *s == "won")
            .probability(&tree)
            .lo()
            .value();

        let e = Explore::new(&m).cost(|_, _| 1).limit(1000).run().unwrap();
        let v = e
            .query_where(|s| *s == "won")
            .objective(Objective::MinProb)
            .horizon(k as u32)
            .run()
            .unwrap()
            .values;
        let mdp_prob = v[e.mdp.initial_states()[0]];

        assert!(
            (tree_prob - mdp_prob).abs() < 1e-12,
            "k={k}: tree {tree_prob} vs mdp {mdp_prob}"
        );
        let law = 1.0 - 0.5f64.powi(k as i32);
        assert!((tree_prob - law).abs() < 1e-12);
    }
}

/// The patient construction plus `ReachWithin` computes the same numbers
/// as the cost-based MDP encoding of time.
#[test]
fn patient_construction_matches_cost_encoding() {
    let timed = Patient::new(retry_machine());
    // Adversary: flip once per tick (base step then tick, repeatedly).
    let adv = FnAdversary::new(
        |m: &Patient<M>, f: &Fragment<TimedState<&'static str>, TimedAction<&'static str>>| {
            let last_was_base = matches!(f.actions().last(), Some(TimedAction::Base(_)));
            m.steps(f.lstate()).into_iter().find(|s| {
                if last_was_base {
                    s.action == TimedAction::Tick
                } else {
                    matches!(s.action, TimedAction::Base(_))
                }
            })
        },
    );
    let start = Fragment::initial(TimedState {
        base: "try",
        ticks: 0,
    });
    let tree = ExecTree::build(&timed, &adv, start, 16).unwrap();
    for deadline in 0..6u32 {
        let p = ReachWithin::new(
            |s: &TimedState<&'static str>| s.base == "won",
            deadline.into(),
        )
        .probability(&tree)
        .lo()
        .value();
        // Flips happen at times 0, 1, 2, …: by time t there were t+1 flips.
        let law = 1.0 - 0.5f64.powi(deadline as i32 + 1);
        assert!((p - law).abs() < 1e-12, "t={deadline}: {p} vs {law}");
    }
}

/// Unbounded reachability agrees with the limit of the bounded values.
#[test]
fn unbounded_reach_is_the_limit_of_bounded() {
    let m = retry_machine();
    let e = Explore::new(&m).cost(|_, _| 1).limit(1000).run().unwrap();
    let unbounded = e
        .query_where(|s| *s == "won")
        .objective(Objective::MinProb)
        .run()
        .unwrap()
        .values[e.mdp.initial_states()[0]];
    let bounded_50 = e
        .query_where(|s| *s == "won")
        .objective(Objective::MinProb)
        .horizon(50)
        .run()
        .unwrap()
        .values[e.mdp.initial_states()[0]];
    assert!((unbounded - 1.0).abs() < 1e-9);
    assert!(
        unbounded >= bounded_50 - 1e-9,
        "limit dominates up to VI tolerance"
    );
    assert!(unbounded - bounded_50 < 1e-9);
}

/// Definition 3.3 machinery: a family of memoryless adversaries is
/// execution-closed; the round model's scheduler-relevant state lives in
/// the state space, which is the structural argument used for Unit-Time.
#[test]
fn memoryless_families_are_execution_closed() {
    let m = TableAutomaton::builder()
        .start(0u8)
        .det_step(0, 'a', 1)
        .det_step(0, 'b', 2)
        .det_step(1, 'c', 0)
        .det_step(2, 'd', 0)
        .build()
        .unwrap();
    let first = FirstEnabled;
    let last = FnAdversary::new(|m: &TableAutomaton<u8, char>, f: &Fragment<u8, char>| {
        m.steps(f.lstate()).into_iter().last()
    });
    let family: Vec<&dyn Adversary<TableAutomaton<u8, char>>> = vec![&first, &last];
    assert!(schema::check_execution_closed(&m, &family, 3, 2).is_ok());
}

/// A step-counting adversary is the canonical violation of execution
/// closure — composability (Theorem 3.4) would be unsound for its
/// singleton schema, which the checker detects.
#[test]
fn step_counter_violates_execution_closure() {
    let m = TableAutomaton::builder()
        .start(0u8)
        .det_step(0, 'a', 1)
        .det_step(1, 'b', 2)
        .det_step(2, 'c', 3)
        .build()
        .unwrap();
    let counter = FnAdversary::new(|m: &TableAutomaton<u8, char>, f: &Fragment<u8, char>| {
        if f.len() < 2 {
            m.steps(f.lstate()).into_iter().next()
        } else {
            None
        }
    });
    let family: Vec<&dyn Adversary<TableAutomaton<u8, char>>> = vec![&counter];
    let err = schema::check_execution_closed(&m, &family, 2, 2).unwrap_err();
    assert!(!err.prefix.is_empty());
}
