//! End-to-end reproduction of the paper's headline claims at n = 3
//! (and n = 2 where cheap), spanning pa-core, pa-mdp and pa-lehmann-rabin.

use timebounds::core::SetExpr;
use timebounds::lehmann_rabin::{
    check_arrow, max_expected_time, paper, verify_lemma_6_1, RoundConfig, RoundMdp,
};
use timebounds::prob::Prob;

fn mdp(n: usize) -> RoundMdp {
    RoundMdp::new(RoundConfig::new(n).expect("valid ring"))
}

#[test]
fn all_five_axiom_arrows_hold_for_n2_and_n3() {
    for n in [2, 3] {
        let m = mdp(n);
        for (arrow, justification) in paper::all_arrows() {
            let report = check_arrow(&m, &arrow).expect("checkable");
            assert!(report.holds(), "n={n}: {justification} failed: {report}");
        }
    }
}

#[test]
fn deterministic_arrows_reach_probability_one() {
    let m = mdp(3);
    for arrow in [
        paper::arrow_p_to_c(),
        paper::arrow_t_to_rtc(),
        paper::arrow_rt_to_fgp(),
    ] {
        let report = check_arrow(&m, &arrow).expect("checkable");
        assert_eq!(report.measured.lo(), Prob::ONE, "{arrow} should be certain");
    }
}

#[test]
fn composed_claim_t_13_eighth_c_holds() {
    let composed = paper::arrow_t_to_c();
    assert_eq!(composed.time(), 13.0);
    assert_eq!(composed.prob(), Prob::new(0.125).unwrap());
    let report = check_arrow(&mdp(3), &composed).expect("checkable");
    assert!(report.holds(), "{report}");
    // The direct worst case is much better than the composed bound —
    // Theorem 3.4 is sound but conservative.
    assert!(report.measured.lo().value() > 0.5);
}

#[test]
fn derivation_axioms_match_checked_arrows() {
    // Every axiom used by the Section 6.2 derivation is itself verified:
    // the composed conclusion is therefore grounded end to end.
    let derivation = paper::composed_derivation();
    let m = mdp(3);
    for (arrow, justification) in derivation.axioms() {
        let report = check_arrow(&m, arrow).expect("checkable");
        assert!(report.holds(), "axiom {justification} failed: {report}");
    }
    let conclusion = derivation.conclusion().expect("valid derivation");
    assert_eq!(conclusion.to_string(), "T —13→_0.125 C");
}

#[test]
fn expected_time_bounds_hold_and_order() {
    let m = mdp(3);
    let rt_p = max_expected_time(&m, &SetExpr::named("RT"), &SetExpr::named("P"), 20_000_000)
        .expect("computable");
    let t_c = max_expected_time(&m, &SetExpr::named("T"), &SetExpr::named("C"), 20_000_000)
        .expect("computable");
    assert!(rt_p <= paper::expected_time_rt_to_p(), "E[RT→P] = {rt_p}");
    assert!(t_c <= paper::expected_time_t_to_c(), "E[T→C] = {t_c}");
    assert!(rt_p <= t_c, "RT→P is a sub-journey of T→C");
    assert!(t_c > 1.0, "a meal takes at least flip+wait+second+crit");
}

#[test]
fn lemma_6_1_holds_exhaustively_up_to_n4() {
    for n in [2, 3, 4] {
        let result = verify_lemma_6_1(n, 20_000_000).expect("explorable");
        assert!(result.holds(), "Lemma 6.1 failed for n = {n}: {result:?}");
    }
}

#[test]
fn burst_ablation_is_monotone_and_stays_above_the_bound() {
    let mut last = f64::INFINITY;
    for burst in [1u8, 2] {
        let cfg = RoundConfig::new(3).unwrap().with_burst(burst).unwrap();
        let report = check_arrow(&RoundMdp::new(cfg), &paper::arrow_t_to_c()).unwrap();
        let p = report.measured.lo().value();
        assert!(p >= 0.125, "burst {burst}: {p}");
        assert!(p <= last + 1e-12, "more adversary power cannot help");
        last = p;
    }
}

#[test]
fn g_to_p_worst_case_is_exactly_one_half_at_n3() {
    // Sharper than the paper's 1/4: at n = 3 with burst 1 the worst good
    // state still wins with probability 1/2 — recorded as a reproduction
    // observation (the paper notes its bounds are improvable).
    let report = check_arrow(&mdp(3), &paper::arrow_g_to_p()).unwrap();
    assert!((report.measured.lo().value() - 0.5).abs() < 1e-9);
}

#[test]
fn all_appendix_lemmas_hold_for_n3() {
    use timebounds::lehmann_rabin::lemmas::{appendix_lemmas, check_lemma};
    for spec in appendix_lemmas() {
        let check = check_lemma(3, &spec, 20_000_000).expect("checkable");
        assert!(check.instances > 0, "{}: vacuous hypothesis", check.name);
        assert!(check.holds(), "{check}");
    }
}

#[test]
fn progress_time_is_sandwiched() {
    use timebounds::lehmann_rabin::lemmas::progress_time_lower_bound;
    let m = mdp(3);
    let lower = progress_time_lower_bound(
        &m,
        &SetExpr::named("T"),
        &SetExpr::named("C"),
        20,
        20_000_000,
    )
    .expect("computable")
    .expect("T is nonempty");
    // Some adversary stalls progress for `lower` units; the paper
    // guarantees progress (w.p. ≥ 1/8) by 13. Lower < upper.
    assert!(lower < 13, "lower bound {lower}");
    assert!(lower >= 3, "a meal takes at least 4 time units");
}
