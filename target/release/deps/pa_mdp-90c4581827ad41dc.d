/root/repo/target/release/deps/pa_mdp-90c4581827ad41dc.d: crates/mdp/src/lib.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/value_iter.rs

/root/repo/target/release/deps/libpa_mdp-90c4581827ad41dc.rlib: crates/mdp/src/lib.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/value_iter.rs

/root/repo/target/release/deps/libpa_mdp-90c4581827ad41dc.rmeta: crates/mdp/src/lib.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/value_iter.rs

crates/mdp/src/lib.rs:
crates/mdp/src/error.rs:
crates/mdp/src/expected.rs:
crates/mdp/src/explore.rs:
crates/mdp/src/horizon.rs:
crates/mdp/src/model.rs:
crates/mdp/src/value_iter.rs:
