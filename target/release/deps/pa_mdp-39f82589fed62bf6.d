/root/repo/target/release/deps/pa_mdp-39f82589fed62bf6.d: crates/mdp/src/lib.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/value_iter.rs

/root/repo/target/release/deps/pa_mdp-39f82589fed62bf6: crates/mdp/src/lib.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/value_iter.rs

crates/mdp/src/lib.rs:
crates/mdp/src/error.rs:
crates/mdp/src/expected.rs:
crates/mdp/src/explore.rs:
crates/mdp/src/horizon.rs:
crates/mdp/src/model.rs:
crates/mdp/src/value_iter.rs:
