/root/repo/target/release/deps/pa_bench-67a185c1e8a7ed49.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpa_bench-67a185c1e8a7ed49.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpa_bench-67a185c1e8a7ed49.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
