/root/repo/target/release/deps/tables-a55b5fad3b342d35.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-a55b5fad3b342d35: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
