/root/repo/target/release/deps/timebounds-3c9435f512ea5984.d: src/lib.rs

/root/repo/target/release/deps/libtimebounds-3c9435f512ea5984.rlib: src/lib.rs

/root/repo/target/release/deps/libtimebounds-3c9435f512ea5984.rmeta: src/lib.rs

src/lib.rs:
