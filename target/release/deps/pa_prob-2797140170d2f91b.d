/root/repo/target/release/deps/pa_prob-2797140170d2f91b.d: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

/root/repo/target/release/deps/libpa_prob-2797140170d2f91b.rlib: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

/root/repo/target/release/deps/libpa_prob-2797140170d2f91b.rmeta: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

crates/prob/src/lib.rs:
crates/prob/src/dist.rs:
crates/prob/src/error.rs:
crates/prob/src/interval.rs:
crates/prob/src/prob.rs:
crates/prob/src/rng.rs:
crates/prob/src/stats.rs:
