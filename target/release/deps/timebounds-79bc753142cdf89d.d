/root/repo/target/release/deps/timebounds-79bc753142cdf89d.d: src/lib.rs

/root/repo/target/release/deps/timebounds-79bc753142cdf89d: src/lib.rs

src/lib.rs:
