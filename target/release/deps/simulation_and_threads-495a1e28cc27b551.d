/root/repo/target/release/deps/simulation_and_threads-495a1e28cc27b551.d: tests/simulation_and_threads.rs

/root/repo/target/release/deps/simulation_and_threads-495a1e28cc27b551: tests/simulation_and_threads.rs

tests/simulation_and_threads.rs:
