/root/repo/target/release/deps/timebounds-d476510c7c3421a3.d: src/lib.rs

/root/repo/target/release/deps/timebounds-d476510c7c3421a3: src/lib.rs

src/lib.rs:
