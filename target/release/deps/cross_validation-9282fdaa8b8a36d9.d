/root/repo/target/release/deps/cross_validation-9282fdaa8b8a36d9.d: tests/cross_validation.rs

/root/repo/target/release/deps/cross_validation-9282fdaa8b8a36d9: tests/cross_validation.rs

tests/cross_validation.rs:
