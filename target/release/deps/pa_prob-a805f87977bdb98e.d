/root/repo/target/release/deps/pa_prob-a805f87977bdb98e.d: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

/root/repo/target/release/deps/pa_prob-a805f87977bdb98e: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

crates/prob/src/lib.rs:
crates/prob/src/dist.rs:
crates/prob/src/error.rs:
crates/prob/src/interval.rs:
crates/prob/src/prob.rs:
crates/prob/src/rng.rs:
crates/prob/src/stats.rs:
