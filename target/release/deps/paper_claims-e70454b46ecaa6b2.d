/root/repo/target/release/deps/paper_claims-e70454b46ecaa6b2.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-e70454b46ecaa6b2: tests/paper_claims.rs

tests/paper_claims.rs:
