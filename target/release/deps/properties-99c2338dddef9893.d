/root/repo/target/release/deps/properties-99c2338dddef9893.d: crates/lehmann-rabin/tests/properties.rs

/root/repo/target/release/deps/properties-99c2338dddef9893: crates/lehmann-rabin/tests/properties.rs

crates/lehmann-rabin/tests/properties.rs:
