/root/repo/target/release/deps/pa_mdp-ee6cbc21d40e93ff.d: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs

/root/repo/target/release/deps/pa_mdp-ee6cbc21d40e93ff: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs

crates/mdp/src/lib.rs:
crates/mdp/src/csr.rs:
crates/mdp/src/error.rs:
crates/mdp/src/expected.rs:
crates/mdp/src/explore.rs:
crates/mdp/src/fxhash.rs:
crates/mdp/src/horizon.rs:
crates/mdp/src/model.rs:
crates/mdp/src/reference.rs:
crates/mdp/src/value_iter.rs:
