/root/repo/target/release/deps/properties-4f28bd05aa1b296f.d: crates/mdp/tests/properties.rs

/root/repo/target/release/deps/properties-4f28bd05aa1b296f: crates/mdp/tests/properties.rs

crates/mdp/tests/properties.rs:
