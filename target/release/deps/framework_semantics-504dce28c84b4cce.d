/root/repo/target/release/deps/framework_semantics-504dce28c84b4cce.d: tests/framework_semantics.rs

/root/repo/target/release/deps/framework_semantics-504dce28c84b4cce: tests/framework_semantics.rs

tests/framework_semantics.rs:
