/root/repo/target/release/deps/timebounds-1ad3656a4fa6de77.d: src/lib.rs

/root/repo/target/release/deps/libtimebounds-1ad3656a4fa6de77.rlib: src/lib.rs

/root/repo/target/release/deps/libtimebounds-1ad3656a4fa6de77.rmeta: src/lib.rs

src/lib.rs:
