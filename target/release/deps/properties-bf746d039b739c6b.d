/root/repo/target/release/deps/properties-bf746d039b739c6b.d: crates/prob/tests/properties.rs

/root/repo/target/release/deps/properties-bf746d039b739c6b: crates/prob/tests/properties.rs

crates/prob/tests/properties.rs:
