/root/repo/target/release/deps/pa_bench-ec3dabed4659d157.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

/root/repo/target/release/deps/pa_bench-ec3dabed4659d157: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/table.rs:
