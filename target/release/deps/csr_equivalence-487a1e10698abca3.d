/root/repo/target/release/deps/csr_equivalence-487a1e10698abca3.d: crates/mdp/tests/csr_equivalence.rs

/root/repo/target/release/deps/csr_equivalence-487a1e10698abca3: crates/mdp/tests/csr_equivalence.rs

crates/mdp/tests/csr_equivalence.rs:
