/root/repo/target/release/deps/pa_bench-4810277617caef08.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpa_bench-4810277617caef08.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpa_bench-4810277617caef08.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/table.rs:
