/root/repo/target/release/deps/properties-383d694e29dd78e4.d: crates/lehmann-rabin/tests/properties.rs

/root/repo/target/release/deps/properties-383d694e29dd78e4: crates/lehmann-rabin/tests/properties.rs

crates/lehmann-rabin/tests/properties.rs:
