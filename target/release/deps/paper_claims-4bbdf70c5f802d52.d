/root/repo/target/release/deps/paper_claims-4bbdf70c5f802d52.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-4bbdf70c5f802d52: tests/paper_claims.rs

tests/paper_claims.rs:
