/root/repo/target/release/deps/properties-3edecad7392cc8c3.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-3edecad7392cc8c3: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
