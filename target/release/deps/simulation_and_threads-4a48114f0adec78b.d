/root/repo/target/release/deps/simulation_and_threads-4a48114f0adec78b.d: tests/simulation_and_threads.rs

/root/repo/target/release/deps/simulation_and_threads-4a48114f0adec78b: tests/simulation_and_threads.rs

tests/simulation_and_threads.rs:
