/root/repo/target/release/deps/pa_mdp-0dc21f5d64980279.d: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs

/root/repo/target/release/deps/libpa_mdp-0dc21f5d64980279.rlib: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs

/root/repo/target/release/deps/libpa_mdp-0dc21f5d64980279.rmeta: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs

crates/mdp/src/lib.rs:
crates/mdp/src/csr.rs:
crates/mdp/src/error.rs:
crates/mdp/src/expected.rs:
crates/mdp/src/explore.rs:
crates/mdp/src/fxhash.rs:
crates/mdp/src/horizon.rs:
crates/mdp/src/model.rs:
crates/mdp/src/reference.rs:
crates/mdp/src/value_iter.rs:
