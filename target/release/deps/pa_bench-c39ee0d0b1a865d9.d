/root/repo/target/release/deps/pa_bench-c39ee0d0b1a865d9.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/pa_bench-c39ee0d0b1a865d9: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
