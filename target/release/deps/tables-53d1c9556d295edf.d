/root/repo/target/release/deps/tables-53d1c9556d295edf.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-53d1c9556d295edf: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
