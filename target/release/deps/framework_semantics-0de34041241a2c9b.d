/root/repo/target/release/deps/framework_semantics-0de34041241a2c9b.d: tests/framework_semantics.rs

/root/repo/target/release/deps/framework_semantics-0de34041241a2c9b: tests/framework_semantics.rs

tests/framework_semantics.rs:
