/root/repo/target/release/deps/cross_validation-2ab73e444daa038f.d: tests/cross_validation.rs

/root/repo/target/release/deps/cross_validation-2ab73e444daa038f: tests/cross_validation.rs

tests/cross_validation.rs:
