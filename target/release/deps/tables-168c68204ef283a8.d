/root/repo/target/release/deps/tables-168c68204ef283a8.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-168c68204ef283a8: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
