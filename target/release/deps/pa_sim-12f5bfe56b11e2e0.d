/root/repo/target/release/deps/pa_sim-12f5bfe56b11e2e0.d: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

/root/repo/target/release/deps/pa_sim-12f5bfe56b11e2e0: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

crates/sim/src/lib.rs:
crates/sim/src/cdf.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/monte_carlo.rs:
