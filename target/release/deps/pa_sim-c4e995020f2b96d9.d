/root/repo/target/release/deps/pa_sim-c4e995020f2b96d9.d: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

/root/repo/target/release/deps/libpa_sim-c4e995020f2b96d9.rlib: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

/root/repo/target/release/deps/libpa_sim-c4e995020f2b96d9.rmeta: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

crates/sim/src/lib.rs:
crates/sim/src/cdf.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/monte_carlo.rs:
