/root/repo/target/release/deps/properties-99284bdd620003aa.d: crates/sim/tests/properties.rs

/root/repo/target/release/deps/properties-99284bdd620003aa: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
