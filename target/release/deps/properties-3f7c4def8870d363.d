/root/repo/target/release/deps/properties-3f7c4def8870d363.d: crates/mdp/tests/properties.rs

/root/repo/target/release/deps/properties-3f7c4def8870d363: crates/mdp/tests/properties.rs

crates/mdp/tests/properties.rs:
