/root/repo/target/release/examples/hash_check-75b38e8d47b9558a.d: crates/bench/examples/hash_check.rs

/root/repo/target/release/examples/hash_check-75b38e8d47b9558a: crates/bench/examples/hash_check.rs

crates/bench/examples/hash_check.rs:
