/root/repo/target/release/examples/adversary_independence-59416d2c5fd69cde.d: examples/adversary_independence.rs

/root/repo/target/release/examples/adversary_independence-59416d2c5fd69cde: examples/adversary_independence.rs

examples/adversary_independence.rs:
