/root/repo/target/release/examples/verify_time_bounds-02d21baaeafaf3ad.d: examples/verify_time_bounds.rs

/root/repo/target/release/examples/verify_time_bounds-02d21baaeafaf3ad: examples/verify_time_bounds.rs

examples/verify_time_bounds.rs:
