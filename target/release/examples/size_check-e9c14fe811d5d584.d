/root/repo/target/release/examples/size_check-e9c14fe811d5d584.d: crates/bench/examples/size_check.rs

/root/repo/target/release/examples/size_check-e9c14fe811d5d584: crates/bench/examples/size_check.rs

crates/bench/examples/size_check.rs:
