/root/repo/target/release/examples/quickstart-9787069eb5ad9ac5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9787069eb5ad9ac5: examples/quickstart.rs

examples/quickstart.rs:
