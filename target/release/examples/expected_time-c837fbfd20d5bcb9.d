/root/repo/target/release/examples/expected_time-c837fbfd20d5bcb9.d: examples/expected_time.rs

/root/repo/target/release/examples/expected_time-c837fbfd20d5bcb9: examples/expected_time.rs

examples/expected_time.rs:
