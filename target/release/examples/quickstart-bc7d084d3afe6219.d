/root/repo/target/release/examples/quickstart-bc7d084d3afe6219.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-bc7d084d3afe6219: examples/quickstart.rs

examples/quickstart.rs:
