/root/repo/target/release/examples/dining_philosophers-a489c8f93e26a4f9.d: examples/dining_philosophers.rs

/root/repo/target/release/examples/dining_philosophers-a489c8f93e26a4f9: examples/dining_philosophers.rs

examples/dining_philosophers.rs:
