/root/repo/target/release/examples/verify_time_bounds-b9970f711a4cd483.d: examples/verify_time_bounds.rs

/root/repo/target/release/examples/verify_time_bounds-b9970f711a4cd483: examples/verify_time_bounds.rs

examples/verify_time_bounds.rs:
