/root/repo/target/release/examples/dining_philosophers-77421bd6968a4f59.d: examples/dining_philosophers.rs

/root/repo/target/release/examples/dining_philosophers-77421bd6968a4f59: examples/dining_philosophers.rs

examples/dining_philosophers.rs:
