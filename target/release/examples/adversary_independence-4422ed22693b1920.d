/root/repo/target/release/examples/adversary_independence-4422ed22693b1920.d: examples/adversary_independence.rs

/root/repo/target/release/examples/adversary_independence-4422ed22693b1920: examples/adversary_independence.rs

examples/adversary_independence.rs:
