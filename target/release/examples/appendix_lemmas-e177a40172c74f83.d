/root/repo/target/release/examples/appendix_lemmas-e177a40172c74f83.d: examples/appendix_lemmas.rs

/root/repo/target/release/examples/appendix_lemmas-e177a40172c74f83: examples/appendix_lemmas.rs

examples/appendix_lemmas.rs:
