/root/repo/target/release/examples/expected_time-1abcb9955efb7b3e.d: examples/expected_time.rs

/root/repo/target/release/examples/expected_time-1abcb9955efb7b3e: examples/expected_time.rs

examples/expected_time.rs:
