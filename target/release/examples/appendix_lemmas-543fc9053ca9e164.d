/root/repo/target/release/examples/appendix_lemmas-543fc9053ca9e164.d: examples/appendix_lemmas.rs

/root/repo/target/release/examples/appendix_lemmas-543fc9053ca9e164: examples/appendix_lemmas.rs

examples/appendix_lemmas.rs:
