/root/repo/target/debug/examples/adversary_independence-6195004edb4339cc.d: examples/adversary_independence.rs

/root/repo/target/debug/examples/adversary_independence-6195004edb4339cc: examples/adversary_independence.rs

examples/adversary_independence.rs:
