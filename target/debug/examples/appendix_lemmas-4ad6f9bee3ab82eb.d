/root/repo/target/debug/examples/appendix_lemmas-4ad6f9bee3ab82eb.d: examples/appendix_lemmas.rs

/root/repo/target/debug/examples/appendix_lemmas-4ad6f9bee3ab82eb: examples/appendix_lemmas.rs

examples/appendix_lemmas.rs:
