/root/repo/target/debug/examples/verify_time_bounds-5ddbd35822a67521.d: examples/verify_time_bounds.rs Cargo.toml

/root/repo/target/debug/examples/libverify_time_bounds-5ddbd35822a67521.rmeta: examples/verify_time_bounds.rs Cargo.toml

examples/verify_time_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
