/root/repo/target/debug/examples/expected_time-50cc6b8e73e133cf.d: examples/expected_time.rs

/root/repo/target/debug/examples/expected_time-50cc6b8e73e133cf: examples/expected_time.rs

examples/expected_time.rs:
