/root/repo/target/debug/examples/dining_philosophers-6db9a80bdec04826.d: examples/dining_philosophers.rs

/root/repo/target/debug/examples/dining_philosophers-6db9a80bdec04826: examples/dining_philosophers.rs

examples/dining_philosophers.rs:
