/root/repo/target/debug/examples/verify_time_bounds-3230dec256825594.d: examples/verify_time_bounds.rs

/root/repo/target/debug/examples/verify_time_bounds-3230dec256825594: examples/verify_time_bounds.rs

examples/verify_time_bounds.rs:
