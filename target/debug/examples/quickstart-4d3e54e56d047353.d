/root/repo/target/debug/examples/quickstart-4d3e54e56d047353.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4d3e54e56d047353: examples/quickstart.rs

examples/quickstart.rs:
