/root/repo/target/debug/examples/adversary_independence-4d281902c10ab262.d: examples/adversary_independence.rs Cargo.toml

/root/repo/target/debug/examples/libadversary_independence-4d281902c10ab262.rmeta: examples/adversary_independence.rs Cargo.toml

examples/adversary_independence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
