/root/repo/target/debug/examples/quickstart-688bbf5edac856ea.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-688bbf5edac856ea.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
