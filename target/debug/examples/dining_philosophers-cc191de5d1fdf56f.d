/root/repo/target/debug/examples/dining_philosophers-cc191de5d1fdf56f.d: examples/dining_philosophers.rs Cargo.toml

/root/repo/target/debug/examples/libdining_philosophers-cc191de5d1fdf56f.rmeta: examples/dining_philosophers.rs Cargo.toml

examples/dining_philosophers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
