/root/repo/target/debug/examples/expected_time-8f329166fd0929a2.d: examples/expected_time.rs Cargo.toml

/root/repo/target/debug/examples/libexpected_time-8f329166fd0929a2.rmeta: examples/expected_time.rs Cargo.toml

examples/expected_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
