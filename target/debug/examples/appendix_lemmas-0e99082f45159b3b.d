/root/repo/target/debug/examples/appendix_lemmas-0e99082f45159b3b.d: examples/appendix_lemmas.rs Cargo.toml

/root/repo/target/debug/examples/libappendix_lemmas-0e99082f45159b3b.rmeta: examples/appendix_lemmas.rs Cargo.toml

examples/appendix_lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
