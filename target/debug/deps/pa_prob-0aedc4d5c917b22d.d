/root/repo/target/debug/deps/pa_prob-0aedc4d5c917b22d.d: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

/root/repo/target/debug/deps/pa_prob-0aedc4d5c917b22d: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

crates/prob/src/lib.rs:
crates/prob/src/dist.rs:
crates/prob/src/error.rs:
crates/prob/src/interval.rs:
crates/prob/src/prob.rs:
crates/prob/src/rng.rs:
crates/prob/src/stats.rs:
