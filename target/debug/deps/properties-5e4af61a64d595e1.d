/root/repo/target/debug/deps/properties-5e4af61a64d595e1.d: crates/prob/tests/properties.rs

/root/repo/target/debug/deps/properties-5e4af61a64d595e1: crates/prob/tests/properties.rs

crates/prob/tests/properties.rs:
