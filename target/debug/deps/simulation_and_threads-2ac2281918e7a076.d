/root/repo/target/debug/deps/simulation_and_threads-2ac2281918e7a076.d: tests/simulation_and_threads.rs

/root/repo/target/debug/deps/simulation_and_threads-2ac2281918e7a076: tests/simulation_and_threads.rs

tests/simulation_and_threads.rs:
