/root/repo/target/debug/deps/pa_sim-6e3313e96a775663.d: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

/root/repo/target/debug/deps/libpa_sim-6e3313e96a775663.rlib: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

/root/repo/target/debug/deps/libpa_sim-6e3313e96a775663.rmeta: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

crates/sim/src/lib.rs:
crates/sim/src/cdf.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/monte_carlo.rs:
