/root/repo/target/debug/deps/scaling-7265aee357d443fb.d: crates/bench/benches/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-7265aee357d443fb.rmeta: crates/bench/benches/scaling.rs Cargo.toml

crates/bench/benches/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
