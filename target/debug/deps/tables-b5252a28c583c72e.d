/root/repo/target/debug/deps/tables-b5252a28c583c72e.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-b5252a28c583c72e: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
