/root/repo/target/debug/deps/pa_bench-45a609afd47fa567.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libpa_bench-45a609afd47fa567.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
