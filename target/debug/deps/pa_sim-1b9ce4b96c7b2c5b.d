/root/repo/target/debug/deps/pa_sim-1b9ce4b96c7b2c5b.d: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

/root/repo/target/debug/deps/pa_sim-1b9ce4b96c7b2c5b: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs

crates/sim/src/lib.rs:
crates/sim/src/cdf.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/monte_carlo.rs:
