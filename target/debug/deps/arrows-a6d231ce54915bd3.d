/root/repo/target/debug/deps/arrows-a6d231ce54915bd3.d: crates/bench/benches/arrows.rs Cargo.toml

/root/repo/target/debug/deps/libarrows-a6d231ce54915bd3.rmeta: crates/bench/benches/arrows.rs Cargo.toml

crates/bench/benches/arrows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
