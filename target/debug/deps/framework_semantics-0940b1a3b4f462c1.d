/root/repo/target/debug/deps/framework_semantics-0940b1a3b4f462c1.d: tests/framework_semantics.rs

/root/repo/target/debug/deps/framework_semantics-0940b1a3b4f462c1: tests/framework_semantics.rs

tests/framework_semantics.rs:
