/root/repo/target/debug/deps/timebounds-bb60de082bce3875.d: src/lib.rs

/root/repo/target/debug/deps/libtimebounds-bb60de082bce3875.rlib: src/lib.rs

/root/repo/target/debug/deps/libtimebounds-bb60de082bce3875.rmeta: src/lib.rs

src/lib.rs:
