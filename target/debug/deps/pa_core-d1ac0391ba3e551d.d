/root/repo/target/debug/deps/pa_core-d1ac0391ba3e551d.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/arrow.rs crates/core/src/automaton.rs crates/core/src/checker.rs crates/core/src/derivation.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/exec_tree.rs crates/core/src/execution.rs crates/core/src/first_next.rs crates/core/src/measure.rs crates/core/src/recurrence.rs crates/core/src/schema.rs crates/core/src/timed.rs

/root/repo/target/debug/deps/pa_core-d1ac0391ba3e551d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/arrow.rs crates/core/src/automaton.rs crates/core/src/checker.rs crates/core/src/derivation.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/exec_tree.rs crates/core/src/execution.rs crates/core/src/first_next.rs crates/core/src/measure.rs crates/core/src/recurrence.rs crates/core/src/schema.rs crates/core/src/timed.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/arrow.rs:
crates/core/src/automaton.rs:
crates/core/src/checker.rs:
crates/core/src/derivation.rs:
crates/core/src/error.rs:
crates/core/src/event.rs:
crates/core/src/exec_tree.rs:
crates/core/src/execution.rs:
crates/core/src/first_next.rs:
crates/core/src/measure.rs:
crates/core/src/recurrence.rs:
crates/core/src/schema.rs:
crates/core/src/timed.rs:
