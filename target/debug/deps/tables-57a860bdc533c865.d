/root/repo/target/debug/deps/tables-57a860bdc533c865.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-57a860bdc533c865.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
