/root/repo/target/debug/deps/pa_bench-6a51564b271a0c10.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpa_bench-6a51564b271a0c10.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpa_bench-6a51564b271a0c10.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/table.rs:
