/root/repo/target/debug/deps/checker-257d4d2eed8d81c3.d: crates/bench/benches/checker.rs Cargo.toml

/root/repo/target/debug/deps/libchecker-257d4d2eed8d81c3.rmeta: crates/bench/benches/checker.rs Cargo.toml

crates/bench/benches/checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
