/root/repo/target/debug/deps/independence-ab495fc19e6fe690.d: crates/bench/benches/independence.rs Cargo.toml

/root/repo/target/debug/deps/libindependence-ab495fc19e6fe690.rmeta: crates/bench/benches/independence.rs Cargo.toml

crates/bench/benches/independence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
