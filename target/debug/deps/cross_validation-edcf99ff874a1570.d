/root/repo/target/debug/deps/cross_validation-edcf99ff874a1570.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-edcf99ff874a1570: tests/cross_validation.rs

tests/cross_validation.rs:
