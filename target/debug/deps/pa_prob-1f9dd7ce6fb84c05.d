/root/repo/target/debug/deps/pa_prob-1f9dd7ce6fb84c05.d: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpa_prob-1f9dd7ce6fb84c05.rmeta: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs Cargo.toml

crates/prob/src/lib.rs:
crates/prob/src/dist.rs:
crates/prob/src/error.rs:
crates/prob/src/interval.rs:
crates/prob/src/prob.rs:
crates/prob/src/rng.rs:
crates/prob/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
