/root/repo/target/debug/deps/pa_mdp-ccbae8250d4939ed.d: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs Cargo.toml

/root/repo/target/debug/deps/libpa_mdp-ccbae8250d4939ed.rmeta: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs Cargo.toml

crates/mdp/src/lib.rs:
crates/mdp/src/csr.rs:
crates/mdp/src/error.rs:
crates/mdp/src/expected.rs:
crates/mdp/src/explore.rs:
crates/mdp/src/fxhash.rs:
crates/mdp/src/horizon.rs:
crates/mdp/src/model.rs:
crates/mdp/src/reference.rs:
crates/mdp/src/value_iter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
