/root/repo/target/debug/deps/properties-75aeb478db825775.d: crates/mdp/tests/properties.rs

/root/repo/target/debug/deps/properties-75aeb478db825775: crates/mdp/tests/properties.rs

crates/mdp/tests/properties.rs:
