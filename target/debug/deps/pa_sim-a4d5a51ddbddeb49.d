/root/repo/target/debug/deps/pa_sim-a4d5a51ddbddeb49.d: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs Cargo.toml

/root/repo/target/debug/deps/libpa_sim-a4d5a51ddbddeb49.rmeta: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cdf.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/monte_carlo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
