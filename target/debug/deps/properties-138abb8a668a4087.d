/root/repo/target/debug/deps/properties-138abb8a668a4087.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-138abb8a668a4087: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
