/root/repo/target/debug/deps/ablation-32e77988c95107d2.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-32e77988c95107d2.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
