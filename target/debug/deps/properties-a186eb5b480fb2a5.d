/root/repo/target/debug/deps/properties-a186eb5b480fb2a5.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-a186eb5b480fb2a5: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
