/root/repo/target/debug/deps/cross_validation-131330bd6178dc98.d: tests/cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validation-131330bd6178dc98.rmeta: tests/cross_validation.rs Cargo.toml

tests/cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
