/root/repo/target/debug/deps/pa_core-f345e868254694c8.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/arrow.rs crates/core/src/automaton.rs crates/core/src/checker.rs crates/core/src/derivation.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/exec_tree.rs crates/core/src/execution.rs crates/core/src/first_next.rs crates/core/src/measure.rs crates/core/src/recurrence.rs crates/core/src/schema.rs crates/core/src/timed.rs Cargo.toml

/root/repo/target/debug/deps/libpa_core-f345e868254694c8.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/arrow.rs crates/core/src/automaton.rs crates/core/src/checker.rs crates/core/src/derivation.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/exec_tree.rs crates/core/src/execution.rs crates/core/src/first_next.rs crates/core/src/measure.rs crates/core/src/recurrence.rs crates/core/src/schema.rs crates/core/src/timed.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/arrow.rs:
crates/core/src/automaton.rs:
crates/core/src/checker.rs:
crates/core/src/derivation.rs:
crates/core/src/error.rs:
crates/core/src/event.rs:
crates/core/src/exec_tree.rs:
crates/core/src/execution.rs:
crates/core/src/first_next.rs:
crates/core/src/measure.rs:
crates/core/src/recurrence.rs:
crates/core/src/schema.rs:
crates/core/src/timed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
