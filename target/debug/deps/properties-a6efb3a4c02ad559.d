/root/repo/target/debug/deps/properties-a6efb3a4c02ad559.d: crates/prob/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a6efb3a4c02ad559.rmeta: crates/prob/tests/properties.rs Cargo.toml

crates/prob/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
