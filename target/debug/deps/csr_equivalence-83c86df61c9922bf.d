/root/repo/target/debug/deps/csr_equivalence-83c86df61c9922bf.d: crates/mdp/tests/csr_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcsr_equivalence-83c86df61c9922bf.rmeta: crates/mdp/tests/csr_equivalence.rs Cargo.toml

crates/mdp/tests/csr_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
