/root/repo/target/debug/deps/properties-89a6e5950c7bd759.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-89a6e5950c7bd759.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
