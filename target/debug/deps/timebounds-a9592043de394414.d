/root/repo/target/debug/deps/timebounds-a9592043de394414.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtimebounds-a9592043de394414.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
