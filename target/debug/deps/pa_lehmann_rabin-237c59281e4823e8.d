/root/repo/target/debug/deps/pa_lehmann_rabin-237c59281e4823e8.d: crates/lehmann-rabin/src/lib.rs crates/lehmann-rabin/src/arrows.rs crates/lehmann-rabin/src/concurrent.rs crates/lehmann-rabin/src/error.rs crates/lehmann-rabin/src/events.rs crates/lehmann-rabin/src/invariant.rs crates/lehmann-rabin/src/lemmas.rs crates/lehmann-rabin/src/pc.rs crates/lehmann-rabin/src/protocol.rs crates/lehmann-rabin/src/regions.rs crates/lehmann-rabin/src/round.rs crates/lehmann-rabin/src/sims.rs crates/lehmann-rabin/src/state.rs crates/lehmann-rabin/src/witness.rs

/root/repo/target/debug/deps/pa_lehmann_rabin-237c59281e4823e8: crates/lehmann-rabin/src/lib.rs crates/lehmann-rabin/src/arrows.rs crates/lehmann-rabin/src/concurrent.rs crates/lehmann-rabin/src/error.rs crates/lehmann-rabin/src/events.rs crates/lehmann-rabin/src/invariant.rs crates/lehmann-rabin/src/lemmas.rs crates/lehmann-rabin/src/pc.rs crates/lehmann-rabin/src/protocol.rs crates/lehmann-rabin/src/regions.rs crates/lehmann-rabin/src/round.rs crates/lehmann-rabin/src/sims.rs crates/lehmann-rabin/src/state.rs crates/lehmann-rabin/src/witness.rs

crates/lehmann-rabin/src/lib.rs:
crates/lehmann-rabin/src/arrows.rs:
crates/lehmann-rabin/src/concurrent.rs:
crates/lehmann-rabin/src/error.rs:
crates/lehmann-rabin/src/events.rs:
crates/lehmann-rabin/src/invariant.rs:
crates/lehmann-rabin/src/lemmas.rs:
crates/lehmann-rabin/src/pc.rs:
crates/lehmann-rabin/src/protocol.rs:
crates/lehmann-rabin/src/regions.rs:
crates/lehmann-rabin/src/round.rs:
crates/lehmann-rabin/src/sims.rs:
crates/lehmann-rabin/src/state.rs:
crates/lehmann-rabin/src/witness.rs:
