/root/repo/target/debug/deps/simulation-26e3efaf7ed25201.d: crates/bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-26e3efaf7ed25201.rmeta: crates/bench/benches/simulation.rs Cargo.toml

crates/bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
