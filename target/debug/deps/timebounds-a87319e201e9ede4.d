/root/repo/target/debug/deps/timebounds-a87319e201e9ede4.d: src/lib.rs

/root/repo/target/debug/deps/timebounds-a87319e201e9ede4: src/lib.rs

src/lib.rs:
