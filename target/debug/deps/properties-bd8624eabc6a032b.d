/root/repo/target/debug/deps/properties-bd8624eabc6a032b.d: crates/lehmann-rabin/tests/properties.rs

/root/repo/target/debug/deps/properties-bd8624eabc6a032b: crates/lehmann-rabin/tests/properties.rs

crates/lehmann-rabin/tests/properties.rs:
