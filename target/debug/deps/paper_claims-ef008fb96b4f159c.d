/root/repo/target/debug/deps/paper_claims-ef008fb96b4f159c.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-ef008fb96b4f159c: tests/paper_claims.rs

tests/paper_claims.rs:
