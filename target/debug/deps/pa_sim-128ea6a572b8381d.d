/root/repo/target/debug/deps/pa_sim-128ea6a572b8381d.d: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs Cargo.toml

/root/repo/target/debug/deps/libpa_sim-128ea6a572b8381d.rmeta: crates/sim/src/lib.rs crates/sim/src/cdf.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/monte_carlo.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cdf.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/monte_carlo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
