/root/repo/target/debug/deps/properties-19dbed5177b4f48d.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-19dbed5177b4f48d.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
