/root/repo/target/debug/deps/pa_bench-674d853d18e4d7e4.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libpa_bench-674d853d18e4d7e4.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
