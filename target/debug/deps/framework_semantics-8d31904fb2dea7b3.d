/root/repo/target/debug/deps/framework_semantics-8d31904fb2dea7b3.d: tests/framework_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libframework_semantics-8d31904fb2dea7b3.rmeta: tests/framework_semantics.rs Cargo.toml

tests/framework_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
