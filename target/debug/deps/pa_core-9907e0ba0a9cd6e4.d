/root/repo/target/debug/deps/pa_core-9907e0ba0a9cd6e4.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/arrow.rs crates/core/src/automaton.rs crates/core/src/checker.rs crates/core/src/derivation.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/exec_tree.rs crates/core/src/execution.rs crates/core/src/first_next.rs crates/core/src/measure.rs crates/core/src/recurrence.rs crates/core/src/schema.rs crates/core/src/timed.rs

/root/repo/target/debug/deps/libpa_core-9907e0ba0a9cd6e4.rlib: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/arrow.rs crates/core/src/automaton.rs crates/core/src/checker.rs crates/core/src/derivation.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/exec_tree.rs crates/core/src/execution.rs crates/core/src/first_next.rs crates/core/src/measure.rs crates/core/src/recurrence.rs crates/core/src/schema.rs crates/core/src/timed.rs

/root/repo/target/debug/deps/libpa_core-9907e0ba0a9cd6e4.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/arrow.rs crates/core/src/automaton.rs crates/core/src/checker.rs crates/core/src/derivation.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/exec_tree.rs crates/core/src/execution.rs crates/core/src/first_next.rs crates/core/src/measure.rs crates/core/src/recurrence.rs crates/core/src/schema.rs crates/core/src/timed.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/arrow.rs:
crates/core/src/automaton.rs:
crates/core/src/checker.rs:
crates/core/src/derivation.rs:
crates/core/src/error.rs:
crates/core/src/event.rs:
crates/core/src/exec_tree.rs:
crates/core/src/execution.rs:
crates/core/src/first_next.rs:
crates/core/src/measure.rs:
crates/core/src/recurrence.rs:
crates/core/src/schema.rs:
crates/core/src/timed.rs:
