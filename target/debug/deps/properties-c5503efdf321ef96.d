/root/repo/target/debug/deps/properties-c5503efdf321ef96.d: crates/mdp/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c5503efdf321ef96.rmeta: crates/mdp/tests/properties.rs Cargo.toml

crates/mdp/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
