/root/repo/target/debug/deps/paper_claims-d36933cee311f5a8.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-d36933cee311f5a8.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
