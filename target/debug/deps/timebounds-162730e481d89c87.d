/root/repo/target/debug/deps/timebounds-162730e481d89c87.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtimebounds-162730e481d89c87.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
