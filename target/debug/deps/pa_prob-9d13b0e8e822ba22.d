/root/repo/target/debug/deps/pa_prob-9d13b0e8e822ba22.d: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

/root/repo/target/debug/deps/libpa_prob-9d13b0e8e822ba22.rlib: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

/root/repo/target/debug/deps/libpa_prob-9d13b0e8e822ba22.rmeta: crates/prob/src/lib.rs crates/prob/src/dist.rs crates/prob/src/error.rs crates/prob/src/interval.rs crates/prob/src/prob.rs crates/prob/src/rng.rs crates/prob/src/stats.rs

crates/prob/src/lib.rs:
crates/prob/src/dist.rs:
crates/prob/src/error.rs:
crates/prob/src/interval.rs:
crates/prob/src/prob.rs:
crates/prob/src/rng.rs:
crates/prob/src/stats.rs:
