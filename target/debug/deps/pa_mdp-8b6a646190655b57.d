/root/repo/target/debug/deps/pa_mdp-8b6a646190655b57.d: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs

/root/repo/target/debug/deps/pa_mdp-8b6a646190655b57: crates/mdp/src/lib.rs crates/mdp/src/csr.rs crates/mdp/src/error.rs crates/mdp/src/expected.rs crates/mdp/src/explore.rs crates/mdp/src/fxhash.rs crates/mdp/src/horizon.rs crates/mdp/src/model.rs crates/mdp/src/reference.rs crates/mdp/src/value_iter.rs

crates/mdp/src/lib.rs:
crates/mdp/src/csr.rs:
crates/mdp/src/error.rs:
crates/mdp/src/expected.rs:
crates/mdp/src/explore.rs:
crates/mdp/src/fxhash.rs:
crates/mdp/src/horizon.rs:
crates/mdp/src/model.rs:
crates/mdp/src/reference.rs:
crates/mdp/src/value_iter.rs:
