/root/repo/target/debug/deps/tables-0fabcb0228d67a84.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-0fabcb0228d67a84.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
