/root/repo/target/debug/deps/simulation_and_threads-3604e5422afdc217.d: tests/simulation_and_threads.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation_and_threads-3604e5422afdc217.rmeta: tests/simulation_and_threads.rs Cargo.toml

tests/simulation_and_threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
