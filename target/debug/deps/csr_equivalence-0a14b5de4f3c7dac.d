/root/repo/target/debug/deps/csr_equivalence-0a14b5de4f3c7dac.d: crates/mdp/tests/csr_equivalence.rs

/root/repo/target/debug/deps/csr_equivalence-0a14b5de4f3c7dac: crates/mdp/tests/csr_equivalence.rs

crates/mdp/tests/csr_equivalence.rs:
