/root/repo/target/debug/deps/properties-a624fb106a81248b.d: crates/lehmann-rabin/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a624fb106a81248b.rmeta: crates/lehmann-rabin/tests/properties.rs Cargo.toml

crates/lehmann-rabin/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
