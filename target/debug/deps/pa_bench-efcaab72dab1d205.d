/root/repo/target/debug/deps/pa_bench-efcaab72dab1d205.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/pa_bench-efcaab72dab1d205: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/table.rs:
