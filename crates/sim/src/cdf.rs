use pa_prob::stats::BernoulliEstimator;
use pa_prob::{Prob, ProbInterval};

/// An empirical distribution of hitting times, built from per-round hit
/// counts plus a censored remainder.
///
/// `prob_within(t)` estimates `P[hit within t rounds]` — the Monte-Carlo
/// counterpart of the arrow statement probability, and the data behind the
/// probability-vs-time curves of experiment E12.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmpiricalCdf {
    /// `hits[t]` = number of trials whose first hit was at round `t`.
    hits: Vec<u64>,
    /// Trials that never hit within the simulation cap.
    censored: u64,
    /// Cumulative hit counts.
    cumulative: Vec<u64>,
    total: u64,
}

impl EmpiricalCdf {
    /// Builds the distribution from raw counts.
    pub fn from_counts(hits: Vec<u64>, censored: u64) -> EmpiricalCdf {
        let mut cumulative = Vec::with_capacity(hits.len());
        let mut run = 0u64;
        for &h in &hits {
            run += h;
            cumulative.push(run);
        }
        let total = run + censored;
        EmpiricalCdf {
            hits,
            censored,
            cumulative,
            total,
        }
    }

    /// Number of trials aggregated (hit + censored).
    pub fn trials(&self) -> u64 {
        self.total
    }

    /// Number of censored trials.
    pub fn censored(&self) -> u64 {
        self.censored
    }

    /// The largest round for which the curve is defined (the simulation
    /// cap).
    pub fn max_round(&self) -> u32 {
        self.hits.len().saturating_sub(1) as u32
    }

    /// Point estimate of `P[hit within t]`.
    pub fn prob_within(&self, t: u32) -> Prob {
        if self.total == 0 {
            return Prob::ZERO;
        }
        let idx = (t as usize).min(self.cumulative.len().saturating_sub(1));
        let hits = if self.cumulative.is_empty() {
            0
        } else {
            self.cumulative[idx]
        };
        Prob::clamped(hits as f64 / self.total as f64)
    }

    /// Wilson confidence interval for `P[hit within t]` at z-value `z`.
    pub fn prob_within_ci(&self, t: u32, z: f64) -> ProbInterval {
        let idx = (t as usize).min(self.cumulative.len().saturating_sub(1));
        let hits = if self.cumulative.is_empty() {
            0
        } else {
            self.cumulative[idx]
        };
        let mut est = BernoulliEstimator::new();
        // Reconstruct the estimator from counts.
        for _ in 0..hits {
            est.record(true);
        }
        for _ in 0..(self.total - hits) {
            est.record(false);
        }
        est.wilson_interval(z)
    }

    /// The curve as `(round, estimate)` points.
    pub fn points(&self) -> impl Iterator<Item = (u32, Prob)> + '_ {
        (0..self.hits.len()).map(|t| (t as u32, self.prob_within(t as u32)))
    }

    /// Mean hitting time over the *uncensored* trials, if any hit.
    pub fn mean_hit_time(&self) -> Option<f64> {
        let hit_total: u64 = self.hits.iter().sum();
        if hit_total == 0 {
            return None;
        }
        let sum: f64 = self
            .hits
            .iter()
            .enumerate()
            .map(|(t, &h)| t as f64 * h as f64)
            .sum();
        Some(sum / hit_total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmpiricalCdf {
        // 10 trials: hits at rounds 0(×2), 1(×3), 3(×4); 1 censored.
        EmpiricalCdf::from_counts(vec![2, 3, 0, 4], 1)
    }

    #[test]
    fn prob_within_accumulates() {
        let c = sample();
        assert_eq!(c.trials(), 10);
        assert_eq!(c.prob_within(0).value(), 0.2);
        assert_eq!(c.prob_within(1).value(), 0.5);
        assert_eq!(c.prob_within(2).value(), 0.5);
        assert_eq!(c.prob_within(3).value(), 0.9);
        // Past the cap, the curve is flat at the last value.
        assert_eq!(c.prob_within(99).value(), 0.9);
    }

    #[test]
    fn censored_trials_lower_the_curve() {
        let c = sample();
        assert_eq!(c.censored(), 1);
        assert!(c.prob_within(c.max_round()).value() < 1.0);
    }

    #[test]
    fn mean_hit_time_ignores_censored() {
        let c = sample();
        // (0·2 + 1·3 + 3·4) / 9 = 15/9.
        assert!((c.mean_hit_time().unwrap() - 15.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let c = EmpiricalCdf::from_counts(vec![], 0);
        assert_eq!(c.prob_within(5), Prob::ZERO);
        assert_eq!(c.mean_hit_time(), None);
        assert_eq!(c.trials(), 0);
    }

    #[test]
    fn points_enumerate_curve() {
        let c = sample();
        let pts: Vec<(u32, f64)> = c.points().map(|(t, p)| (t, p.value())).collect();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], (0, 0.2));
        assert_eq!(pts[3], (3, 0.9));
    }

    #[test]
    fn ci_brackets_point_estimate() {
        let c = sample();
        let ci = c.prob_within_ci(1, pa_prob::stats::Z_95);
        assert!(ci.contains(c.prob_within(1)));
    }
}
