//! Monte-Carlo simulation substrate for the `timebounds` workspace.
//!
//! Statistical counterpart of the exact `pa-mdp` checker: systems implement
//! [`Simulable`] (one call = one time unit under a concrete embedded
//! adversary), and [`MonteCarlo`] runs deterministic, seed-reproducible,
//! thread-parallel batches of trials to estimate hitting probabilities
//! ([`MonteCarlo::hitting_prob_within`]), hitting-time distributions
//! ([`MonteCarlo::hitting_time_stats`]) and full probability-vs-time curves
//! ([`MonteCarlo::hitting_cdf`]).
//!
//! Estimates come with Wilson confidence intervals from `pa-prob`, and
//! experiments cross-validate them against the exact brackets computed by
//! `pa-mdp` (the simulated estimate must fall inside the exact bracket up
//! to CI slack).
//!
//! # Example
//!
//! ```
//! use pa_prob::rng::SplitMix64;
//! use pa_sim::{MonteCarlo, Simulable};
//! use rand::RngExt;
//!
//! /// A process that wins one fair coin flip per round.
//! struct Coin;
//!
//! impl Simulable for Coin {
//!     type State = bool;
//!     fn initial(&self, _rng: &mut SplitMix64) -> bool { false }
//!     fn step_round(&self, won: bool, rng: &mut SplitMix64) -> bool {
//!         won || rng.random_bool(0.5)
//!     }
//! }
//!
//! # fn main() -> Result<(), pa_sim::SimError> {
//! let mc = MonteCarlo::new(5_000, 42, 100);
//! let est = mc.hitting_prob_within(&Coin, |w| *w, 3)?;
//! let p = est.point().expect("trials ran").value();
//! assert!((p - 0.875).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod engine;
mod error;
mod monte_carlo;

pub use cdf::EmpiricalCdf;
pub use engine::{record_trace, rounds_to_hit, Simulable, Trace};
pub use error::SimError;
pub use monte_carlo::MonteCarlo;
