use std::error::Error;
use std::fmt;

/// Error type for simulation runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A run configuration asked for zero trials.
    NoTrials,
    /// A worker thread panicked; the panic payload is summarized.
    WorkerPanicked,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoTrials => write!(f, "simulation requires at least one trial"),
            SimError::WorkerPanicked => write!(f, "a simulation worker thread panicked"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!SimError::NoTrials.to_string().is_empty());
        assert!(!SimError::WorkerPanicked.to_string().is_empty());
    }
}
