use pa_prob::rng::SplitMix64;
use pa_prob::stats::{BernoulliEstimator, OnlineStats};

use crate::{rounds_to_hit, SimError, Simulable};

/// Configuration for a batch of Monte-Carlo trials.
///
/// Results are deterministic in `(seed, trials, max_rounds)` and bitwise
/// independent of the number of worker threads: trial `i` always runs on
/// the generator `SplitMix64::for_trial(seed, i)`, and [`run_fold`]
/// replays the outcomes into the accumulator in trial order no matter how
/// they were produced.
///
/// [`run_fold`]: MonteCarlo::run_fold
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Number of independent trials.
    pub trials: u64,
    /// Base seed; each trial derives its own stream.
    pub seed: u64,
    /// Censoring cap on rounds per trial.
    pub max_rounds: u32,
}

impl MonteCarlo {
    /// Creates a configuration.
    pub fn new(trials: u64, seed: u64, max_rounds: u32) -> MonteCarlo {
        MonteCarlo {
            trials,
            seed,
            max_rounds,
        }
    }

    fn worker_count(&self) -> u64 {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        hw.min(self.trials).max(1)
    }

    /// Runs the trials and reduces each trial's hit round (or censoring)
    /// into an accumulator, folding **in strictly increasing trial order**
    /// regardless of worker count: workers only *produce* outcomes (worker
    /// `w` owns the strided indices `w, w+W, …`), and the single fold runs
    /// on the main thread over trial index `0, 1, 2, …`. Floating-point
    /// accumulators (Welford means, etc.) therefore see the exact same
    /// operation sequence for every worker count — the result is bitwise
    /// identical, not merely statistically equivalent. The former
    /// worker-local fold + merge scheme made the accumulator value depend
    /// on how trials were partitioned.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoTrials`] for an empty batch and
    /// [`SimError::WorkerPanicked`] if a worker thread panics.
    pub fn run_fold<S, Acc>(
        &self,
        system: &S,
        pred: impl Fn(&S::State) -> bool + Sync,
        make_acc: impl FnOnce() -> Acc,
        mut fold: impl FnMut(&mut Acc, Option<u32>),
    ) -> Result<Acc, SimError>
    where
        S: Simulable + Sync,
    {
        if self.trials == 0 {
            return Err(SimError::NoTrials);
        }
        let _span = pa_telemetry::span("sim.mc.seconds");
        // Shared handles for the per-trial metrics; each worker records
        // directly into the atomics (no merge step needed).
        let tele = pa_telemetry::enabled().then(|| {
            (
                pa_telemetry::histogram("sim.mc.rounds_to_fire"),
                pa_telemetry::counter("sim.mc.censored"),
                pa_telemetry::counter("sim.mc.rng_draws"),
            )
        });
        let workers = self.worker_count();
        let lanes = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let pred = &pred;
                let tele = &tele;
                let cfg = *self;
                handles.push(scope.spawn(move |_| {
                    let mut outcomes = Vec::with_capacity((cfg.trials / workers + 1) as usize);
                    let mut draws = 0u64;
                    let mut i = w;
                    while i < cfg.trials {
                        let mut rng = SplitMix64::for_trial(cfg.seed, i);
                        let hit = rounds_to_hit(system, pred, cfg.max_rounds, &mut rng);
                        if let Some((rounds, censored, _)) = tele {
                            draws += rng.draws();
                            match hit {
                                Some(r) => rounds.record(u64::from(r)),
                                None => censored.inc(),
                            }
                        }
                        outcomes.push(hit);
                        i += workers;
                    }
                    if let Some((_, _, rng_draws)) = tele {
                        rng_draws.add(draws);
                    }
                    outcomes
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join())
                .collect::<Result<Vec<Vec<Option<u32>>>, _>>()
        })
        .map_err(|_| SimError::WorkerPanicked)?
        .map_err(|_| SimError::WorkerPanicked)?;

        if pa_telemetry::enabled() {
            pa_telemetry::counter("sim.mc.batches").inc();
            pa_telemetry::counter("sim.mc.trials").add(self.trials);
        }
        // Trial i sits in lane i % workers at position i / workers; walking
        // i upward replays the outcomes in canonical order.
        let mut acc = make_acc();
        for i in 0..self.trials {
            let outcome = lanes[(i % workers) as usize][(i / workers) as usize];
            fold(&mut acc, outcome);
        }
        Ok(acc)
    }

    /// Estimates `P[hit pred within `deadline` rounds]`.
    ///
    /// # Errors
    ///
    /// See [`MonteCarlo::run_fold`].
    pub fn hitting_prob_within<S>(
        &self,
        system: &S,
        pred: impl Fn(&S::State) -> bool + Sync,
        deadline: u32,
    ) -> Result<BernoulliEstimator, SimError>
    where
        S: Simulable + Sync,
    {
        self.run_fold(system, pred, BernoulliEstimator::new, |acc, hit| {
            acc.record(matches!(hit, Some(r) if r <= deadline))
        })
    }

    /// Estimates the distribution of the hitting time: summary statistics
    /// over the uncensored trials plus the number of censored trials.
    ///
    /// # Errors
    ///
    /// See [`MonteCarlo::run_fold`].
    pub fn hitting_time_stats<S>(
        &self,
        system: &S,
        pred: impl Fn(&S::State) -> bool + Sync,
    ) -> Result<(OnlineStats, u64), SimError>
    where
        S: Simulable + Sync,
    {
        self.run_fold(
            system,
            pred,
            || (OnlineStats::new(), 0u64),
            |acc, hit| match hit {
                Some(r) => acc.0.push(f64::from(r)),
                None => acc.1 += 1,
            },
        )
    }

    /// Estimates the full probability-vs-time curve: for each round
    /// `t = 0..=max_rounds`, the estimated `P[hit within t]`. One pass over
    /// the trials (each trial contributes its hit round once).
    ///
    /// # Errors
    ///
    /// See [`MonteCarlo::run_fold`].
    pub fn hitting_cdf<S>(
        &self,
        system: &S,
        pred: impl Fn(&S::State) -> bool + Sync,
    ) -> Result<crate::EmpiricalCdf, SimError>
    where
        S: Simulable + Sync,
    {
        let max = self.max_rounds;
        let (hits, censored) = self.run_fold(
            system,
            pred,
            || (vec![0u64; max as usize + 1], 0u64),
            |acc, hit| match hit {
                Some(r) => acc.0[r as usize] += 1,
                None => acc.1 += 1,
            },
        )?;
        Ok(crate::EmpiricalCdf::from_counts(hits, censored))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_prob::Prob;
    use rand::RngExt;

    /// One fair coin per round; hit = heads.
    struct CoinRace;

    impl Simulable for CoinRace {
        type State = bool;

        fn initial(&self, _rng: &mut SplitMix64) -> bool {
            false
        }

        fn step_round(&self, state: bool, rng: &mut SplitMix64) -> bool {
            state || rng.random_bool(0.5)
        }
    }

    #[test]
    fn hitting_prob_matches_geometric_law() {
        let mc = MonteCarlo::new(20_000, 42, 50);
        let est = mc.hitting_prob_within(&CoinRace, |s| *s, 3).unwrap();
        // P[hit within 3 rounds] = 1 - (1/2)^3 = 0.875.
        let ci = est.wilson_interval(pa_prob::stats::Z_99);
        assert!(ci.contains(Prob::new(0.875).unwrap()), "{ci}");
    }

    #[test]
    fn hitting_time_mean_matches_geometric_expectation() {
        let mc = MonteCarlo::new(20_000, 7, 200);
        let (stats, censored) = mc.hitting_time_stats(&CoinRace, |s| *s).unwrap();
        assert_eq!(censored, 0);
        assert!((stats.mean() - 2.0).abs() < 0.05, "{}", stats.mean());
    }

    #[test]
    fn results_are_deterministic_in_seed() {
        let mc = MonteCarlo::new(1000, 5, 50);
        let a = mc.hitting_prob_within(&CoinRace, |s| *s, 2).unwrap();
        let b = mc.hitting_prob_within(&CoinRace, |s| *s, 2).unwrap();
        assert_eq!(a, b);
        let mc2 = MonteCarlo::new(1000, 6, 50);
        let c = mc2.hitting_prob_within(&CoinRace, |s| *s, 2).unwrap();
        assert_ne!(a.successes(), c.successes());
    }

    #[test]
    fn zero_trials_is_an_error() {
        let mc = MonteCarlo::new(0, 1, 10);
        assert_eq!(
            mc.hitting_prob_within(&CoinRace, |s| *s, 2).unwrap_err(),
            SimError::NoTrials
        );
    }

    #[test]
    fn censoring_counts_trials_past_cap() {
        // Impossible predicate: everything censors.
        let mc = MonteCarlo::new(100, 1, 5);
        let (stats, censored) = mc.hitting_time_stats(&CoinRace, |_| false).unwrap();
        assert_eq!(censored, 100);
        assert_eq!(stats.count(), 0);
    }

    #[test]
    fn cdf_is_monotone_and_matches_law() {
        let mc = MonteCarlo::new(20_000, 11, 30);
        let cdf = mc.hitting_cdf(&CoinRace, |s| *s).unwrap();
        let mut last = 0.0;
        for t in 0..=30 {
            let p = cdf.prob_within(t).value();
            assert!(p >= last);
            last = p;
        }
        assert!((cdf.prob_within(1).value() - 0.5).abs() < 0.02);
        assert!((cdf.prob_within(3).value() - 0.875).abs() < 0.02);
    }
}
