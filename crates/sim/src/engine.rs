use pa_prob::rng::SplitMix64;

/// A system that can be simulated one *time unit* (round) at a time.
///
/// Implementors embed both the probabilistic dynamics (coin flips) and the
/// scheduling policy (a concrete adversary) — the simulator only drives
/// rounds and observes states. One round corresponds to one unit of the
/// paper's time: under the `Unit-Time` schema every ready process takes at
/// least one step per round.
pub trait Simulable {
    /// The observable system state.
    type State: Clone;

    /// Draws an initial state. Most systems are deterministic here; the
    /// RNG allows randomized initial conditions (e.g. random `uᵢ` values —
    /// the paper's start state leaves each `uᵢ` arbitrary).
    fn initial(&self, rng: &mut SplitMix64) -> Self::State;

    /// Advances the state by one time unit.
    fn step_round(&self, state: Self::State, rng: &mut SplitMix64) -> Self::State;
}

/// Runs one trial until `pred` holds or `max_rounds` elapse, returning the
/// number of rounds to the first hit (0 when the initial state already
/// satisfies `pred`) or `None` if censored at the cap.
pub fn rounds_to_hit<S: Simulable>(
    system: &S,
    pred: impl Fn(&S::State) -> bool,
    max_rounds: u32,
    rng: &mut SplitMix64,
) -> Option<u32> {
    let mut state = system.initial(rng);
    if pred(&state) {
        return Some(0);
    }
    for round in 1..=max_rounds {
        state = system.step_round(state, rng);
        if pred(&state) {
            return Some(round);
        }
    }
    None
}

/// A recorded trajectory: the states after each round, including the
/// initial state at index 0.
#[derive(Debug, Clone)]
pub struct Trace<S> {
    /// `states[k]` is the state after `k` rounds.
    pub states: Vec<S>,
}

impl<S> Trace<S> {
    /// Number of rounds simulated (states minus the initial one).
    pub fn rounds(&self) -> u32 {
        (self.states.len() - 1) as u32
    }

    /// The first round at which `pred` holds, if any.
    pub fn first_hit(&self, pred: impl FnMut(&S) -> bool) -> Option<u32> {
        self.states.iter().position(pred).map(|i| i as u32)
    }
}

/// Records a full trajectory of `rounds` rounds.
pub fn record_trace<S: Simulable>(
    system: &S,
    rounds: u32,
    rng: &mut SplitMix64,
) -> Trace<S::State> {
    let mut states = Vec::with_capacity(rounds as usize + 1);
    let mut state = system.initial(rng);
    states.push(state.clone());
    for _ in 0..rounds {
        state = system.step_round(state, rng);
        states.push(state.clone());
    }
    Trace { states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// A counter that increments by 1 or 2 per round, uniformly.
    struct Counter;

    impl Simulable for Counter {
        type State = u32;

        fn initial(&self, _rng: &mut SplitMix64) -> u32 {
            0
        }

        fn step_round(&self, state: u32, rng: &mut SplitMix64) -> u32 {
            state + if rng.random_bool(0.5) { 2 } else { 1 }
        }
    }

    #[test]
    fn rounds_to_hit_finds_threshold() {
        let mut rng = SplitMix64::new(1);
        let hit = rounds_to_hit(&Counter, |s| *s >= 10, 100, &mut rng).unwrap();
        assert!((5..=10).contains(&hit));
    }

    #[test]
    fn rounds_to_hit_checks_initial_state() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(rounds_to_hit(&Counter, |s| *s == 0, 100, &mut rng), Some(0));
    }

    #[test]
    fn rounds_to_hit_censors_at_cap() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(rounds_to_hit(&Counter, |s| *s >= 1000, 10, &mut rng), None);
    }

    #[test]
    fn trace_records_every_round() {
        let mut rng = SplitMix64::new(2);
        let trace = record_trace(&Counter, 7, &mut rng);
        assert_eq!(trace.rounds(), 7);
        assert_eq!(trace.states.len(), 8);
        assert_eq!(trace.states[0], 0);
        // Strictly increasing by 1 or 2 per round.
        for w in trace.states.windows(2) {
            assert!(w[1] - w[0] >= 1 && w[1] - w[0] <= 2);
        }
    }

    #[test]
    fn first_hit_matches_threshold_crossing() {
        let mut rng = SplitMix64::new(3);
        let trace = record_trace(&Counter, 50, &mut rng);
        let hit = trace.first_hit(|s| *s >= 10).unwrap();
        assert!(trace.states[hit as usize] >= 10);
        assert!(trace.states[hit as usize - 1] < 10);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let t1 = record_trace(&Counter, 20, &mut SplitMix64::new(9));
        let t2 = record_trace(&Counter, 20, &mut SplitMix64::new(9));
        assert_eq!(t1.states, t2.states);
    }
}
