//! Property-based tests for the Monte-Carlo substrate.

use pa_prob::rng::SplitMix64;
use pa_sim::{EmpiricalCdf, MonteCarlo, Simulable};
use proptest::prelude::*;
use rand::RngExt;

/// A biased-coin system parameterized by the success probability (in
/// 1/256ths, so it is `Copy` and hashable for proptest).
#[derive(Clone, Copy)]
struct Biased(u8);

impl Simulable for Biased {
    type State = bool;

    fn initial(&self, _rng: &mut SplitMix64) -> bool {
        false
    }

    fn step_round(&self, state: bool, rng: &mut SplitMix64) -> bool {
        state || rng.random_range(0u32..256) < u32::from(self.0)
    }
}

proptest! {
    #[test]
    fn estimates_are_deterministic_in_configuration(
        p in 1u8..=255, trials in 1u64..500, seed in any::<u64>(), deadline in 0u32..20,
    ) {
        let mc = MonteCarlo::new(trials, seed, 50);
        let a = mc.hitting_prob_within(&Biased(p), |s| *s, deadline).unwrap();
        let b = mc.hitting_prob_within(&Biased(p), |s| *s, deadline).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cdf_is_monotone_and_bounded(p in 1u8..=255, seed in any::<u64>()) {
        let mc = MonteCarlo::new(500, seed, 30);
        let cdf = mc.hitting_cdf(&Biased(p), |s| *s).unwrap();
        let mut last = 0.0;
        for t in 0..=30 {
            let v = cdf.prob_within(t).value();
            prop_assert!(v >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&v));
            last = v;
        }
        prop_assert_eq!(cdf.trials(), 500);
    }

    #[test]
    fn cdf_counts_partition_trials(hits in prop::collection::vec(0u64..50, 1..10), censored in 0u64..50) {
        let total: u64 = hits.iter().sum::<u64>() + censored;
        let cdf = EmpiricalCdf::from_counts(hits.clone(), censored);
        prop_assert_eq!(cdf.trials(), total);
        prop_assert_eq!(cdf.censored(), censored);
        if total > 0 {
            let final_p = cdf.prob_within(cdf.max_round()).value();
            let expected = (total - censored) as f64 / total as f64;
            prop_assert!((final_p - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_and_cdf_agree_on_mean(p in 32u8..=255, seed in any::<u64>()) {
        let mc = MonteCarlo::new(400, seed, 200);
        let (stats, censored) = mc.hitting_time_stats(&Biased(p), |s| *s).unwrap();
        let cdf = mc.hitting_cdf(&Biased(p), |s| *s).unwrap();
        prop_assert_eq!(censored, cdf.censored());
        if stats.count() > 0 {
            prop_assert!((stats.mean() - cdf.mean_hit_time().unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_success_probability_hits_no_later_stochastically(seed in any::<u64>()) {
        let mc = MonteCarlo::new(2_000, seed, 100);
        let lo = mc.hitting_prob_within(&Biased(32), |s| *s, 3).unwrap();
        let hi = mc.hitting_prob_within(&Biased(224), |s| *s, 3).unwrap();
        // 7/8 per round vs 1/8 per round: a large gap that survives noise.
        prop_assert!(hi.point().unwrap().value() > lo.point().unwrap().value());
    }
}
