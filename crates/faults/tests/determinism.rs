//! Regression tests for the two structural guarantees the fault subsystem
//! rests on:
//!
//! 1. **Seed determinism** — compiling the same [`FaultModel`] seed twice
//!    yields the same plan, bitwise-identical explored models, and
//!    bitwise-identical survival maps.
//! 2. **Zero-fault identity** — wrapping in [`FaultPlan::none`] changes
//!    nothing: step enumeration, explored [`pa_mdp::ExplicitMdp`], checker
//!    verdicts, and `Query` values are all bitwise equal to the
//!    fault-free pipeline's.

use pa_core::Automaton;
use pa_faults::{
    check_arrow_under, faulty_round_cost, survival_map, FaultModel, FaultPlan, FaultyRoundMdp,
};
use pa_lehmann_rabin::{check_arrow_with_limit, paper, round_cost, RoundConfig, RoundMdp};
use pa_mdp::{Explore, Objective};
use serde::Serialize;

const LIMIT: usize = 5_000_000;

fn model() -> FaultModel {
    FaultModel {
        seed: 2026,
        horizon: 6,
        crash_rate: 0.15,
        restart_downtime: Some(2),
        drop_rate: 0.1,
    }
}

/// Same seed, same ring: the compiled plan, the explored model, and the
/// analysis must be reproducible bit for bit.
#[test]
fn same_seed_twice_is_bitwise_identical() {
    let plan_a = model().compile(3).unwrap();
    let plan_b = model().compile(3).unwrap();
    assert_eq!(plan_a, plan_b);

    let cfg = RoundConfig::new(3).unwrap();
    let ma = FaultyRoundMdp::new(cfg, plan_a.clone()).unwrap();
    let mb = FaultyRoundMdp::new(cfg, plan_b).unwrap();
    let ea = Explore::new(&ma)
        .cost(faulty_round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    let eb = Explore::new(&mb)
        .cost(faulty_round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    assert_eq!(ea.states(), eb.states());
    assert_eq!(ea.mdp.initial_states(), eb.mdp.initial_states());
    assert_eq!(ea.mdp.num_states(), eb.mdp.num_states());
    for s in 0..ea.mdp.num_states() {
        assert_eq!(ea.mdp.choices(s), eb.mdp.choices(s), "state {s}");
    }
}

/// The full survival map is deterministic: two independent runs render to
/// the identical JSON document.
#[test]
fn survival_map_is_bitwise_reproducible() {
    let a = survival_map(3, LIMIT).unwrap();
    let b = survival_map(3, LIMIT).unwrap();
    assert_eq!(a.to_json(), b.to_json());
}

/// `FaultPlan::none()` is a strict identity on the explored model: same
/// state count, same initial states, same choices, choice for choice.
#[test]
fn zero_fault_wrapping_explores_the_identical_mdp() {
    let cfg = RoundConfig::new(3).unwrap();
    let plain = RoundMdp::new(cfg);
    let wrapped = FaultyRoundMdp::new(cfg, FaultPlan::none()).unwrap();

    let ep = Explore::new(&plain)
        .cost(round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    let ew = Explore::new(&wrapped)
        .cost(faulty_round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    assert_eq!(ep.mdp.num_states(), ew.mdp.num_states());
    assert_eq!(ep.mdp.initial_states(), ew.mdp.initial_states());
    for s in 0..ep.mdp.num_states() {
        assert_eq!(ep.mdp.choices(s), ew.mdp.choices(s), "state {s}");
        assert_eq!(ep.states()[s], ew.states()[s].inner, "state {s}");
    }
}

/// Zero-fault `Query` values are bitwise equal between the plain and the
/// wrapped pipeline, not just within tolerance.
#[test]
fn zero_fault_query_values_are_bitwise_unchanged() {
    let cfg = RoundConfig::new(3).unwrap();
    let plain = RoundMdp::new(cfg);
    let ep = Explore::new(&plain)
        .cost(round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    let wrapped = FaultyRoundMdp::new(cfg, FaultPlan::none()).unwrap();
    let ew = Explore::new(&wrapped)
        .cost(faulty_round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    let tp = ep.target_where(|rs| pa_lehmann_rabin::regions::in_c(&rs.config));
    let tw = ew.target_where(|s| pa_lehmann_rabin::regions::in_c(&s.inner.config));
    assert_eq!(tp, tw);
    let vp = ep
        .query()
        .objective(Objective::MinProb)
        .target(tp)
        .horizon(12)
        .run()
        .unwrap()
        .values;
    let vw = ew
        .query()
        .objective(Objective::MinProb)
        .target(tw)
        .horizon(12)
        .run()
        .unwrap()
        .values;
    assert_eq!(vp.len(), vw.len());
    for (i, (a, b)) in vp.iter().zip(&vw).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "state {i}");
    }
}

/// Checker verdicts under the empty plan equal the fault-free
/// `check_arrow` results bitwise, for every paper arrow.
#[test]
fn zero_fault_checker_verdicts_are_bitwise_unchanged() {
    let cfg = RoundConfig::new(3).unwrap();
    let mdp = RoundMdp::new(cfg);
    for (arrow, why) in paper::all_arrows() {
        let plain = check_arrow_with_limit(&mdp, &arrow, LIMIT).unwrap();
        let wrapped = check_arrow_under(cfg, &arrow, &FaultPlan::none(), LIMIT).unwrap();
        assert_eq!(
            plain.measured.lo().value().to_bits(),
            wrapped.measured.lo().value().to_bits(),
            "{arrow} ({why})"
        );
        assert_eq!(plain.states_checked, wrapped.states_checked, "{arrow}");
        assert_eq!(plain.holds(), wrapped.holds(), "{arrow}");
    }
}

/// The wrapped automaton enumerates the identical step structure state by
/// state under the empty plan (the stronger, local form of the identity).
#[test]
fn zero_fault_step_enumeration_matches_locally() {
    let cfg = RoundConfig::new(3).unwrap();
    let plain = RoundMdp::new(cfg);
    let wrapped = FaultyRoundMdp::new(cfg, FaultPlan::none()).unwrap();
    let ew = Explore::new(&wrapped)
        .cost(faulty_round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    for ws in ew.states().iter().take(500) {
        let ps = plain.steps(&ws.inner);
        let wsteps = wrapped.steps(ws);
        assert_eq!(ps.len(), wsteps.len());
        for (p, w) in ps.iter().zip(&wsteps) {
            assert_eq!(p.action, w.action);
        }
    }
}
