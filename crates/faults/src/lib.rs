//! Deterministic fault injection for the timebounds workspace: which of
//! the paper's claims survive crashes?
//!
//! Lynch–Saias–Segala prove `U —t→_p U'` statements assuming every ready
//! process steps within one time unit (`Unit-Time`) and nobody fails. This
//! crate weakens that assumption three ways and re-runs the exact checker
//! under each:
//!
//! * [`FaultKind::CrashStop`] — a process halts forever, keeping its
//!   forks;
//! * [`FaultKind::CrashRestart`] — a process halts and resumes after a
//!   configurable downtime (in round/patient-time units);
//! * [`FaultKind::DropObligation`] — the scheduler skips a process's
//!   `Unit-Time` obligation for one round (a transient envelope
//!   violation).
//!
//! Faults are expressed as a scripted [`FaultPlan`] or compiled from a
//! rate-based, seeded [`FaultModel`]; both are fully deterministic, so
//! every analysis is replayable bit for bit. The plan is lowered into the
//! ordinary MDP pipeline by [`FaultyRoundMdp`] (crashed processes lose
//! their choices; dead states become tagged absorbing self-loops — see
//! [`FaultyRoundMdp::crash_tags`] and [`pa_mdp::tagged_absorbing_violations`]),
//! and onto the fragment-level checker by [`faulty_adversary`] (the core
//! [`pa_core::FaultFilter`] driven by the plan and the patient clock).
//!
//! The headline artifact is the claim [`survival_map`]: every paper arrow
//! re-evaluated under a grid of fault configurations and classified as
//! [`Survival::Holds`], [`Survival::Degraded`], or [`Survival::Fails`] —
//! with the zero-fault column bitwise equal to the fault-free
//! [`pa_lehmann_rabin::check_arrow`] results (wrapping in
//! [`FaultPlan::none`] is a strict identity).
//!
//! # Example
//!
//! ```no_run
//! use pa_faults::{survival_map, Survival};
//!
//! # fn main() -> Result<(), pa_faults::FaultError> {
//! let map = survival_map(3, 5_000_000)?;
//! for row in &map.rows {
//!     let no_fault = &row.cells[0];
//!     assert_eq!(no_fault.survival, Survival::Holds);
//!     println!("{}: {:?}", row.arrow, row.cells.last().unwrap().survival);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod error;
mod model;
mod packed;
mod plan;
mod round;
mod sampling;
mod survival;

pub use adversary::{faulty_adversary, round_of_time};
pub use error::FaultError;
pub use model::FaultModel;
pub use packed::{FaultyStateCodec, MAX_PACKED_ROUND};
pub use plan::{FaultEvent, FaultKind, FaultPlan, MAX_DOWNTIME};
pub use round::{faulty_round_cost, FaultyRoundMdp, FaultyRoundState, STOPPED, TAG_CRASH};
pub use sampling::{
    estimate_reach_uniform, estimate_reach_uniform_from, exact_reach_uniform, sampled_arrow_under,
    trying_start, SampledArrow,
};
pub use survival::{
    check_arrow_under, check_arrow_under_quotient, classify, default_grid, region_pred_under,
    set_pred_under, survival_map, survival_map_hybrid, survival_map_hybrid_with_grid,
    survival_map_with_grid, HybridSurvivalMap, HybridSurvivalRow, SampledSurvivalCell, Survival,
    SurvivalCell, SurvivalMap, SurvivalRow, DEFAULT_STATE_LIMIT,
};
