//! Claim survival maps: re-evaluate every paper arrow `U —t→_p U'` under
//! a grid of fault configurations and classify each combination as
//! [`Survival::Holds`] (the claimed probability still holds),
//! [`Survival::Degraded`] (some weaker positive probability survives), or
//! [`Survival::Fails`] (an adversary can drive the probability to zero).
//!
//! The zero-fault column is computed through the *same* wrapped pipeline
//! with [`FaultPlan::none`], which is a strict identity — so it is bitwise
//! equal to the fault-free [`pa_lehmann_rabin::check_arrow`] results, a
//! property the regression tests pin down.

use pa_core::{Arrow, ArrowCheck, SetExpr};
use pa_lehmann_rabin::{
    paper, reachable_configs, reachable_configs_quotient, regions, time_to_budget, Config,
    RoundConfig,
};
use pa_mdp::{Explore, Explored, Objective, PackedSpace, RingRotation, StateSpace};
use pa_prob::{Prob, ProbInterval};
use serde::Serialize;

use crate::{
    faulty_round_cost, FaultError, FaultKind, FaultPlan, FaultyRoundMdp, FaultyRoundState,
    FaultyStateCodec,
};

/// Default cap on explored states for survival analyses, matching
/// [`pa_lehmann_rabin::DEFAULT_STATE_LIMIT`].
pub const DEFAULT_STATE_LIMIT: usize = pa_lehmann_rabin::DEFAULT_STATE_LIMIT;

/// How an arrow claim fares under a fault configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Survival {
    /// The claimed probability bound still holds.
    Holds,
    /// The claim fails at its stated probability, but a positive
    /// probability of success survives under every adversary.
    Degraded,
    /// Some adversary reduces the success probability to zero.
    Fails,
}

/// One cell of a survival map: an arrow under one fault configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SurvivalCell {
    /// Name of the fault configuration (a column of the map).
    pub fault: String,
    /// The classification.
    pub survival: Survival,
    /// The measured worst-case probability of the arrow's claim.
    pub measured: f64,
}

/// One row of a survival map: an arrow across all fault configurations.
#[derive(Debug, Clone, Serialize)]
pub struct SurvivalRow {
    /// The arrow, rendered (`U —t→_p U'`).
    pub arrow: String,
    /// The claimed probability, for reference.
    pub claimed: f64,
    /// Cells, in grid column order.
    pub cells: Vec<SurvivalCell>,
}

/// The claim survival map of a ring: the five paper arrows re-evaluated
/// under a grid of fault configurations.
#[derive(Debug, Clone, Serialize)]
pub struct SurvivalMap {
    /// Ring size.
    pub n: usize,
    /// Column names, in order (the first is always the zero-fault column).
    pub faults: Vec<String>,
    /// One row per paper arrow, in chain order.
    pub rows: Vec<SurvivalRow>,
}

impl SurvivalMap {
    /// Looks up a cell by arrow rendering and fault name.
    pub fn cell(&self, arrow: &str, fault: &str) -> Option<&SurvivalCell> {
        self.rows
            .iter()
            .find(|r| r.arrow == arrow)?
            .cells
            .iter()
            .find(|c| c.fault == fault)
    }
}

/// Classifies a measured worst-case probability against a claimed bound.
pub fn classify(measured: f64, claimed: f64) -> Survival {
    if measured >= claimed - 1e-12 {
        Survival::Holds
    } else if measured > 1e-12 {
        Survival::Degraded
    } else {
        Survival::Fails
    }
}

/// Resolves a region atom to its fault-aware predicate (the `_under`
/// family, which requires progress witnesses to be live).
///
/// # Errors
///
/// [`pa_lehmann_rabin::LrError::UnknownRegion`] for unknown atoms.
pub fn region_pred_under(atom: &str) -> Result<fn(&Config, u32) -> bool, FaultError> {
    match atom {
        "T" => Ok(regions::in_t_under),
        "C" => Ok(regions::in_c_under),
        "RT" => Ok(regions::in_rt_under),
        "F" => Ok(regions::in_f_under),
        "G" => Ok(regions::in_g_under),
        "P" => Ok(regions::in_p_under),
        other => Err(FaultError::Lr(pa_lehmann_rabin::LrError::UnknownRegion(
            other.to_string(),
        ))),
    }
}

/// Resolves a [`SetExpr`] to a fault-aware union predicate.
///
/// # Errors
///
/// Same as [`region_pred_under`].
pub fn set_pred_under(
    set: &SetExpr,
) -> Result<impl Fn(&Config, u32) -> bool + Send + Sync, FaultError> {
    let preds: Vec<fn(&Config, u32) -> bool> = set
        .atoms()
        .map(region_pred_under)
        .collect::<Result<_, _>>()?;
    Ok(move |c: &Config, crashed: u32| preds.iter().any(|p| p(c, crashed)))
}

/// Exactly checks an arrow claim on the fault-wrapped round model: for
/// every reachable configuration in `U` (judged under the faults already
/// struck at round 1), the minimal probability over all round adversaries
/// of reaching `U'` — membership judged under the faults in force on
/// arrival — within time `t` must be at least `p`.
///
/// Mirrors [`pa_lehmann_rabin::check_arrow_with_limit`]; with
/// [`FaultPlan::none`] the result is bitwise identical to it.
///
/// # Errors
///
/// Region, plan-validation, exploration, and analysis errors.
pub fn check_arrow_under(
    cfg: RoundConfig,
    arrow: &Arrow,
    plan: &FaultPlan,
    limit: usize,
) -> Result<ArrowCheck, FaultError> {
    check_arrow_under_impl(cfg, arrow, plan, limit, false)
}

/// [`check_arrow_under`] on the rotation-quotient model with bit-packed
/// states ([`FaultyStateCodec`]): starts are orbit representatives
/// (`states_checked` counts orbits) and successors canonicalize during
/// exploration. This is what holds the zero-fault column of large-`n`
/// survival maps inside memory.
///
/// # Errors
///
/// [`FaultError::SymmetryBroken`] unless `plan` is empty — scripted fault
/// events name specific processes, and rotation is only an automorphism of
/// the fault-free model. Otherwise as [`check_arrow_under`].
pub fn check_arrow_under_quotient(
    cfg: RoundConfig,
    arrow: &Arrow,
    plan: &FaultPlan,
    limit: usize,
) -> Result<ArrowCheck, FaultError> {
    if !plan.is_empty() {
        return Err(FaultError::SymmetryBroken);
    }
    check_arrow_under_impl(cfg, arrow, plan, limit, true)
}

fn check_arrow_under_impl(
    cfg: RoundConfig,
    arrow: &Arrow,
    plan: &FaultPlan,
    limit: usize,
    quotient: bool,
) -> Result<ArrowCheck, FaultError> {
    let Some((model, states_checked)) = arrow_model_impl(cfg, arrow, plan, limit, quotient)? else {
        return Ok(ArrowCheck {
            arrow: arrow.clone(),
            measured: ProbInterval::exact(Prob::ONE),
            worst_state: None,
            states_checked: 0,
        });
    };
    let to = set_pred_under(arrow.to())?;
    let n = cfg.n;
    let budget = time_to_budget(arrow.time());
    if quotient {
        let space = PackedSpace::new(FaultyStateCodec::new(n, model.round_cap())?);
        let explored = Explore::new(&model)
            .cost(faulty_round_cost)
            .limit(limit)
            .parallel()
            .symmetry(RingRotation::new(n))
            .run_in(space)?;
        finish_arrow_under(&explored, &to, n, budget, arrow, states_checked)
    } else {
        let explored = Explore::new(&model)
            .cost(faulty_round_cost)
            .limit(limit)
            .parallel()
            .run()?;
        finish_arrow_under(&explored, &to, n, budget, arrow, states_checked)
    }
}

/// The solver tail shared by the full-space and quotient fault checks.
fn finish_arrow_under<SP: StateSpace<FaultyRoundState>>(
    explored: &Explored<FaultyRoundState, SP>,
    to: &impl Fn(&Config, u32) -> bool,
    n: usize,
    budget: u32,
    arrow: &Arrow,
    states_checked: usize,
) -> Result<ArrowCheck, FaultError> {
    let target = explored.target_where(|s| to(&s.inner.config, s.crashed_mask(n)));
    let values = explored
        .query()
        .objective(Objective::MinProb)
        .target(target)
        .horizon(budget)
        .run()?
        .values;
    let mut worst = f64::INFINITY;
    let mut worst_state = None;
    for &i in explored.mdp.initial_states() {
        if values[i] < worst {
            worst = values[i];
            worst_state = Some(explored.state(i).to_string());
        }
    }
    Ok(ArrowCheck {
        arrow: arrow.clone(),
        measured: ProbInterval::exact(Prob::clamped(worst)),
        worst_state,
        states_checked,
    })
}

/// The crash mask already in force when the clock starts: round-1 events
/// strike before any process moves, so membership of the start states in
/// the arrow's source region is judged under it.
pub(crate) fn start_crash_mask(plan: &FaultPlan) -> u32 {
    plan.events_at(1)
        .iter()
        .filter(|e| !matches!(e.kind, FaultKind::DropObligation))
        .fold(0u32, |m, e| m | (1 << e.process))
}

/// Builds the fault-wrapped arrow model both the exact and the sampled
/// checkers run on: the reachable configurations of the arrow's source
/// region (judged under the round-1 crash mask) as starts, with the target
/// region absorbing. Returns `None` when the source region is empty —
/// the arrow is then vacuously true and there is nothing to analyze.
pub(crate) fn arrow_model(
    cfg: RoundConfig,
    arrow: &Arrow,
    plan: &FaultPlan,
    limit: usize,
) -> Result<Option<(FaultyRoundMdp, usize)>, FaultError> {
    arrow_model_impl(cfg, arrow, plan, limit, false)
}

pub(crate) fn arrow_model_impl(
    cfg: RoundConfig,
    arrow: &Arrow,
    plan: &FaultPlan,
    limit: usize,
    quotient: bool,
) -> Result<Option<(FaultyRoundMdp, usize)>, FaultError> {
    let from = set_pred_under(arrow.from())?;
    let n = cfg.n;
    let mask0 = start_crash_mask(plan);
    let reachable = if quotient {
        reachable_configs_quotient(n, limit)?
    } else {
        reachable_configs(n, limit)?
    };
    let starts: Vec<Config> = reachable.into_iter().filter(|c| from(c, mask0)).collect();
    if starts.is_empty() {
        return Ok(None);
    }
    let states_checked = starts.len();
    let to_for_absorb = set_pred_under(arrow.to())?;
    let model = FaultyRoundMdp::new(cfg, plan.clone())?
        .with_starts(starts)
        .with_absorb(move |s| to_for_absorb(&s.inner.config, s.crashed_mask(n)));
    Ok(Some((model, states_checked)))
}

/// The default fault grid: the zero-fault identity column plus one
/// representative of each fault kind, all striking process 0 at the start
/// of round 2 (late enough that round 1 behaves normally, early enough to
/// disturb every arrow's window).
pub fn default_grid() -> Vec<(String, FaultPlan)> {
    vec![
        ("none".to_string(), FaultPlan::none()),
        (
            "crash-stop r2 p0".to_string(),
            FaultPlan::single(2, 0, FaultKind::CrashStop).expect("valid scripted event"),
        ),
        (
            "crash-restart r2 p0 d2".to_string(),
            FaultPlan::single(2, 0, FaultKind::CrashRestart { downtime: 2 })
                .expect("valid scripted event"),
        ),
        (
            "drop r2 p0".to_string(),
            FaultPlan::single(2, 0, FaultKind::DropObligation).expect("valid scripted event"),
        ),
    ]
}

/// Builds the claim survival map of a ring of `n`: every paper arrow
/// under every configuration of [`default_grid`].
///
/// # Errors
///
/// Propagates [`check_arrow_under`] errors.
pub fn survival_map(n: usize, limit: usize) -> Result<SurvivalMap, FaultError> {
    survival_map_with_grid(n, limit, &default_grid())
}

/// [`survival_map`] over an explicit fault grid.
///
/// # Errors
///
/// Propagates [`check_arrow_under`] errors.
pub fn survival_map_with_grid(
    n: usize,
    limit: usize,
    grid: &[(String, FaultPlan)],
) -> Result<SurvivalMap, FaultError> {
    let cfg = RoundConfig::new(n)?;
    let mut rows = Vec::new();
    for (arrow, _why) in paper::all_arrows() {
        let claimed = arrow.prob().value();
        let mut cells = Vec::new();
        for (name, plan) in grid {
            let check = check_arrow_under(cfg, &arrow, plan, limit)?;
            let measured = check.measured.lo().value();
            cells.push(SurvivalCell {
                fault: name.clone(),
                survival: classify(measured, claimed),
                measured,
            });
        }
        rows.push(SurvivalRow {
            arrow: arrow.to_string(),
            claimed,
            cells,
        });
    }
    Ok(SurvivalMap {
        n,
        faults: grid.iter().map(|(name, _)| name.clone()).collect(),
        rows,
    })
}

/// One sampled cell of a [`HybridSurvivalMap`]: the uniform-adversary
/// success probability from the canonical (lexicographically least
/// reachable) source configuration, with its 99% Wilson interval. This is
/// an *estimate of a proxy* — the uniform adversary, not the worst case —
/// because scripted faults break rotation symmetry, putting the faulted
/// columns beyond the quotient-exact engine at large `n`.
#[derive(Debug, Clone, Serialize)]
pub struct SampledSurvivalCell {
    /// Name of the fault configuration.
    pub fault: String,
    /// Classification of the point estimate against the claimed bound.
    pub survival: Survival,
    /// The point estimate.
    pub estimate: f64,
    /// Lower end of the 99% Wilson interval.
    pub lo: f64,
    /// Upper end of the 99% Wilson interval.
    pub hi: f64,
    /// Trajectories sampled (0 for a vacuous cell).
    pub trials: u64,
}

/// One row of a hybrid survival map: the exact quotient zero-fault cell
/// plus sampled faulted cells.
#[derive(Debug, Clone, Serialize)]
pub struct HybridSurvivalRow {
    /// The arrow, rendered (`U —t→_p U'`).
    pub arrow: String,
    /// The claimed probability.
    pub claimed: f64,
    /// The zero-fault cell, exact on the rotation quotient.
    pub exact: SurvivalCell,
    /// Sampled cells for the faulted grid columns.
    pub sampled: Vec<SampledSurvivalCell>,
}

/// The survival map for rings beyond the full-space engine's reach: the
/// zero-fault column is exact on the rotation-quotient model
/// ([`check_arrow_under_quotient`]), and faulted columns are Monte-Carlo
/// sampled ([`crate::estimate_reach_uniform_from`]).
#[derive(Debug, Clone, Serialize)]
pub struct HybridSurvivalMap {
    /// Ring size.
    pub n: usize,
    /// Column names, in order (the first is the exact zero-fault column).
    pub faults: Vec<String>,
    /// One row per paper arrow, in chain order.
    pub rows: Vec<HybridSurvivalRow>,
}

/// Builds the hybrid survival map of a ring of `n` over [`default_grid`].
///
/// # Errors
///
/// Propagates [`check_arrow_under_quotient`] and sampling errors.
pub fn survival_map_hybrid(
    n: usize,
    limit: usize,
    mc: &pa_mc::McConfig,
) -> Result<HybridSurvivalMap, FaultError> {
    survival_map_hybrid_with_grid(n, limit, &default_grid(), mc)
}

/// [`survival_map_hybrid`] over an explicit fault grid whose first column
/// must be the zero-fault identity.
///
/// # Errors
///
/// As [`survival_map_hybrid`]; [`FaultError::SymmetryBroken`] if the
/// grid's first column is not fault-free.
pub fn survival_map_hybrid_with_grid(
    n: usize,
    limit: usize,
    grid: &[(String, FaultPlan)],
    mc: &pa_mc::McConfig,
) -> Result<HybridSurvivalMap, FaultError> {
    let cfg = RoundConfig::new(n)?;
    let (zero_name, zero_plan) = grid.first().ok_or(FaultError::SymmetryBroken)?;
    if !zero_plan.is_empty() {
        return Err(FaultError::SymmetryBroken);
    }
    // One quotient sweep of the protocol serves every sampled column.
    let reps = reachable_configs_quotient(n, limit)?;
    let mut rows = Vec::new();
    for (arrow, _why) in paper::all_arrows() {
        let claimed = arrow.prob().value();
        let check = check_arrow_under_quotient(cfg, &arrow, zero_plan, limit)?;
        let measured = check.measured.lo().value();
        let exact = SurvivalCell {
            fault: zero_name.clone(),
            survival: classify(measured, claimed),
            measured,
        };
        let mut sampled = Vec::new();
        for (name, plan) in &grid[1..] {
            let from = set_pred_under(arrow.from())?;
            let mask0 = start_crash_mask(plan);
            let start = reps.iter().filter(|c| from(c, mask0)).min().cloned();
            let cell = match start {
                // Empty source region: the claim is vacuous.
                None => SampledSurvivalCell {
                    fault: name.clone(),
                    survival: Survival::Holds,
                    estimate: 1.0,
                    lo: 1.0,
                    hi: 1.0,
                    trials: 0,
                },
                Some(start) => {
                    let est = crate::estimate_reach_uniform_from(
                        n,
                        plan,
                        start,
                        arrow.to(),
                        time_to_budget(arrow.time()),
                        mc,
                    )?;
                    let interval = est.interval(pa_prob::stats::Z_99);
                    SampledSurvivalCell {
                        fault: name.clone(),
                        survival: classify(est.point(), claimed),
                        estimate: est.point(),
                        lo: interval.lo().value(),
                        hi: interval.hi().value(),
                        trials: est.trials(),
                    }
                }
            };
            sampled.push(cell);
        }
        rows.push(HybridSurvivalRow {
            arrow: arrow.to_string(),
            claimed,
            exact,
            sampled,
        });
    }
    Ok(HybridSurvivalMap {
        n,
        faults: grid.iter().map(|(name, _)| name.clone()).collect(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_brackets_the_three_outcomes() {
        assert_eq!(classify(0.5, 0.5), Survival::Holds);
        assert_eq!(classify(0.5 + 1e-15, 0.5), Survival::Holds);
        assert_eq!(classify(0.25, 0.5), Survival::Degraded);
        assert_eq!(classify(0.0, 0.5), Survival::Fails);
    }

    #[test]
    fn region_resolver_knows_all_atoms() {
        for atom in ["T", "C", "RT", "F", "G", "P"] {
            assert!(region_pred_under(atom).is_ok());
        }
        assert!(region_pred_under("X").is_err());
    }

    #[test]
    fn quotient_zero_fault_check_matches_full_space_bitwise() {
        let cfg = RoundConfig::new(3).unwrap();
        for (arrow, _why) in paper::all_arrows() {
            let full = check_arrow_under(cfg, &arrow, &FaultPlan::none(), 1_000_000).unwrap();
            let quot =
                check_arrow_under_quotient(cfg, &arrow, &FaultPlan::none(), 1_000_000).unwrap();
            assert_eq!(full.measured.lo(), quot.measured.lo(), "{arrow}");
            assert!(quot.states_checked <= full.states_checked);
            assert!(quot.states_checked > 0);
        }
    }

    #[test]
    fn quotient_rejects_nonempty_plans() {
        let cfg = RoundConfig::new(3).unwrap();
        let plan = FaultPlan::single(2, 0, FaultKind::CrashStop).unwrap();
        assert!(matches!(
            check_arrow_under_quotient(cfg, &paper::arrow_p_to_c(), &plan, 1_000_000),
            Err(FaultError::SymmetryBroken)
        ));
    }

    #[test]
    fn hybrid_map_exact_column_matches_the_exact_map_at_n3() {
        let exact_map = survival_map(3, 1_000_000).unwrap();
        let hybrid = survival_map_hybrid(3, 1_000_000, &pa_mc::McConfig::new(400, 9, 0)).unwrap();
        assert_eq!(hybrid.faults, exact_map.faults);
        for (row_h, row_e) in hybrid.rows.iter().zip(&exact_map.rows) {
            assert_eq!(row_h.arrow, row_e.arrow);
            // Quotient-exact zero-fault cell equals the full-space cell.
            assert_eq!(row_h.exact.measured, row_e.cells[0].measured);
            assert_eq!(row_h.exact.survival, Survival::Holds);
            assert_eq!(row_h.sampled.len(), exact_map.faults.len() - 1);
            for cell in &row_h.sampled {
                assert!(cell.lo <= cell.estimate && cell.estimate <= cell.hi);
            }
        }
    }

    #[test]
    fn default_grid_leads_with_the_identity_column() {
        let grid = default_grid();
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].0, "none");
        assert!(grid[0].1.is_empty());
        let kinds: Vec<FaultKind> = grid[1..].iter().map(|(_, p)| p.events()[0].kind).collect();
        assert!(kinds.contains(&FaultKind::CrashStop));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, FaultKind::CrashRestart { .. })));
        assert!(kinds.contains(&FaultKind::DropObligation));
    }
}
