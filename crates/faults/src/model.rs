//! Rate-based fault models: [`FaultModel`] compiles a seeded random fault
//! process into a concrete [`FaultPlan`].
//!
//! Compilation is a pure function of `(model, n)`: each `(round, process)`
//! cell draws from its own [`SplitMix64`] stream derived by
//! [`SplitMix64::for_trial`], in a fixed draw order (crash before drop).
//! Re-compiling with the same seed therefore yields the identical plan —
//! and hence bitwise-identical explored models and survival maps — no
//! matter how many cells other code has drawn in between.

use pa_prob::rng::SplitMix64;
use rand::RngExt;
use serde::Serialize;

use crate::{FaultError, FaultEvent, FaultKind, FaultPlan, MAX_DOWNTIME};

/// A seeded, rate-based fault process over a bounded horizon of rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Master seed; every `(round, process)` cell derives its own stream.
    pub seed: u64,
    /// Faults are drawn for rounds `1..=horizon`.
    pub horizon: u32,
    /// Per-round, per-process probability of a crash.
    pub crash_rate: f64,
    /// `None` makes crashes permanent (crash-stop); `Some(d)` makes them
    /// crash-restarts with downtime `d`.
    pub restart_downtime: Option<u32>,
    /// Per-round, per-process probability of an obligation drop (drawn
    /// only when the cell did not crash).
    pub drop_rate: f64,
}

impl FaultModel {
    /// Compiles the model into the concrete plan for a ring of `n`.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadRate`] for rates outside `[0, 1]` and
    /// [`FaultError::BadDowntime`] for an unencodable restart downtime.
    pub fn compile(&self, n: usize) -> Result<FaultPlan, FaultError> {
        for (field, value) in [
            ("crash_rate", self.crash_rate),
            ("drop_rate", self.drop_rate),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultError::BadRate { field, value });
            }
        }
        if let Some(d) = self.restart_downtime {
            if d == 0 || d > MAX_DOWNTIME {
                return Err(FaultError::BadDowntime { downtime: d });
            }
        }
        let mut events = Vec::new();
        for round in 1..=self.horizon {
            for process in 0..n {
                let cell = u64::from(round) * n as u64 + process as u64;
                let mut rng = SplitMix64::for_trial(self.seed, cell);
                if rng.random_bool(self.crash_rate) {
                    let kind = match self.restart_downtime {
                        Some(downtime) => FaultKind::CrashRestart { downtime },
                        None => FaultKind::CrashStop,
                    };
                    events.push(FaultEvent {
                        round,
                        process,
                        kind,
                    });
                } else if rng.random_bool(self.drop_rate) {
                    events.push(FaultEvent {
                        round,
                        process,
                        kind: FaultKind::DropObligation,
                    });
                }
            }
        }
        FaultPlan::new(events)
    }
}

impl Serialize for FaultModel {
    fn to_json(&self) -> String {
        format!(
            "{{\"seed\":{},\"horizon\":{},\"crash_rate\":{},\"restart_downtime\":{},\"drop_rate\":{}}}",
            self.seed,
            self.horizon,
            self.crash_rate.to_json(),
            self.restart_downtime.to_json(),
            self.drop_rate.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaultModel {
        FaultModel {
            seed: 42,
            horizon: 10,
            crash_rate: 0.2,
            restart_downtime: Some(2),
            drop_rate: 0.3,
        }
    }

    #[test]
    fn compilation_is_deterministic_in_the_seed() {
        let a = model().compile(3).unwrap();
        let b = model().compile(3).unwrap();
        assert_eq!(a, b);
        let mut other = model();
        other.seed = 43;
        assert_ne!(
            other.compile(3).unwrap(),
            a,
            "a different seed must shift faults"
        );
    }

    #[test]
    fn rates_control_which_kinds_appear() {
        let plan = model().compile(3).unwrap();
        assert!(!plan.is_empty(), "20%/30% rates over 30 cells hit w.h.p.");
        assert!(plan.events().iter().all(|e| matches!(
            e.kind,
            FaultKind::CrashRestart { downtime: 2 } | FaultKind::DropObligation
        )));
        let mut stop = model();
        stop.restart_downtime = None;
        stop.drop_rate = 0.0;
        assert!(stop
            .compile(3)
            .unwrap()
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::CrashStop));
    }

    #[test]
    fn zero_rates_compile_to_the_empty_plan() {
        let mut m = model();
        m.crash_rate = 0.0;
        m.drop_rate = 0.0;
        assert_eq!(m.compile(5).unwrap(), FaultPlan::none());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut m = model();
        m.crash_rate = 1.5;
        assert!(matches!(m.compile(3), Err(FaultError::BadRate { .. })));
        let mut m = model();
        m.restart_downtime = Some(15);
        assert!(matches!(m.compile(3), Err(FaultError::BadDowntime { .. })));
    }
}
