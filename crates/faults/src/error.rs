//! Error type of the fault subsystem.

use pa_lehmann_rabin::LrError;

/// Errors raised when building or analysing fault configurations.
#[derive(Debug)]
pub enum FaultError {
    /// A crash-restart downtime outside the encodable range `1..=14`.
    BadDowntime {
        /// The offending downtime.
        downtime: u32,
    },
    /// Two fault events target the same process in the same round.
    DuplicateEvent {
        /// The round of the collision.
        round: u32,
        /// The process targeted twice.
        process: usize,
    },
    /// A fault event scheduled for round 0 (rounds are 1-based).
    ZeroRound,
    /// A fault rate outside `[0, 1]`.
    BadRate {
        /// The name of the offending rate field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fault event targets a process outside the ring.
    ProcessOutOfRange {
        /// The offending process index.
        process: usize,
        /// The ring size.
        n: usize,
    },
    /// A rotation-quotient analysis was requested under a nonempty fault
    /// plan. Fault events name specific processes, which breaks the ring's
    /// rotation symmetry — the quotient is only sound for the zero-fault
    /// column.
    SymmetryBroken,
    /// A fault plan's round cap does not fit the 12-bit round field of the
    /// bit-packed state encoding.
    RoundCapUnencodable {
        /// The offending cap (one past the last scripted round).
        cap: u32,
    },
    /// An error from the underlying protocol / round model.
    Lr(LrError),
    /// An error from the MDP engine.
    Mdp(pa_mdp::MdpError),
    /// An error from the sampled estimation tier.
    Mc(pa_mc::McError),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::BadDowntime { downtime } => {
                write!(f, "crash-restart downtime {downtime} outside 1..=14")
            }
            FaultError::DuplicateEvent { round, process } => {
                write!(f, "two fault events for process {process} in round {round}")
            }
            FaultError::ZeroRound => write!(f, "fault events are 1-based; round 0 is invalid"),
            FaultError::BadRate { field, value } => {
                write!(f, "fault rate {field} = {value} outside [0, 1]")
            }
            FaultError::ProcessOutOfRange { process, n } => {
                write!(f, "fault event targets process {process} of a ring of {n}")
            }
            FaultError::SymmetryBroken => write!(
                f,
                "rotation-quotient analysis requires an empty fault plan \
                 (fault events name processes, breaking ring symmetry)"
            ),
            FaultError::RoundCapUnencodable { cap } => {
                write!(f, "round cap {cap} exceeds the packable bound 4095")
            }
            FaultError::Lr(e) => write!(f, "protocol error: {e}"),
            FaultError::Mdp(e) => write!(f, "mdp error: {e}"),
            FaultError::Mc(e) => write!(f, "monte-carlo error: {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Lr(e) => Some(e),
            FaultError::Mdp(e) => Some(e),
            FaultError::Mc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LrError> for FaultError {
    fn from(e: LrError) -> FaultError {
        FaultError::Lr(e)
    }
}

impl From<pa_mdp::MdpError> for FaultError {
    fn from(e: pa_mdp::MdpError) -> FaultError {
        FaultError::Mdp(e)
    }
}

impl From<pa_mc::McError> for FaultError {
    fn from(e: pa_mc::McError) -> FaultError {
        FaultError::Mc(e)
    }
}
