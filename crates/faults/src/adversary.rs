//! Fragment-level fault wrapping: turn any [`pa_core::Adversary`] into one
//! that never schedules a crashed process, via the core
//! [`FaultFilter`] combinator.
//!
//! This is the checker-side counterpart of the MDP-side
//! [`crate::FaultyRoundMdp`]: where the round model bakes faults into the
//! state space, [`faulty_adversary`] leaves the automaton untouched and
//! instead filters the adversary's choices against a [`FaultPlan`], using
//! the patient construction's clock ([`pa_core::Timed`]) to decide which
//! round a choice falls in. Round `k` covers the time interval `(k−1, k]`,
//! and a fault scheduled for round `r` is in force from time `r−1`
//! onward — matching the round model's "events strike at round starts".

use pa_core::{Adversary, Automaton, FaultFilter, Timed};

use crate::FaultPlan;

/// The 1-based round that patient time `t` falls in: round `k` covers
/// `(k−1, k]`, and time 0 belongs to round 1.
pub fn round_of_time(t: f64) -> u32 {
    if t <= 0.0 {
        1
    } else {
        t.ceil().max(1.0) as u32
    }
}

/// Wraps `inner` so it never schedules a process that `plan` has crashed
/// at the fragment's current time. `process_of` maps an action to the
/// process performing it (`None` for global actions like time ticks,
/// which are always permitted).
///
/// Per the [`FaultFilter`] contract, if the wrapped adversary proposes a
/// crashed process's action, the filter falls back to the first permitted
/// step of the current state, halting only when every enabled action
/// belongs to crashed processes — crashes suppress behaviour, they never
/// invent it.
pub fn faulty_adversary<M, A, F>(
    inner: A,
    plan: FaultPlan,
    process_of: F,
) -> FaultFilter<A, impl Fn(&M::State, &M::Action) -> bool>
where
    M: Automaton,
    M::State: Timed,
    A: Adversary<M>,
    F: Fn(&M::Action) -> Option<usize>,
{
    FaultFilter::new(
        inner,
        move |state: &M::State, action: &M::Action| match process_of(action) {
            Some(p) => !plan.down_at(p, round_of_time(state.time())),
            None => true,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use pa_core::{FirstEnabled, Fragment, Patient, TableAutomaton, TimedAction};

    /// Two processes that can each take one `work` step, under the patient
    /// construction so states carry time.
    fn timed_pair() -> Patient<TableAutomaton<u8, &'static str>> {
        let m = TableAutomaton::builder()
            .start(0)
            .det_step(0, "p0-work", 1)
            .det_step(0, "p1-work", 2)
            .det_step(1, "p1-work", 3)
            .det_step(2, "p0-work", 3)
            .build()
            .unwrap();
        Patient::new(m)
    }

    fn process_of(a: &TimedAction<&'static str>) -> Option<usize> {
        match a {
            TimedAction::Base(name) => name
                .strip_prefix('p')?
                .chars()
                .next()?
                .to_digit(10)
                .map(|d| d as usize),
            TimedAction::Tick => None,
        }
    }

    #[test]
    fn crashed_process_is_never_scheduled() {
        let m = timed_pair();
        let plan = FaultPlan::single(1, 0, FaultKind::CrashStop).unwrap();
        let adv = faulty_adversary::<Patient<TableAutomaton<u8, &'static str>>, _, _>(
            FirstEnabled,
            plan,
            process_of,
        );
        let start = m.start_states().remove(0);
        let frag = Fragment::initial(start);
        // FirstEnabled would pick p0-work; the filter must divert to p1.
        let step = adv.choose(&m, &frag).expect("p1 and Tick remain");
        assert!(!matches!(step.action, TimedAction::Base(a) if a.starts_with("p0")));
    }

    #[test]
    fn empty_plan_is_an_identity_wrapper() {
        let m = timed_pair();
        let adv = faulty_adversary::<Patient<TableAutomaton<u8, &'static str>>, _, _>(
            FirstEnabled,
            FaultPlan::none(),
            process_of,
        );
        let start = m.start_states().remove(0);
        let frag = Fragment::initial(start.clone());
        let filtered = adv.choose(&m, &frag).expect("steps exist");
        let plain = FirstEnabled.choose(&m, &frag).expect("steps exist");
        assert_eq!(filtered.action, plain.action);
    }

    #[test]
    fn restart_lifts_the_suppression() {
        let plan = FaultPlan::single(1, 0, FaultKind::CrashRestart { downtime: 2 }).unwrap();
        // Down during rounds 1 and 2, live from round 3 (time > 2).
        assert!(plan.down_at(0, round_of_time(0.0)));
        assert!(plan.down_at(0, round_of_time(1.5)));
        assert!(!plan.down_at(0, round_of_time(2.5)));
    }

    #[test]
    fn round_of_time_matches_the_interval_convention() {
        assert_eq!(round_of_time(0.0), 1);
        assert_eq!(round_of_time(0.5), 1);
        assert_eq!(round_of_time(1.0), 1);
        assert_eq!(round_of_time(1.1), 2);
        assert_eq!(round_of_time(13.0), 13);
    }
}
