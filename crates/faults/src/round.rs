//! The fault-wrapped round model: [`FaultyRoundMdp`] lowers a
//! [`FaultPlan`] over the Lehmann–Rabin round semantics
//! ([`pa_lehmann_rabin::RoundMdp`]) into an ordinary
//! [`pa_core::Automaton`], so the whole `pa-mdp` pipeline — exploration,
//! [`pa_mdp::Query`], both solvers — applies unchanged.
//!
//! Semantics, relative to the fault-free round model:
//!
//! * Fault events strike at **round starts** (the `EndRound` transition
//!   that opens round `r` applies `plan.events_at(r)`; round-1 events are
//!   applied when the start states are built).
//! * A **crashed process takes no steps** and incurs no obligations; it
//!   keeps whatever resources it holds (`Config` is untouched), which is
//!   the adversarial reading — a crashed fork-holder starves its
//!   neighbours forever.
//! * A **crash-restart** process resumes from its pre-crash local state
//!   after its downtime elapses (counted in round closures), and is
//!   re-obliged from its first live round.
//! * An **obligation drop** leaves the process up but waives its
//!   `Unit-Time` obligation for one round — the scheduler may (but need
//!   not) starve it for that round.
//!
//! Wrapping with [`FaultPlan::none`] is a strict identity: the step
//! enumeration, exploration order, and resulting [`pa_mdp::ExplicitMdp`]
//! are bitwise identical to the unwrapped model's (the zero-fault column
//! of every survival map is *equal*, not just close, to the fault-free
//! arrow results).
//!
//! After total crashes the model reaches states where every process is
//! stopped; once the fault schedule is exhausted these are deterministic
//! `EndRound` self-loops (time still diverges, as `Unit-Time` requires,
//! but nothing else ever happens). [`FaultyRoundMdp::crash_tags`] tags
//! exactly those choices so [`pa_mdp::tagged_absorbing_violations`] can
//! certify the absorbing structure both solvers rely on.

use std::sync::Arc;

use pa_core::{Automaton, Step};
use pa_lehmann_rabin::{Config, RoundAction, RoundConfig, RoundMdp, RoundState};
use pa_mdp::{tag_choices, ChoiceTags, Explored, TAG_NONE};

use crate::{FaultError, FaultKind, FaultPlan};

/// Status-nibble value marking a permanently crashed process.
pub const STOPPED: u8 = 0xF;

/// Tag applied by [`FaultyRoundMdp::crash_tags`] to the self-loop choices
/// of dead (fully crashed, schedule-exhausted) states.
pub const TAG_CRASH: u8 = 1;

/// A state of the fault-wrapped round model: the fault-free round state
/// plus per-process fault status and the current round number.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultyRoundState {
    /// The wrapped round state (crashed processes simply have no budget
    /// and no obligation in it).
    pub inner: RoundState,
    /// 4 bits per process: `0` = live, [`STOPPED`] = crash-stopped,
    /// `1..=14` = down, restarting after that many more round closures.
    pub status: u64,
    /// The current 1-based round, saturating once the fault schedule is
    /// exhausted (keeping the state space finite).
    pub round: u32,
}

impl FaultyRoundState {
    /// The status nibble of process `i`.
    pub fn status_of(&self, i: usize) -> u8 {
        ((self.status >> (4 * i)) & 0xF) as u8
    }

    /// Whether process `i` is currently live.
    pub fn is_live(&self, i: usize) -> bool {
        self.status_of(i) == 0
    }

    /// Bitmask of processes currently *not* live (stopped or down), in the
    /// shape the fault-aware region predicates
    /// (`pa_lehmann_rabin::regions::*_under`) expect.
    pub fn crashed_mask(&self, n: usize) -> u32 {
        let mut mask = 0;
        for i in 0..n {
            if !self.is_live(i) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// The state relabelled by ring rotation `k`: the wrapped round state
    /// rotates ([`RoundState::rotated`]) and the status nibbles rotate
    /// with the processes; the round counter is position-free.
    ///
    /// Rotation is only a symmetry of the *model* when the fault plan is
    /// empty (scripted events name processes); the quotient entry points
    /// enforce that with [`crate::FaultError::SymmetryBroken`].
    pub fn rotated(&self, k: usize) -> FaultyRoundState {
        let n = self.inner.config.n();
        let mut status = 0u64;
        for i in 0..n {
            let nibble = (self.status >> (4 * ((i + k) % n))) & 0xF;
            status |= nibble << (4 * i);
        }
        FaultyRoundState {
            inner: self.inner.rotated(k),
            status,
            round: self.round,
        }
    }
}

impl pa_mdp::RingState for FaultyRoundState {
    fn rotated(&self, k: usize) -> FaultyRoundState {
        FaultyRoundState::rotated(self, k)
    }
}

impl std::fmt::Display for FaultyRoundState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} status={:x} round={}",
            self.inner, self.status, self.round
        )
    }
}

/// The time cost of an action of the fault-wrapped round model: 1 for
/// [`RoundAction::EndRound`], 0 otherwise. Pass to [`pa_mdp::Explore`].
pub fn faulty_round_cost(_state: &FaultyRoundState, action: &RoundAction) -> u32 {
    match action {
        RoundAction::Schedule(_) => 0,
        RoundAction::EndRound => 1,
    }
}

type AbsorbPred = Arc<dyn Fn(&FaultyRoundState) -> bool + Send + Sync>;

/// The round model of a ring of `n` under a scripted [`FaultPlan`].
#[derive(Clone)]
pub struct FaultyRoundMdp {
    base: RoundMdp,
    plan: FaultPlan,
    starts: Vec<Config>,
    absorb: Option<AbsorbPred>,
    /// Rounds saturate here: one past the last scripted event, so every
    /// event fires before states start collapsing.
    cap: u32,
}

impl std::fmt::Debug for FaultyRoundMdp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyRoundMdp")
            .field("cfg", self.base.config())
            .field("plan", &self.plan)
            .field("starts", &self.starts.len())
            .field("absorbing", &self.absorb.is_some())
            .finish()
    }
}

impl FaultyRoundMdp {
    /// Wraps the round model of `cfg` in `plan`, starting from the
    /// all-idle configuration.
    ///
    /// # Errors
    ///
    /// [`FaultError::ProcessOutOfRange`] if the plan names a process
    /// outside the ring.
    pub fn new(cfg: RoundConfig, plan: FaultPlan) -> Result<FaultyRoundMdp, FaultError> {
        if let Some(p) = plan.max_process() {
            if p >= cfg.n {
                return Err(FaultError::ProcessOutOfRange {
                    process: p,
                    n: cfg.n,
                });
            }
        }
        let base = RoundMdp::new(cfg);
        let starts = vec![Config::initial(cfg.n)?];
        // Saturating: a plan scripted at round u32::MAX must cap *at* it,
        // not wrap to 0 (which would saturate every state's round counter
        // at zero and collapse the model). Whether the cap then fits the
        // packed 12-bit round field is FaultyStateCodec::new's typed check.
        let cap = plan.max_round().saturating_add(1);
        Ok(FaultyRoundMdp {
            base,
            plan,
            starts,
            absorb: None,
            cap,
        })
    }

    /// Replaces the start configurations (each wrapped as a fresh round-1
    /// start with the round-1 fault events already applied).
    pub fn with_starts(mut self, starts: Vec<Config>) -> FaultyRoundMdp {
        self.starts = starts;
        self
    }

    /// Makes states satisfying `pred` absorbing (sound for first-hitting
    /// analyses whose target contains `pred`).
    pub fn with_absorb(
        mut self,
        pred: impl Fn(&FaultyRoundState) -> bool + Send + Sync + 'static,
    ) -> FaultyRoundMdp {
        self.absorb = Some(Arc::new(pred));
        self
    }

    /// The wrapped fault-free round model.
    pub fn base(&self) -> &RoundMdp {
        &self.base
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `state` is dead: every process crash-stopped and the fault
    /// schedule exhausted, so its only behaviour is the `EndRound`
    /// self-loop.
    pub fn is_dead(&self, state: &FaultyRoundState) -> bool {
        state.round >= self.cap && (0..self.base.config().n).all(|i| state.status_of(i) == STOPPED)
    }

    /// Rounds saturate at this cap: one past the last scripted event.
    pub fn round_cap(&self) -> u32 {
        self.cap
    }

    /// Tags the `EndRound` choices of dead states with [`TAG_CRASH`] so
    /// [`pa_mdp::tagged_absorbing_violations`] can certify they are
    /// absorbing self-loops before either solver runs.
    pub fn crash_tags<SP: pa_mdp::StateSpace<FaultyRoundState>>(
        &self,
        explored: &Explored<FaultyRoundState, SP>,
    ) -> ChoiceTags {
        tag_choices(self, explored, |s, a| {
            if *a == RoundAction::EndRound && self.is_dead(s) {
                TAG_CRASH
            } else {
                TAG_NONE
            }
        })
    }

    /// `RoundState::with_step_taken`, reconstructed over the public
    /// fields: process `i` spends one budget unit and discharges its
    /// obligation.
    fn step_taken(rs: &RoundState, i: usize, config: Config) -> RoundState {
        let b = rs.budget_of(i) - 1;
        let mask = !(0xFu64 << (4 * i));
        RoundState {
            config,
            obliged: rs.obliged & !(1 << i),
            budget: (rs.budget & mask) | (u64::from(b) << (4 * i)),
        }
    }

    /// Wraps a configuration as a fresh round start under `status`:
    /// obligations and budgets go only to live, non-dropped processes.
    fn fresh_inner(&self, config: Config, status: u64, dropped: u32) -> RoundState {
        let n = self.base.config().n;
        let burst = self.base.config().burst;
        let mut live = 0u32;
        for i in 0..n {
            if (status >> (4 * i)) & 0xF == 0 {
                live |= 1 << i;
            }
        }
        let obliged = config.ready_mask() & live & !dropped;
        let mut budget = 0u64;
        for i in 0..n {
            if live & (1 << i) != 0 {
                budget |= u64::from(burst) << (4 * i);
            }
        }
        RoundState {
            config,
            obliged,
            budget,
        }
    }

    /// Applies the events scheduled for the start of `round` to `status`,
    /// returning the mask of processes whose obligation is dropped for
    /// this round. Records `faults.*` telemetry.
    fn apply_events(&self, status: &mut u64, round: u32, config: &Config) -> u32 {
        let mut dropped = 0u32;
        let mut crashes = 0u64;
        let mut drops = 0u64;
        let mut violations = 0u64;
        for e in self.plan.events_at(round) {
            let i = e.process;
            let nibble_mask = !(0xFu64 << (4 * i));
            match e.kind {
                FaultKind::CrashStop => {
                    *status = (*status & nibble_mask) | (u64::from(STOPPED) << (4 * i));
                    crashes += 1;
                }
                FaultKind::CrashRestart { downtime } => {
                    *status = (*status & nibble_mask) | (u64::from(downtime) << (4 * i));
                    crashes += 1;
                }
                FaultKind::DropObligation => {
                    dropped |= 1 << i;
                    drops += 1;
                    // A drop only violates the Unit-Time envelope if the
                    // process would actually have been obliged.
                    if config.ready_mask() & (1 << i) != 0 && (*status >> (4 * i)) & 0xF == 0 {
                        violations += 1;
                    }
                }
            }
        }
        if pa_telemetry::enabled() && (crashes | drops) != 0 {
            pa_telemetry::counter("faults.crashes_injected").add(crashes);
            pa_telemetry::counter("faults.obligations_dropped").add(drops);
            pa_telemetry::counter("faults.envelope_violations").add(violations);
        }
        dropped
    }
}

impl Automaton for FaultyRoundMdp {
    type State = FaultyRoundState;
    type Action = RoundAction;

    fn start_states(&self) -> Vec<FaultyRoundState> {
        self.starts
            .iter()
            .cloned()
            .map(|config| {
                let mut status = 0u64;
                let dropped = self.apply_events(&mut status, 1, &config);
                FaultyRoundState {
                    inner: self.fresh_inner(config, status, dropped),
                    status,
                    round: 1,
                }
            })
            .collect()
    }

    fn steps(&self, state: &FaultyRoundState) -> Vec<Step<FaultyRoundState, RoundAction>> {
        if let Some(pred) = &self.absorb {
            if pred(state) {
                return Vec::new();
            }
        }
        let n = self.base.config().n;
        let mut out = Vec::new();
        for i in 0..n {
            if !state.is_live(i) || state.inner.budget_of(i) == 0 {
                continue;
            }
            for step in self
                .base
                .protocol()
                .steps_of_process(&state.inner.config, i)
            {
                let target = step.target.map(|cfg| FaultyRoundState {
                    inner: Self::step_taken(&state.inner, i, cfg.clone()),
                    status: state.status,
                    round: state.round,
                });
                out.push(Step {
                    action: RoundAction::Schedule(step.action),
                    target,
                });
            }
        }
        if state.inner.obliged == 0 {
            let mut status = state.status;
            let mut restarts = 0u64;
            for i in 0..n {
                let d = (status >> (4 * i)) & 0xF;
                if d >= 1 && d <= u64::from(crate::MAX_DOWNTIME) {
                    status = (status & !(0xFu64 << (4 * i))) | ((d - 1) << (4 * i));
                    if d == 1 {
                        restarts += 1;
                    }
                }
            }
            if pa_telemetry::enabled() && restarts != 0 {
                pa_telemetry::counter("faults.restarts").add(restarts);
            }
            let next_round = (state.round + 1).min(self.cap);
            let dropped = self.apply_events(&mut status, next_round, &state.inner.config);
            out.push(Step::deterministic(
                RoundAction::EndRound,
                FaultyRoundState {
                    inner: self.fresh_inner(state.inner.config.clone(), status, dropped),
                    status,
                    round: next_round,
                },
            ));
        }
        out
    }

    fn is_external(&self, action: &RoundAction) -> bool {
        match action {
            RoundAction::Schedule(a) => a.is_external(),
            RoundAction::EndRound => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_lehmann_rabin::{Pc, ProcState, Side};
    use pa_mdp::{tagged_absorbing_violations, Explore};

    fn trying_config() -> Config {
        let mut c = Config::initial(3).unwrap();
        for i in 0..3 {
            c = c.with_proc(i, ProcState::new(Pc::F, Side::Left));
        }
        c
    }

    fn wrapped(plan: FaultPlan) -> FaultyRoundMdp {
        FaultyRoundMdp::new(RoundConfig::new(3).unwrap(), plan)
            .unwrap()
            .with_starts(vec![trying_config()])
    }

    #[test]
    fn crashed_process_neither_steps_nor_owes() {
        let m = wrapped(FaultPlan::single(1, 0, FaultKind::CrashStop).unwrap());
        let start = &m.start_states()[0];
        assert!(!start.is_live(0));
        assert_eq!(start.inner.obliged, 0b110);
        assert_eq!(start.inner.budget_of(0), 0);
        assert!(m
            .steps(start)
            .iter()
            .all(|s| !matches!(s.action, RoundAction::Schedule(a) if a.process() == 0)));
    }

    #[test]
    fn crash_restart_comes_back_after_downtime() {
        let m = wrapped(FaultPlan::single(1, 0, FaultKind::CrashRestart { downtime: 1 }).unwrap());
        let mut state = m.start_states()[0].clone();
        assert!(!state.is_live(0));
        // Discharge the two live obligations, then close the round.
        loop {
            let steps = m.steps(&state);
            let step = steps
                .iter()
                .find(|s| matches!(s.action, RoundAction::Schedule(_)))
                .or_else(|| steps.iter().find(|s| s.action == RoundAction::EndRound))
                .expect("some step");
            let closed = step.action == RoundAction::EndRound;
            state = step.target.support().next().unwrap().clone();
            if closed {
                break;
            }
        }
        assert!(state.is_live(0), "downtime 1 expires at the first closure");
        assert_eq!(
            state.inner.obliged & 1,
            state.inner.config.ready_mask() & 1,
            "restarted process is re-obliged iff ready"
        );
    }

    #[test]
    fn dropped_obligation_waives_exactly_one_round() {
        let m = wrapped(FaultPlan::single(1, 1, FaultKind::DropObligation).unwrap());
        let start = &m.start_states()[0];
        assert!(start.is_live(1), "dropped process stays up");
        assert_eq!(start.inner.obliged, 0b101, "but owes nothing this round");
        assert_eq!(
            start.inner.budget_of(1),
            1,
            "it may still be scheduled this round"
        );
    }

    #[test]
    fn total_crash_states_are_tagged_absorbing_self_loops() {
        let plan = FaultPlan::new(
            (0..3)
                .map(|i| crate::FaultEvent {
                    round: 2,
                    process: i,
                    kind: FaultKind::CrashStop,
                })
                .collect(),
        )
        .unwrap();
        let m = wrapped(plan);
        let e = Explore::new(&m)
            .cost(faulty_round_cost)
            .limit(1_000_000)
            .run()
            .unwrap();
        let tags = m.crash_tags(&e);
        assert!(tags.count(TAG_CRASH) > 0, "total crash must be reachable");
        assert!(tagged_absorbing_violations(&e.mdp, &tags, TAG_CRASH).is_empty());
    }

    #[test]
    fn rotation_relabels_status_nibbles_with_the_ring() {
        let m = wrapped(FaultPlan::single(1, 1, FaultKind::CrashStop).unwrap());
        let s = m.start_states()[0].clone();
        assert_eq!(s.status_of(1), STOPPED);
        let r = s.rotated(1);
        assert_eq!(r.status_of(0), STOPPED, "old process 1 is new process 0");
        assert_eq!(r.status_of(1), 0);
        assert_eq!(r.status_of(2), 0);
        assert_eq!(r.round, s.round);
        assert_eq!(s.rotated(3), s, "rotating by n is the identity");
    }

    #[test]
    fn plan_naming_an_outside_process_is_rejected() {
        let plan = FaultPlan::single(1, 7, FaultKind::CrashStop).unwrap();
        assert!(matches!(
            FaultyRoundMdp::new(RoundConfig::new(3).unwrap(), plan),
            Err(FaultError::ProcessOutOfRange { process: 7, n: 3 })
        ));
    }
}
