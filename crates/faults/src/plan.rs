//! Scripted fault schedules: [`FaultPlan`] lists exactly which process
//! suffers which [`FaultKind`] at which round.
//!
//! Rounds are the 1-based time units of the round model
//! ([`pa_lehmann_rabin::RoundMdp`]): round `k` covers the patient-time
//! interval `(k−1, k]`, and an event scheduled for round `r` takes effect
//! at the *start* of round `r` (time `r−1`). A plan is a total, replayable
//! description — the same plan always injects the same faults, which is
//! what makes survival maps reproducible.

use serde::Serialize;

use crate::FaultError;

/// Maximum encodable crash-restart downtime (the round model packs
/// per-process status into 4-bit nibbles, with `0xF` reserved for
/// crash-stop).
pub const MAX_DOWNTIME: u32 = 14;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The process halts permanently. It keeps any resources it holds —
    /// the adversarial reading of a crash in the Dining Philosophers
    /// setting (a crashed holder blocks its neighbours forever).
    CrashStop,
    /// The process halts and recovers after `downtime` round closures,
    /// resuming from its pre-crash local state.
    CrashRestart {
        /// Rounds the process stays down (`1..=`[`MAX_DOWNTIME`]).
        downtime: u32,
    },
    /// The scheduler silently drops the process's obligation for one
    /// round: the process stays up but is not guaranteed a step, modelling
    /// a transient `Unit-Time` envelope violation.
    DropObligation,
}

impl Serialize for FaultKind {
    fn to_json(&self) -> String {
        match self {
            FaultKind::CrashStop => "\"crash-stop\"".to_string(),
            FaultKind::CrashRestart { downtime } => {
                format!("{{\"crash-restart\":{{\"downtime\":{downtime}}}}}")
            }
            FaultKind::DropObligation => "\"drop-obligation\"".to_string(),
        }
    }
}

/// One scripted fault: `process` suffers `kind` at the start of `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// The 1-based round at whose start the fault strikes.
    pub round: u32,
    /// The ring index of the affected process.
    pub process: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

impl Serialize for FaultEvent {
    fn to_json(&self) -> String {
        format!(
            "{{\"round\":{},\"process\":{},\"kind\":{}}}",
            self.round,
            self.process,
            self.kind.to_json()
        )
    }
}

/// A validated, replayable fault schedule: events sorted by `(round,
/// process)`, at most one event per process per round.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults ever. Wrapping any model in it is an
    /// identity (the zero-fault column of a survival map).
    pub fn none() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// Builds a plan from events, sorting them into canonical order.
    ///
    /// # Errors
    ///
    /// [`FaultError::ZeroRound`] for a round-0 event,
    /// [`FaultError::BadDowntime`] for a crash-restart downtime outside
    /// `1..=`[`MAX_DOWNTIME`], and [`FaultError::DuplicateEvent`] if two
    /// events target the same process in the same round.
    pub fn new(mut events: Vec<FaultEvent>) -> Result<FaultPlan, FaultError> {
        for e in &events {
            if e.round == 0 {
                return Err(FaultError::ZeroRound);
            }
            if let FaultKind::CrashRestart { downtime } = e.kind {
                if downtime == 0 || downtime > MAX_DOWNTIME {
                    return Err(FaultError::BadDowntime { downtime });
                }
            }
        }
        events.sort_by_key(|e| (e.round, e.process));
        for w in events.windows(2) {
            if w[0].round == w[1].round && w[0].process == w[1].process {
                return Err(FaultError::DuplicateEvent {
                    round: w[0].round,
                    process: w[0].process,
                });
            }
        }
        Ok(FaultPlan { events })
    }

    /// Convenience: a single scripted event.
    ///
    /// # Errors
    ///
    /// Same validation as [`FaultPlan::new`].
    pub fn single(round: u32, process: usize, kind: FaultKind) -> Result<FaultPlan, FaultError> {
        FaultPlan::new(vec![FaultEvent {
            round,
            process,
            kind,
        }])
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All events, in `(round, process)` order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events striking at the start of `round`.
    pub fn events_at(&self, round: u32) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.round < round);
        let hi = self.events.partition_point(|e| e.round <= round);
        &self.events[lo..hi]
    }

    /// The last round with a scripted event (0 for the empty plan).
    pub fn max_round(&self) -> u32 {
        self.events.last().map_or(0, |e| e.round)
    }

    /// The largest process index named by the plan, if any.
    pub fn max_process(&self) -> Option<usize> {
        self.events.iter().map(|e| e.process).max()
    }

    /// Whether `process` is down (crashed and not yet recovered) during
    /// `round`, per this plan alone. Used by the fragment-level fault
    /// adversary; the round model tracks the same liveness in its state.
    pub fn down_at(&self, process: usize, round: u32) -> bool {
        let mut down_until = 0u64; // exclusive bound; u64::MAX = forever
        for e in &self.events {
            if e.round > round {
                break; // events are sorted by round
            }
            if e.process != process {
                continue;
            }
            match e.kind {
                FaultKind::CrashStop => down_until = u64::MAX,
                FaultKind::CrashRestart { downtime } => {
                    down_until = down_until.max(u64::from(e.round) + u64::from(downtime));
                }
                FaultKind::DropObligation => {}
            }
        }
        down_until == u64::MAX || u64::from(round) < down_until
    }
}

impl Serialize for FaultPlan {
    fn to_json(&self) -> String {
        self.events.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u32, process: usize, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            round,
            process,
            kind,
        }
    }

    #[test]
    fn plan_sorts_and_indexes_events_by_round() {
        let plan = FaultPlan::new(vec![
            ev(3, 1, FaultKind::CrashStop),
            ev(1, 0, FaultKind::DropObligation),
            ev(3, 0, FaultKind::CrashRestart { downtime: 2 }),
        ])
        .unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.max_round(), 3);
        assert_eq!(plan.events_at(1).len(), 1);
        assert_eq!(plan.events_at(2).len(), 0);
        let at3 = plan.events_at(3);
        assert_eq!(at3.len(), 2);
        assert_eq!(at3[0].process, 0, "events sorted by process within a round");
    }

    #[test]
    fn validation_rejects_bad_events() {
        assert!(matches!(
            FaultPlan::single(0, 0, FaultKind::CrashStop),
            Err(FaultError::ZeroRound)
        ));
        assert!(matches!(
            FaultPlan::single(1, 0, FaultKind::CrashRestart { downtime: 0 }),
            Err(FaultError::BadDowntime { .. })
        ));
        assert!(matches!(
            FaultPlan::single(1, 0, FaultKind::CrashRestart { downtime: 15 }),
            Err(FaultError::BadDowntime { .. })
        ));
        assert!(matches!(
            FaultPlan::new(vec![
                ev(2, 1, FaultKind::CrashStop),
                ev(2, 1, FaultKind::DropObligation),
            ]),
            Err(FaultError::DuplicateEvent {
                round: 2,
                process: 1
            })
        ));
    }

    #[test]
    fn down_at_tracks_crash_windows() {
        let plan = FaultPlan::new(vec![
            ev(2, 0, FaultKind::CrashRestart { downtime: 3 }),
            ev(4, 1, FaultKind::CrashStop),
            ev(1, 2, FaultKind::DropObligation),
        ])
        .unwrap();
        // Process 0 is down during rounds 2, 3, 4 and back at 5.
        assert!(!plan.down_at(0, 1));
        assert!(plan.down_at(0, 2));
        assert!(plan.down_at(0, 4));
        assert!(!plan.down_at(0, 5));
        // Process 1 stays down forever from round 4.
        assert!(!plan.down_at(1, 3));
        assert!(plan.down_at(1, 4));
        assert!(plan.down_at(1, 1000));
        // Obligation drops do not affect liveness.
        assert!(!plan.down_at(2, 1));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.max_round(), 0);
        assert!(plan.events_at(1).is_empty());
        assert!(!plan.down_at(0, 7));
    }

    #[test]
    fn plan_serializes_to_json() {
        let plan = FaultPlan::single(2, 1, FaultKind::CrashRestart { downtime: 3 }).unwrap();
        let json = plan.to_json();
        assert!(json.contains("\"round\":2"), "{json}");
        assert!(json.contains("\"downtime\":3"), "{json}");
        assert_eq!(FaultPlan::none().to_json(), "[]");
    }
}
