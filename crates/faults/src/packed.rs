//! Bit-packed encoding of [`FaultyRoundState`] for
//! [`pa_mdp::PackedSpace`].
//!
//! Extends [`RoundStateCodec`]'s three-word layout with one more word and
//! the spare bits of word 1:
//!
//! | word | bits | content |
//! |------|------|---------|
//! | 0–2 | — | the wrapped [`pa_lehmann_rabin::RoundState`], as in [`RoundStateCodec`] |
//! | 1 | `52 .. 64` | the 1-based round counter (saturated at the plan cap) |
//! | 3 | `0 .. 64` | per-process fault-status nibbles |
//!
//! The round counter saturates at `plan.max_round() + 1`, so the 12-bit
//! field is ample for any realistic plan; the cap is validated once at
//! codec construction ([`FaultError::RoundCapUnencodable`]) rather than
//! per pack.

use pa_lehmann_rabin::RoundStateCodec;
use pa_mdp::StateCodec;

use crate::{FaultError, FaultyRoundState};

/// Upper bound on the packable round cap (12 bits).
pub const MAX_PACKED_ROUND: u32 = 0xFFF;

/// Fixed-width codec for [`FaultyRoundState`]: four `u64` words per state.
#[derive(Debug, Clone, Copy)]
pub struct FaultyStateCodec {
    inner: RoundStateCodec,
}

impl FaultyStateCodec {
    /// A codec for rings of `n` whose round counters saturate at
    /// `round_cap` (use [`crate::FaultyRoundMdp::round_cap`]).
    ///
    /// # Errors
    ///
    /// [`FaultError::RoundCapUnencodable`] if `round_cap` exceeds
    /// [`MAX_PACKED_ROUND`]; ring-size errors from the inner codec.
    pub fn new(n: usize, round_cap: u32) -> Result<FaultyStateCodec, FaultError> {
        if round_cap > MAX_PACKED_ROUND {
            return Err(FaultError::RoundCapUnencodable { cap: round_cap });
        }
        Ok(FaultyStateCodec {
            inner: RoundStateCodec::new(n)?,
        })
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.inner.n()
    }
}

impl StateCodec for FaultyStateCodec {
    type State = FaultyRoundState;
    type Word = [u64; 4];

    fn pack(&self, s: &FaultyRoundState) -> [u64; 4] {
        debug_assert!(s.round <= MAX_PACKED_ROUND);
        let [w0, w1, w2] = self.inner.pack(&s.inner);
        [w0, w1 | (u64::from(s.round) << 52), w2, s.status]
    }

    fn unpack(&self, w: &[u64; 4]) -> FaultyRoundState {
        FaultyRoundState {
            inner: self.inner.unpack(&[w[0], w[1] & ((1 << 52) - 1), w[2]]),
            status: w[3],
            round: (w[1] >> 52) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, FaultPlan, FaultyRoundMdp, STOPPED};
    use pa_core::Automaton;
    use pa_lehmann_rabin::RoundConfig;

    #[test]
    fn round_caps_are_validated_once() {
        assert!(FaultyStateCodec::new(3, MAX_PACKED_ROUND).is_ok());
        assert!(matches!(
            FaultyStateCodec::new(3, MAX_PACKED_ROUND + 1),
            Err(FaultError::RoundCapUnencodable { .. })
        ));
        assert!(FaultyStateCodec::new(1, 1).is_err());
    }

    #[test]
    fn faulty_states_round_trip_through_the_codec() {
        let plan = FaultPlan::single(2, 1, FaultKind::CrashRestart { downtime: 3 }).unwrap();
        let m = FaultyRoundMdp::new(RoundConfig::new(4).unwrap(), plan).unwrap();
        let codec = FaultyStateCodec::new(4, m.round_cap()).unwrap();
        // Walk a few levels of the real model and round-trip every state.
        let mut frontier = m.start_states();
        for _ in 0..4 {
            let mut next = Vec::new();
            for s in &frontier {
                assert_eq!(codec.unpack(&codec.pack(s)), *s);
                for step in m.steps(s) {
                    next.extend(step.target.support().cloned());
                }
            }
            frontier = next;
            frontier.dedup();
        }
    }

    #[test]
    fn status_and_round_use_their_own_lanes() {
        let m = FaultyRoundMdp::new(
            RoundConfig::new(3).unwrap(),
            FaultPlan::single(1, 2, FaultKind::CrashStop).unwrap(),
        )
        .unwrap();
        let codec = FaultyStateCodec::new(3, m.round_cap()).unwrap();
        let s = &m.start_states()[0];
        assert_eq!(s.status_of(2), STOPPED);
        let w = codec.pack(s);
        assert_eq!(w[3], u64::from(STOPPED) << 8);
        assert_eq!(w[1] >> 52, 1, "round 1 in the high lane");
        assert_eq!(codec.unpack(&w), *s);
    }
}
