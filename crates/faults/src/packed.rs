//! Bit-packed encoding of [`FaultyRoundState`] for
//! [`pa_mdp::PackedSpace`].
//!
//! Extends [`RoundStateCodec`]'s three-word layout with one more word and
//! the spare bits of word 1:
//!
//! | word | bits | content |
//! |------|------|---------|
//! | 0–2 | — | the wrapped [`pa_lehmann_rabin::RoundState`], as in [`RoundStateCodec`] |
//! | 1 | `52 .. 64` | the 1-based round counter (saturated at the plan cap) |
//! | 3 | `0 .. 64` | per-process fault-status nibbles |
//!
//! The round counter saturates at `plan.max_round() + 1`, so the 12-bit
//! field is ample for any realistic plan; the cap is validated once at
//! codec construction ([`FaultError::RoundCapUnencodable`]) rather than
//! per pack.

use pa_lehmann_rabin::RoundStateCodec;
use pa_mdp::StateCodec;

use crate::{FaultError, FaultyRoundState};

/// Upper bound on the packable round cap (12 bits).
pub const MAX_PACKED_ROUND: u32 = 0xFFF;

/// Fixed-width codec for [`FaultyRoundState`]: four `u64` words per state.
#[derive(Debug, Clone, Copy)]
pub struct FaultyStateCodec {
    inner: RoundStateCodec,
}

impl FaultyStateCodec {
    /// A codec for rings of `n` whose round counters saturate at
    /// `round_cap` (use [`crate::FaultyRoundMdp::round_cap`]).
    ///
    /// # Errors
    ///
    /// [`FaultError::RoundCapUnencodable`] if `round_cap` exceeds
    /// [`MAX_PACKED_ROUND`]; ring-size errors from the inner codec.
    pub fn new(n: usize, round_cap: u32) -> Result<FaultyStateCodec, FaultError> {
        if round_cap > MAX_PACKED_ROUND {
            return Err(FaultError::RoundCapUnencodable { cap: round_cap });
        }
        Ok(FaultyStateCodec {
            inner: RoundStateCodec::new(n)?,
        })
    }

    /// A codec for analyses bounded by a time `horizon`: round counters
    /// stay within `horizon + 1` on any path a bounded query can
    /// distinguish, so the horizon itself must fit the packed round field.
    ///
    /// This is the constructor for horizon-driven pipelines (the
    /// out-of-core bench and example paths) that have no [`FaultPlan`] to
    /// derive a cap from: it turns a horizon too deep for the 12-bit
    /// field into the same typed error as an oversized plan cap — instead
    /// of the silent low-bit truncation an unchecked `pack` would commit.
    ///
    /// # Errors
    ///
    /// [`FaultError::RoundCapUnencodable`] if `horizon + 1` exceeds
    /// [`MAX_PACKED_ROUND`]; ring-size errors from the inner codec.
    pub fn for_horizon(n: usize, horizon: u32) -> Result<FaultyStateCodec, FaultError> {
        FaultyStateCodec::new(n, horizon.saturating_add(1))
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.inner.n()
    }
}

impl StateCodec for FaultyStateCodec {
    type State = FaultyRoundState;
    type Word = [u64; 4];

    fn pack(&self, s: &FaultyRoundState) -> [u64; 4] {
        debug_assert!(s.round <= MAX_PACKED_ROUND);
        let [w0, w1, w2] = self.inner.pack(&s.inner);
        [w0, w1 | (u64::from(s.round) << 52), w2, s.status]
    }

    fn unpack(&self, w: &[u64; 4]) -> FaultyRoundState {
        FaultyRoundState {
            inner: self.inner.unpack(&[w[0], w[1] & ((1 << 52) - 1), w[2]]),
            status: w[3],
            round: (w[1] >> 52) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, FaultPlan, FaultyRoundMdp, STOPPED};
    use pa_core::Automaton;
    use pa_lehmann_rabin::RoundConfig;

    #[test]
    fn round_caps_are_validated_once() {
        assert!(FaultyStateCodec::new(3, MAX_PACKED_ROUND).is_ok());
        assert!(matches!(
            FaultyStateCodec::new(3, MAX_PACKED_ROUND + 1),
            Err(FaultError::RoundCapUnencodable { .. })
        ));
        assert!(FaultyStateCodec::new(1, 1).is_err());
    }

    #[test]
    fn horizon_constructor_guards_the_packed_round_field() {
        assert!(FaultyStateCodec::for_horizon(3, MAX_PACKED_ROUND - 1).is_ok());
        assert!(matches!(
            FaultyStateCodec::for_horizon(3, MAX_PACKED_ROUND),
            Err(FaultError::RoundCapUnencodable {
                cap
            }) if cap == MAX_PACKED_ROUND + 1
        ));
        // Saturating arithmetic: an absurd horizon is a typed error, not
        // a wrap back into range.
        assert!(matches!(
            FaultyStateCodec::for_horizon(3, u32::MAX),
            Err(FaultError::RoundCapUnencodable { .. })
        ));
    }

    #[test]
    fn late_plan_caps_do_not_overflow_and_are_rejected_typed() {
        // A plan scripted at round u32::MAX must not wrap the model cap to
        // 0 (collapsing every round counter); the cap saturates and the
        // codec rejects it with the typed error instead of truncating.
        let plan = FaultPlan::single(u32::MAX, 0, FaultKind::CrashStop).unwrap();
        let m = FaultyRoundMdp::new(RoundConfig::new(3).unwrap(), plan).unwrap();
        assert_eq!(m.round_cap(), u32::MAX);
        assert!(matches!(
            FaultyStateCodec::new(3, m.round_cap()),
            Err(FaultError::RoundCapUnencodable { cap }) if cap == u32::MAX
        ));
    }

    #[test]
    fn faulty_states_round_trip_through_the_codec() {
        let plan = FaultPlan::single(2, 1, FaultKind::CrashRestart { downtime: 3 }).unwrap();
        let m = FaultyRoundMdp::new(RoundConfig::new(4).unwrap(), plan).unwrap();
        let codec = FaultyStateCodec::new(4, m.round_cap()).unwrap();
        // Walk a few levels of the real model and round-trip every state.
        let mut frontier = m.start_states();
        for _ in 0..4 {
            let mut next = Vec::new();
            for s in &frontier {
                assert_eq!(codec.unpack(&codec.pack(s)), *s);
                for step in m.steps(s) {
                    next.extend(step.target.support().cloned());
                }
            }
            frontier = next;
            frontier.dedup();
        }
    }

    #[test]
    fn status_and_round_use_their_own_lanes() {
        let m = FaultyRoundMdp::new(
            RoundConfig::new(3).unwrap(),
            FaultPlan::single(1, 2, FaultKind::CrashStop).unwrap(),
        )
        .unwrap();
        let codec = FaultyStateCodec::new(3, m.round_cap()).unwrap();
        let s = &m.start_states()[0];
        assert_eq!(s.status_of(2), STOPPED);
        let w = codec.pack(s);
        assert_eq!(w[3], u64::from(STOPPED) << 8);
        assert_eq!(w[1] >> 52, 1, "round 1 in the high lane");
        assert_eq!(codec.unpack(&w), *s);
    }
}
