//! The sampled tier over the faulty round model: Monte-Carlo estimates of
//! arrow probabilities and hitting times, cross-validated against the
//! exact checker where the exact checker can still run.
//!
//! Two modes:
//!
//! * [`sampled_arrow_under`] — the cross-validation mode. Runs the *same*
//!   fault-wrapped pipeline as [`crate::check_arrow_under`], additionally
//!   extracts the minimizing adversary's cost-indexed policy, and replays
//!   it with [`pa_mc::OptimalReplay`] from the worst start state. The
//!   estimand then *equals* the exact worst-case value, so the sampled
//!   99% interval must contain it — the property the `mc-smoke` CI gate
//!   enforces on `n = 3..5`.
//! * [`estimate_reach_uniform`] — the escape-hatch mode for rings the
//!   exact engine cannot hold (`n = 8` and beyond). No exploration at
//!   all: trajectories of the implicit faulty round model from the
//!   canonical all-trying start under the uniform-random adversary.

use pa_core::{Arrow, Automaton, SetExpr};
use pa_lehmann_rabin::{time_to_budget, Config, Pc, ProcState, RoundConfig, Side};
use pa_mc::{
    chain_target, estimate_reach, McConfig, McEstimate, OptimalReplay, UniformChain, UniformPolicy,
};
use pa_mdp::{Explore, Objective};
use pa_prob::stats::Z_99;
use pa_prob::{Prob, ProbInterval};

use crate::survival::arrow_model;
use crate::{faulty_round_cost, set_pred_under, FaultError, FaultPlan};

/// A sampled arrow check with its exact-engine anchor.
#[derive(Debug, Clone)]
pub struct SampledArrow {
    /// The arrow, rendered (`U —t→_p U'`).
    pub arrow: String,
    /// The claimed probability bound.
    pub claimed: f64,
    /// The exact worst-case value from the bounded query (the estimand).
    pub exact: f64,
    /// The worst start state the trajectories replay from.
    pub worst_state: String,
    /// The sampled accumulator.
    pub estimate: McEstimate,
    /// The 99% Wilson interval of the estimate.
    pub interval: ProbInterval,
    /// Whether the interval contains the exact value — the cross-
    /// validation verdict the CI gate hard-fails on.
    pub contains_exact: bool,
}

/// Samples an arrow claim under a fault plan by replaying the extracted
/// optimal (minimizing) adversary from the worst start state, and checks
/// the 99% interval against the exact value computed on the same model.
///
/// `mc.max_time` is overridden with the arrow's own time budget so the
/// trajectory semantics match the bounded query level for level. Returns
/// `None` when the arrow's source region is empty under the plan (the
/// claim is vacuous; there is nothing to sample).
///
/// # Errors
///
/// Region, plan-validation, exploration, analysis, and sampling errors.
pub fn sampled_arrow_under(
    cfg: RoundConfig,
    arrow: &Arrow,
    plan: &FaultPlan,
    limit: usize,
    mc: &McConfig,
) -> Result<Option<SampledArrow>, FaultError> {
    let Some((model, _states_checked)) = arrow_model(cfg, arrow, plan, limit)? else {
        return Ok(None);
    };
    let to = set_pred_under(arrow.to())?;
    let n = cfg.n;
    let explored = Explore::new(&model)
        .cost(faulty_round_cost)
        .limit(limit)
        .parallel()
        .run()?;
    let budget = time_to_budget(arrow.time());
    let analysis = explored
        .query_where(|s| to(&s.inner.config, s.crashed_mask(n)))
        .objective(Objective::MinProb)
        .horizon(budget)
        .with_policy()
        .run()?;
    let worst = explored
        .mdp
        .initial_states()
        .iter()
        .copied()
        .min_by(|&a, &b| {
            analysis
                .value(a)
                .partial_cmp(&analysis.value(b))
                .expect("reach probabilities are never NaN")
        })
        .expect("arrow model has at least one start state");
    let exact = analysis.value(worst);
    let policy = analysis
        .policy
        .as_ref()
        .expect("with_policy() query returns a policy");

    let replay = OptimalReplay {
        explored: &explored,
        policy,
    };
    let estimate = estimate_reach(
        &model,
        &explored.state(worst),
        |s| to(&s.inner.config, s.crashed_mask(n)),
        faulty_round_cost,
        &replay,
        &McConfig {
            max_time: budget,
            ..*mc
        },
    )?;
    let interval = estimate.interval(Z_99);
    Ok(Some(SampledArrow {
        arrow: arrow.to_string(),
        claimed: arrow.prob().value(),
        exact,
        worst_state: explored.state(worst).to_string(),
        estimate,
        interval,
        contains_exact: interval.contains(Prob::clamped(exact)),
    }))
}

/// The canonical all-trying configuration (`T`: every process at `Pc::F`),
/// the start state of the paper's composed `T —13→_{1/8} C` arrow and of
/// the escape-hatch estimates.
///
/// # Errors
///
/// Propagates ring-size validation errors.
pub fn trying_start(n: usize) -> Result<Config, FaultError> {
    let mut config = Config::initial(n)?;
    for i in 0..n {
        config = config.with_proc(i, ProcState::new(Pc::F, Side::Left));
    }
    Ok(config)
}

/// Escape-hatch estimate for rings the exact engine cannot hold: the
/// probability of reaching `target` within `within` time units from the
/// all-trying start, under the uniform-random adversary and `plan`'s
/// faults. Never explores — memory stays constant in `n`.
///
/// The estimand is the exact reachability value of the
/// [`pa_mc::UniformChain`] wrapping of the same model, which is how the
/// small-instance tests pin it.
///
/// # Errors
///
/// Region, plan-validation, and sampling errors.
pub fn estimate_reach_uniform(
    n: usize,
    plan: &FaultPlan,
    target: &SetExpr,
    within: u32,
    mc: &McConfig,
) -> Result<McEstimate, FaultError> {
    estimate_reach_uniform_from(n, plan, trying_start(n)?, target, within, mc)
}

/// [`estimate_reach_uniform`] from an explicit start configuration — the
/// form the hybrid survival map uses to sample a faulted arrow from a
/// canonical representative of its *source* region (fault plans break
/// rotation symmetry, so faulted columns cannot run on the quotient).
///
/// # Errors
///
/// Same as [`estimate_reach_uniform`].
pub fn estimate_reach_uniform_from(
    n: usize,
    plan: &FaultPlan,
    start: Config,
    target: &SetExpr,
    within: u32,
    mc: &McConfig,
) -> Result<McEstimate, FaultError> {
    let cfg = RoundConfig::new(n)?;
    let to = set_pred_under(target)?;
    let model = crate::FaultyRoundMdp::new(cfg, plan.clone())?.with_starts(vec![start]);
    let start = model
        .start_states()
        .into_iter()
        .next()
        .expect("faulty round model has a start state");
    Ok(estimate_reach(
        &model,
        &start,
        |s| to(&s.inner.config, s.crashed_mask(n)),
        faulty_round_cost,
        &UniformPolicy,
        &McConfig {
            max_time: within,
            ..*mc
        },
    )?)
}

/// The exact value of the [`estimate_reach_uniform`] estimand, computed
/// by exploring the [`UniformChain`] wrapping of the same model (on which
/// the uniform-random adversary is the *only* adversary, so the bounded
/// query's min and max coincide with the uniform-policy value).
///
/// Only feasible while the chain still fits `limit` states — this is the
/// small-instance anchor the sampled tier is cross-validated against.
///
/// # Errors
///
/// Region, plan-validation, exploration, and analysis errors.
pub fn exact_reach_uniform(
    n: usize,
    plan: &FaultPlan,
    target: &SetExpr,
    within: u32,
    limit: usize,
) -> Result<f64, FaultError> {
    let cfg = RoundConfig::new(n)?;
    let to = set_pred_under(target)?;
    let model = crate::FaultyRoundMdp::new(cfg, plan.clone())?.with_starts(vec![trying_start(n)?]);
    let chain = UniformChain::new(&model);
    let explored = Explore::new(&chain)
        .cost(UniformChain::<crate::FaultyRoundMdp>::cost(
            faulty_round_cost,
        ))
        .limit(limit)
        .parallel()
        .run()?;
    let mut pred =
        chain_target(|s: &crate::FaultyRoundState| to(&s.inner.config, s.crashed_mask(n)));
    let analysis = explored
        .query_where(|s| pred(s))
        .objective(Objective::MinProb)
        .horizon(within)
        .run()?;
    let start = explored
        .mdp
        .initial_states()
        .first()
        .copied()
        .expect("chain model has a start state");
    Ok(analysis.value(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_lehmann_rabin::{paper, regions};

    #[test]
    fn trying_start_is_in_t() {
        let c = trying_start(3).unwrap();
        assert!(regions::in_t(&c));
    }

    #[test]
    fn sampled_g_to_p_contains_exact_value_at_n3() {
        let (arrow, _why) = paper::all_arrows().remove(3);
        let cfg = RoundConfig::new(3).unwrap();
        let sampled = sampled_arrow_under(
            cfg,
            &arrow,
            &FaultPlan::none(),
            1_000_000,
            &McConfig::new(4_000, 42, 0),
        )
        .unwrap()
        .expect("G is non-empty on the fault-free ring");
        assert!(
            sampled.contains_exact,
            "interval {} must contain exact {}",
            sampled.interval, sampled.exact
        );
    }

    #[test]
    fn sampled_interval_contains_the_quotient_exact_value_at_n3_and_n4() {
        // The PR 7 containment gate, extended to the quotient path: the
        // quotient engine explores a different (orbit-collapsed, bit-
        // packed) model, yet computes the same estimand as the full-space
        // check the trajectories replay against — so its exact value must
        // land inside the sampled 99% Wilson interval too.
        let (arrow, _why) = paper::all_arrows().remove(3);
        let plan = FaultPlan::none();
        for n in [3usize, 4] {
            let cfg = RoundConfig::new(n).unwrap();
            let sampled =
                sampled_arrow_under(cfg, &arrow, &plan, 1_000_000, &McConfig::new(4_000, 42, 0))
                    .unwrap()
                    .expect("G is non-empty on the fault-free ring");
            let quotient =
                crate::check_arrow_under_quotient(cfg, &arrow, &plan, 1_000_000).unwrap();
            let exact = quotient.measured.lo().value();
            assert_eq!(
                exact.to_bits(),
                sampled.exact.to_bits(),
                "n={n}: quotient exact {exact} vs full exact {}",
                sampled.exact
            );
            assert!(
                sampled.interval.contains(Prob::clamped(exact)),
                "n={n}: interval {} must contain quotient-exact {exact}",
                sampled.interval
            );
        }
    }

    #[test]
    fn uniform_interval_contains_chain_exact_value_at_n3() {
        let target = SetExpr::named("C");
        let exact = exact_reach_uniform(3, &FaultPlan::none(), &target, 13, 1_000_000).unwrap();
        assert!(exact > 0.0 && exact <= 1.0, "nontrivial estimand: {exact}");
        let est = estimate_reach_uniform(
            3,
            &FaultPlan::none(),
            &target,
            13,
            &McConfig::new(4_000, 11, 0),
        )
        .unwrap();
        let interval = est.interval(Z_99);
        assert!(
            interval.contains(Prob::clamped(exact)),
            "interval {interval} must contain exact {exact}"
        );
    }

    #[test]
    fn arrow_intervals_achieve_nominal_coverage_across_100_seeds() {
        // One exploration per ring, then 100 independently seeded replays:
        // the 99% Wilson intervals must contain the exact value in at
        // least 96 of 100 (nominal coverage leaves about one expected
        // miss).
        let (arrow, _why) = paper::all_arrows().remove(3);
        let plan = FaultPlan::none();
        for n in [3usize, 4] {
            let cfg = RoundConfig::new(n).unwrap();
            let (model, _) = arrow_model(cfg, &arrow, &plan, 1_000_000)
                .unwrap()
                .expect("G is non-empty on the fault-free ring");
            let to = set_pred_under(arrow.to()).unwrap();
            let explored = Explore::new(&model)
                .cost(faulty_round_cost)
                .limit(1_000_000)
                .parallel()
                .run()
                .unwrap();
            let budget = time_to_budget(arrow.time());
            let analysis = explored
                .query_where(|s| to(&s.inner.config, s.crashed_mask(n)))
                .objective(Objective::MinProb)
                .horizon(budget)
                .with_policy()
                .run()
                .unwrap();
            let worst = explored
                .mdp
                .initial_states()
                .iter()
                .copied()
                .min_by(|&a, &b| analysis.value(a).partial_cmp(&analysis.value(b)).unwrap())
                .unwrap();
            let exact = analysis.value(worst);
            let replay = OptimalReplay {
                explored: &explored,
                policy: analysis.policy.as_ref().unwrap(),
            };
            let mut contained = 0;
            for seed in 0..100u64 {
                let estimate = estimate_reach(
                    &model,
                    &explored.state(worst),
                    |s| to(&s.inner.config, s.crashed_mask(n)),
                    faulty_round_cost,
                    &replay,
                    &McConfig::new(600, seed, budget),
                )
                .unwrap();
                if estimate.interval(Z_99).contains(Prob::clamped(exact)) {
                    contained += 1;
                }
            }
            assert!(
                contained >= 96,
                "n={n}: only {contained}/100 of the 99% intervals contained {exact}"
            );
        }
    }

    #[test]
    fn uniform_estimate_runs_without_exploring() {
        let est = estimate_reach_uniform(
            4,
            &FaultPlan::none(),
            &SetExpr::named("C"),
            13,
            &McConfig::new(500, 7, 0),
        )
        .unwrap();
        assert_eq!(est.trials(), 500);
        // Under Unit-Time scheduling some trajectories reach C by 13.
        assert!(est.hit_count() > 0);
    }
}
