//! Concurrency semantics of the metric primitives: every record issued by
//! any thread is observed exactly once in the final value, for each metric
//! kind. Runs in its own process, so it owns the global enablement flag;
//! the tests still serialize on a local mutex because the harness runs
//! them on parallel threads.

use std::sync::Mutex;
use std::time::Duration;

use pa_telemetry as telemetry;

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn with_enabled_registry(f: impl FnOnce()) {
    let _lock = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    telemetry::reset();
    f();
    telemetry::set_enabled(false);
}

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counter_adds_are_not_lost_across_threads() {
    with_enabled_registry(|| {
        let c = telemetry::counter("test.conc.counter");
        crossbeam::thread::scope(|scope| {
            for _ in 0..THREADS {
                let c = &c;
                scope.spawn(move |_| {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(c.value(), THREADS as u64 * PER_THREAD);
    });
}

#[test]
fn histogram_count_and_sum_are_exact_across_threads() {
    with_enabled_registry(|| {
        let h = telemetry::histogram("test.conc.histogram");
        crossbeam::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let h = &h;
                scope.spawn(move |_| {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        })
        .expect("scope");
        let n = THREADS as u64 * PER_THREAD;
        assert_eq!(h.count(), n);
        assert_eq!(h.sum(), n * (n - 1) / 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), n - 1);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(bucket_total, n, "every observation lands in one bucket");
    });
}

#[test]
fn timer_spans_from_threads_all_register() {
    with_enabled_registry(|| {
        let spans_per_thread = 50u64;
        crossbeam::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(move |_| {
                    for _ in 0..spans_per_thread {
                        let _span = telemetry::span("test.conc.timer");
                    }
                });
            }
        })
        .expect("scope");
        let t = telemetry::timer("test.conc.timer");
        assert_eq!(t.count(), THREADS as u64 * spans_per_thread);
        assert!(t.max_nanos() <= t.total_nanos());
    });
}

#[test]
fn timer_record_accumulates_exactly() {
    with_enabled_registry(|| {
        let t = telemetry::timer("test.conc.timer_exact");
        crossbeam::thread::scope(|scope| {
            for _ in 0..THREADS {
                let t = &t;
                scope.spawn(move |_| {
                    for _ in 0..100 {
                        t.record(Duration::from_nanos(7));
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(t.count(), THREADS as u64 * 100);
        assert_eq!(t.total_nanos(), THREADS as u64 * 100 * 7);
        assert_eq!(t.max_nanos(), 7);
    });
}

#[test]
fn series_under_contention_keeps_every_push_up_to_cap() {
    with_enabled_registry(|| {
        let s = telemetry::series("test.conc.series");
        let pushes = (telemetry::SERIES_CAP / THREADS) as u64;
        crossbeam::thread::scope(|scope| {
            for _ in 0..THREADS {
                let s = &s;
                scope.spawn(move |_| {
                    for i in 0..pushes {
                        s.push(i as f64);
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(s.values().len(), THREADS * pushes as usize);
        assert_eq!(s.truncated(), 0);
    });
}

#[test]
fn gauge_set_max_converges_to_global_maximum() {
    with_enabled_registry(|| {
        let g = telemetry::gauge("test.conc.gauge");
        crossbeam::thread::scope(|scope| {
            for t in 0..THREADS as i64 {
                let g = &g;
                scope.spawn(move |_| {
                    for i in 0..1000 {
                        g.set_max(t * 1000 + i);
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(g.value(), (THREADS as i64 - 1) * 1000 + 999);
    });
}

#[test]
fn concurrent_registration_yields_one_metric_per_name() {
    with_enabled_registry(|| {
        crossbeam::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(move |_| {
                    for _ in 0..100 {
                        telemetry::counter("test.conc.registration").inc();
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(
            telemetry::counter("test.conc.registration").value(),
            THREADS as u64 * 100,
            "all threads resolved the same counter"
        );
    });
}
