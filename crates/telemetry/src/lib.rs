//! Observability layer for the `timebounds` workspace.
//!
//! The paper's claims are quantitative, so the reproduction needs to *see*
//! what the engines actually did: how many Jacobi sweeps value iteration
//! ran and how the residual fell, how wide each BFS frontier was, how many
//! Monte-Carlo trials fired in which round. This crate is the substrate all
//! of that reports through:
//!
//! * [`Counter`] — monotone `u64` event counts (sweeps, states, trials).
//! * [`Gauge`] — signed instantaneous values with a `set_max` reduction
//!   (peak frontier width, shard imbalance).
//! * [`Timer`] / [`Span`] — monotonic wall-clock accumulation; a [`span`]
//!   guard records its elapsed time into the named timer on drop.
//! * [`Histogram`] — lock-free power-of-two-bucketed `u64` distributions
//!   (rounds-to-fire, frontier widths).
//! * [`Series`] — an ordered `f64` trajectory (per-sweep residuals).
//!
//! All metrics live in name-keyed registries and are looked up with
//! [`counter`], [`gauge`], [`timer`], [`histogram`] and [`series`].
//! Handles are `Arc`s: they stay valid across [`reset`] (which zeroes
//! values in place) and can be cached or re-fetched freely. By default the
//! lookups resolve against a process-global registry; a thread that has
//! entered a [`TelemetryScope`] records into that scope's private registry
//! instead (see below).
//!
//! # Enablement and cost
//!
//! Recording is gated on a single process-global flag ([`set_enabled`],
//! initially taken from the `PA_TELEMETRY` environment variable, default
//! off). While disabled, every record call is one relaxed atomic load and a
//! predicted branch — no locks, no clock reads, no allocation — so
//! instrumented hot paths run at full speed. `tables --bench-json` measures
//! this as part of the benchmark artifact (the `telemetry_overhead` block).
//!
//! # Snapshots
//!
//! [`snapshot`] freezes every registered metric into a
//! [`TelemetrySnapshot`], ordered deterministically by name and
//! serializable to JSON through the workspace serde shim. `pa-bench` embeds
//! one into `BENCH_mdp.json` so the perf trajectory carries engine
//! internals, not just timings.
//!
//! # Scopes and the reset contract
//!
//! The global registry accumulates forever, which bleeds counters across
//! back-to-back analyses. Two non-destructive remedies exist:
//!
//! * **[`TelemetryScope`]** — a private, named registry. While a thread
//!   holds the guard from [`TelemetryScope::enter`], its metric lookups
//!   resolve into the scope instead of the global registry, so concurrent
//!   analyses (one scope per job, as in `pa-batch`) cannot bleed into each
//!   other by construction.
//! * **[`TelemetrySnapshot::delta_since`]** — diff two snapshots to get
//!   exactly what was recorded in between, without zeroing anything; this
//!   is how a long-running driver exports incremental metrics while
//!   engines keep running.
//!
//! Destructive [`reset`] remains for quiescent single-workload processes;
//! its documentation spells out the full contract.
//!
//! # Example
//!
//! ```
//! use pa_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! telemetry::reset();
//! let sweeps = telemetry::counter("vi.sweeps");
//! for _ in 0..4 {
//!     let _span = telemetry::span("vi.sweep_seconds");
//!     sweeps.inc();
//! }
//! telemetry::series("vi.residual").push(0.5);
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("vi.sweeps"), Some(4));
//! telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod scope;
mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, Series, Span, Timer, SERIES_CAP};
pub use registry::{
    counter, enabled, gauge, histogram, reset, series, set_enabled, snapshot, span, timer,
};
pub use scope::{ScopeGuard, TelemetryScope};
pub use snapshot::{
    CounterSnapshot, GaugeSnapshot, HistogramBucket, HistogramSnapshot, SeriesSnapshot,
    TelemetrySnapshot, TimerSnapshot,
};
