//! Point-in-time, JSON-serializable views of the registry.

use serde::Serialize;

use crate::metrics::{Counter, Gauge, Histogram, Series, Timer};

/// A frozen counter value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// A frozen gauge value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// A frozen timer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimerSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Total accumulated seconds.
    pub total_seconds: f64,
    /// Mean seconds per span (0 when empty).
    pub mean_seconds: f64,
    /// Longest single span in seconds.
    pub max_seconds: f64,
}

/// One histogram bucket: observations `<= le` not counted by any earlier
/// bucket.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// A frozen histogram.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets in increasing bound order.
    pub buckets: Vec<HistogramBucket>,
}

/// A frozen series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesSnapshot {
    /// Metric name.
    pub name: String,
    /// The recorded trajectory, in push order.
    pub values: Vec<f64>,
    /// Observations dropped at [`crate::SERIES_CAP`].
    pub truncated: u64,
}

/// Every registered metric, frozen and sorted by name. Serializes to the
/// `telemetry` block of `BENCH_mdp.json` via the workspace serde shim.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetrySnapshot {
    /// Whether recording was enabled when the snapshot was taken.
    pub enabled: bool,
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All timers.
    pub timers: Vec<TimerSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// All series.
    pub series: Vec<SeriesSnapshot>,
}

impl TelemetrySnapshot {
    pub(crate) fn empty(enabled: bool) -> TelemetrySnapshot {
        TelemetrySnapshot {
            enabled,
            counters: Vec::new(),
            gauges: Vec::new(),
            timers: Vec::new(),
            histograms: Vec::new(),
            series: Vec::new(),
        }
    }

    pub(crate) fn push_counter(&mut self, name: &str, c: &Counter) {
        self.counters.push(CounterSnapshot {
            name: name.to_string(),
            value: c.value(),
        });
    }

    pub(crate) fn push_gauge(&mut self, name: &str, g: &Gauge) {
        self.gauges.push(GaugeSnapshot {
            name: name.to_string(),
            value: g.value(),
        });
    }

    pub(crate) fn push_timer(&mut self, name: &str, t: &Timer) {
        let count = t.count();
        let total_seconds = t.total_nanos() as f64 / 1e9;
        self.timers.push(TimerSnapshot {
            name: name.to_string(),
            count,
            total_seconds,
            mean_seconds: if count == 0 {
                0.0
            } else {
                total_seconds / count as f64
            },
            max_seconds: t.max_nanos() as f64 / 1e9,
        });
    }

    pub(crate) fn push_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.push(HistogramSnapshot {
            name: name.to_string(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h
                .nonzero_buckets()
                .into_iter()
                .map(|(le, count)| HistogramBucket { le, count })
                .collect(),
        });
    }

    pub(crate) fn push_series(&mut self, name: &str, s: &Series) {
        self.series.push(SeriesSnapshot {
            name: name.to_string(),
            values: s.values(),
            truncated: s.truncated(),
        });
    }

    pub(crate) fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.timers.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        self.series.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// The value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of a gauge by name, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The series trajectory by name, if registered.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The timer by name, if registered.
    pub fn timer(&self, name: &str) -> Option<&TimerSnapshot> {
        self.timers.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes_to_json() {
        let snap = TelemetrySnapshot {
            enabled: true,
            counters: vec![CounterSnapshot {
                name: "a".into(),
                value: 3,
            }],
            gauges: vec![GaugeSnapshot {
                name: "g".into(),
                value: -2,
            }],
            timers: vec![TimerSnapshot {
                name: "t".into(),
                count: 1,
                total_seconds: 0.5,
                mean_seconds: 0.5,
                max_seconds: 0.5,
            }],
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                count: 2,
                sum: 4,
                min: 1,
                max: 3,
                buckets: vec![HistogramBucket { le: 3, count: 2 }],
            }],
            series: vec![SeriesSnapshot {
                name: "s".into(),
                values: vec![0.5, 0.25],
                truncated: 0,
            }],
        };
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""enabled":true"#));
        assert!(json.contains(r#""counters":[{"name":"a","value":3}]"#));
        assert!(json.contains(r#""buckets":[{"le":3,"count":2}]"#));
        assert!(json.contains(r#""values":[0.5,0.25]"#));
    }

    #[test]
    fn timer_mean_handles_empty() {
        let t = Timer::default();
        let mut snap = TelemetrySnapshot::empty(false);
        snap.push_timer("t", &t);
        assert_eq!(snap.timers[0].mean_seconds, 0.0);
        assert_eq!(snap.timer("t").unwrap().count, 0);
    }
}
