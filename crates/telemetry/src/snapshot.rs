//! Point-in-time, JSON-serializable views of the registry.

use serde::Serialize;

use crate::metrics::{Counter, Gauge, Histogram, Series, Timer};

/// A frozen counter value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// A frozen gauge value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// A frozen timer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimerSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Total accumulated seconds.
    pub total_seconds: f64,
    /// Mean seconds per span (0 when empty).
    pub mean_seconds: f64,
    /// Longest single span in seconds.
    pub max_seconds: f64,
}

/// One histogram bucket: observations `<= le` not counted by any earlier
/// bucket.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// A frozen histogram.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets in increasing bound order.
    pub buckets: Vec<HistogramBucket>,
}

/// A frozen series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesSnapshot {
    /// Metric name.
    pub name: String,
    /// The recorded trajectory, in push order.
    pub values: Vec<f64>,
    /// Observations dropped at [`crate::SERIES_CAP`].
    pub truncated: u64,
}

/// Every registered metric, frozen and sorted by name. Serializes to the
/// `telemetry` block of `BENCH_mdp.json` via the workspace serde shim.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetrySnapshot {
    /// Whether recording was enabled when the snapshot was taken.
    pub enabled: bool,
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All timers.
    pub timers: Vec<TimerSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// All series.
    pub series: Vec<SeriesSnapshot>,
}

impl TelemetrySnapshot {
    pub(crate) fn empty(enabled: bool) -> TelemetrySnapshot {
        TelemetrySnapshot {
            enabled,
            counters: Vec::new(),
            gauges: Vec::new(),
            timers: Vec::new(),
            histograms: Vec::new(),
            series: Vec::new(),
        }
    }

    pub(crate) fn push_counter(&mut self, name: &str, c: &Counter) {
        self.counters.push(CounterSnapshot {
            name: name.to_string(),
            value: c.value(),
        });
    }

    pub(crate) fn push_gauge(&mut self, name: &str, g: &Gauge) {
        self.gauges.push(GaugeSnapshot {
            name: name.to_string(),
            value: g.value(),
        });
    }

    pub(crate) fn push_timer(&mut self, name: &str, t: &Timer) {
        let count = t.count();
        let total_seconds = t.total_nanos() as f64 / 1e9;
        self.timers.push(TimerSnapshot {
            name: name.to_string(),
            count,
            total_seconds,
            mean_seconds: if count == 0 {
                0.0
            } else {
                total_seconds / count as f64
            },
            max_seconds: t.max_nanos() as f64 / 1e9,
        });
    }

    pub(crate) fn push_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.push(HistogramSnapshot {
            name: name.to_string(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h
                .nonzero_buckets()
                .into_iter()
                .map(|(le, count)| HistogramBucket { le, count })
                .collect(),
        });
    }

    pub(crate) fn push_series(&mut self, name: &str, s: &Series) {
        self.series.push(SeriesSnapshot {
            name: name.to_string(),
            values: s.values(),
            truncated: s.truncated(),
        });
    }

    pub(crate) fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.timers.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        self.series.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// The value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of a gauge by name, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The series trajectory by name, if registered.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The timer by name, if registered.
    pub fn timer(&self, name: &str) -> Option<&TimerSnapshot> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// The incremental change since `baseline`: what was recorded between
    /// the two snapshots, without ever resetting the live registry (see
    /// the reset contract on [`crate::reset`]).
    ///
    /// Per metric family:
    ///
    /// * **Counters, timers, histograms** — accumulation counts are
    ///   subtracted (saturating, so a reset between the snapshots degrades
    ///   to the full current value rather than wrapping); entries that did
    ///   not change are dropped. A timer's `max_seconds` and a histogram's
    ///   `min`/`max` are lifetime extrema, not window extrema — they carry
    ///   the *current* value, the one field that cannot be differenced.
    /// * **Gauges** — instantaneous values; the delta keeps the current
    ///   value and drops gauges that did not move.
    /// * **Series** — append-only trajectories; the delta is the suffix
    ///   pushed since the baseline.
    ///
    /// Metrics absent from the baseline (registered later) appear whole.
    pub fn delta_since(&self, baseline: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut delta = TelemetrySnapshot::empty(self.enabled);
        for c in &self.counters {
            let before = baseline.counter(&c.name).unwrap_or(0);
            let value = c.value.saturating_sub(before);
            if value > 0 {
                delta.counters.push(CounterSnapshot {
                    name: c.name.clone(),
                    value,
                });
            }
        }
        for g in &self.gauges {
            if baseline.gauge(&g.name) != Some(g.value) {
                delta.gauges.push(g.clone());
            }
        }
        for t in &self.timers {
            let (count0, total0) = baseline
                .timer(&t.name)
                .map_or((0, 0.0), |b| (b.count, b.total_seconds));
            let count = t.count.saturating_sub(count0);
            if count == 0 {
                continue;
            }
            let total_seconds = (t.total_seconds - total0).max(0.0);
            delta.timers.push(TimerSnapshot {
                name: t.name.clone(),
                count,
                total_seconds,
                mean_seconds: total_seconds / count as f64,
                max_seconds: t.max_seconds,
            });
        }
        for h in &self.histograms {
            let base = baseline.histogram(&h.name);
            let count = h.count.saturating_sub(base.map_or(0, |b| b.count));
            if count == 0 {
                continue;
            }
            let buckets = h
                .buckets
                .iter()
                .filter_map(|b| {
                    let before = base
                        .and_then(|bh| bh.buckets.iter().find(|x| x.le == b.le))
                        .map_or(0, |x| x.count);
                    let c = b.count.saturating_sub(before);
                    (c > 0).then_some(HistogramBucket { le: b.le, count: c })
                })
                .collect();
            delta.histograms.push(HistogramSnapshot {
                name: h.name.clone(),
                count,
                sum: h.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                min: h.min,
                max: h.max,
                buckets,
            });
        }
        for s in &self.series {
            let base = baseline.series(&s.name);
            let skip = base.map_or(0, |b| b.values.len().min(s.values.len()));
            let values: Vec<f64> = s.values[skip..].to_vec();
            let truncated = s.truncated.saturating_sub(base.map_or(0, |b| b.truncated));
            if !values.is_empty() || truncated > 0 {
                delta.series.push(SeriesSnapshot {
                    name: s.name.clone(),
                    values,
                    truncated,
                });
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes_to_json() {
        let snap = TelemetrySnapshot {
            enabled: true,
            counters: vec![CounterSnapshot {
                name: "a".into(),
                value: 3,
            }],
            gauges: vec![GaugeSnapshot {
                name: "g".into(),
                value: -2,
            }],
            timers: vec![TimerSnapshot {
                name: "t".into(),
                count: 1,
                total_seconds: 0.5,
                mean_seconds: 0.5,
                max_seconds: 0.5,
            }],
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                count: 2,
                sum: 4,
                min: 1,
                max: 3,
                buckets: vec![HistogramBucket { le: 3, count: 2 }],
            }],
            series: vec![SeriesSnapshot {
                name: "s".into(),
                values: vec![0.5, 0.25],
                truncated: 0,
            }],
        };
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""enabled":true"#));
        assert!(json.contains(r#""counters":[{"name":"a","value":3}]"#));
        assert!(json.contains(r#""buckets":[{"le":3,"count":2}]"#));
        assert!(json.contains(r#""values":[0.5,0.25]"#));
    }

    #[test]
    fn delta_subtracts_counts_and_keeps_changes_only() {
        let mut before = TelemetrySnapshot::empty(true);
        before.counters.push(CounterSnapshot {
            name: "steady".into(),
            value: 5,
        });
        before.counters.push(CounterSnapshot {
            name: "moving".into(),
            value: 2,
        });
        before.gauges.push(GaugeSnapshot {
            name: "level".into(),
            value: 7,
        });
        before.timers.push(TimerSnapshot {
            name: "t".into(),
            count: 2,
            total_seconds: 1.0,
            mean_seconds: 0.5,
            max_seconds: 0.8,
        });
        let mut after = before.clone();
        after.counters[1].value = 9;
        after.counters.push(CounterSnapshot {
            name: "fresh".into(),
            value: 4,
        });
        after.timers[0] = TimerSnapshot {
            name: "t".into(),
            count: 6,
            total_seconds: 3.0,
            mean_seconds: 0.5,
            max_seconds: 0.9,
        };
        let d = after.delta_since(&before);
        assert_eq!(d.counter("steady"), None, "unchanged counters are dropped");
        assert_eq!(d.counter("moving"), Some(7));
        assert_eq!(d.counter("fresh"), Some(4), "new metrics appear whole");
        assert_eq!(d.gauge("level"), None, "unmoved gauges are dropped");
        let t = d.timer("t").unwrap();
        assert_eq!(t.count, 4);
        assert!((t.total_seconds - 2.0).abs() < 1e-12);
        assert!((t.mean_seconds - 0.5).abs() < 1e-12);
        assert_eq!(t.max_seconds, 0.9, "max carries the current extremum");
    }

    #[test]
    fn delta_diffs_histograms_per_bucket_and_series_by_suffix() {
        let mut before = TelemetrySnapshot::empty(true);
        before.histograms.push(HistogramSnapshot {
            name: "h".into(),
            count: 3,
            sum: 6,
            min: 1,
            max: 4,
            buckets: vec![
                HistogramBucket { le: 1, count: 1 },
                HistogramBucket { le: 4, count: 2 },
            ],
        });
        before.series.push(SeriesSnapshot {
            name: "s".into(),
            values: vec![1.0, 0.5],
            truncated: 0,
        });
        let mut after = before.clone();
        after.histograms[0].count = 5;
        after.histograms[0].sum = 22;
        after.histograms[0].max = 8;
        after.histograms[0].buckets = vec![
            HistogramBucket { le: 1, count: 1 },
            HistogramBucket { le: 4, count: 3 },
            HistogramBucket { le: 8, count: 1 },
        ];
        after.series[0].values.push(0.25);
        let d = after.delta_since(&before);
        let h = d.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 16);
        assert_eq!(
            h.buckets,
            vec![
                HistogramBucket { le: 4, count: 1 },
                HistogramBucket { le: 8, count: 1 },
            ],
            "only buckets that grew survive, with differenced counts"
        );
        assert_eq!(d.series("s").unwrap().values, vec![0.25]);
        let none = after.delta_since(&after);
        assert!(none.histograms.is_empty() && none.series.is_empty());
    }

    #[test]
    fn timer_mean_handles_empty() {
        let t = Timer::default();
        let mut snap = TelemetrySnapshot::empty(false);
        snap.push_timer("t", &t);
        assert_eq!(snap.timers[0].mean_seconds, 0.0);
        assert_eq!(snap.timer("t").unwrap().count, 0);
    }
}
