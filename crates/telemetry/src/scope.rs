//! Scoped metric registries: per-analysis namespaces with no cross-job
//! bleed.
//!
//! A [`TelemetryScope`] owns a private [`crate::registry`]-style metric
//! map. While a thread holds a [`ScopeGuard`] (from
//! [`TelemetryScope::enter`]), every metric lookup made *on that thread*
//! through the crate's free functions ([`crate::counter`],
//! [`crate::histogram`], …) resolves into the scope's map instead of the
//! process-global registry. Instrumented library code is oblivious: the
//! same static metric names simply land in the innermost active scope.
//!
//! Scopes nest. Entering scope B while A is active redirects recording to
//! B until B's guard drops, at which point A is active again — this is how
//! the batch driver attributes model-cache *build* work to the cache's own
//! scope rather than to whichever job happened to trigger the build.
//!
//! # Threading contract
//!
//! The scope stack is **thread-local**: threads spawned while a scope is
//! active (e.g. by a parallel engine) start with an empty stack and record
//! into the global registry. Callers that need complete per-scope
//! attribution should run engines single-threaded inside the scope (the
//! batch driver parallelizes across jobs, not inside them). The
//! [`TelemetryScope`] handle itself is `Send + Sync` — one scope may be
//! entered from several threads, each holding its own guard; the shared
//! metric map is concurrency-safe.
//!
//! Recording is still gated on the process-wide [`crate::enabled`] flag: a
//! scope chooses *where* records land, the flag chooses *whether* any are
//! made.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::registry::{self, MetricMap};
use crate::snapshot::TelemetrySnapshot;

struct ScopeInner {
    name: String,
    map: MetricMap,
}

thread_local! {
    static STACK: RefCell<Vec<Arc<ScopeInner>>> = const { RefCell::new(Vec::new()) };
}

/// Resolves the calling thread's active metric map: the innermost entered
/// scope, or the process-global registry when no scope is active.
pub(crate) fn with_active<R>(f: impl FnOnce(&MetricMap) -> R) -> R {
    STACK.with(|stack| {
        let stack = stack.borrow();
        match stack.last() {
            Some(scope) => f(&scope.map),
            None => f(registry::global()),
        }
    })
}

/// A named, isolated metric registry; see the module-level docs above
/// for the push/pop discipline.
///
/// Cloning is shallow: clones share the same underlying metric map, so a
/// scope can be entered from several worker threads at once.
#[derive(Clone)]
pub struct TelemetryScope {
    inner: Arc<ScopeInner>,
}

impl TelemetryScope {
    /// Creates an empty scope. Nothing records into it until a thread
    /// [`enter`](TelemetryScope::enter)s it.
    pub fn new(name: impl Into<String>) -> TelemetryScope {
        TelemetryScope {
            inner: Arc::new(ScopeInner {
                name: name.into(),
                map: MetricMap::default(),
            }),
        }
    }

    /// The scope's name (a label for reports; not part of metric names).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Makes this scope the calling thread's recording target until the
    /// returned guard is dropped. Guards nest and must drop in reverse
    /// entry order, which Rust's drop order gives for stack-held guards.
    pub fn enter(&self) -> ScopeGuard {
        STACK.with(|stack| stack.borrow_mut().push(self.inner.clone()));
        ScopeGuard {
            entered: self.inner.clone(),
            _not_send: PhantomData,
        }
    }

    /// Freezes the scope's metrics into a deterministic, name-sorted
    /// [`TelemetrySnapshot`].
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.inner.map.snapshot(registry::enabled())
    }

    /// Zeroes the scope's metrics in place; handles stay valid. Same
    /// contract as the global [`crate::reset`], but confined to this scope.
    pub fn reset(&self) {
        self.inner.map.reset();
    }
}

impl std::fmt::Debug for TelemetryScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryScope")
            .field("name", &self.inner.name)
            .finish_non_exhaustive()
    }
}

/// Keeps a [`TelemetryScope`] active on the current thread; leaving is
/// dropping. Deliberately `!Send`: a guard must be dropped on the thread
/// that created it, since the scope stack is thread-local.
pub struct ScopeGuard {
    entered: Arc<ScopeInner>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let popped = stack.borrow_mut().pop();
            debug_assert!(
                popped.is_some_and(|top| Arc::ptr_eq(&top, &self.entered)),
                "scope guards dropped out of order"
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::test_guard;

    #[test]
    fn scoped_records_do_not_bleed() {
        let _g = test_guard(true);
        crate::counter("scope.test.bleed").reset();
        let a = TelemetryScope::new("a");
        let b = TelemetryScope::new("b");
        {
            let _in_a = a.enter();
            crate::counter("scope.test.bleed").add(2);
        }
        {
            let _in_b = b.enter();
            crate::counter("scope.test.bleed").add(5);
        }
        assert_eq!(a.snapshot().counter("scope.test.bleed"), Some(2));
        assert_eq!(b.snapshot().counter("scope.test.bleed"), Some(5));
        assert_eq!(
            crate::counter("scope.test.bleed").value(),
            0,
            "global registry untouched while scopes were active"
        );
    }

    #[test]
    fn scopes_nest_and_restore() {
        let _g = test_guard(true);
        let outer = TelemetryScope::new("outer");
        let inner = TelemetryScope::new("inner");
        let _in_outer = outer.enter();
        crate::counter("scope.test.nest").inc();
        {
            let _in_inner = inner.enter();
            crate::counter("scope.test.nest").add(10);
        }
        crate::counter("scope.test.nest").inc();
        assert_eq!(outer.snapshot().counter("scope.test.nest"), Some(2));
        assert_eq!(inner.snapshot().counter("scope.test.nest"), Some(10));
    }

    #[test]
    fn scope_spans_and_reset() {
        let _g = test_guard(true);
        let scope = TelemetryScope::new("spans");
        {
            let _in = scope.enter();
            let _span = crate::span("scope.test.timer");
        }
        assert_eq!(scope.snapshot().timer("scope.test.timer").unwrap().count, 1);
        scope.reset();
        assert_eq!(scope.snapshot().timer("scope.test.timer").unwrap().count, 0);
    }

    #[test]
    fn disabled_flag_gates_scoped_recording() {
        let _g = test_guard(false);
        let scope = TelemetryScope::new("off");
        let _in = scope.enter();
        crate::counter("scope.test.off").inc();
        assert_eq!(scope.snapshot().counter("scope.test.off"), Some(0));
    }

    #[test]
    fn shared_scope_collects_from_many_threads() {
        let _g = test_guard(true);
        let scope = TelemetryScope::new("shared");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let scope = scope.clone();
                s.spawn(move || {
                    let _in = scope.enter();
                    crate::counter("scope.test.multi").add(3);
                });
            }
        });
        assert_eq!(scope.snapshot().counter("scope.test.multi"), Some(12));
    }
}
