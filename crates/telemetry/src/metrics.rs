//! The metric primitives. All of them are internally synchronized
//! (atomics, or a mutex for [`Series`]) and check the global enablement
//! flag on every record call, so instrumented code can hold handles and
//! record unconditionally.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::registry::enabled;

/// Values beyond this many entries are dropped from a [`Series`] (the
/// `truncated` count records how many); keeps an unbounded trajectory from
/// growing without limit in a long-running process.
pub const SERIES_CAP: usize = 16_384;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` exceeds the current value.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Accumulated wall-clock time of a named operation.
#[derive(Debug, Default)]
pub struct Timer {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Timer {
    /// Records one observation (no-op while telemetry is disabled).
    pub fn record(&self, elapsed: Duration) {
        if !enabled() {
            return;
        }
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total accumulated nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos.load(Ordering::Relaxed)
    }

    /// Largest single observation in nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
    }
}

/// A drop guard that records its lifetime into a [`Timer`].
///
/// Created by [`crate::span`]. While telemetry is disabled the guard is
/// inert: it neither reads the clock nor touches the registry.
#[derive(Debug)]
pub struct Span {
    running: Option<(Arc<Timer>, Instant)>,
}

impl Span {
    pub(crate) fn started(timer: Arc<Timer>) -> Span {
        Span {
            running: Some((timer, Instant::now())),
        }
    }

    pub(crate) fn disabled() -> Span {
        Span { running: None }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((timer, start)) = self.running.take() {
            timer.record(start.elapsed());
        }
    }
}

/// Number of histogram buckets: bucket `i < 64` counts values whose
/// bit-length is `i` (i.e. `v == 0` lands in bucket 0, otherwise bucket
/// `64 - v.leading_zeros()`), giving power-of-two-ish resolution over the
/// whole `u64` range without configuration.
const BUCKETS: usize = 65;

/// A lock-free histogram of `u64` observations with power-of-two buckets.
///
/// Alongside the buckets it tracks count, sum, min and max, so snapshots
/// can report exact means and ranges even though bucket edges are coarse.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index of a value: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (`2^i - 1`, saturating).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one observation (no-op while telemetry is disabled).
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The non-empty buckets as `(inclusive_upper_bound, count)` pairs in
    /// increasing bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper_bound(i), c))
            })
            .collect()
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An ordered trajectory of `f64` observations (e.g. the residual after
/// each value-iteration sweep). Pushes past [`SERIES_CAP`] are counted but
/// dropped.
#[derive(Debug, Default)]
pub struct Series {
    values: Mutex<Vec<f64>>,
    truncated: AtomicU64,
}

impl Series {
    /// Appends one observation (no-op while telemetry is disabled).
    pub fn push(&self, v: f64) {
        if !enabled() {
            return;
        }
        let mut values = self.values.lock().expect("series mutex poisoned");
        if values.len() < SERIES_CAP {
            values.push(v);
        } else {
            self.truncated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A copy of the recorded trajectory.
    pub fn values(&self) -> Vec<f64> {
        self.values.lock().expect("series mutex poisoned").clone()
    }

    /// Number of observations dropped at the cap.
    pub fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.values.lock().expect("series mutex poisoned").clear();
        self.truncated.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::test_guard;

    #[test]
    fn bucket_edges_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound is >= the value.
        for v in [0u64, 1, 5, 1024, 1 << 40, u64::MAX] {
            assert!(bucket_upper_bound(bucket_of(v)) >= v);
        }
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _g = test_guard(false);
        let c = Counter::default();
        c.add(5);
        assert_eq!(c.value(), 0);
        let h = Histogram::default();
        h.record(9);
        assert_eq!(h.count(), 0);
        let s = Series::default();
        s.push(1.0);
        assert!(s.values().is_empty());
        let g = Gauge::default();
        g.set(7);
        g.set_max(9);
        assert_eq!(g.value(), 0);
        let t = Timer::default();
        t.record(Duration::from_millis(1));
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn histogram_tracks_exact_summary() {
        let _g = test_guard(true);
        let h = Histogram::default();
        for v in [0u64, 1, 3, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        let buckets = h.nonzero_buckets();
        // 0 -> le 0; 1 -> le 1; 3,3 -> le 3; 100 -> le 127.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (127, 1)]);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn series_caps_and_counts_truncation() {
        let _g = test_guard(true);
        let s = Series::default();
        for i in 0..(SERIES_CAP + 3) {
            s.push(i as f64);
        }
        assert_eq!(s.values().len(), SERIES_CAP);
        assert_eq!(s.truncated(), 3);
        s.reset();
        assert!(s.values().is_empty());
        assert_eq!(s.truncated(), 0);
    }

    #[test]
    fn gauge_set_max_is_monotone() {
        let _g = test_guard(true);
        let g = Gauge::default();
        g.set_max(4);
        g.set_max(2);
        assert_eq!(g.value(), 4);
        g.add(-1);
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn timer_accumulates_and_maxes() {
        let _g = test_guard(true);
        let t = Timer::default();
        t.record(Duration::from_nanos(10));
        t.record(Duration::from_nanos(30));
        assert_eq!(t.count(), 2);
        assert_eq!(t.total_nanos(), 40);
        assert_eq!(t.max_nanos(), 30);
    }
}
