//! The process-global metric registry and enablement flag.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, Series, Span, Timer};
use crate::snapshot::TelemetrySnapshot;

/// Tri-state enablement: 0 = not yet initialized from the environment,
/// 1 = disabled, 2 = enabled. Steady state is one relaxed load.
static STATE: AtomicU8 = AtomicU8::new(0);

const OFF: u8 = 1;
const ON: u8 = 2;

/// Whether telemetry recording is currently enabled.
///
/// The first call consults the `PA_TELEMETRY` environment variable
/// (`1`/`true`/`on` enable recording); afterwards this is a single relaxed
/// atomic load, which is what makes disabled instrumentation near-free.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("PA_TELEMETRY")
        .map(|v| matches!(v.trim(), "1" | "true" | "TRUE" | "on" | "ON"))
        .unwrap_or(false);
    let target = if on { ON } else { OFF };
    // A concurrent set_enabled wins: only replace the uninitialized state.
    let _ = STATE.compare_exchange(0, target, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == ON
}

/// Turns telemetry recording on or off process-wide.
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Timer(Arc<Timer>),
    Histogram(Arc<Histogram>),
    Series(Arc<Series>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Timer(_) => "timer",
            Metric::Histogram(_) => "histogram",
            Metric::Series(_) => "series",
        }
    }
}

#[derive(Default)]
struct Registry {
    metrics: RwLock<HashMap<&'static str, Metric>>,
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Looks up (or registers) a metric of one kind. Panics if `name` is
/// already registered as a different kind — metric names are a static,
/// workspace-wide namespace, so a kind clash is a programming error.
fn lookup<T>(
    name: &'static str,
    extract: impl Fn(&Metric) -> Option<Arc<T>>,
    create: impl FnOnce() -> Metric,
) -> Arc<T> {
    let reg = global();
    if let Some(m) = reg.metrics.read().expect("registry poisoned").get(name) {
        return extract(m).unwrap_or_else(|| {
            panic!(
                "telemetry metric `{name}` already registered as a {}",
                m.kind()
            )
        });
    }
    let mut map = reg.metrics.write().expect("registry poisoned");
    let m = map.entry(name).or_insert_with(create);
    extract(m).unwrap_or_else(|| {
        panic!(
            "telemetry metric `{name}` already registered as a {}",
            m.kind()
        )
    })
}

/// The named [`Counter`], registering it on first use.
pub fn counter(name: &'static str) -> Arc<Counter> {
    lookup(
        name,
        |m| match m {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        },
        || Metric::Counter(Arc::new(Counter::default())),
    )
}

/// The named [`Gauge`], registering it on first use.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    lookup(
        name,
        |m| match m {
            Metric::Gauge(g) => Some(g.clone()),
            _ => None,
        },
        || Metric::Gauge(Arc::new(Gauge::default())),
    )
}

/// The named [`Timer`], registering it on first use.
pub fn timer(name: &'static str) -> Arc<Timer> {
    lookup(
        name,
        |m| match m {
            Metric::Timer(t) => Some(t.clone()),
            _ => None,
        },
        || Metric::Timer(Arc::new(Timer::default())),
    )
}

/// The named [`Histogram`], registering it on first use.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    lookup(
        name,
        |m| match m {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        },
        || Metric::Histogram(Arc::new(Histogram::default())),
    )
}

/// The named [`Series`], registering it on first use.
pub fn series(name: &'static str) -> Arc<Series> {
    lookup(
        name,
        |m| match m {
            Metric::Series(s) => Some(s.clone()),
            _ => None,
        },
        || Metric::Series(Arc::new(Series::default())),
    )
}

/// Starts a [`Span`] recording into the named [`Timer`]. While telemetry
/// is disabled this neither reads the clock nor touches the registry.
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span::started(timer(name))
    } else {
        Span::disabled()
    }
}

/// Zeroes every registered metric in place. Existing handles stay valid.
pub fn reset() {
    let reg = global();
    for m in reg.metrics.read().expect("registry poisoned").values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Timer(t) => t.reset(),
            Metric::Histogram(h) => h.reset(),
            Metric::Series(s) => s.reset(),
        }
    }
}

/// Freezes every registered metric into a deterministic, name-sorted
/// [`TelemetrySnapshot`].
pub fn snapshot() -> TelemetrySnapshot {
    let reg = global();
    let map = reg.metrics.read().expect("registry poisoned");
    let mut snap = TelemetrySnapshot::empty(enabled());
    for (name, m) in map.iter() {
        match m {
            Metric::Counter(c) => snap.push_counter(name, c),
            Metric::Gauge(g) => snap.push_gauge(name, g),
            Metric::Timer(t) => snap.push_timer(name, t),
            Metric::Histogram(h) => snap.push_histogram(name, h),
            Metric::Series(s) => snap.push_series(name, s),
        }
    }
    snap.sort();
    snap
}

/// Test support: serializes tests that touch the global flag and restores
/// the previous state on drop.
#[cfg(test)]
pub(crate) fn test_guard(enable: bool) -> impl Drop {
    use std::sync::Mutex;
    static TEST_MUTEX: Mutex<()> = Mutex::new(());

    struct Guard {
        was_enabled: bool,
        _lock: std::sync::MutexGuard<'static, ()>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            set_enabled(self.was_enabled);
        }
    }

    let lock = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
    let was_enabled = enabled();
    set_enabled(enable);
    Guard {
        was_enabled,
        _lock: lock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_survive_reset() {
        let _g = test_guard(true);
        let a = counter("registry.test.shared");
        let b = counter("registry.test.shared");
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        reset();
        assert_eq!(a.value(), 0, "reset zeroes in place");
        a.inc();
        assert_eq!(b.value(), 1, "handles stay wired after reset");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_clash_panics() {
        let _g = test_guard(true);
        let _c = counter("registry.test.clash");
        let _h = histogram("registry.test.clash");
    }

    #[test]
    fn span_records_into_named_timer() {
        let _g = test_guard(true);
        timer("registry.test.span").reset();
        {
            let _span = span("registry.test.span");
        }
        let t = timer("registry.test.span");
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = test_guard(false);
        timer("registry.test.span_off").reset();
        {
            let _span = span("registry.test.span_off");
        }
        // The timer was never even registered by `span` while disabled;
        // registering it here and checking emptiness covers both paths.
        assert_eq!(timer("registry.test.span_off").count(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let _g = test_guard(true);
        reset();
        counter("registry.test.z").inc();
        counter("registry.test.a").add(3);
        gauge("registry.test.g").set(-4);
        histogram("registry.test.h").record(7);
        series("registry.test.s").push(0.5);
        let snap = snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.counter("registry.test.a"), Some(3));
        assert_eq!(snap.counter("registry.test.z"), Some(1));
        assert_eq!(snap.counter("registry.test.missing"), None);
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
