//! Metric registries — the process-global one plus the [`MetricMap`]
//! machinery that [`crate::TelemetryScope`] reuses — and the enablement
//! flag.
//!
//! The free functions ([`counter`], [`gauge`], …) resolve against the
//! *innermost active scope* of the calling thread when one has been entered
//! (see [`crate::TelemetryScope::enter`]), and fall back to the
//! process-global registry otherwise. Library instrumentation therefore
//! never needs to know whether it runs inside a scoped analysis: the same
//! static metric names land in whichever registry is active.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, Series, Span, Timer};
use crate::scope;
use crate::snapshot::TelemetrySnapshot;

/// Tri-state enablement: 0 = not yet initialized from the environment,
/// 1 = disabled, 2 = enabled. Steady state is one relaxed load.
static STATE: AtomicU8 = AtomicU8::new(0);

const OFF: u8 = 1;
const ON: u8 = 2;

/// Whether telemetry recording is currently enabled.
///
/// The first call consults the `PA_TELEMETRY` environment variable
/// (`1`/`true`/`on` enable recording); afterwards this is a single relaxed
/// atomic load, which is what makes disabled instrumentation near-free.
///
/// The flag is process-wide and also gates recording into scoped
/// registries: a [`crate::TelemetryScope`] controls *where* records land,
/// this flag controls *whether* anything is recorded at all.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("PA_TELEMETRY")
        .map(|v| matches!(v.trim(), "1" | "true" | "TRUE" | "on" | "ON"))
        .unwrap_or(false);
    let target = if on { ON } else { OFF };
    // A concurrent set_enabled wins: only replace the uninitialized state.
    let _ = STATE.compare_exchange(0, target, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == ON
}

/// Turns telemetry recording on or off process-wide.
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Timer(Arc<Timer>),
    Histogram(Arc<Histogram>),
    Series(Arc<Series>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Timer(_) => "timer",
            Metric::Histogram(_) => "histogram",
            Metric::Series(_) => "series",
        }
    }
}

/// A name-keyed set of metrics: the storage behind both the process-global
/// registry and every [`crate::TelemetryScope`].
#[derive(Default)]
pub(crate) struct MetricMap {
    metrics: RwLock<HashMap<&'static str, Metric>>,
}

impl MetricMap {
    /// Looks up (or registers) a metric of one kind. Panics if `name` is
    /// already registered as a different kind — metric names are a static,
    /// workspace-wide namespace, so a kind clash is a programming error.
    fn lookup<T>(
        &self,
        name: &'static str,
        extract: impl Fn(&Metric) -> Option<Arc<T>>,
        create: impl FnOnce() -> Metric,
    ) -> Arc<T> {
        if let Some(m) = self.metrics.read().expect("registry poisoned").get(name) {
            return extract(m).unwrap_or_else(|| {
                panic!(
                    "telemetry metric `{name}` already registered as a {}",
                    m.kind()
                )
            });
        }
        let mut map = self.metrics.write().expect("registry poisoned");
        let m = map.entry(name).or_insert_with(create);
        extract(m).unwrap_or_else(|| {
            panic!(
                "telemetry metric `{name}` already registered as a {}",
                m.kind()
            )
        })
    }

    pub(crate) fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.lookup(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || Metric::Counter(Arc::new(Counter::default())),
        )
    }

    pub(crate) fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.lookup(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || Metric::Gauge(Arc::new(Gauge::default())),
        )
    }

    pub(crate) fn timer(&self, name: &'static str) -> Arc<Timer> {
        self.lookup(
            name,
            |m| match m {
                Metric::Timer(t) => Some(t.clone()),
                _ => None,
            },
            || Metric::Timer(Arc::new(Timer::default())),
        )
    }

    pub(crate) fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.lookup(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Metric::Histogram(Arc::new(Histogram::default())),
        )
    }

    pub(crate) fn series(&self, name: &'static str) -> Arc<Series> {
        self.lookup(
            name,
            |m| match m {
                Metric::Series(s) => Some(s.clone()),
                _ => None,
            },
            || Metric::Series(Arc::new(Series::default())),
        )
    }

    /// Zeroes every registered metric in place. Existing handles stay
    /// valid.
    pub(crate) fn reset(&self) {
        for m in self.metrics.read().expect("registry poisoned").values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Timer(t) => t.reset(),
                Metric::Histogram(h) => h.reset(),
                Metric::Series(s) => s.reset(),
            }
        }
    }

    /// Freezes every registered metric into a deterministic, name-sorted
    /// [`TelemetrySnapshot`].
    pub(crate) fn snapshot(&self, enabled: bool) -> TelemetrySnapshot {
        let map = self.metrics.read().expect("registry poisoned");
        let mut snap = TelemetrySnapshot::empty(enabled);
        for (name, m) in map.iter() {
            match m {
                Metric::Counter(c) => snap.push_counter(name, c),
                Metric::Gauge(g) => snap.push_gauge(name, g),
                Metric::Timer(t) => snap.push_timer(name, t),
                Metric::Histogram(h) => snap.push_histogram(name, h),
                Metric::Series(s) => snap.push_series(name, s),
            }
        }
        snap.sort();
        snap
    }
}

pub(crate) fn global() -> &'static MetricMap {
    static REGISTRY: OnceLock<MetricMap> = OnceLock::new();
    REGISTRY.get_or_init(MetricMap::default)
}

/// The named [`Counter`] of the active registry, registering it on first
/// use.
pub fn counter(name: &'static str) -> Arc<Counter> {
    scope::with_active(|map| map.counter(name))
}

/// The named [`Gauge`] of the active registry, registering it on first use.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    scope::with_active(|map| map.gauge(name))
}

/// The named [`Timer`] of the active registry, registering it on first use.
pub fn timer(name: &'static str) -> Arc<Timer> {
    scope::with_active(|map| map.timer(name))
}

/// The named [`Histogram`] of the active registry, registering it on first
/// use.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    scope::with_active(|map| map.histogram(name))
}

/// The named [`Series`] of the active registry, registering it on first
/// use.
pub fn series(name: &'static str) -> Arc<Series> {
    scope::with_active(|map| map.series(name))
}

/// Starts a [`Span`] recording into the named [`Timer`] of the active
/// registry. While telemetry is disabled this neither reads the clock nor
/// touches any registry.
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span::started(timer(name))
    } else {
        Span::disabled()
    }
}

/// Zeroes every metric of the **process-global** registry in place.
/// Existing handles stay valid. Scoped registries are unaffected; reset
/// those through [`crate::TelemetryScope::reset`].
///
/// # The reset contract
///
/// The global registry accumulates forever: two analyses run back-to-back
/// add into the *same* counters unless something intervenes. There are
/// three sound ways to separate them, in order of preference:
///
/// 1. **Scopes** — run each analysis under its own
///    [`crate::TelemetryScope`]; nothing accumulates across scopes by
///    construction, and the global registry is untouched.
/// 2. **Delta snapshots** — take a [`snapshot`] before and after, and diff
///    with [`TelemetrySnapshot::delta_since`]; nothing is zeroed, so
///    concurrent readers are unaffected.
/// 3. **`reset`** — zero everything in place. This is process-global and
///    destructive: records made by *other* threads between their last
///    snapshot and the reset are lost. Only use it when the process is
///    quiescent (as the bench harness does between probe runs).
pub fn reset() {
    global().reset();
}

/// Freezes every metric of the **process-global** registry into a
/// deterministic, name-sorted [`TelemetrySnapshot`]. Scoped registries are
/// not included; snapshot those through
/// [`crate::TelemetryScope::snapshot`].
pub fn snapshot() -> TelemetrySnapshot {
    global().snapshot(enabled())
}

/// Test support: serializes tests that touch the global flag and restores
/// the previous state on drop.
#[cfg(test)]
pub(crate) fn test_guard(enable: bool) -> impl Drop {
    use std::sync::Mutex;
    static TEST_MUTEX: Mutex<()> = Mutex::new(());

    struct Guard {
        was_enabled: bool,
        _lock: std::sync::MutexGuard<'static, ()>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            set_enabled(self.was_enabled);
        }
    }

    let lock = TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
    let was_enabled = enabled();
    set_enabled(enable);
    Guard {
        was_enabled,
        _lock: lock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_survive_reset() {
        let _g = test_guard(true);
        let a = counter("registry.test.shared");
        let b = counter("registry.test.shared");
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        reset();
        assert_eq!(a.value(), 0, "reset zeroes in place");
        a.inc();
        assert_eq!(b.value(), 1, "handles stay wired after reset");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_clash_panics() {
        let _g = test_guard(true);
        let _c = counter("registry.test.clash");
        let _h = histogram("registry.test.clash");
    }

    #[test]
    fn span_records_into_named_timer() {
        let _g = test_guard(true);
        timer("registry.test.span").reset();
        {
            let _span = span("registry.test.span");
        }
        let t = timer("registry.test.span");
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = test_guard(false);
        timer("registry.test.span_off").reset();
        {
            let _span = span("registry.test.span_off");
        }
        // The timer was never even registered by `span` while disabled;
        // registering it here and checking emptiness covers both paths.
        assert_eq!(timer("registry.test.span_off").count(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let _g = test_guard(true);
        reset();
        counter("registry.test.z").inc();
        counter("registry.test.a").add(3);
        gauge("registry.test.g").set(-4);
        histogram("registry.test.h").record(7);
        series("registry.test.s").push(0.5);
        let snap = snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.counter("registry.test.a"), Some(3));
        assert_eq!(snap.counter("registry.test.z"), Some(1));
        assert_eq!(snap.counter("registry.test.missing"), None);
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
