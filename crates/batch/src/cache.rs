//! The shared model cache: explored fault-wrapped round models built once
//! per `(ring size, fault plan)` key and reused by every job that queries
//! them.
//!
//! # Why sharing is sound
//!
//! The per-analysis pipelines (`check_arrow_under`, `max_expected_time`)
//! each build a model whose starts are the analysis's *from*-set and whose
//! *to*-set is absorbing. The cache instead builds one [`SharedModel`] per
//! key with **every** reachable configuration as a start and **no**
//! absorption, then lets each query pick its own start subset and target
//! mask:
//!
//! * Bounded reachability clamps target states to their value (1) at every
//!   budget level, so a target state's outgoing transitions — the only
//!   thing absorption removes — never influence any value. Every state of
//!   the per-analysis model appears in the shared model with an identical
//!   successor distribution, so per-state value arithmetic is the same
//!   f64 operations in the same order: the results are bitwise equal,
//!   which the cross-check tests pin.
//! * Expected-cost analyses clamp target states to 0 the same way; states
//!   from which an adversary avoids the target get `∞`, and
//!   [`pa_mdp::ExpectedCost::max_over`] only faults on *queried* infinite
//!   states, so reading just the analysis's start subset is safe.
//!
//! # Concurrency and determinism
//!
//! Each cache slot is a `OnceLock`: the first job to need a key builds it
//! while any racing jobs block on the same slot, so a model is built
//! exactly once per key no matter how the scheduler interleaves jobs.
//! Misses therefore equal the number of distinct keys demanded and hits
//! equal `accesses − misses` — both independent of worker count, which the
//! determinism tests (and the `compare_bench` gate on the v5 `batch`
//! block) rely on.
//!
//! Build work runs inside the cache's own [`TelemetryScope`] (entered
//! *nested* over the building job's scope), so exploration metrics are
//! attributed to the cache rather than to whichever job happened to get
//! there first — keeping per-job scoped metrics deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pa_faults::{faulty_round_cost, FaultKind, FaultPlan, FaultyRoundMdp, FaultyRoundState};
use pa_lehmann_rabin::{reachable_configs, Config, RoundConfig};
use pa_mdp::{par_explore, CsrMdp, Explored};
use pa_telemetry::TelemetryScope;

/// A fault-wrapped round model explored from **all** reachable
/// configurations, with no absorption — valid for every arrow and
/// expected-time query on its `(n, plan)` key (see the module docs).
pub struct SharedModel {
    /// Ring size.
    pub n: usize,
    /// The crash mask already in force when the clock starts (round-1
    /// non-drop events), the same mask `check_arrow_under` filters
    /// from-sets with.
    pub mask0: u32,
    /// The explored model: states, index, and the explicit MDP.
    pub explored: Explored<FaultyRoundState>,
    /// The CSR flattening, built once so queries skip re-flattening.
    pub csr: CsrMdp,
}

impl SharedModel {
    /// Initial-state indices whose start configuration satisfies `pred`
    /// (judged under [`SharedModel::mask0`], mirroring the from-set filter
    /// of `check_arrow_under`). Order follows the initial-state order,
    /// which is the reachable-configuration order — so worst-state
    /// tie-breaking matches the unshared pipeline.
    pub fn starts_where(&self, mut pred: impl FnMut(&Config, u32) -> bool) -> Vec<usize> {
        self.explored
            .mdp
            .initial_states()
            .iter()
            .copied()
            .filter(|&i| pred(&self.explored.states[i].inner.config, self.mask0))
            .collect()
    }
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, String>>>;

/// Cumulative access counts of one cache map.
#[derive(Debug, Default)]
struct MapStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The keyed model cache shared by every job of a batch run.
pub struct ModelCache {
    configs: Mutex<HashMap<usize, Slot<Vec<Config>>>>,
    models: Mutex<HashMap<(usize, FaultPlan), Slot<SharedModel>>>,
    config_stats: MapStats,
    model_stats: MapStats,
    scope: TelemetryScope,
}

impl Default for ModelCache {
    fn default() -> ModelCache {
        ModelCache::new()
    }
}

fn get_or_build<K: Clone + Eq + std::hash::Hash, T>(
    map: &Mutex<HashMap<K, Slot<T>>>,
    stats: &MapStats,
    scope: &TelemetryScope,
    key: &K,
    hit_metric: &'static str,
    miss_metric: &'static str,
    build: impl FnOnce() -> Result<T, String>,
) -> Result<Arc<T>, String> {
    let slot: Slot<T> = map
        .lock()
        .expect("cache map poisoned")
        .entry(key.clone())
        .or_default()
        .clone();
    let mut built = false;
    let result = slot.get_or_init(|| {
        built = true;
        stats.misses.fetch_add(1, Ordering::Relaxed);
        // Attribute build work (exploration, CSR flattening) to the
        // cache's scope, nested over the triggering job's scope.
        let _in_cache = scope.enter();
        pa_telemetry::counter(miss_metric).inc();
        let _span = pa_telemetry::span("batch.cache.build_seconds");
        build().map(Arc::new)
    });
    if !built {
        stats.hits.fetch_add(1, Ordering::Relaxed);
        let _in_cache = scope.enter();
        pa_telemetry::counter(hit_metric).inc();
    }
    result.clone()
}

impl ModelCache {
    /// An empty cache with its own `"cache"` telemetry scope.
    pub fn new() -> ModelCache {
        ModelCache {
            configs: Mutex::new(HashMap::new()),
            models: Mutex::new(HashMap::new()),
            config_stats: MapStats::default(),
            model_stats: MapStats::default(),
            scope: TelemetryScope::new("cache"),
        }
    }

    /// The reachable user-model configurations of a ring of `n`, explored
    /// once per ring size.
    ///
    /// # Errors
    ///
    /// Stringified ring-validation or exploration errors (shared verbatim
    /// with every waiter of the slot).
    pub fn reachable(&self, n: usize, limit: usize) -> Result<Arc<Vec<Config>>, String> {
        get_or_build(
            &self.configs,
            &self.config_stats,
            &self.scope,
            &n,
            "batch.cache.config_hits",
            "batch.cache.config_misses",
            || reachable_configs(n, limit).map_err(|e| e.to_string()),
        )
    }

    /// The shared model of `(n, plan)`, built on first demand.
    ///
    /// # Errors
    ///
    /// Stringified plan-validation or exploration errors.
    pub fn model(
        &self,
        n: usize,
        plan: &FaultPlan,
        limit: usize,
    ) -> Result<Arc<SharedModel>, String> {
        let key = (n, plan.clone());
        get_or_build(
            &self.models,
            &self.model_stats,
            &self.scope,
            &key,
            "batch.cache.model_hits",
            "batch.cache.model_misses",
            || {
                let configs = self.reachable(n, limit)?;
                let cfg = RoundConfig::new(n).map_err(|e| e.to_string())?;
                let mask0 = plan
                    .events_at(1)
                    .iter()
                    .filter(|e| !matches!(e.kind, FaultKind::DropObligation))
                    .fold(0u32, |m, e| m | (1 << e.process));
                let model = FaultyRoundMdp::new(cfg, plan.clone())
                    .map_err(|e| e.to_string())?
                    .with_starts(configs.as_ref().clone());
                let explored =
                    par_explore(&model, faulty_round_cost, limit).map_err(|e| e.to_string())?;
                let csr = CsrMdp::from_explicit(&explored.mdp);
                Ok(SharedModel {
                    n,
                    mask0,
                    explored,
                    csr,
                })
            },
        )
    }

    /// Model-map hits (accesses that found a built or in-flight slot).
    pub fn model_hits(&self) -> u64 {
        self.model_stats.hits.load(Ordering::Relaxed)
    }

    /// Model-map misses (slots this cache actually built). Equals the
    /// number of distinct `(n, plan)` keys demanded.
    pub fn model_misses(&self) -> u64 {
        self.model_stats.misses.load(Ordering::Relaxed)
    }

    /// Config-map hits.
    pub fn config_hits(&self) -> u64 {
        self.config_stats.hits.load(Ordering::Relaxed)
    }

    /// Config-map misses (distinct ring sizes explored).
    pub fn config_misses(&self) -> u64 {
        self.config_stats.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct models currently cached.
    pub fn distinct_models(&self) -> usize {
        self.models.lock().expect("cache map poisoned").len()
    }

    /// The cache's telemetry scope (exploration and flattening metrics of
    /// every build land here).
    pub fn scope(&self) -> &TelemetryScope {
        &self.scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits_and_shares_the_arc() {
        let cache = ModelCache::new();
        let plan = FaultPlan::none();
        let a = cache.model(3, &plan, 1_000_000).unwrap();
        let b = cache.model(3, &plan, 1_000_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.model_misses(), 1);
        assert_eq!(cache.model_hits(), 1);
        // The model build consumed the config cache once.
        assert_eq!(cache.config_misses(), 1);
        assert_eq!(cache.distinct_models(), 1);
    }

    #[test]
    fn distinct_plans_get_distinct_models() {
        let cache = ModelCache::new();
        let none = FaultPlan::none();
        let crash = FaultPlan::single(2, 0, FaultKind::CrashStop).unwrap();
        let a = cache.model(3, &none, 1_000_000).unwrap();
        let b = cache.model(3, &crash, 1_000_000).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.model_misses(), 2);
        assert_eq!(cache.distinct_models(), 2);
        // Both models reused the one reachable-config exploration.
        assert_eq!(cache.config_misses(), 1);
        assert_eq!(cache.config_hits(), 1);
    }

    #[test]
    fn errors_are_cached_and_shared() {
        let cache = ModelCache::new();
        let plan = FaultPlan::none();
        let first = cache.model(3, &plan, 2);
        let second = cache.model(3, &plan, 2);
        assert!(first.is_err());
        assert_eq!(first.err(), second.err());
        assert_eq!(cache.model_misses(), 1, "failed build is not retried");
        assert_eq!(cache.model_hits(), 1);
    }
}
