//! The shared model cache: explored fault-wrapped round models built once
//! per `(ring size, fault plan)` key and reused by every job that queries
//! them.
//!
//! # Why sharing is sound
//!
//! The per-analysis pipelines (`check_arrow_under`, `max_expected_time`)
//! each build a model whose starts are the analysis's *from*-set and whose
//! *to*-set is absorbing. The cache instead builds one [`SharedModel`] per
//! key with **every** reachable configuration as a start and **no**
//! absorption, then lets each query pick its own start subset and target
//! mask:
//!
//! * Bounded reachability clamps target states to their value (1) at every
//!   budget level, so a target state's outgoing transitions — the only
//!   thing absorption removes — never influence any value. Every state of
//!   the per-analysis model appears in the shared model with an identical
//!   successor distribution, so per-state value arithmetic is the same
//!   f64 operations in the same order: the results are bitwise equal,
//!   which the cross-check tests pin.
//! * Expected-cost analyses clamp target states to 0 the same way; states
//!   from which an adversary avoids the target get `∞`, and
//!   [`pa_mdp::ExpectedCost::max_over`] only faults on *queried* infinite
//!   states, so reading just the analysis's start subset is safe.
//!
//! # Concurrency and determinism
//!
//! Each cache slot is a `OnceLock`: the first job to need a key builds it
//! while any racing jobs block on the same slot, so a model is built
//! exactly once per key no matter how the scheduler interleaves jobs.
//! Misses therefore equal the number of distinct keys demanded and hits
//! equal `accesses − misses − rebuilds` — all independent of worker
//! count, which the determinism tests (and the `compare_bench` gate on
//! the v5 `batch` block) rely on.
//!
//! Build work runs inside the cache's own [`TelemetryScope`] (entered
//! *nested* over the building job's scope), so exploration metrics are
//! attributed to the cache rather than to whichever job happened to get
//! there first — keeping per-job scoped metrics deterministic.
//!
//! # Eviction
//!
//! A cache built with [`ModelCache::with_budget`] enforces a byte budget
//! over the resident model slots (full-space and quotient; the small
//! reachable-config vectors are not budgeted). Each successful build is
//! accounted at [`SharedModel::mem_bytes`] — the flattened CSR arrays
//! plus the nested explicit model. When the resident total exceeds the
//! budget, least-recently-used slots are dropped (never the slot that was
//! just touched, and never an error slot) until the total fits or nothing
//! evictable remains.
//!
//! Eviction keeps the key's map entry as a tombstone, so the lifetime
//! accounting stays stable: *misses* still count first-ever builds of
//! distinct keys, a re-demand of an evicted key is a *rebuild* (counted
//! separately, [`ModelCache::rebuilds`]), and `accesses = hits + misses +
//! rebuilds` holds under any eviction schedule. A rebuild re-runs the
//! exact deterministic exploration pipeline of the first build, so the
//! rebuilt model is bitwise identical and eviction is never observable in
//! results — only in the [`ModelCache::evictions`] /
//! [`ModelCache::resident_bytes`] counters and their telemetry mirrors
//! (`batch.cache.evictions`, `batch.cache.rebuilds`,
//! `batch.cache.resident_bytes`).
//!
//! # Per-batch statistics
//!
//! With a long-lived cache (the `pa-serve` daemon), the lifetime counters
//! above depend on what previous batches warmed and what the budget
//! evicted. The canonical [`crate::BatchReport`] must not: its digest is
//! pinned bitwise across worker counts, cache warmth, and eviction
//! schedules. [`CacheSession`] is the per-batch view jobs actually get —
//! it forwards every lookup to the shared cache and derives
//! [`crate::CacheStats`] purely from the batch's own access sequence
//! (distinct keys demanded = misses, the rest hits), reproducing exactly
//! the numbers a cold dedicated cache would report.
//!
//! # Quotient models
//!
//! [`ModelCache::model_quotient`] caches the rotation-quotient model of
//! the fault-free ring, keyed by ring size alone: orbit representatives
//! under [`pa_mdp::RingRotation`], stored bit-packed
//! ([`pa_faults::FaultyStateCodec`]). Everything downstream of the store —
//! `starts_where`, `target_where`, CSR queries — is generic over
//! [`pa_mdp::StateSpace`], so the full-space and quotient models run the
//! same analysis code; the tests pin their arrow answers bitwise equal.
//!
//! # Stored (out-of-core) models
//!
//! A cache configured with [`ModelCache::with_spill`] can additionally
//! hold *stored* quotient models ([`ModelCache::model_quotient_stored`]):
//! the exploration is routed through [`pa_store::SpillTo::spill_to`], the
//! CSR rows live in a `pa-store/csr/v1` file, and queries page blocks in
//! through a budgeted [`pa_store::BlockCache`]. Crucially, a stored slot
//! is accounted at [`pa_store::StoredModel::mem_bytes`] — the resident
//! state-space tables plus the *block-cache budget*, i.e. what the model
//! costs while held — **not** at the (arbitrarily larger) on-disk model
//! size. That is the whole point of spilling: a model far beyond the
//! cache's byte budget occupies only its configured cache slice, so the
//! budget keeps bounding peak RSS rather than disk. Stored slots
//! participate in the same LRU eviction as in-core slots; evicting one
//! drops its space tables and block cache while the file stays on disk,
//! and a rebuild rewrites the file bitwise identically (serial streamed
//! exploration is deterministic).

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pa_faults::{
    faulty_round_cost, FaultKind, FaultPlan, FaultyRoundMdp, FaultyRoundState, FaultyStateCodec,
};
use pa_lehmann_rabin::{reachable_configs, reachable_configs_quotient, Config, RoundConfig};
use pa_mdp::{BoxedSpace, CsrMdp, Explore, Explored, PackedSpace, RingRotation, StateSpace};
use pa_store::{SpillTo, StoredModel};
use pa_telemetry::TelemetryScope;

use crate::report::CacheStats;

/// A fault-wrapped round model explored from **all** reachable
/// configurations, with no absorption — valid for every arrow and
/// expected-time query on its `(n, plan)` key (see the module docs).
///
/// The state store is pluggable: the default boxed representation for
/// full-space models, [`PackedSpace`] for the quotient models of
/// [`ModelCache::model_quotient`]. Queries are representation-agnostic —
/// they run on [`SharedModel::csr`] and only touch the store through
/// [`pa_mdp::StateSpace`].
pub struct SharedModel<SP = BoxedSpace<FaultyRoundState>> {
    /// Ring size.
    pub n: usize,
    /// The crash mask already in force when the clock starts (round-1
    /// non-drop events), the same mask `check_arrow_under` filters
    /// from-sets with.
    pub mask0: u32,
    /// The explored model: states, index, and the explicit MDP.
    pub explored: Explored<FaultyRoundState, SP>,
    /// The CSR flattening, built once so queries skip re-flattening.
    pub csr: CsrMdp,
}

/// The quotient [`SharedModel`]: orbit representatives under ring
/// rotation, bit-packed. Fault-free by construction (fault plans name
/// processes and break the symmetry).
pub type QuotientModel = SharedModel<PackedSpace<FaultyStateCodec>>;

/// The stored (out-of-core) counterpart of [`QuotientModel`]: the same
/// bit-packed orbit space resident, the CSR rows spilled to a
/// `pa-store/csr/v1` file and paged in through a budgeted block cache.
///
/// Mirrors the [`SharedModel`] query surface the jobs use
/// ([`StoredQuotientModel::starts_where`] plus the
/// [`pa_store::StoredModel`] accessors via [`StoredQuotientModel::model`]);
/// the block-streamed engines answer bitwise identically to the in-core
/// CSR kernels, which the tests pin.
#[derive(Debug)]
pub struct StoredQuotientModel {
    /// Ring size.
    pub n: usize,
    /// The spilled model: packed orbit space + stored rows.
    pub model: StoredModel<FaultyRoundState, PackedSpace<FaultyStateCodec>>,
}

impl StoredQuotientModel {
    /// Initial-state indices whose start configuration satisfies `pred`.
    /// The quotient is fault-free by construction, so the crash mask
    /// argument is always 0 — kept for signature parity with
    /// [`SharedModel::starts_where`].
    pub fn starts_where(&self, mut pred: impl FnMut(&Config, u32) -> bool) -> Vec<usize> {
        pa_mdp::CsrSource::initial_states(self.model.store())
            .iter()
            .copied()
            .filter(|&i| pred(&self.model.state(i).inner.config, 0))
            .collect()
    }

    /// Bytes this model is accounted at while cached: the resident space
    /// tables plus the block-cache budget — *not* the on-disk model size
    /// (see the module docs).
    pub fn mem_bytes(&self) -> u64 {
        self.model.mem_bytes()
    }
}

impl<SP: StateSpace<FaultyRoundState>> SharedModel<SP> {
    /// Initial-state indices whose start configuration satisfies `pred`
    /// (judged under [`SharedModel::mask0`], mirroring the from-set filter
    /// of `check_arrow_under`). Order follows the initial-state order,
    /// which is the reachable-configuration order — so worst-state
    /// tie-breaking matches the unshared pipeline.
    pub fn starts_where(&self, mut pred: impl FnMut(&Config, u32) -> bool) -> Vec<usize> {
        self.explored
            .mdp
            .initial_states()
            .iter()
            .copied()
            .filter(|&i| pred(&self.explored.state(i).inner.config, self.mask0))
            .collect()
    }

    /// Heap bytes this model is accounted at when a cache enforces a byte
    /// budget: the flattened CSR arrays plus the nested explicit model
    /// (the state store is excluded — it is representation-dependent and
    /// dominated by the other two on every model this workspace builds).
    pub fn mem_bytes(&self) -> u64 {
        self.csr.mem_bytes() + self.explored.mdp.mem_bytes()
    }
}

/// One keyed slot plus its build provenance: whether running its
/// initializer is the key's first-ever build (a lifetime *miss*) or a
/// post-eviction *rebuild*.
struct SlotCell<T> {
    once: OnceLock<Result<Arc<T>, String>>,
    first: bool,
}

impl<T> SlotCell<T> {
    fn new(first: bool) -> Arc<SlotCell<T>> {
        Arc::new(SlotCell {
            once: OnceLock::new(),
            first,
        })
    }
}

/// A map entry: the live slot (`None` once evicted — the entry itself is
/// kept as a tombstone so miss accounting survives eviction), the bytes
/// the slot is accounted at (0 while building, for error slots, and after
/// eviction), and the LRU stamp of the last access.
struct Entry<T> {
    slot: Option<Arc<SlotCell<T>>>,
    bytes: u64,
    last_use: u64,
}

/// Cumulative access counts of one cache map.
#[derive(Debug, Default)]
struct MapStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Which budgeted map an eviction victim lives in.
enum Victim {
    Model((usize, FaultPlan)),
    Quotient(usize),
    Stored(usize),
}

/// Where and how a spill-enabled cache puts stored models (see
/// [`ModelCache::with_spill`]).
struct SpillConfig {
    /// Directory holding one `quotient-n{n}/model.pacsr` per ring size.
    dir: PathBuf,
    /// Block-cache budget (payload bytes) per stored model.
    cache_budget: u64,
}

/// The keyed model cache shared by every job of a batch run — or, under
/// `pa-serve`, by every batch of a daemon's lifetime.
pub struct ModelCache {
    configs: Mutex<HashMap<usize, Entry<Vec<Config>>>>,
    models: Mutex<HashMap<(usize, FaultPlan), Entry<SharedModel>>>,
    quotient_models: Mutex<HashMap<usize, Entry<QuotientModel>>>,
    stored_models: Mutex<HashMap<usize, Entry<StoredQuotientModel>>>,
    config_stats: MapStats,
    model_stats: MapStats,
    quotient_stats: MapStats,
    stored_stats: MapStats,
    /// Spill directory + per-model block-cache budget; `None` means
    /// [`ModelCache::model_quotient_stored`] is unavailable.
    spill: Option<SpillConfig>,
    /// Byte budget over resident model slots; `None` = unbounded.
    budget: Option<u64>,
    /// Bytes currently accounted across live model + quotient slots.
    resident: AtomicU64,
    /// Monotonic LRU clock; every access stamps its entry.
    clock: AtomicU64,
    evictions: AtomicU64,
    rebuilds: AtomicU64,
    scope: TelemetryScope,
}

impl Default for ModelCache {
    fn default() -> ModelCache {
        ModelCache::new()
    }
}

impl ModelCache {
    /// An unbounded cache with its own `"cache"` telemetry scope.
    pub fn new() -> ModelCache {
        ModelCache::with_budget_opt(None)
    }

    /// A cache that evicts least-recently-used model slots once their
    /// accounted bytes exceed `budget` (see the module docs for what is
    /// accounted and what eviction can — and cannot — change).
    pub fn with_budget(budget: u64) -> ModelCache {
        ModelCache::with_budget_opt(Some(budget))
    }

    fn with_budget_opt(budget: Option<u64>) -> ModelCache {
        ModelCache {
            configs: Mutex::new(HashMap::new()),
            models: Mutex::new(HashMap::new()),
            quotient_models: Mutex::new(HashMap::new()),
            stored_models: Mutex::new(HashMap::new()),
            config_stats: MapStats::default(),
            model_stats: MapStats::default(),
            quotient_stats: MapStats::default(),
            stored_stats: MapStats::default(),
            spill: None,
            budget,
            resident: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            scope: TelemetryScope::new("cache"),
        }
    }

    /// Enables [`ModelCache::model_quotient_stored`]: spilled models live
    /// under `dir` (one `quotient-n{n}/model.pacsr` per ring size) and
    /// each pages its rows through a block cache of `cache_budget` payload
    /// bytes. Stored slots are accounted at space tables + `cache_budget`
    /// — not the on-disk size — so a [`ModelCache::with_budget`] cache can
    /// hold models far beyond its byte budget (see the module docs).
    #[must_use]
    pub fn with_spill(mut self, dir: impl Into<PathBuf>, cache_budget: u64) -> ModelCache {
        self.spill = Some(SpillConfig {
            dir: dir.into(),
            cache_budget,
        });
        self
    }

    /// Core lookup: find-or-create the key's slot (stamping LRU), run the
    /// build exactly once per slot, account the result's bytes, and tally
    /// hit / miss / rebuild. Returns `(result, lru_stamp)` so budgeted
    /// callers can protect the touched entry while enforcing the budget.
    #[allow(clippy::too_many_arguments)]
    fn get_or_build<K: Clone + Eq + std::hash::Hash, T>(
        &self,
        map: &Mutex<HashMap<K, Entry<T>>>,
        stats: &MapStats,
        key: &K,
        hit_metric: &'static str,
        miss_metric: &'static str,
        size_of: impl FnOnce(&T) -> u64,
        build: impl FnOnce() -> Result<T, String>,
    ) -> (Result<Arc<T>, String>, u64) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let cell = {
            use std::collections::hash_map::Entry as MapEntry;
            let mut map = map.lock().expect("cache map poisoned");
            match map.entry(key.clone()) {
                MapEntry::Vacant(vacant) => {
                    let cell = SlotCell::new(true);
                    vacant.insert(Entry {
                        slot: Some(cell.clone()),
                        bytes: 0,
                        last_use: stamp,
                    });
                    cell
                }
                MapEntry::Occupied(mut occupied) => {
                    let entry = occupied.get_mut();
                    entry.last_use = stamp;
                    match &entry.slot {
                        Some(cell) => cell.clone(),
                        None => {
                            // The entry is a tombstone of an evicted
                            // slot: building it again is a rebuild, not
                            // a first-demand miss.
                            let cell = SlotCell::new(false);
                            entry.slot = Some(cell.clone());
                            cell
                        }
                    }
                }
            }
        };
        let mut built = false;
        let result = cell.once.get_or_init(|| {
            built = true;
            if cell.first {
                stats.misses.fetch_add(1, Ordering::Relaxed);
            } else {
                self.rebuilds.fetch_add(1, Ordering::Relaxed);
            }
            // Attribute build work (exploration, CSR flattening) to the
            // cache's scope, nested over the triggering job's scope.
            let _in_cache = self.scope.enter();
            if cell.first {
                pa_telemetry::counter(miss_metric).inc();
            } else {
                pa_telemetry::counter("batch.cache.rebuilds").inc();
            }
            let _span = pa_telemetry::span("batch.cache.build_seconds");
            build().map(Arc::new)
        });
        if built {
            if let Ok(value) = result {
                let bytes = size_of(value);
                if bytes > 0 {
                    let mut map = map.lock().expect("cache map poisoned");
                    if let Some(entry) = map.get_mut(key) {
                        // Only account while our cell is still the live
                        // slot (a racing eviction cannot have removed it:
                        // victims need bytes > 0, and ours still has 0).
                        if entry
                            .slot
                            .as_ref()
                            .is_some_and(|live| Arc::ptr_eq(live, &cell))
                        {
                            entry.bytes = bytes;
                            self.resident.fetch_add(bytes, Ordering::Relaxed);
                        }
                    }
                    let _in_cache = self.scope.enter();
                    pa_telemetry::gauge("batch.cache.resident_bytes")
                        .set(self.resident.load(Ordering::Relaxed) as i64);
                }
            }
        } else {
            stats.hits.fetch_add(1, Ordering::Relaxed);
            let _in_cache = self.scope.enter();
            pa_telemetry::counter(hit_metric).inc();
        }
        (result.clone(), stamp)
    }

    /// Evicts least-recently-used model slots (skipping the entry stamped
    /// `protect` and anything without accounted bytes — in-flight builds,
    /// error slots, tombstones) until the resident total fits the budget
    /// or no victim remains.
    fn enforce_budget(&self, protect: u64) {
        let Some(budget) = self.budget else { return };
        while self.resident.load(Ordering::Relaxed) > budget {
            let mut victim: Option<(u64, Victim)> = None;
            {
                let models = self.models.lock().expect("cache map poisoned");
                for (key, entry) in models.iter() {
                    if entry.bytes > 0
                        && entry.last_use != protect
                        && victim.as_ref().is_none_or(|(lu, _)| entry.last_use < *lu)
                    {
                        victim = Some((entry.last_use, Victim::Model(key.clone())));
                    }
                }
            }
            {
                let quotients = self.quotient_models.lock().expect("cache map poisoned");
                for (key, entry) in quotients.iter() {
                    if entry.bytes > 0
                        && entry.last_use != protect
                        && victim.as_ref().is_none_or(|(lu, _)| entry.last_use < *lu)
                    {
                        victim = Some((entry.last_use, Victim::Quotient(*key)));
                    }
                }
            }
            {
                let stored = self.stored_models.lock().expect("cache map poisoned");
                for (key, entry) in stored.iter() {
                    if entry.bytes > 0
                        && entry.last_use != protect
                        && victim.as_ref().is_none_or(|(lu, _)| entry.last_use < *lu)
                    {
                        victim = Some((entry.last_use, Victim::Stored(*key)));
                    }
                }
            }
            match victim {
                Some((_, Victim::Model(key))) => self.evict(&self.models, &key),
                Some((_, Victim::Quotient(key))) => self.evict(&self.quotient_models, &key),
                Some((_, Victim::Stored(key))) => self.evict(&self.stored_models, &key),
                None => break,
            }
        }
    }

    /// Drops one slot, leaving the entry as a tombstone (see module docs).
    fn evict<K: Eq + std::hash::Hash, T>(&self, map: &Mutex<HashMap<K, Entry<T>>>, key: &K) {
        let mut map = map.lock().expect("cache map poisoned");
        if let Some(entry) = map.get_mut(key) {
            if entry.bytes > 0 {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
                entry.bytes = 0;
                entry.slot = None;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                let _in_cache = self.scope.enter();
                pa_telemetry::counter("batch.cache.evictions").inc();
                pa_telemetry::gauge("batch.cache.resident_bytes")
                    .set(self.resident.load(Ordering::Relaxed) as i64);
            }
        }
    }

    /// The reachable user-model configurations of a ring of `n`, explored
    /// once per ring size. Config slots are small and never budgeted.
    ///
    /// # Errors
    ///
    /// Stringified ring-validation or exploration errors (shared verbatim
    /// with every waiter of the slot).
    pub fn reachable(&self, n: usize, limit: usize) -> Result<Arc<Vec<Config>>, String> {
        self.get_or_build(
            &self.configs,
            &self.config_stats,
            &n,
            "batch.cache.config_hits",
            "batch.cache.config_misses",
            |_| 0,
            || reachable_configs(n, limit).map_err(|e| e.to_string()),
        )
        .0
    }

    /// The shared model of `(n, plan)`, built on first demand (and rebuilt
    /// bitwise identically if the budget evicted it since).
    ///
    /// # Errors
    ///
    /// Stringified plan-validation or exploration errors.
    pub fn model(
        &self,
        n: usize,
        plan: &FaultPlan,
        limit: usize,
    ) -> Result<Arc<SharedModel>, String> {
        let key = (n, plan.clone());
        let (result, stamp) = self.get_or_build(
            &self.models,
            &self.model_stats,
            &key,
            "batch.cache.model_hits",
            "batch.cache.model_misses",
            SharedModel::mem_bytes,
            || {
                let configs = self.reachable(n, limit)?;
                let cfg = RoundConfig::new(n).map_err(|e| e.to_string())?;
                let mask0 = plan
                    .events_at(1)
                    .iter()
                    .filter(|e| !matches!(e.kind, FaultKind::DropObligation))
                    .fold(0u32, |m, e| m | (1 << e.process));
                let model = FaultyRoundMdp::new(cfg, plan.clone())
                    .map_err(|e| e.to_string())?
                    .with_starts(configs.as_ref().clone());
                let explored = Explore::new(&model)
                    .cost(faulty_round_cost)
                    .limit(limit)
                    .parallel()
                    .run()
                    .map_err(|e| e.to_string())?;
                let csr = CsrMdp::from_explicit(&explored.mdp);
                Ok(SharedModel {
                    n,
                    mask0,
                    explored,
                    csr,
                })
            },
        );
        self.enforce_budget(stamp);
        result
    }

    /// The quotient model of the fault-free ring of `n`: explored from the
    /// canonical (lexicographically-least rotation) representatives of the
    /// reachable configurations, with every successor folded onto its
    /// orbit representative and states stored bit-packed. Up to `n`-fold
    /// smaller than [`ModelCache::model`] with [`FaultPlan::none`], and
    /// every query on it answers for the whole orbit — the soundness
    /// argument is on `pa_lehmann_rabin::check_arrow_quotient`.
    ///
    /// There is deliberately no plan parameter: fault plans name processes
    /// and break rotation symmetry, so only the fault-free model has a
    /// sound quotient (`pa_faults::FaultError::SymmetryBroken` guards the
    /// same boundary in the survival pipeline).
    ///
    /// # Errors
    ///
    /// Stringified ring-validation, codec, or exploration errors.
    pub fn model_quotient(&self, n: usize, limit: usize) -> Result<Arc<QuotientModel>, String> {
        let (result, stamp) = self.get_or_build(
            &self.quotient_models,
            &self.quotient_stats,
            &n,
            "batch.cache.quotient_hits",
            "batch.cache.quotient_misses",
            SharedModel::mem_bytes,
            || {
                let configs = reachable_configs_quotient(n, limit).map_err(|e| e.to_string())?;
                let cfg = RoundConfig::new(n).map_err(|e| e.to_string())?;
                let model = FaultyRoundMdp::new(cfg, FaultPlan::none())
                    .map_err(|e| e.to_string())?
                    .with_starts(configs);
                let codec =
                    FaultyStateCodec::new(n, model.round_cap()).map_err(|e| e.to_string())?;
                let explored = Explore::new(&model)
                    .cost(faulty_round_cost)
                    .limit(limit)
                    .parallel()
                    .symmetry(RingRotation::new(n))
                    .run_in(PackedSpace::new(codec))
                    .map_err(|e| e.to_string())?;
                let csr = CsrMdp::from_explicit(&explored.mdp);
                Ok(SharedModel {
                    n,
                    mask0: 0,
                    explored,
                    csr,
                })
            },
        );
        self.enforce_budget(stamp);
        result
    }

    /// The stored (out-of-core) quotient model of the fault-free ring of
    /// `n`: the same exploration as [`ModelCache::model_quotient`], routed
    /// through [`pa_store::SpillTo::spill_to`] so the CSR rows live on
    /// disk and queries page them in through the configured block-cache
    /// budget. Requires [`ModelCache::with_spill`].
    ///
    /// The slot is accounted at [`StoredQuotientModel::mem_bytes`] —
    /// resident space tables plus the block-cache budget, not the on-disk
    /// model size — and participates in LRU eviction like any other slot.
    /// Answers are bitwise identical to the in-core quotient's for any
    /// budget (the block-streamed engines are operation-order twins of the
    /// CSR kernels).
    ///
    /// # Errors
    ///
    /// `"cache has no spill directory"` if the cache was built without
    /// [`ModelCache::with_spill`]; otherwise stringified ring-validation,
    /// codec, exploration, or store I/O errors.
    pub fn model_quotient_stored(
        &self,
        n: usize,
        limit: usize,
    ) -> Result<Arc<StoredQuotientModel>, String> {
        let Some(spill) = &self.spill else {
            return Err("cache has no spill directory (ModelCache::with_spill)".to_string());
        };
        let dir = spill.dir.join(format!("quotient-n{n}"));
        let cache_budget = spill.cache_budget;
        let (result, stamp) = self.get_or_build(
            &self.stored_models,
            &self.stored_stats,
            &n,
            "batch.cache.stored_hits",
            "batch.cache.stored_misses",
            StoredQuotientModel::mem_bytes,
            || {
                let configs = reachable_configs_quotient(n, limit).map_err(|e| e.to_string())?;
                let cfg = RoundConfig::new(n).map_err(|e| e.to_string())?;
                let model = FaultyRoundMdp::new(cfg, FaultPlan::none())
                    .map_err(|e| e.to_string())?
                    .with_starts(configs);
                let codec =
                    FaultyStateCodec::new(n, model.round_cap()).map_err(|e| e.to_string())?;
                let stored = Explore::new(&model)
                    .cost(faulty_round_cost)
                    .limit(limit)
                    .symmetry(RingRotation::new(n))
                    .spill_to(&dir, cache_budget)
                    .run_in(PackedSpace::new(codec))
                    .map_err(|e| e.to_string())?;
                Ok(StoredQuotientModel { n, model: stored })
            },
        );
        self.enforce_budget(stamp);
        result
    }

    /// Model-map hits (accesses that found a built or in-flight slot).
    pub fn model_hits(&self) -> u64 {
        self.model_stats.hits.load(Ordering::Relaxed)
    }

    /// Model-map misses: first-ever builds, equal to the number of
    /// distinct `(n, plan)` keys demanded over the cache's lifetime
    /// (eviction does not reset them — a re-demand is a rebuild).
    pub fn model_misses(&self) -> u64 {
        self.model_stats.misses.load(Ordering::Relaxed)
    }

    /// Config-map hits.
    pub fn config_hits(&self) -> u64 {
        self.config_stats.hits.load(Ordering::Relaxed)
    }

    /// Config-map misses (distinct ring sizes explored).
    pub fn config_misses(&self) -> u64 {
        self.config_stats.misses.load(Ordering::Relaxed)
    }

    /// Quotient-map hits.
    pub fn quotient_hits(&self) -> u64 {
        self.quotient_stats.hits.load(Ordering::Relaxed)
    }

    /// Quotient-map misses (distinct ring sizes quotient-explored).
    pub fn quotient_misses(&self) -> u64 {
        self.quotient_stats.misses.load(Ordering::Relaxed)
    }

    /// Stored-map hits.
    pub fn stored_hits(&self) -> u64 {
        self.stored_stats.hits.load(Ordering::Relaxed)
    }

    /// Stored-map misses (distinct ring sizes spilled to disk).
    pub fn stored_misses(&self) -> u64 {
        self.stored_stats.misses.load(Ordering::Relaxed)
    }

    /// Slots dropped by the byte budget over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Builds that replaced an evicted slot (bitwise identical to the
    /// original build — see the module docs).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Bytes currently accounted across live model and quotient slots.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Number of full-space models currently live (tombstones of evicted
    /// keys are not counted).
    pub fn distinct_models(&self) -> usize {
        self.models
            .lock()
            .expect("cache map poisoned")
            .values()
            .filter(|e| e.slot.is_some())
            .count()
    }

    /// Number of quotient models currently live.
    pub fn distinct_quotient_models(&self) -> usize {
        self.quotient_models
            .lock()
            .expect("cache map poisoned")
            .values()
            .filter(|e| e.slot.is_some())
            .count()
    }

    /// Number of stored (out-of-core) models currently live.
    pub fn distinct_stored_models(&self) -> usize {
        self.stored_models
            .lock()
            .expect("cache map poisoned")
            .values()
            .filter(|e| e.slot.is_some())
            .count()
    }

    /// The cache's telemetry scope (exploration and flattening metrics of
    /// every build land here).
    pub fn scope(&self) -> &TelemetryScope {
        &self.scope
    }
}

/// The per-batch view of a shared [`ModelCache`] that jobs actually get
/// ([`crate::JobCtx::cache`]).
///
/// Every lookup forwards to the shared cache; alongside, the session
/// records the batch's own access sequence and derives the canonical
/// [`CacheStats`] from it alone: per map, *misses* are the distinct keys
/// this batch demanded and *hits* are the remaining accesses — exactly
/// what a cold, dedicated, unbounded cache would have reported for the
/// same job set. That keeps the [`crate::BatchReport`] digest invariant
/// under cache warmth, eviction schedules, and worker counts, which the
/// `pa-serve` determinism contract (and the bench `serve` block) pin.
pub struct CacheSession<'c> {
    cache: &'c ModelCache,
    state: Mutex<SessionState>,
}

#[derive(Default)]
struct SessionState {
    model_accesses: u64,
    model_keys: HashSet<(usize, FaultPlan)>,
    config_accesses: u64,
    config_keys: HashSet<usize>,
}

impl<'c> CacheSession<'c> {
    /// A fresh session over `cache` with zeroed per-batch statistics.
    pub fn new(cache: &'c ModelCache) -> CacheSession<'c> {
        CacheSession {
            cache,
            state: Mutex::new(SessionState::default()),
        }
    }

    /// The shared cache behind this session.
    pub fn cache(&self) -> &'c ModelCache {
        self.cache
    }

    /// [`ModelCache::model`], counted as one model access — and, on the
    /// key's first demand *this batch*, one config access too (a dedicated
    /// cache would have built the model, consuming the config slot once).
    ///
    /// # Errors
    ///
    /// As [`ModelCache::model`].
    pub fn model(
        &self,
        n: usize,
        plan: &FaultPlan,
        limit: usize,
    ) -> Result<Arc<SharedModel>, String> {
        {
            let mut st = self.state.lock().expect("session stats poisoned");
            st.model_accesses += 1;
            if st.model_keys.insert((n, plan.clone())) {
                st.config_accesses += 1;
                st.config_keys.insert(n);
            }
        }
        self.cache.model(n, plan, limit)
    }

    /// [`ModelCache::reachable`], counted as one config access.
    ///
    /// # Errors
    ///
    /// As [`ModelCache::reachable`].
    pub fn reachable(&self, n: usize, limit: usize) -> Result<Arc<Vec<Config>>, String> {
        {
            let mut st = self.state.lock().expect("session stats poisoned");
            st.config_accesses += 1;
            st.config_keys.insert(n);
        }
        self.cache.reachable(n, limit)
    }

    /// [`ModelCache::model_quotient`] (quotient demands have no canonical
    /// counter — the v1 canonical schema predates them).
    ///
    /// # Errors
    ///
    /// As [`ModelCache::model_quotient`].
    pub fn model_quotient(&self, n: usize, limit: usize) -> Result<Arc<QuotientModel>, String> {
        self.cache.model_quotient(n, limit)
    }

    /// The canonical per-batch statistics (see the type docs for why they
    /// are a function of the job set only).
    pub fn stats(&self) -> CacheStats {
        let st = self.state.lock().expect("session stats poisoned");
        CacheStats {
            model_hits: st.model_accesses - st.model_keys.len() as u64,
            model_misses: st.model_keys.len() as u64,
            config_hits: st.config_accesses - st.config_keys.len() as u64,
            config_misses: st.config_keys.len() as u64,
            distinct_models: st.model_keys.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits_and_shares_the_arc() {
        let cache = ModelCache::new();
        let plan = FaultPlan::none();
        let a = cache.model(3, &plan, 1_000_000).unwrap();
        let b = cache.model(3, &plan, 1_000_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.model_misses(), 1);
        assert_eq!(cache.model_hits(), 1);
        // The model build consumed the config cache once.
        assert_eq!(cache.config_misses(), 1);
        assert_eq!(cache.distinct_models(), 1);
        // Unbounded cache: nothing evicted, nothing rebuilt.
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.rebuilds(), 0);
        assert_eq!(cache.resident_bytes(), a.mem_bytes());
    }

    #[test]
    fn distinct_plans_get_distinct_models() {
        let cache = ModelCache::new();
        let none = FaultPlan::none();
        let crash = FaultPlan::single(2, 0, FaultKind::CrashStop).unwrap();
        let a = cache.model(3, &none, 1_000_000).unwrap();
        let b = cache.model(3, &crash, 1_000_000).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.model_misses(), 2);
        assert_eq!(cache.distinct_models(), 2);
        // Both models reused the one reachable-config exploration.
        assert_eq!(cache.config_misses(), 1);
        assert_eq!(cache.config_hits(), 1);
        // Resident accounting sums the live slots.
        assert_eq!(cache.resident_bytes(), a.mem_bytes() + b.mem_bytes());
    }

    #[test]
    fn quotient_models_are_cached_per_ring_size() {
        let cache = ModelCache::new();
        let a = cache.model_quotient(3, 1_000_000).unwrap();
        let b = cache.model_quotient(3, 1_000_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.quotient_misses(), 1);
        assert_eq!(cache.quotient_hits(), 1);
        assert_eq!(cache.distinct_quotient_models(), 1);
        // The quotient map is independent of the full-space model map.
        assert_eq!(cache.model_misses(), 0);
        // And genuinely smaller than the full space.
        let full = cache.model(3, &FaultPlan::none(), 1_000_000).unwrap();
        assert!(a.explored.num_states() < full.explored.num_states());
    }

    /// Worst-case arrow probability on a shared model, representation- and
    /// quotient-agnostic — the same query `run_arrow` issues.
    fn arrow_worst<SP: StateSpace<FaultyRoundState>>(
        model: &SharedModel<SP>,
        arrow: &pa_core::Arrow,
    ) -> f64 {
        let from = pa_faults::set_pred_under(arrow.from()).unwrap();
        let to = pa_faults::set_pred_under(arrow.to()).unwrap();
        let starts = model.starts_where(|c, m| from(c, m));
        assert!(!starts.is_empty(), "arrow source must be reachable");
        let n = model.n;
        let target = model
            .explored
            .target_where(|s| to(&s.inner.config, s.crashed_mask(n)));
        let values = pa_mdp::Query::csr(&model.csr)
            .objective(pa_mdp::QueryObjective::MinProb)
            .target(target)
            .horizon(pa_lehmann_rabin::time_to_budget(arrow.time()))
            .run()
            .unwrap()
            .values;
        starts
            .into_iter()
            .map(|i| values[i])
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn quotient_model_answers_match_the_full_model_bitwise_at_n3() {
        let cache = ModelCache::new();
        let full = cache.model(3, &FaultPlan::none(), 1_000_000).unwrap();
        let quot = cache.model_quotient(3, 1_000_000).unwrap();
        for (arrow, _why) in pa_lehmann_rabin::paper::all_arrows() {
            let on_full = arrow_worst(full.as_ref(), &arrow);
            let on_quot = arrow_worst(quot.as_ref(), &arrow);
            assert_eq!(
                on_full.to_bits(),
                on_quot.to_bits(),
                "{arrow}: full {on_full} vs quotient {on_quot}"
            );
        }
    }

    /// [`arrow_worst`] over the stored backend: same predicates, same
    /// query, block-streamed engines.
    fn arrow_worst_stored(model: &StoredQuotientModel, arrow: &pa_core::Arrow) -> f64 {
        let from = pa_faults::set_pred_under(arrow.from()).unwrap();
        let to = pa_faults::set_pred_under(arrow.to()).unwrap();
        let starts = model.starts_where(|c, m| from(c, m));
        assert!(!starts.is_empty(), "arrow source must be reachable");
        let n = model.n;
        let values = model
            .model
            .query_where(|s| to(&s.inner.config, s.crashed_mask(n)))
            .objective(pa_mdp::QueryObjective::MinProb)
            .horizon(pa_lehmann_rabin::time_to_budget(arrow.time()))
            .run()
            .unwrap()
            .values;
        starts
            .into_iter()
            .map(|i| values[i])
            .fold(f64::INFINITY, f64::min)
    }

    fn spill_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pa-batch-cache-spill-{}-{tag}", std::process::id()))
    }

    #[test]
    fn stored_quotient_answers_match_the_in_core_quotient_bitwise() {
        let dir = spill_dir("parity");
        // A one-byte block-cache budget: at most one block resident per
        // sweep, the harshest paging schedule.
        let cache = ModelCache::new().with_spill(&dir, 1);
        let quot = cache.model_quotient(3, 1_000_000).unwrap();
        let stored = cache.model_quotient_stored(3, 1_000_000).unwrap();
        assert_eq!(
            stored.model.num_states(),
            quot.explored.num_states(),
            "same orbit space"
        );
        for (arrow, _why) in pa_lehmann_rabin::paper::all_arrows() {
            assert_eq!(
                arrow_worst(quot.as_ref(), &arrow).to_bits(),
                arrow_worst_stored(stored.as_ref(), &arrow).to_bits(),
                "{arrow}: stored backend must answer bitwise identically"
            );
        }
        assert_eq!(cache.stored_misses(), 1);
        let again = cache.model_quotient_stored(3, 1_000_000).unwrap();
        assert!(Arc::ptr_eq(&stored, &again));
        assert_eq!(cache.stored_hits(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_models_are_accounted_at_cache_size_not_model_size() {
        let dir = spill_dir("accounting");
        let budget = 4096u64;
        let cache = ModelCache::new().with_spill(&dir, budget);
        let stored = cache.model_quotient_stored(3, 1_000_000).unwrap();
        // The contract: space tables + block-cache budget, independent of
        // how many bytes of CSR rows sit on disk.
        assert_eq!(
            stored.mem_bytes(),
            stored.model.space().mem_bytes() + budget
        );
        assert_eq!(cache.resident_bytes(), stored.mem_bytes());
        // And genuinely cheaper than holding the in-core quotient.
        let quot = cache.model_quotient(3, 1_000_000).unwrap();
        assert!(stored.mem_bytes() < quot.mem_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_slots_participate_in_eviction_and_rebuild_bitwise() {
        let dir = spill_dir("evict");
        let probe = ModelCache::new().with_spill(&dir, 4096);
        let reference = probe.model_quotient_stored(3, 1_000_000).unwrap();
        let one_slot = reference.mem_bytes();

        // Budget fits one stored slot but not two distinct maps' worth:
        // building the (larger) in-core quotient must evict the stored LRU.
        let cache = ModelCache::with_budget(one_slot + one_slot / 2).with_spill(&dir, 4096);
        let first = cache.model_quotient_stored(3, 1_000_000).unwrap();
        assert_eq!(cache.evictions(), 0);
        cache.model_quotient(3, 1_000_000).unwrap();
        assert!(cache.evictions() >= 1, "stored slot evicted to fit");
        assert_eq!(cache.distinct_stored_models(), 0, "tombstone is not live");

        // Re-demand rebuilds (not a miss) bitwise identically — the spill
        // file is rewritten by the same deterministic serial exploration.
        let rebuilt = cache.model_quotient_stored(3, 1_000_000).unwrap();
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(cache.stored_misses(), 1, "rebuild is not a miss");
        assert!(cache.rebuilds() >= 1);
        for (arrow, _why) in pa_lehmann_rabin::paper::all_arrows() {
            assert_eq!(
                arrow_worst_stored(reference.as_ref(), &arrow).to_bits(),
                arrow_worst_stored(rebuilt.as_ref(), &arrow).to_bits(),
                "{arrow}: rebuilt stored model must answer bitwise identically"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_less_cache_refuses_stored_lookups_with_a_named_error() {
        let cache = ModelCache::new();
        let err = cache.model_quotient_stored(3, 1_000_000).unwrap_err();
        assert!(err.contains("spill"), "{err}");
        assert_eq!(cache.stored_misses(), 0, "refusal is not a build");
    }

    #[test]
    fn errors_are_cached_and_shared() {
        let cache = ModelCache::new();
        let plan = FaultPlan::none();
        let first = cache.model(3, &plan, 2);
        let second = cache.model(3, &plan, 2);
        assert!(first.is_err());
        assert_eq!(first.err(), second.err());
        assert_eq!(cache.model_misses(), 1, "failed build is not retried");
        assert_eq!(cache.model_hits(), 1);
        // Error slots are never accounted or evicted.
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn budget_evicts_lru_and_rebuilds_bitwise_identical() {
        // Budget fits one n=3 model but not two: demanding a second plan
        // must evict the least-recently-used first one.
        let unbounded = ModelCache::new();
        let none = FaultPlan::none();
        let crash = FaultPlan::single(2, 0, FaultKind::CrashStop).unwrap();
        let reference = unbounded.model(3, &none, 1_000_000).unwrap();
        let one_model = reference.mem_bytes();

        let cache = ModelCache::with_budget(one_model + one_model / 2);
        let first = cache.model(3, &none, 1_000_000).unwrap();
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.resident_bytes(), first.mem_bytes());

        let second = cache.model(3, &crash, 1_000_000).unwrap();
        assert_eq!(cache.evictions(), 1, "LRU slot evicted to fit");
        assert_eq!(cache.resident_bytes(), second.mem_bytes());
        assert_eq!(cache.distinct_models(), 1, "tombstone is not live");
        assert_eq!(cache.model_misses(), 2);
        assert_eq!(cache.rebuilds(), 0);

        // Re-demanding the evicted key rebuilds — not a miss, and the
        // rebuilt model is bitwise identical to the unbounded build.
        let rebuilt = cache.model(3, &none, 1_000_000).unwrap();
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(cache.rebuilds(), 1);
        assert_eq!(cache.model_misses(), 2, "rebuild is not a miss");
        assert_eq!(cache.evictions(), 2, "the other slot got evicted");
        assert_eq!(cache.resident_bytes(), rebuilt.mem_bytes());
        assert_eq!(rebuilt.mem_bytes(), reference.mem_bytes());
        assert_eq!(
            rebuilt.explored.num_states(),
            reference.explored.num_states()
        );
        for (arrow, _why) in pa_lehmann_rabin::paper::all_arrows() {
            assert_eq!(
                arrow_worst(rebuilt.as_ref(), &arrow).to_bits(),
                arrow_worst(reference.as_ref(), &arrow).to_bits(),
                "{arrow}: rebuilt model must answer bitwise identically"
            );
        }
        // Accesses decompose exactly: 3 calls = 2 misses + 1 rebuild.
        assert_eq!(cache.model_hits(), 0);
    }

    #[test]
    fn resident_bytes_tracks_the_sum_of_live_slots() {
        let cache = ModelCache::new();
        assert_eq!(cache.resident_bytes(), 0);
        let full = cache.model(3, &FaultPlan::none(), 1_000_000).unwrap();
        assert_eq!(cache.resident_bytes(), full.mem_bytes());
        let quot = cache.model_quotient(3, 1_000_000).unwrap();
        assert_eq!(cache.resident_bytes(), full.mem_bytes() + quot.mem_bytes());
        assert!(quot.mem_bytes() > 0, "quotient slots are accounted too");
    }

    #[test]
    fn oversized_budget_never_evicts_and_tiny_budget_keeps_newest() {
        let none = FaultPlan::none();
        // A budget of one byte cannot hold anything, but the just-built
        // slot is protected: the cache stays one-model resident, evicting
        // only when the next build displaces it.
        let cache = ModelCache::with_budget(1);
        let a = cache.model(3, &none, 1_000_000).unwrap();
        assert_eq!(cache.evictions(), 0, "sole slot is never self-evicted");
        assert_eq!(cache.resident_bytes(), a.mem_bytes());
        let crash = FaultPlan::single(2, 0, FaultKind::CrashStop).unwrap();
        let b = cache.model(3, &crash, 1_000_000).unwrap();
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.resident_bytes(), b.mem_bytes());
    }

    #[test]
    fn session_stats_are_warmth_and_eviction_invariant() {
        let none = FaultPlan::none();
        let crash = FaultPlan::single(2, 0, FaultKind::CrashStop).unwrap();
        let drive = |session: &CacheSession| {
            session.model(3, &none, 1_000_000).unwrap();
            session.model(3, &crash, 1_000_000).unwrap();
            session.model(3, &none, 1_000_000).unwrap();
            session.stats()
        };

        // Cold, unbounded — the baseline a dedicated cache would report.
        let cold = ModelCache::new();
        let baseline = drive(&CacheSession::new(&cold));
        assert_eq!(baseline.model_misses, 2);
        assert_eq!(baseline.model_hits, 1);
        assert_eq!(baseline.config_misses, 1);
        assert_eq!(baseline.config_hits, 1);
        assert_eq!(baseline.distinct_models, 2);

        // Warm: a second session over the same cache reports identically.
        assert_eq!(drive(&CacheSession::new(&cold)), baseline);

        // Evicting: a budget that thrashes reports identically too.
        let one = cold.model(3, &none, 1_000_000).unwrap().mem_bytes();
        let tight = ModelCache::with_budget(one + one / 2);
        assert_eq!(drive(&CacheSession::new(&tight)), baseline);
        assert!(tight.evictions() > 0, "budget did force evictions");
        assert_eq!(drive(&CacheSession::new(&tight)), baseline);
    }
}
