//! The shared model cache: explored fault-wrapped round models built once
//! per `(ring size, fault plan)` key and reused by every job that queries
//! them.
//!
//! # Why sharing is sound
//!
//! The per-analysis pipelines (`check_arrow_under`, `max_expected_time`)
//! each build a model whose starts are the analysis's *from*-set and whose
//! *to*-set is absorbing. The cache instead builds one [`SharedModel`] per
//! key with **every** reachable configuration as a start and **no**
//! absorption, then lets each query pick its own start subset and target
//! mask:
//!
//! * Bounded reachability clamps target states to their value (1) at every
//!   budget level, so a target state's outgoing transitions — the only
//!   thing absorption removes — never influence any value. Every state of
//!   the per-analysis model appears in the shared model with an identical
//!   successor distribution, so per-state value arithmetic is the same
//!   f64 operations in the same order: the results are bitwise equal,
//!   which the cross-check tests pin.
//! * Expected-cost analyses clamp target states to 0 the same way; states
//!   from which an adversary avoids the target get `∞`, and
//!   [`pa_mdp::ExpectedCost::max_over`] only faults on *queried* infinite
//!   states, so reading just the analysis's start subset is safe.
//!
//! # Concurrency and determinism
//!
//! Each cache slot is a `OnceLock`: the first job to need a key builds it
//! while any racing jobs block on the same slot, so a model is built
//! exactly once per key no matter how the scheduler interleaves jobs.
//! Misses therefore equal the number of distinct keys demanded and hits
//! equal `accesses − misses` — both independent of worker count, which the
//! determinism tests (and the `compare_bench` gate on the v5 `batch`
//! block) rely on.
//!
//! Build work runs inside the cache's own [`TelemetryScope`] (entered
//! *nested* over the building job's scope), so exploration metrics are
//! attributed to the cache rather than to whichever job happened to get
//! there first — keeping per-job scoped metrics deterministic.
//!
//! # Quotient models
//!
//! [`ModelCache::model_quotient`] caches the rotation-quotient model of
//! the fault-free ring, keyed by ring size alone: orbit representatives
//! under [`pa_mdp::RingRotation`], stored bit-packed
//! ([`pa_faults::FaultyStateCodec`]). Everything downstream of the store —
//! `starts_where`, `target_where`, CSR queries — is generic over
//! [`pa_mdp::StateSpace`], so the full-space and quotient models run the
//! same analysis code; the tests pin their arrow answers bitwise equal.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pa_faults::{
    faulty_round_cost, FaultKind, FaultPlan, FaultyRoundMdp, FaultyRoundState, FaultyStateCodec,
};
use pa_lehmann_rabin::{reachable_configs, reachable_configs_quotient, Config, RoundConfig};
use pa_mdp::{BoxedSpace, CsrMdp, Explore, Explored, PackedSpace, RingRotation, StateSpace};
use pa_telemetry::TelemetryScope;

/// A fault-wrapped round model explored from **all** reachable
/// configurations, with no absorption — valid for every arrow and
/// expected-time query on its `(n, plan)` key (see the module docs).
///
/// The state store is pluggable: the default boxed representation for
/// full-space models, [`PackedSpace`] for the quotient models of
/// [`ModelCache::model_quotient`]. Queries are representation-agnostic —
/// they run on [`SharedModel::csr`] and only touch the store through
/// [`pa_mdp::StateSpace`].
pub struct SharedModel<SP = BoxedSpace<FaultyRoundState>> {
    /// Ring size.
    pub n: usize,
    /// The crash mask already in force when the clock starts (round-1
    /// non-drop events), the same mask `check_arrow_under` filters
    /// from-sets with.
    pub mask0: u32,
    /// The explored model: states, index, and the explicit MDP.
    pub explored: Explored<FaultyRoundState, SP>,
    /// The CSR flattening, built once so queries skip re-flattening.
    pub csr: CsrMdp,
}

/// The quotient [`SharedModel`]: orbit representatives under ring
/// rotation, bit-packed. Fault-free by construction (fault plans name
/// processes and break the symmetry).
pub type QuotientModel = SharedModel<PackedSpace<FaultyStateCodec>>;

impl<SP: StateSpace<FaultyRoundState>> SharedModel<SP> {
    /// Initial-state indices whose start configuration satisfies `pred`
    /// (judged under [`SharedModel::mask0`], mirroring the from-set filter
    /// of `check_arrow_under`). Order follows the initial-state order,
    /// which is the reachable-configuration order — so worst-state
    /// tie-breaking matches the unshared pipeline.
    pub fn starts_where(&self, mut pred: impl FnMut(&Config, u32) -> bool) -> Vec<usize> {
        self.explored
            .mdp
            .initial_states()
            .iter()
            .copied()
            .filter(|&i| pred(&self.explored.state(i).inner.config, self.mask0))
            .collect()
    }
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, String>>>;

/// Cumulative access counts of one cache map.
#[derive(Debug, Default)]
struct MapStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The keyed model cache shared by every job of a batch run.
pub struct ModelCache {
    configs: Mutex<HashMap<usize, Slot<Vec<Config>>>>,
    models: Mutex<HashMap<(usize, FaultPlan), Slot<SharedModel>>>,
    quotient_models: Mutex<HashMap<usize, Slot<QuotientModel>>>,
    config_stats: MapStats,
    model_stats: MapStats,
    quotient_stats: MapStats,
    scope: TelemetryScope,
}

impl Default for ModelCache {
    fn default() -> ModelCache {
        ModelCache::new()
    }
}

fn get_or_build<K: Clone + Eq + std::hash::Hash, T>(
    map: &Mutex<HashMap<K, Slot<T>>>,
    stats: &MapStats,
    scope: &TelemetryScope,
    key: &K,
    hit_metric: &'static str,
    miss_metric: &'static str,
    build: impl FnOnce() -> Result<T, String>,
) -> Result<Arc<T>, String> {
    let slot: Slot<T> = map
        .lock()
        .expect("cache map poisoned")
        .entry(key.clone())
        .or_default()
        .clone();
    let mut built = false;
    let result = slot.get_or_init(|| {
        built = true;
        stats.misses.fetch_add(1, Ordering::Relaxed);
        // Attribute build work (exploration, CSR flattening) to the
        // cache's scope, nested over the triggering job's scope.
        let _in_cache = scope.enter();
        pa_telemetry::counter(miss_metric).inc();
        let _span = pa_telemetry::span("batch.cache.build_seconds");
        build().map(Arc::new)
    });
    if !built {
        stats.hits.fetch_add(1, Ordering::Relaxed);
        let _in_cache = scope.enter();
        pa_telemetry::counter(hit_metric).inc();
    }
    result.clone()
}

impl ModelCache {
    /// An empty cache with its own `"cache"` telemetry scope.
    pub fn new() -> ModelCache {
        ModelCache {
            configs: Mutex::new(HashMap::new()),
            models: Mutex::new(HashMap::new()),
            quotient_models: Mutex::new(HashMap::new()),
            config_stats: MapStats::default(),
            model_stats: MapStats::default(),
            quotient_stats: MapStats::default(),
            scope: TelemetryScope::new("cache"),
        }
    }

    /// The reachable user-model configurations of a ring of `n`, explored
    /// once per ring size.
    ///
    /// # Errors
    ///
    /// Stringified ring-validation or exploration errors (shared verbatim
    /// with every waiter of the slot).
    pub fn reachable(&self, n: usize, limit: usize) -> Result<Arc<Vec<Config>>, String> {
        get_or_build(
            &self.configs,
            &self.config_stats,
            &self.scope,
            &n,
            "batch.cache.config_hits",
            "batch.cache.config_misses",
            || reachable_configs(n, limit).map_err(|e| e.to_string()),
        )
    }

    /// The shared model of `(n, plan)`, built on first demand.
    ///
    /// # Errors
    ///
    /// Stringified plan-validation or exploration errors.
    pub fn model(
        &self,
        n: usize,
        plan: &FaultPlan,
        limit: usize,
    ) -> Result<Arc<SharedModel>, String> {
        let key = (n, plan.clone());
        get_or_build(
            &self.models,
            &self.model_stats,
            &self.scope,
            &key,
            "batch.cache.model_hits",
            "batch.cache.model_misses",
            || {
                let configs = self.reachable(n, limit)?;
                let cfg = RoundConfig::new(n).map_err(|e| e.to_string())?;
                let mask0 = plan
                    .events_at(1)
                    .iter()
                    .filter(|e| !matches!(e.kind, FaultKind::DropObligation))
                    .fold(0u32, |m, e| m | (1 << e.process));
                let model = FaultyRoundMdp::new(cfg, plan.clone())
                    .map_err(|e| e.to_string())?
                    .with_starts(configs.as_ref().clone());
                let explored = Explore::new(&model)
                    .cost(faulty_round_cost)
                    .limit(limit)
                    .parallel()
                    .run()
                    .map_err(|e| e.to_string())?;
                let csr = CsrMdp::from_explicit(&explored.mdp);
                Ok(SharedModel {
                    n,
                    mask0,
                    explored,
                    csr,
                })
            },
        )
    }

    /// The quotient model of the fault-free ring of `n`: explored from the
    /// canonical (lexicographically-least rotation) representatives of the
    /// reachable configurations, with every successor folded onto its
    /// orbit representative and states stored bit-packed. Up to `n`-fold
    /// smaller than [`ModelCache::model`] with [`FaultPlan::none`], and
    /// every query on it answers for the whole orbit — the soundness
    /// argument is on `pa_lehmann_rabin::check_arrow_quotient`.
    ///
    /// There is deliberately no plan parameter: fault plans name processes
    /// and break rotation symmetry, so only the fault-free model has a
    /// sound quotient (`pa_faults::FaultError::SymmetryBroken` guards the
    /// same boundary in the survival pipeline).
    ///
    /// # Errors
    ///
    /// Stringified ring-validation, codec, or exploration errors.
    pub fn model_quotient(&self, n: usize, limit: usize) -> Result<Arc<QuotientModel>, String> {
        get_or_build(
            &self.quotient_models,
            &self.quotient_stats,
            &self.scope,
            &n,
            "batch.cache.quotient_hits",
            "batch.cache.quotient_misses",
            || {
                let configs = reachable_configs_quotient(n, limit).map_err(|e| e.to_string())?;
                let cfg = RoundConfig::new(n).map_err(|e| e.to_string())?;
                let model = FaultyRoundMdp::new(cfg, FaultPlan::none())
                    .map_err(|e| e.to_string())?
                    .with_starts(configs);
                let codec =
                    FaultyStateCodec::new(n, model.round_cap()).map_err(|e| e.to_string())?;
                let explored = Explore::new(&model)
                    .cost(faulty_round_cost)
                    .limit(limit)
                    .parallel()
                    .symmetry(RingRotation::new(n))
                    .run_in(PackedSpace::new(codec))
                    .map_err(|e| e.to_string())?;
                let csr = CsrMdp::from_explicit(&explored.mdp);
                Ok(SharedModel {
                    n,
                    mask0: 0,
                    explored,
                    csr,
                })
            },
        )
    }

    /// Model-map hits (accesses that found a built or in-flight slot).
    pub fn model_hits(&self) -> u64 {
        self.model_stats.hits.load(Ordering::Relaxed)
    }

    /// Model-map misses (slots this cache actually built). Equals the
    /// number of distinct `(n, plan)` keys demanded.
    pub fn model_misses(&self) -> u64 {
        self.model_stats.misses.load(Ordering::Relaxed)
    }

    /// Config-map hits.
    pub fn config_hits(&self) -> u64 {
        self.config_stats.hits.load(Ordering::Relaxed)
    }

    /// Config-map misses (distinct ring sizes explored).
    pub fn config_misses(&self) -> u64 {
        self.config_stats.misses.load(Ordering::Relaxed)
    }

    /// Quotient-map hits.
    pub fn quotient_hits(&self) -> u64 {
        self.quotient_stats.hits.load(Ordering::Relaxed)
    }

    /// Quotient-map misses (distinct ring sizes quotient-explored).
    pub fn quotient_misses(&self) -> u64 {
        self.quotient_stats.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct full-space models currently cached.
    pub fn distinct_models(&self) -> usize {
        self.models.lock().expect("cache map poisoned").len()
    }

    /// Number of distinct quotient models currently cached.
    pub fn distinct_quotient_models(&self) -> usize {
        self.quotient_models
            .lock()
            .expect("cache map poisoned")
            .len()
    }

    /// The cache's telemetry scope (exploration and flattening metrics of
    /// every build land here).
    pub fn scope(&self) -> &TelemetryScope {
        &self.scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits_and_shares_the_arc() {
        let cache = ModelCache::new();
        let plan = FaultPlan::none();
        let a = cache.model(3, &plan, 1_000_000).unwrap();
        let b = cache.model(3, &plan, 1_000_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.model_misses(), 1);
        assert_eq!(cache.model_hits(), 1);
        // The model build consumed the config cache once.
        assert_eq!(cache.config_misses(), 1);
        assert_eq!(cache.distinct_models(), 1);
    }

    #[test]
    fn distinct_plans_get_distinct_models() {
        let cache = ModelCache::new();
        let none = FaultPlan::none();
        let crash = FaultPlan::single(2, 0, FaultKind::CrashStop).unwrap();
        let a = cache.model(3, &none, 1_000_000).unwrap();
        let b = cache.model(3, &crash, 1_000_000).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.model_misses(), 2);
        assert_eq!(cache.distinct_models(), 2);
        // Both models reused the one reachable-config exploration.
        assert_eq!(cache.config_misses(), 1);
        assert_eq!(cache.config_hits(), 1);
    }

    #[test]
    fn quotient_models_are_cached_per_ring_size() {
        let cache = ModelCache::new();
        let a = cache.model_quotient(3, 1_000_000).unwrap();
        let b = cache.model_quotient(3, 1_000_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.quotient_misses(), 1);
        assert_eq!(cache.quotient_hits(), 1);
        assert_eq!(cache.distinct_quotient_models(), 1);
        // The quotient map is independent of the full-space model map.
        assert_eq!(cache.model_misses(), 0);
        // And genuinely smaller than the full space.
        let full = cache.model(3, &FaultPlan::none(), 1_000_000).unwrap();
        assert!(a.explored.num_states() < full.explored.num_states());
    }

    /// Worst-case arrow probability on a shared model, representation- and
    /// quotient-agnostic — the same query `run_arrow` issues.
    fn arrow_worst<SP: StateSpace<FaultyRoundState>>(
        model: &SharedModel<SP>,
        arrow: &pa_core::Arrow,
    ) -> f64 {
        let from = pa_faults::set_pred_under(arrow.from()).unwrap();
        let to = pa_faults::set_pred_under(arrow.to()).unwrap();
        let starts = model.starts_where(|c, m| from(c, m));
        assert!(!starts.is_empty(), "arrow source must be reachable");
        let n = model.n;
        let target = model
            .explored
            .target_where(|s| to(&s.inner.config, s.crashed_mask(n)));
        let values = pa_mdp::Query::csr(&model.csr)
            .objective(pa_mdp::QueryObjective::MinProb)
            .target(target)
            .horizon(pa_lehmann_rabin::time_to_budget(arrow.time()))
            .run()
            .unwrap()
            .values;
        starts
            .into_iter()
            .map(|i| values[i])
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn quotient_model_answers_match_the_full_model_bitwise_at_n3() {
        let cache = ModelCache::new();
        let full = cache.model(3, &FaultPlan::none(), 1_000_000).unwrap();
        let quot = cache.model_quotient(3, 1_000_000).unwrap();
        for (arrow, _why) in pa_lehmann_rabin::paper::all_arrows() {
            let on_full = arrow_worst(full.as_ref(), &arrow);
            let on_quot = arrow_worst(quot.as_ref(), &arrow);
            assert_eq!(
                on_full.to_bits(),
                on_quot.to_bits(),
                "{arrow}: full {on_full} vs quotient {on_quot}"
            );
        }
    }

    #[test]
    fn errors_are_cached_and_shared() {
        let cache = ModelCache::new();
        let plan = FaultPlan::none();
        let first = cache.model(3, &plan, 2);
        let second = cache.model(3, &plan, 2);
        assert!(first.is_err());
        assert_eq!(first.err(), second.err());
        assert_eq!(cache.model_misses(), 1, "failed build is not retried");
        assert_eq!(cache.model_hits(), 1);
    }
}
