//! Aggregated batch output: the canonical order-independent JSON, the
//! worker-invariance digest over it, and the full JSONL detail stream.
//!
//! Two serializations with two contracts:
//!
//! * [`BatchReport::canonical_json`] — **bitwise identical for every
//!   worker count.** Jobs sorted by key; carries measured values,
//!   statuses, per-job scoped counters (non-custom jobs, only when
//!   telemetry was enabled), and aggregate cache statistics. Excludes
//!   everything scheduling-dependent: wall-clock durations, timer
//!   metrics, the worker count itself, and which job triggered each cache
//!   build. [`BatchReport::digest`] is an FNV-1a 64 hash over it — the
//!   `worker-invariance digest` of the bench artifact's `batch` block.
//! * [`BatchReport::jsonl`] — one line per job with durations and the
//!   full telemetry snapshot; for humans and dashboards, not for diffing.

use serde::{json_escape, Serialize};

use crate::spec::{JobResult, JobStatus, JobValue};

/// Aggregate cache statistics of one batch run (all deterministic per
/// job set — see the concurrency notes on [`crate::cache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Model-map accesses served from an existing slot.
    pub model_hits: u64,
    /// Model builds (= distinct `(n, plan)` keys demanded).
    pub model_misses: u64,
    /// Config-map accesses served from an existing slot.
    pub config_hits: u64,
    /// Config explorations (= distinct ring sizes demanded).
    pub config_misses: u64,
    /// Distinct models resident at the end of the run.
    pub distinct_models: usize,
}

impl CacheStats {
    /// Model-cache hit rate in `[0, 1]` (0 when the cache was never hit).
    pub fn hit_rate(&self) -> f64 {
        let total = self.model_hits + self.model_misses;
        if total == 0 {
            0.0
        } else {
            self.model_hits as f64 / total as f64
        }
    }
}

/// Job tallies by terminal status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tally {
    /// Jobs that finished with a value.
    pub done: usize,
    /// Jobs that errored.
    pub failed: usize,
    /// Jobs that hit their timeout.
    pub timed_out: usize,
    /// Jobs cancelled with the batch.
    pub cancelled: usize,
    /// Finished jobs whose value reports a violated claim.
    pub violated: usize,
}

/// The aggregated result of [`crate::run_batch`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// All jobs, sorted by key.
    pub jobs: Vec<JobResult>,
    /// Worker threads the run used (report-only; not canonical).
    pub workers: usize,
    /// Wall-clock duration of the whole batch (report-only).
    pub wall_seconds: f64,
    /// Aggregate cache statistics.
    pub cache: CacheStats,
    /// The cache scope's telemetry (exploration/flattening of every
    /// build), for the JSONL stream.
    pub cache_snapshot: pa_telemetry::TelemetrySnapshot,
}

/// Formats a finite `f64` exactly as Rust's shortest-roundtrip `Display`
/// (deterministic across platforms for identical bit patterns).
fn fmt_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "non-finite value in batch report");
    format!("{x}")
}

fn value_json(value: &JobValue) -> String {
    match value {
        JobValue::Prob {
            measured,
            claimed,
            holds,
            worst_state,
            states_checked,
        } => {
            let worst = match worst_state {
                Some(s) => json_escape(s),
                None => "null".to_string(),
            };
            format!(
                "{{\"type\":\"prob\",\"measured\":{},\"claimed\":{},\"holds\":{holds},\
                 \"worst_state\":{worst},\"states_checked\":{states_checked}}}",
                fmt_f64(*measured),
                fmt_f64(*claimed),
            )
        }
        JobValue::Time {
            expected,
            bound,
            within,
        } => {
            let e = match expected {
                Some(x) => fmt_f64(*x),
                None => "null".to_string(),
            };
            format!(
                "{{\"type\":\"time\",\"expected\":{e},\"bound\":{},\"within\":{within}}}",
                fmt_f64(*bound)
            )
        }
        JobValue::Invariant {
            holds,
            states_checked,
        } => format!(
            "{{\"type\":\"invariant\",\"holds\":{holds},\"states_checked\":{states_checked}}}"
        ),
        JobValue::Lemma {
            name,
            min_prob,
            instances,
            holds,
        } => format!(
            "{{\"type\":\"lemma\",\"name\":{},\"min_prob\":{},\"instances\":{instances},\
             \"holds\":{holds}}}",
            json_escape(name),
            fmt_f64(*min_prob),
        ),
        JobValue::Estimate {
            point,
            lo,
            hi,
            claimed,
            trials,
            hits,
            refuted,
        } => format!(
            "{{\"type\":\"estimate\",\"point\":{},\"lo\":{},\"hi\":{},\"claimed\":{},\
             \"trials\":{trials},\"hits\":{hits},\"refuted\":{refuted}}}",
            fmt_f64(*point),
            fmt_f64(*lo),
            fmt_f64(*hi),
            fmt_f64(*claimed),
        ),
        JobValue::Tallies {
            holds,
            violated,
            info,
        } => format!(
            "{{\"type\":\"tallies\",\"holds\":{holds},\"violated\":{violated},\"info\":{info}}}"
        ),
    }
}

/// One job's canonical entry: key, status, value, and (for non-custom jobs
/// with telemetry enabled) its scoped counters — the deterministic subset
/// of the snapshot.
fn canonical_job_json(job: &JobResult) -> String {
    let mut fields = vec![
        format!("\"key\":{}", json_escape(&job.key)),
        format!("\"status\":\"{}\"", job.status.label()),
    ];
    match &job.status {
        JobStatus::Done(value) => fields.push(format!("\"value\":{}", value_json(value))),
        JobStatus::Failed(message) => {
            fields.push(format!("\"error\":{}", json_escape(message)));
        }
        JobStatus::TimedOut | JobStatus::Cancelled => {}
    }
    if !job.custom && job.snapshot.enabled {
        let counters: Vec<String> = job
            .snapshot
            .counters
            .iter()
            .map(|c| format!("{}:{}", json_escape(&c.name), c.value))
            .collect();
        fields.push(format!("\"counters\":{{{}}}", counters.join(",")));
    }
    format!("{{{}}}", fields.join(","))
}

impl BatchReport {
    /// Tallies jobs by terminal status.
    pub fn tally(&self) -> Tally {
        let mut tally = Tally::default();
        for job in &self.jobs {
            match &job.status {
                JobStatus::Done(value) => {
                    tally.done += 1;
                    if value.violated() {
                        tally.violated += 1;
                    }
                }
                JobStatus::Failed(_) => tally.failed += 1,
                JobStatus::TimedOut => tally.timed_out += 1,
                JobStatus::Cancelled => tally.cancelled += 1,
            }
        }
        tally
    }

    /// The canonical, worker-count-invariant JSON (see module docs).
    pub fn canonical_json(&self) -> String {
        let jobs: Vec<String> = self.jobs.iter().map(canonical_job_json).collect();
        let c = &self.cache;
        format!(
            "{{\"schema\":\"pa-batch/canonical/v1\",\"jobs\":[{}],\"cache\":{{\
             \"model_hits\":{},\"model_misses\":{},\"config_hits\":{},\"config_misses\":{},\
             \"distinct_models\":{}}}}}",
            jobs.join(","),
            c.model_hits,
            c.model_misses,
            c.config_hits,
            c.config_misses,
            c.distinct_models,
        )
    }

    /// FNV-1a 64 over [`canonical_json`](BatchReport::canonical_json), as
    /// 16 hex digits — the worker-invariance digest pinned by the bench
    /// baseline.
    pub fn digest(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.canonical_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// The full JSONL stream: a header line (run-level stats, cache
    /// telemetry) followed by one line per job with durations and the
    /// complete scoped snapshot.
    pub fn jsonl(&self) -> String {
        let c = &self.cache;
        let mut lines = vec![format!(
            "{{\"schema\":\"pa-batch/jsonl/v1\",\"workers\":{},\"wall_seconds\":{},\
             \"digest\":\"{}\",\"cache\":{{\"model_hits\":{},\"model_misses\":{},\
             \"config_hits\":{},\"config_misses\":{},\"distinct_models\":{},\
             \"telemetry\":{}}}}}",
            self.workers,
            fmt_f64(self.wall_seconds),
            self.digest(),
            c.model_hits,
            c.model_misses,
            c.config_hits,
            c.config_misses,
            c.distinct_models,
            self.cache_snapshot.to_json(),
        )];
        for job in &self.jobs {
            let mut fields = vec![
                format!("\"key\":{}", json_escape(&job.key)),
                format!("\"n\":{}", job.n),
                format!("\"plan\":{}", json_escape(&job.plan_name)),
                format!("\"status\":\"{}\"", job.status.label()),
            ];
            match &job.status {
                JobStatus::Done(value) => fields.push(format!("\"value\":{}", value_json(value))),
                JobStatus::Failed(message) => {
                    fields.push(format!("\"error\":{}", json_escape(message)));
                }
                _ => {}
            }
            fields.push(format!("\"seconds\":{}", fmt_f64(job.seconds)));
            fields.push(format!("\"telemetry\":{}", job.snapshot.to_json()));
            lines.push(format!("{{{}}}", fields.join(",")));
        }
        lines.join("\n") + "\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_telemetry::TelemetrySnapshot;

    fn sample_report() -> BatchReport {
        let snapshot = {
            let scope = pa_telemetry::TelemetryScope::new("test");
            scope.snapshot()
        };
        BatchReport {
            jobs: vec![
                JobResult {
                    key: "arrow:0|n=3|plan=none|solver=jacobi|eps=1e-9".into(),
                    n: 3,
                    plan_name: "none".into(),
                    custom: false,
                    status: JobStatus::Done(JobValue::Prob {
                        measured: 0.5,
                        claimed: 0.5,
                        holds: true,
                        worst_state: Some("W0 W1 W2".into()),
                        states_checked: 7,
                    }),
                    seconds: 0.125,
                    snapshot: snapshot.clone(),
                },
                JobResult {
                    key: "custom:probe|n=3|plan=none|solver=jacobi|eps=1e-9".into(),
                    n: 3,
                    plan_name: "none".into(),
                    custom: true,
                    status: JobStatus::Failed("region X unknown".into()),
                    seconds: 0.25,
                    snapshot,
                },
            ],
            workers: 4,
            wall_seconds: 0.5,
            cache: CacheStats {
                model_hits: 3,
                model_misses: 1,
                config_hits: 0,
                config_misses: 1,
                distinct_models: 1,
            },
            cache_snapshot: TelemetrySnapshot {
                enabled: false,
                counters: vec![],
                gauges: vec![],
                timers: vec![],
                histograms: vec![],
                series: vec![],
            },
        }
    }

    #[test]
    fn canonical_json_excludes_timing_and_worker_count() {
        let report = sample_report();
        let json = report.canonical_json();
        assert!(json.contains("\"measured\":0.5"));
        assert!(json.contains("\"error\":\"region X unknown\""));
        assert!(!json.contains("seconds"), "no wall-clock in canonical");
        assert!(!json.contains("workers"), "no worker count in canonical");
        let mut other = report.clone();
        other.workers = 1;
        other.wall_seconds = 99.0;
        other.jobs[0].seconds = 42.0;
        assert_eq!(json, other.canonical_json());
        assert_eq!(report.digest(), other.digest());
    }

    #[test]
    fn digest_is_sensitive_to_values() {
        let report = sample_report();
        let mut other = report.clone();
        match &mut other.jobs[0].status {
            JobStatus::Done(JobValue::Prob { measured, .. }) => *measured = 0.25,
            _ => unreachable!(),
        }
        assert_ne!(report.digest(), other.digest());
        assert_eq!(report.digest().len(), 16);
    }

    #[test]
    fn tally_and_hit_rate() {
        let report = sample_report();
        let tally = report.tally();
        assert_eq!(tally.done, 1);
        assert_eq!(tally.failed, 1);
        assert_eq!(tally.violated, 0);
        assert!((report.cache.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn jsonl_has_header_plus_one_line_per_job() {
        let report = sample_report();
        let jsonl = report.jsonl();
        let lines: Vec<&str> = jsonl.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"pa-batch/jsonl/v1\""));
        assert!(lines[0].contains("\"workers\":4"));
        assert!(lines[1].contains("\"seconds\":0.125"));
    }
}
