//! Job specifications: what a batch run is made of.
//!
//! A [`JobSpec`] names one analysis — a paper arrow, the composed
//! `T —13→ C` arrow, an expected-time bound, the Lemma 6.1 invariant, an
//! appendix lemma, or an arbitrary [`JobKind::Custom`] closure — on one
//! ring size, under one [`FaultPlan`], with one solver and tolerance. Its
//! [`key`](JobSpec::key) is a stable string that identifies the job in
//! every report; the driver sorts and deduplicates by it, which is what
//! makes aggregated output order-independent.

use std::sync::Arc;
use std::time::Duration;

use pa_core::SetExpr;
use pa_faults::{FaultPlan, DEFAULT_STATE_LIMIT};
use pa_mdp::Solver;
use pa_telemetry::TelemetrySnapshot;

use crate::driver::JobCtx;

/// A custom job body: gets the shared [`crate::ModelCache`] and the
/// cancellation/timeout checkpoint through its [`JobCtx`].
pub type CustomFn = dyn Fn(&JobCtx<'_>) -> Result<JobValue, String> + Send + Sync;

/// Knobs of a sampled ([`JobKind::Sampled`]) job. All three are part of
/// the job key: changing any of them changes the estimate bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McSettings {
    /// Trajectories to sample.
    pub trajectories: u64,
    /// Base seed; trajectory `i` runs on its derived stream.
    pub seed: u64,
}

/// Which analysis a job runs.
#[derive(Clone)]
pub enum JobKind {
    /// One of the five paper arrows, by index into
    /// [`pa_lehmann_rabin::paper::all_arrows`].
    Arrow {
        /// Index into the paper's arrow chain (0..5).
        index: usize,
    },
    /// The composed `T —13→_{1/8} C` arrow
    /// ([`pa_lehmann_rabin::paper::arrow_t_to_c`]).
    ComposedArrow,
    /// Worst-case expected time from the worst state of `from` to `to`,
    /// compared against `bound` (paper Section 6.2).
    ExpectedTime {
        /// Source region set.
        from: SetExpr,
        /// Target region set.
        to: SetExpr,
        /// The claimed upper bound, in time units.
        bound: f64,
    },
    /// The Lemma 6.1 safety invariant
    /// ([`pa_lehmann_rabin::verify_lemma_6_1`]).
    Invariant,
    /// One appendix lemma, by index into
    /// [`pa_lehmann_rabin::lemmas::appendix_lemmas`].
    Lemma {
        /// Index into the appendix lemma list.
        index: usize,
    },
    /// The exact tier of the same estimand as [`JobKind::Sampled`]: the
    /// probability of reaching `target` within `within` time units from
    /// the all-trying start under the uniform-random adversary and the
    /// job's fault plan, via the exact bounded query over the
    /// [`pa_mc::UniformChain`] wrapping
    /// ([`pa_faults::exact_reach_uniform`]). Violated when the exact
    /// value falls below `claimed`. [`crate::select_kind`] picks between
    /// this and [`JobKind::Sampled`] on a state budget.
    Reach {
        /// Target region set.
        target: SetExpr,
        /// Time budget of the bounded query.
        within: u32,
        /// The claimed lower bound on the probability.
        claimed: f64,
    },
    /// A sampled (Monte-Carlo) reachability estimate: the probability of
    /// reaching `target` within `within` time units from the all-trying
    /// start under the uniform-random adversary and the job's fault plan
    /// ([`pa_faults::estimate_reach_uniform`]). The escape-hatch tier for
    /// rings the exact engine cannot hold; the claim is *statistically
    /// refuted* (and the job violated) when the whole 99% interval falls
    /// below `claimed`.
    Sampled {
        /// Target region set.
        target: SetExpr,
        /// Time budget per trajectory.
        within: u32,
        /// The claimed lower bound on the probability.
        claimed: f64,
        /// Sampling knobs (part of the key).
        mc: McSettings,
    },
    /// An arbitrary closure; the batch layer runs it under the job's
    /// telemetry scope and classifies its result like any other job.
    Custom {
        /// Stable name, used in the job key.
        name: String,
        /// The job body.
        run: Arc<CustomFn>,
    },
}

impl std::fmt::Debug for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobKind::Arrow { index } => write!(f, "Arrow({index})"),
            JobKind::ComposedArrow => write!(f, "ComposedArrow"),
            JobKind::ExpectedTime { from, to, bound } => {
                write!(f, "ExpectedTime({from} -> {to} <= {bound})")
            }
            JobKind::Invariant => write!(f, "Invariant"),
            JobKind::Lemma { index } => write!(f, "Lemma({index})"),
            JobKind::Reach {
                target,
                within,
                claimed,
            } => write!(f, "Reach({target} <= {within} @ {claimed})"),
            JobKind::Sampled {
                target,
                within,
                claimed,
                mc,
            } => write!(
                f,
                "Sampled({target} <= {within} @ {claimed}, {} trials, seed {})",
                mc.trajectories, mc.seed
            ),
            JobKind::Custom { name, .. } => write!(f, "Custom({name})"),
        }
    }
}

impl JobKind {
    /// The kind's fragment of the job key. Stable: reports, digests, and
    /// the bench baseline all key on it.
    pub fn key_fragment(&self) -> String {
        match self {
            JobKind::Arrow { index } => format!("arrow:{index}"),
            JobKind::ComposedArrow => "composed".to_string(),
            JobKind::ExpectedTime { from, to, .. } => format!("etime:{from}->{to}"),
            JobKind::Invariant => "invariant".to_string(),
            JobKind::Lemma { index } => format!("lemma:{index}"),
            JobKind::Reach { target, within, .. } => format!("reach:{target}|t={within}"),
            JobKind::Sampled {
                target, within, mc, ..
            } => format!(
                "sampled:{target}|t={within}|traj={}|seed={}",
                mc.trajectories, mc.seed
            ),
            JobKind::Custom { name, .. } => format!("custom:{name}"),
        }
    }
}

/// One job: an analysis kind plus every knob that changes its answer.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Ring size.
    pub n: usize,
    /// The analysis to run.
    pub kind: JobKind,
    /// Human-readable fault-plan name (a report column, part of the key).
    pub plan_name: String,
    /// The fault schedule the model is built under.
    pub plan: FaultPlan,
    /// Value-iteration engine for the job's queries.
    pub solver: Solver,
    /// Convergence tolerance for unbounded queries.
    pub epsilon: f64,
    /// Cap on explored states.
    pub state_limit: usize,
}

impl JobSpec {
    /// A job with the default knobs: no faults, Jacobi, `1e-9`, the
    /// workspace state limit.
    pub fn new(n: usize, kind: JobKind) -> JobSpec {
        JobSpec {
            n,
            kind,
            plan_name: "none".to_string(),
            plan: FaultPlan::none(),
            solver: Solver::Jacobi,
            epsilon: 1e-9,
            state_limit: DEFAULT_STATE_LIMIT,
        }
    }

    /// Replaces the fault plan (name becomes a report column).
    pub fn with_plan(mut self, name: impl Into<String>, plan: FaultPlan) -> JobSpec {
        self.plan_name = name.into();
        self.plan = plan;
        self
    }

    /// Replaces the solver.
    pub fn with_solver(mut self, solver: Solver) -> JobSpec {
        self.solver = solver;
        self
    }

    /// Replaces the tolerance.
    pub fn with_epsilon(mut self, epsilon: f64) -> JobSpec {
        self.epsilon = epsilon;
        self
    }

    /// Replaces the state limit.
    pub fn with_state_limit(mut self, limit: usize) -> JobSpec {
        self.state_limit = limit;
        self
    }

    /// The job's stable identity: reports sort by it, the driver rejects
    /// duplicates of it, and the worker-invariance digest hashes over it.
    pub fn key(&self) -> String {
        let solver = match self.solver {
            Solver::Jacobi => "jacobi",
            Solver::SccOrdered => "scc",
        };
        format!(
            "{}|n={}|plan={}|solver={solver}|eps={:e}",
            self.kind.key_fragment(),
            self.n,
            self.plan_name,
            self.epsilon
        )
    }
}

/// The measured answer of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobValue {
    /// An arrow check: worst-case probability vs. the claim.
    Prob {
        /// Measured worst-case probability over all adversaries.
        measured: f64,
        /// The claimed bound.
        claimed: f64,
        /// Whether the claim holds (`measured >= claimed - 1e-12`).
        holds: bool,
        /// The minimizing start state, rendered.
        worst_state: Option<String>,
        /// Number of start states checked.
        states_checked: usize,
    },
    /// An expected-time bound check.
    Time {
        /// Worst-case expected time; `None` when some adversary avoids the
        /// target entirely (divergent expectation).
        expected: Option<f64>,
        /// The claimed upper bound.
        bound: f64,
        /// Whether the bound holds.
        within: bool,
    },
    /// An invariant check.
    Invariant {
        /// Whether the invariant holds on every reachable state.
        holds: bool,
        /// Number of states examined (0 when violated).
        states_checked: usize,
    },
    /// An appendix lemma check.
    Lemma {
        /// The lemma's paper name.
        name: String,
        /// Minimal goal probability over all instances and adversaries.
        min_prob: f64,
        /// Hypothesis instances checked.
        instances: usize,
        /// Whether the lemma (a certainty claim) holds.
        holds: bool,
    },
    /// A sampled reachability estimate with its 99% Wilson interval.
    Estimate {
        /// Point estimate `hits / trials`.
        point: f64,
        /// Lower end of the 99% interval.
        lo: f64,
        /// Upper end of the 99% interval.
        hi: f64,
        /// The claimed lower bound the estimate is judged against.
        claimed: f64,
        /// Trajectories sampled.
        trials: u64,
        /// Trajectories that reached the target within the budget.
        hits: u64,
        /// Whether the claim is statistically refuted: the whole 99%
        /// interval sits below `claimed`. (An interval merely straddling
        /// the claim is compatible with it.)
        refuted: bool,
    },
    /// Aggregate verdict tallies from a custom job.
    Tallies {
        /// Claims that held.
        holds: u64,
        /// Claims that were violated.
        violated: u64,
        /// Informational rows with no verdict.
        info: u64,
    },
}

impl JobValue {
    /// Whether the value reports a violated claim (used for exit codes).
    pub fn violated(&self) -> bool {
        match self {
            JobValue::Prob { holds, .. } => !holds,
            JobValue::Time { within, .. } => !within,
            JobValue::Invariant { holds, .. } => !holds,
            JobValue::Lemma { holds, .. } => !holds,
            JobValue::Estimate { refuted, .. } => *refuted,
            JobValue::Tallies { violated, .. } => *violated > 0,
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Finished with a value.
    Done(JobValue),
    /// Errored (model validation, exploration, unknown region, …).
    Failed(String),
    /// Exceeded the per-job timeout at a checkpoint.
    TimedOut,
    /// The batch was cancelled before or during the job.
    Cancelled,
}

impl JobStatus {
    /// Short status label, stable across releases (part of reports).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
            JobStatus::TimedOut => "timed-out",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// One finished job, as aggregated into a [`crate::BatchReport`].
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's stable key.
    pub key: String,
    /// Ring size, copied from the spec for convenience.
    pub n: usize,
    /// Fault-plan name, copied from the spec.
    pub plan_name: String,
    /// `true` for [`JobKind::Custom`] jobs (their scoped metrics are kept
    /// out of the canonical report: custom bodies may record
    /// wall-clock-dependent values).
    pub custom: bool,
    /// How the job ended.
    pub status: JobStatus,
    /// Wall-clock duration of the job (report-only; never part of the
    /// canonical output).
    pub seconds: f64,
    /// The job's scoped telemetry, frozen at completion.
    pub snapshot: TelemetrySnapshot,
}

/// Knobs of one batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads (at least 1). The answer is bitwise identical for
    /// every value; only wall-clock time changes.
    pub workers: usize,
    /// Per-job timeout, enforced cooperatively at stage checkpoints.
    pub timeout: Option<Duration>,
    /// External cancellation flag; set it to `true` to drain the batch.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            workers: 1,
            timeout: None,
            cancel: None,
        }
    }
}

impl BatchOptions {
    /// Options with `workers` threads and no timeout.
    pub fn with_workers(workers: usize) -> BatchOptions {
        BatchOptions {
            workers: workers.max(1),
            ..BatchOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinguish_knobs() {
        let base = JobSpec::new(3, JobKind::Arrow { index: 2 });
        assert_eq!(base.key(), "arrow:2|n=3|plan=none|solver=jacobi|eps=1e-9");
        let scc = base.clone().with_solver(Solver::SccOrdered);
        assert_ne!(base.key(), scc.key());
        let other_plan = base.clone().with_plan(
            "crash-stop r2 p0",
            FaultPlan::single(2, 0, pa_faults::FaultKind::CrashStop).unwrap(),
        );
        assert_ne!(base.key(), other_plan.key());
    }

    #[test]
    fn kind_fragments_cover_every_variant() {
        let from = SetExpr::named("RT");
        let to = SetExpr::named("P");
        assert_eq!(JobKind::ComposedArrow.key_fragment(), "composed");
        assert_eq!(
            JobKind::ExpectedTime {
                from,
                to,
                bound: 60.0
            }
            .key_fragment(),
            "etime:RT->P"
        );
        assert_eq!(JobKind::Invariant.key_fragment(), "invariant");
        assert_eq!(JobKind::Lemma { index: 7 }.key_fragment(), "lemma:7");
    }

    #[test]
    fn violated_tracks_each_value_variant() {
        assert!(JobValue::Prob {
            measured: 0.1,
            claimed: 0.5,
            holds: false,
            worst_state: None,
            states_checked: 1
        }
        .violated());
        assert!(!JobValue::Time {
            expected: Some(12.0),
            bound: 60.0,
            within: true
        }
        .violated());
        assert!(JobValue::Tallies {
            holds: 3,
            violated: 1,
            info: 0
        }
        .violated());
    }
}
