//! Budget-driven exact-vs-sampled tier selection.
//!
//! The exact engine explores the full (fault-wrapped) round model, so its
//! memory footprint is governed by the ring's reachable state count. Those
//! counts are measured (they are pinned in `BENCH_mdp.json`'s `rings`
//! block) up to `n = 7` and grow by roughly ×8 per process beyond that:
//!
//! | n | states |
//! |---|--------|
//! | 3 | 536 |
//! | 4 | 4 252 |
//! | 5 | 33 848 |
//! | 6 | 270 218 |
//! | 7 | 2 161 272 |
//!
//! [`select_kind`] keys on [`estimated_ring_states`]: when the estimate
//! fits the caller's state budget the exact [`JobKind::Arrow`] /
//! [`JobKind::Reach`] tier runs; otherwise the job degrades to
//! [`JobKind::Sampled`], whose memory is constant in `n`.

use pa_core::SetExpr;

use crate::spec::{JobKind, McSettings};

/// Measured reachable-state counts for the saturating Lehmann–Rabin round
/// model, `n = 3..=7` (the values pinned by the bench artifact).
const MEASURED: [(usize, u64); 5] = [
    (3, 536),
    (4, 4_252),
    (5, 33_848),
    (6, 270_218),
    (7, 2_161_272),
];

/// Per-process growth factor used to extrapolate beyond the measured
/// range. The measured ratios are 7.93, 7.96, 7.98, 8.00 — we round up a
/// touch so the extrapolation over-estimates (degrading to sampling early
/// is safe; exhausting memory is not).
const GROWTH: f64 = 8.2;

/// Estimated reachable-state count of the ring of `n` processes.
///
/// Exact (measured) for `n = 3..=7`, extrapolated geometrically beyond;
/// rings below the protocol minimum report 0 (they cannot be built, so
/// any budget "fits").
#[must_use]
pub fn estimated_ring_states(n: usize) -> u64 {
    if n < 3 {
        return 0;
    }
    if let Some(&(_, states)) = MEASURED.iter().find(|&&(m, _)| m == n) {
        return states;
    }
    let (last_n, last_states) = MEASURED[MEASURED.len() - 1];
    let extra = (n - last_n) as i32;
    let estimate = last_states as f64 * GROWTH.powi(extra);
    if estimate >= u64::MAX as f64 {
        u64::MAX
    } else {
        estimate as u64
    }
}

/// Chooses the analysis tier for a reachability claim on the ring of `n`
/// processes: exact ([`JobKind::Reach`]) when the estimated state count
/// fits `state_budget`, sampled ([`JobKind::Sampled`]) otherwise.
#[must_use]
pub fn select_kind(
    n: usize,
    state_budget: u64,
    target: SetExpr,
    within: u32,
    claimed: f64,
    mc: McSettings,
) -> JobKind {
    if estimated_ring_states(n) <= state_budget {
        JobKind::Reach {
            target,
            within,
            claimed,
        }
    } else {
        JobKind::Sampled {
            target,
            within,
            claimed,
            mc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_counts_are_returned_verbatim() {
        assert_eq!(estimated_ring_states(3), 536);
        assert_eq!(estimated_ring_states(7), 2_161_272);
    }

    #[test]
    fn extrapolation_grows_geometrically() {
        let n8 = estimated_ring_states(8);
        let n9 = estimated_ring_states(9);
        assert!(n8 > 17_000_000, "n=8 estimate {n8} too small");
        assert!(n9 > 8 * n8 && n9 < 9 * n8);
    }

    #[test]
    fn selection_degrades_to_sampling_over_budget() {
        let mc = McSettings {
            trajectories: 1_000,
            seed: 1,
        };
        let exact = select_kind(3, 1_000_000, SetExpr::named("C"), 13, 0.125, mc);
        assert!(matches!(exact, JobKind::Reach { .. }));
        let sampled = select_kind(8, 1_000_000, SetExpr::named("C"), 13, 0.125, mc);
        assert!(matches!(sampled, JobKind::Sampled { .. }));
    }
}
