//! Budget-driven exact-vs-sampled tier selection.
//!
//! The exact engine explores the (fault-wrapped) round model, so its
//! memory footprint is governed by the ring's reachable state count. Both
//! the full space and its rotation quotient are measured (they are pinned
//! in `BENCH_mdp.json`'s `rings`/`symmetry` blocks) up to `n = 7`:
//!
//! | n | full states | quotient states |
//! |---|-------------|-----------------|
//! | 3 | 536 | 184 |
//! | 4 | 4 252 | 1 084 |
//! | 5 | 33 848 | 6 776 |
//! | 6 | 270 218 | 45 151 |
//! | 7 | 2 161 272 | 308 760 |
//!
//! The full space grows by roughly ×8 per process; the quotient is a
//! factor `≈ n` smaller (the reduction is exactly 7.000 at `n = 7`, where
//! every orbit has all `n` rotations distinct).
//!
//! [`select_kind`] keys on [`estimated_ring_states`] — or, when the
//! caller's exact tier runs on the rotation quotient, on
//! [`estimated_quotient_states`]: when the estimate fits the caller's
//! state budget the exact [`JobKind::Arrow`] / [`JobKind::Reach`] tier
//! runs; otherwise the job degrades to [`JobKind::Sampled`], whose memory
//! is constant in `n`.

use pa_core::SetExpr;

use crate::spec::{JobKind, McSettings};

/// Measured reachable-state counts for the saturating Lehmann–Rabin round
/// model, `n = 3..=7` (the values pinned by the bench artifact).
const MEASURED: [(usize, u64); 5] = [
    (3, 536),
    (4, 4_252),
    (5, 33_848),
    (6, 270_218),
    (7, 2_161_272),
];

/// Measured state counts of the rotation quotient of the same model (the
/// values the bench `symmetry` block pins). A factor `≈ n` below
/// [`MEASURED`]: 2.91, 3.92, 5.00, 5.99, 7.00.
const MEASURED_QUOTIENT: [(usize, u64); 5] =
    [(3, 184), (4, 1_084), (5, 6_776), (6, 45_151), (7, 308_760)];

/// Per-process growth factor used to extrapolate beyond the measured
/// range. The measured ratios are 7.93, 7.96, 7.98, 8.00 — we round up a
/// touch so the extrapolation over-estimates (degrading to sampling early
/// is safe; exhausting memory is not).
const GROWTH: f64 = 8.2;

/// Per-process growth factor of the quotient. The measured ratios are
/// 5.89, 6.25, 6.66, 6.84 and approach `GROWTH · n/(n+1)` (the reduction
/// factor converges to `n`), so 7.5 over-estimates every extrapolated
/// size — erring, as with [`GROWTH`], on the degrade-early side.
const QUOTIENT_GROWTH: f64 = 7.5;

fn estimate(n: usize, measured: &[(usize, u64)], growth: f64) -> u64 {
    if n < 3 {
        return 0;
    }
    if let Some(&(_, states)) = measured.iter().find(|&&(m, _)| m == n) {
        return states;
    }
    let (last_n, last_states) = measured[measured.len() - 1];
    let extra = (n - last_n) as i32;
    let estimate = last_states as f64 * growth.powi(extra);
    if estimate >= u64::MAX as f64 {
        u64::MAX
    } else {
        estimate as u64
    }
}

/// Estimated reachable-state count of the ring of `n` processes.
///
/// Exact (measured) for `n = 3..=7`, extrapolated geometrically beyond;
/// rings below the protocol minimum report 0 (they cannot be built, so
/// any budget "fits").
#[must_use]
pub fn estimated_ring_states(n: usize) -> u64 {
    estimate(n, &MEASURED, GROWTH)
}

/// Estimated state count of the rotation quotient of the ring of `n`
/// processes — what the exact engine actually explores when a
/// [`pa_mdp::RingRotation`] symmetry is active.
///
/// Exact (measured) for `n = 3..=7`, extrapolated geometrically beyond.
/// At `n = 8` the quotient (≈ 2.3 M states) is the size the *full* space
/// had at `n = 7`, which is what moves the exact-tier frontier out by one
/// process per available memory octave.
#[must_use]
pub fn estimated_quotient_states(n: usize) -> u64 {
    estimate(n, &MEASURED_QUOTIENT, QUOTIENT_GROWTH)
}

/// Chooses the analysis tier for a reachability claim on the ring of `n`
/// processes: exact ([`JobKind::Reach`]) when the estimated state count
/// fits `state_budget`, sampled ([`JobKind::Sampled`]) otherwise.
///
/// `symmetry` says whether the caller's exact tier runs on the rotation
/// quotient (e.g. `pa_lehmann_rabin::check_arrow_quotient` or the exact
/// column of `pa_faults::survival_map_hybrid`): the budget is then judged
/// against [`estimated_quotient_states`] instead of the full space. Pass
/// `false` for exact analyses that explore the full space — including any
/// run under a non-empty fault plan, which has no sound quotient.
#[must_use]
pub fn select_kind(
    n: usize,
    state_budget: u64,
    target: SetExpr,
    within: u32,
    claimed: f64,
    mc: McSettings,
    symmetry: bool,
) -> JobKind {
    let estimated = if symmetry {
        estimated_quotient_states(n)
    } else {
        estimated_ring_states(n)
    };
    if estimated <= state_budget {
        JobKind::Reach {
            target,
            within,
            claimed,
        }
    } else {
        JobKind::Sampled {
            target,
            within,
            claimed,
            mc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_counts_are_returned_verbatim() {
        assert_eq!(estimated_ring_states(3), 536);
        assert_eq!(estimated_ring_states(7), 2_161_272);
        assert_eq!(estimated_quotient_states(3), 184);
        assert_eq!(estimated_quotient_states(7), 308_760);
    }

    #[test]
    fn extrapolation_grows_geometrically() {
        let n8 = estimated_ring_states(8);
        let n9 = estimated_ring_states(9);
        assert!(n8 > 17_000_000, "n=8 estimate {n8} too small");
        assert!(n9 > 8 * n8 && n9 < 9 * n8);
        let q8 = estimated_quotient_states(8);
        let q9 = estimated_quotient_states(9);
        assert!(q8 > 2_000_000 && q8 < 3_000_000, "n=8 quotient {q8}");
        assert!(q9 > 7 * q8 && q9 < 8 * q8);
        // The quotient estimate stays an over-estimate of full/n.
        assert!(q8 > n8 / 8);
    }

    #[test]
    fn selection_degrades_to_sampling_over_budget() {
        let mc = McSettings {
            trajectories: 1_000,
            seed: 1,
        };
        let exact = select_kind(3, 1_000_000, SetExpr::named("C"), 13, 0.125, mc, false);
        assert!(matches!(exact, JobKind::Reach { .. }));
        let sampled = select_kind(8, 1_000_000, SetExpr::named("C"), 13, 0.125, mc, false);
        assert!(matches!(sampled, JobKind::Sampled { .. }));
    }

    #[test]
    fn symmetry_keeps_the_exact_tier_one_process_longer() {
        let mc = McSettings {
            trajectories: 1_000,
            seed: 1,
        };
        // A 4M-state budget: the full n=8 space (~17.7M) is out of reach,
        // but its quotient (~2.3M) fits — the whole point of the quotient.
        let budget = 4_000_000;
        let full = select_kind(8, budget, SetExpr::named("C"), 13, 0.125, mc, false);
        assert!(matches!(full, JobKind::Sampled { .. }));
        let quotient = select_kind(8, budget, SetExpr::named("C"), 13, 0.125, mc, true);
        assert!(matches!(quotient, JobKind::Reach { .. }));
    }
}
