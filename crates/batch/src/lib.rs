//! Deterministic concurrent batch driver for the `timebounds` analyses.
//!
//! The paper's claims — the five `U —t→_p U'` arrows, the composed
//! `T —13→_{1/8} C` chain, the expected-time bounds, Lemma 6.1, the
//! appendix lemmas — are each one *query* against a model determined by a
//! ring size and a fault plan. Run serially (as `pa-bench`'s E1–E15
//! originally did), every analysis re-explores its model from scratch and
//! every run accumulates into the same global telemetry registry. This
//! crate makes "model × query × fault plan" a first-class job:
//!
//! * [`JobSpec`] / [`JobKind`] — one analysis with every knob that changes
//!   its answer, identified by a stable string [`JobSpec::key`].
//! * [`run_batch`] — schedules jobs over a bounded worker pool
//!   ([`BatchOptions::workers`]) with cooperative per-job timeouts and
//!   batch cancellation, aggregating into a [`BatchReport`].
//! * [`ModelCache`] — explored fault-wrapped round models keyed by
//!   `(ring, plan)`, built once and shared by every job that queries them
//!   (soundness argument on the [`cache`] module).
//! * Per-job [`pa_telemetry::TelemetryScope`]s — no cross-job bleed, no
//!   global resets.
//!
//! # Determinism contract
//!
//! [`BatchReport::canonical_json`] (and its [`BatchReport::digest`]) are
//! bitwise identical for every worker count, including `workers = 1`:
//! jobs are keyed and sorted, engines run single-threaded inside jobs
//! (parallelism comes from running *jobs* concurrently), the cache builds
//! each key exactly once, and everything scheduling-dependent is kept out
//! of the canonical serialization. `tests/determinism.rs` pins the
//! contract; `tables --batch` (pa-bench) exposes it on the command line
//! and the `batch` block of `BENCH_mdp.json` gates it in CI.
//!
//! # Example
//!
//! ```
//! use pa_batch::{run_batch, BatchOptions, JobKind, JobSpec};
//!
//! let specs: Vec<JobSpec> = (0..2)
//!     .map(|index| JobSpec::new(3, JobKind::Arrow { index }))
//!     .collect();
//! let report = run_batch(&specs, &BatchOptions::with_workers(2)).unwrap();
//! assert_eq!(report.tally().done, 2);
//! assert!(report.cache.model_hits > 0, "second arrow reused the model");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod driver;
mod report;
mod select;
mod spec;

pub use cache::{CacheSession, ModelCache, QuotientModel, SharedModel, StoredQuotientModel};
pub use driver::{run_batch, run_batch_in, BatchError, JobCtx};
pub use report::{BatchReport, CacheStats, Tally};
pub use select::{estimated_quotient_states, estimated_ring_states, select_kind};
pub use spec::{
    BatchOptions, CustomFn, JobKind, JobResult, JobSpec, JobStatus, JobValue, McSettings,
};
