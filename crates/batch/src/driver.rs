//! The concurrent job driver: a bounded worker pool over a key-sorted job
//! list, with cooperative cancellation and per-job timeouts.
//!
//! # Determinism
//!
//! Workers claim jobs from a shared atomic cursor over the **key-sorted**
//! spec list and write results into per-job slots, so the aggregated
//! report is ordered by job key no matter which worker ran what. Each
//! job's answer depends only on its spec (engines run single-threaded
//! inside the job; the model cache builds each key exactly once), so the
//! whole report — including cache hit/miss counts — is bitwise identical
//! for every worker count. The `tests/determinism.rs` suite pins this.
//!
//! # Telemetry
//!
//! Every job runs under its own [`TelemetryScope`] named `job:<key>`;
//! model-cache builds nest into the cache's scope. Nothing is recorded
//! into the process-global registry by the driver itself, so batch runs
//! compose with surrounding instrumentation without a reset.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pa_core::Arrow;
use pa_faults::set_pred_under;
use pa_lehmann_rabin::{lemmas, paper, time_to_budget, verify_lemma_6_1};
use pa_mdp::{ExpectedCost, InvariantResult, Query, QueryObjective};
use pa_prob::Prob;
use pa_telemetry::TelemetryScope;

use crate::cache::{CacheSession, ModelCache};
use crate::report::BatchReport;
use crate::spec::{BatchOptions, JobKind, JobResult, JobSpec, JobStatus, JobValue};

/// What a running job sees: the batch's session view of the shared model
/// cache plus the cancellation and timeout checkpoint. Custom job bodies
/// receive it too.
pub struct JobCtx<'a> {
    /// The batch's session over the shared model cache (canonical cache
    /// statistics are per-session — see [`CacheSession`]).
    pub cache: &'a CacheSession<'a>,
    /// The job being run.
    pub spec: &'a JobSpec,
    cancel: &'a AtomicBool,
    deadline: Option<Instant>,
}

impl JobCtx<'_> {
    /// Fails if the batch was cancelled or the job's deadline has passed.
    /// Call between expensive stages; the driver classifies the resulting
    /// error as [`JobStatus::Cancelled`] / [`JobStatus::TimedOut`] rather
    /// than [`JobStatus::Failed`].
    ///
    /// # Errors
    ///
    /// A short description of the interruption.
    pub fn checkpoint(&self) -> Result<(), String> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err("batch cancelled".to_string());
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err("job timeout exceeded".to_string());
            }
        }
        Ok(())
    }
}

/// Errors of batch assembly (individual job failures are statuses, not
/// errors — one bad job must not sink the batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// Two specs produced the same key; their results would be
    /// indistinguishable in the aggregated report.
    DuplicateKey(
        /// The colliding key.
        String,
    ),
    /// The spec list was empty.
    NoJobs,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::DuplicateKey(key) => write!(f, "duplicate job key: {key}"),
            BatchError::NoJobs => write!(f, "no jobs in batch"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Runs a batch: sorts the specs by key, schedules them over
/// `options.workers` threads, and aggregates the results.
///
/// # Errors
///
/// [`BatchError::DuplicateKey`] if two specs share a key,
/// [`BatchError::NoJobs`] on an empty list. Job-level failures surface as
/// [`JobStatus`] values inside the report instead.
pub fn run_batch(specs: &[JobSpec], options: &BatchOptions) -> Result<BatchReport, BatchError> {
    run_batch_in(specs, options, &ModelCache::new())
}

/// [`run_batch`] over a caller-supplied [`ModelCache`], so a long-lived
/// service can keep models warm across batches (the `pa-serve` daemon
/// does). The canonical report — and therefore its digest — is computed
/// from a per-batch [`CacheSession`] and is bitwise identical whether the
/// cache is cold, warm, or evicting under a byte budget.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_in(
    specs: &[JobSpec],
    options: &BatchOptions,
    cache: &ModelCache,
) -> Result<BatchReport, BatchError> {
    if specs.is_empty() {
        return Err(BatchError::NoJobs);
    }
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].key());
    for w in order.windows(2) {
        if specs[w[0]].key() == specs[w[1]].key() {
            return Err(BatchError::DuplicateKey(specs[w[0]].key()));
        }
    }

    let session = CacheSession::new(cache);
    let default_cancel = Arc::new(AtomicBool::new(false));
    let cancel: &AtomicBool = options.cancel.as_deref().unwrap_or(&default_cancel);
    let workers = options.workers.max(1);
    let timeout = options.timeout;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();

    let started = Instant::now();
    let order_ref = &order;
    let slots_ref = &slots;
    let session_ref = &session;
    let next_ref = &next;
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers.min(specs.len()) {
            scope.spawn(move |_| loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= order_ref.len() {
                    break;
                }
                let spec = &specs[order_ref[i]];
                let result = run_one(spec, session_ref, cancel, timeout);
                *slots_ref[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    })
    .expect("batch worker panicked");

    let jobs: Vec<JobResult> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job writes its slot")
        })
        .collect();
    Ok(BatchReport {
        jobs,
        workers,
        wall_seconds: started.elapsed().as_secs_f64(),
        cache: session.stats(),
        cache_snapshot: cache.scope().snapshot(),
    })
}

/// Runs one job under its own telemetry scope and classifies the outcome.
fn run_one(
    spec: &JobSpec,
    cache: &CacheSession<'_>,
    cancel: &AtomicBool,
    timeout: Option<Duration>,
) -> JobResult {
    let key = spec.key();
    let telemetry = TelemetryScope::new(format!("job:{key}"));
    let started = Instant::now();
    let deadline = timeout.map(|t| started + t);
    let ctx = JobCtx {
        cache,
        spec,
        cancel,
        deadline,
    };
    let status = if cancel.load(Ordering::Relaxed) {
        JobStatus::Cancelled
    } else {
        let _in_scope = telemetry.enter();
        match execute(&ctx) {
            Ok(value) => JobStatus::Done(value),
            Err(_) if cancel.load(Ordering::Relaxed) => JobStatus::Cancelled,
            Err(_) if deadline.is_some_and(|d| Instant::now() >= d) => JobStatus::TimedOut,
            Err(message) => JobStatus::Failed(message),
        }
    };
    JobResult {
        key,
        n: spec.n,
        plan_name: spec.plan_name.clone(),
        custom: matches!(spec.kind, JobKind::Custom { .. }),
        status,
        seconds: started.elapsed().as_secs_f64(),
        snapshot: telemetry.snapshot(),
    }
}

/// Dispatches a job body. Every path returns stringified errors so the
/// driver can classify them uniformly.
fn execute(ctx: &JobCtx<'_>) -> Result<JobValue, String> {
    ctx.checkpoint()?;
    match &ctx.spec.kind {
        JobKind::Arrow { index } => {
            let arrows = paper::all_arrows();
            let (arrow, _why) = arrows.get(*index).ok_or_else(|| {
                format!("arrow index {index} out of range (have {})", arrows.len())
            })?;
            run_arrow(ctx, arrow)
        }
        JobKind::ComposedArrow => run_arrow(ctx, &paper::arrow_t_to_c()),
        JobKind::ExpectedTime { from, to, bound } => {
            let from_pred = set_pred_under(from).map_err(|e| e.to_string())?;
            let to_pred = set_pred_under(to).map_err(|e| e.to_string())?;
            let model = ctx
                .cache
                .model(ctx.spec.n, &ctx.spec.plan, ctx.spec.state_limit)?;
            ctx.checkpoint()?;
            let starts = model.starts_where(|c, mask| from_pred(c, mask));
            if starts.is_empty() {
                return Ok(JobValue::Time {
                    expected: Some(0.0),
                    bound: *bound,
                    within: true,
                });
            }
            let n = ctx.spec.n;
            let target = model
                .explored
                .target_where(|s| to_pred(&s.inner.config, s.crashed_mask(n)));
            let values = Query::csr(&model.csr)
                .objective(QueryObjective::MaxCost)
                .target(target)
                .solver(ctx.spec.solver)
                .epsilon(ctx.spec.epsilon)
                .workers(1)
                .run()
                .map_err(|e| e.to_string())?
                .values;
            let expected = ExpectedCost { values };
            // `max_over` faults only on divergence at a queried state —
            // the expected-time analogue of a violated bound.
            match expected.max_over(starts) {
                Ok(worst) => Ok(JobValue::Time {
                    expected: Some(worst + 1.0),
                    bound: *bound,
                    within: worst + 1.0 <= *bound + 1e-9,
                }),
                Err(_) => Ok(JobValue::Time {
                    expected: None,
                    bound: *bound,
                    within: false,
                }),
            }
        }
        JobKind::Invariant => {
            match verify_lemma_6_1(ctx.spec.n, ctx.spec.state_limit).map_err(|e| e.to_string())? {
                InvariantResult::Holds { states_checked } => Ok(JobValue::Invariant {
                    holds: true,
                    states_checked,
                }),
                InvariantResult::Violated { .. } => Ok(JobValue::Invariant {
                    holds: false,
                    states_checked: 0,
                }),
            }
        }
        JobKind::Lemma { index } => {
            let specs = lemmas::appendix_lemmas();
            let lemma = specs.get(*index).ok_or_else(|| {
                format!("lemma index {index} out of range (have {})", specs.len())
            })?;
            let check = lemmas::check_lemma(ctx.spec.n, lemma, ctx.spec.state_limit)
                .map_err(|e| e.to_string())?;
            Ok(JobValue::Lemma {
                name: check.name.to_string(),
                min_prob: check.min_prob,
                instances: check.instances,
                holds: check.holds(),
            })
        }
        JobKind::Reach {
            target,
            within,
            claimed,
        } => {
            let exact = pa_faults::exact_reach_uniform(
                ctx.spec.n,
                &ctx.spec.plan,
                target,
                *within,
                ctx.spec.state_limit,
            )
            .map_err(|e| e.to_string())?;
            ctx.checkpoint()?;
            Ok(JobValue::Prob {
                measured: exact,
                claimed: *claimed,
                holds: exact >= *claimed - 1e-12,
                worst_state: None,
                states_checked: 1,
            })
        }
        JobKind::Sampled {
            target,
            within,
            claimed,
            mc,
        } => {
            // Model-free: trajectories of the implicit faulty round model,
            // no exploration and no cache slot — the whole point of the
            // sampled tier is running where the cache could not build.
            let estimate = pa_faults::estimate_reach_uniform(
                ctx.spec.n,
                &ctx.spec.plan,
                target,
                *within,
                &pa_mc::McConfig::new(mc.trajectories, mc.seed, *within).with_workers(1),
            )
            .map_err(|e| e.to_string())?;
            ctx.checkpoint()?;
            let interval = estimate.interval(pa_prob::stats::Z_99);
            Ok(JobValue::Estimate {
                point: estimate.point(),
                lo: interval.lo().value(),
                hi: interval.hi().value(),
                claimed: *claimed,
                trials: estimate.trials(),
                hits: estimate.hit_count(),
                refuted: interval.hi().value() < *claimed,
            })
        }
        JobKind::Custom { run, .. } => run(ctx),
    }
}

/// Evaluates one arrow claim on the shared model: minimal probability over
/// all adversaries of reaching the *to*-set within the arrow's time, from
/// the worst *from*-state. Mirrors `pa_faults::check_arrow_under` (with
/// `FaultPlan::none` that in turn equals the fault-free `check_arrow`),
/// bitwise — see the soundness notes on [`crate::cache`].
fn run_arrow(ctx: &JobCtx<'_>, arrow: &Arrow) -> Result<JobValue, String> {
    let claimed = arrow.prob().value();
    let from = set_pred_under(arrow.from()).map_err(|e| e.to_string())?;
    let to = set_pred_under(arrow.to()).map_err(|e| e.to_string())?;
    let model = ctx
        .cache
        .model(ctx.spec.n, &ctx.spec.plan, ctx.spec.state_limit)?;
    ctx.checkpoint()?;
    let starts = model.starts_where(|c, mask| from(c, mask));
    if starts.is_empty() {
        return Ok(JobValue::Prob {
            measured: 1.0,
            claimed,
            holds: true,
            worst_state: None,
            states_checked: 0,
        });
    }
    let n = ctx.spec.n;
    let target = model
        .explored
        .target_where(|s| to(&s.inner.config, s.crashed_mask(n)));
    let budget = time_to_budget(arrow.time());
    let values = Query::csr(&model.csr)
        .objective(QueryObjective::MinProb)
        .target(target)
        .horizon(budget)
        .solver(ctx.spec.solver)
        .epsilon(ctx.spec.epsilon)
        .workers(1)
        .run()
        .map_err(|e| e.to_string())?
        .values;
    let mut worst = f64::INFINITY;
    let mut worst_state = None;
    let states_checked = starts.len();
    for i in starts {
        if values[i] < worst {
            worst = values[i];
            worst_state = Some(model.explored.state(i).to_string());
        }
    }
    let measured = Prob::clamped(worst).value();
    Ok(JobValue::Prob {
        measured,
        claimed,
        holds: measured >= claimed - 1e-12,
        worst_state,
        states_checked,
    })
}
