//! The batch driver's headline contracts: worker-count invariance of the
//! canonical report, deterministic cache hit counts, bitwise agreement
//! with the unshared per-analysis pipelines, and the interruption
//! statuses.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pa_batch::{
    run_batch, select_kind, BatchError, BatchOptions, JobKind, JobSpec, JobStatus, JobValue,
    McSettings,
};
use pa_core::SetExpr;
use pa_faults::{check_arrow_under, default_grid, FaultKind, FaultPlan};
use pa_lehmann_rabin::{max_expected_time, paper, RoundConfig, RoundMdp};
use pa_mdp::Solver;

/// Serializes tests that toggle the process-global telemetry flag.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// A representative mixed job set on n = 3: every kind, two fault plans,
/// both solvers represented.
fn mixed_specs() -> Vec<JobSpec> {
    let crash = FaultPlan::single(2, 0, FaultKind::CrashStop).unwrap();
    let mut specs = Vec::new();
    for index in 0..paper::all_arrows().len() {
        specs.push(JobSpec::new(3, JobKind::Arrow { index }));
        specs.push(
            JobSpec::new(3, JobKind::Arrow { index }).with_plan("crash-stop r2 p0", crash.clone()),
        );
    }
    specs.push(JobSpec::new(3, JobKind::ComposedArrow));
    specs.push(JobSpec::new(3, JobKind::ComposedArrow).with_solver(Solver::SccOrdered));
    specs.push(JobSpec::new(
        3,
        JobKind::ExpectedTime {
            from: SetExpr::named("RT"),
            to: SetExpr::named("P"),
            bound: paper::expected_time_rt_to_p(),
        },
    ));
    // T -> C exercises the qualitative-properness path: the shared model's
    // extra start states once pushed its numerically iterated Pmin below
    // the old properness cutoff, spuriously diverging this very job.
    specs.push(JobSpec::new(
        3,
        JobKind::ExpectedTime {
            from: SetExpr::named("T"),
            to: SetExpr::named("C"),
            bound: paper::expected_time_t_to_c(),
        },
    ));
    specs.push(JobSpec::new(3, JobKind::Invariant));
    specs.push(JobSpec::new(3, JobKind::Lemma { index: 0 }));
    // Both tiers of the uniform-adversary reach estimand; neither touches
    // the model cache (they build their own fault-wrapped models).
    specs.push(JobSpec::new(
        3,
        JobKind::Reach {
            target: SetExpr::named("C"),
            within: 13,
            claimed: 0.125,
        },
    ));
    specs.push(JobSpec::new(
        3,
        JobKind::Sampled {
            target: SetExpr::named("C"),
            within: 13,
            claimed: 0.125,
            mc: McSettings {
                trajectories: 2_000,
                seed: 42,
            },
        },
    ));
    specs.push(
        JobSpec::new(
            3,
            JobKind::Sampled {
                target: SetExpr::named("C"),
                within: 13,
                claimed: 0.125,
                mc: McSettings {
                    trajectories: 2_000,
                    seed: 42,
                },
            },
        )
        .with_plan("crash-stop r2 p0", crash.clone()),
    );
    specs
}

#[test]
fn canonical_report_is_bitwise_identical_for_every_worker_count() {
    let _lock = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let was_enabled = pa_telemetry::enabled();
    pa_telemetry::set_enabled(true);
    let specs = mixed_specs();
    let baseline = run_batch(&specs, &BatchOptions::with_workers(1)).unwrap();
    assert_eq!(baseline.tally().failed, 0, "{}", baseline.canonical_json());
    for workers in [2, 8] {
        let run = run_batch(&specs, &BatchOptions::with_workers(workers)).unwrap();
        assert_eq!(
            baseline.canonical_json(),
            run.canonical_json(),
            "canonical JSON diverged at workers={workers}"
        );
        assert_eq!(baseline.digest(), run.digest());
        assert_eq!(
            baseline.cache, run.cache,
            "cache stats at workers={workers}"
        );
    }
    pa_telemetry::set_enabled(was_enabled);
}

#[test]
fn cache_counts_are_deterministic_per_job_set() {
    let specs = mixed_specs();
    let report = run_batch(&specs, &BatchOptions::with_workers(4)).unwrap();
    // Model keys demanded: (3, none) and (3, crash-stop) — the invariant
    // and lemma jobs run on their own automata and never touch the cache.
    assert_eq!(report.cache.model_misses, 2);
    assert_eq!(report.cache.distinct_models, 2);
    // Accesses: 5 + 5 arrows, 2 composed, 2 expected-time = 14.
    assert_eq!(report.cache.model_hits + report.cache.model_misses, 14);
    assert_eq!(report.cache.config_misses, 1, "one ring size explored once");
    assert!(report.cache.hit_rate() > 0.0);
    let again = run_batch(&specs, &BatchOptions::with_workers(2)).unwrap();
    assert_eq!(report.cache, again.cache);
}

#[test]
fn batch_arrow_values_match_the_unshared_pipeline_bitwise() {
    let cfg = RoundConfig::new(3).unwrap();
    let grid = default_grid();
    let specs: Vec<JobSpec> = (0..paper::all_arrows().len())
        .flat_map(|index| {
            grid.iter().map(move |(name, plan)| {
                JobSpec::new(3, JobKind::Arrow { index }).with_plan(name.clone(), plan.clone())
            })
        })
        .collect();
    let report = run_batch(&specs, &BatchOptions::with_workers(4)).unwrap();
    let arrows = paper::all_arrows();
    for job in &report.jobs {
        let JobStatus::Done(JobValue::Prob {
            measured,
            worst_state,
            states_checked,
            ..
        }) = &job.status
        else {
            panic!(
                "{}: expected a probability value, got {:?}",
                job.key, job.status
            );
        };
        // Recover which (arrow, plan) this job was from its key.
        let index: usize = job.key["arrow:".len()..job.key.find('|').unwrap()]
            .parse()
            .unwrap();
        let plan = &grid
            .iter()
            .find(|(name, _)| *name == job.plan_name)
            .unwrap()
            .1;
        let reference = check_arrow_under(cfg, &arrows[index].0, plan, 1_000_000).unwrap();
        assert_eq!(
            measured.to_bits(),
            reference.measured.lo().value().to_bits(),
            "{}: shared-model value differs from check_arrow_under",
            job.key
        );
        assert_eq!(worst_state, &reference.worst_state, "{}", job.key);
        assert_eq!(*states_checked, reference.states_checked, "{}", job.key);
    }
}

#[test]
fn batch_expected_time_matches_the_unshared_pipeline() {
    let from = SetExpr::named("RT");
    let to = SetExpr::named("P");
    let spec = JobSpec::new(
        3,
        JobKind::ExpectedTime {
            from: from.clone(),
            to: to.clone(),
            bound: paper::expected_time_rt_to_p(),
        },
    );
    let report = run_batch(&[spec], &BatchOptions::default()).unwrap();
    let JobStatus::Done(JobValue::Time {
        expected: Some(expected),
        within,
        ..
    }) = &report.jobs[0].status
    else {
        panic!(
            "expected a finite time value, got {:?}",
            report.jobs[0].status
        );
    };
    let mdp = RoundMdp::new(RoundConfig::new(3).unwrap());
    let reference = max_expected_time(&mdp, &from, &to, 1_000_000).unwrap();
    // Expected-cost values are iterative fixpoints: the shared model
    // carries extra (non-from) start states, so sweep counts differ and
    // bitwise equality does not hold — unlike the horizon-bounded arrow
    // probabilities above. Pin agreement to well under the solver epsilon
    // gap instead.
    let gap = (expected - reference).abs() / reference.max(1.0);
    assert!(
        gap <= 1e-7,
        "shared fault-free model diverged from max_expected_time: \
         {expected} vs {reference} (relative gap {gap:e})"
    );
    assert!(within);
}

#[test]
fn duplicate_keys_and_empty_batches_are_rejected() {
    let spec = JobSpec::new(3, JobKind::Invariant);
    let err = run_batch(&[spec.clone(), spec], &BatchOptions::default()).unwrap_err();
    assert!(matches!(err, BatchError::DuplicateKey(_)));
    assert_eq!(
        run_batch(&[], &BatchOptions::default()).unwrap_err(),
        BatchError::NoJobs
    );
}

#[test]
fn pre_set_cancel_flag_drains_the_batch() {
    let cancel = Arc::new(AtomicBool::new(true));
    let options = BatchOptions {
        workers: 2,
        timeout: None,
        cancel: Some(cancel),
    };
    let report = run_batch(&mixed_specs(), &options).unwrap();
    let tally = report.tally();
    assert_eq!(tally.cancelled, report.jobs.len());
    assert_eq!(tally.done + tally.failed + tally.timed_out, 0);
}

#[test]
fn slow_custom_job_times_out_at_its_checkpoint() {
    let slow = JobSpec::new(
        3,
        JobKind::Custom {
            name: "sleeper".to_string(),
            run: Arc::new(|ctx| {
                std::thread::sleep(Duration::from_millis(30));
                ctx.checkpoint()?;
                Ok(JobValue::Tallies {
                    holds: 1,
                    violated: 0,
                    info: 0,
                })
            }),
        },
    );
    let options = BatchOptions {
        workers: 1,
        timeout: Some(Duration::from_millis(5)),
        cancel: None,
    };
    let report = run_batch(&[slow], &options).unwrap();
    assert_eq!(report.jobs[0].status, JobStatus::TimedOut);
}

#[test]
fn failing_custom_job_is_contained() {
    let specs = vec![
        JobSpec::new(
            3,
            JobKind::Custom {
                name: "boom".to_string(),
                run: Arc::new(|_| Err("synthetic failure".to_string())),
            },
        ),
        JobSpec::new(3, JobKind::Invariant),
    ];
    let report = run_batch(&specs, &BatchOptions::with_workers(2)).unwrap();
    let tally = report.tally();
    assert_eq!(tally.failed, 1);
    assert_eq!(tally.done, 1);
    let failed = report
        .jobs
        .iter()
        .find(|j| j.key.starts_with("custom:boom"))
        .unwrap();
    assert_eq!(
        failed.status,
        JobStatus::Failed("synthetic failure".to_string())
    );
}

#[test]
fn sampled_interval_contains_the_exact_tier_value() {
    let mc = McSettings {
        trajectories: 4_000,
        seed: 7,
    };
    // A generous budget keeps n = 3 on the exact tier; a starved budget
    // degrades the same claim to the sampled tier.
    let exact_kind = select_kind(3, 1_000_000, SetExpr::named("C"), 13, 0.125, mc, false);
    assert!(matches!(exact_kind, JobKind::Reach { .. }));
    let sampled_kind = select_kind(3, 100, SetExpr::named("C"), 13, 0.125, mc, false);
    assert!(matches!(sampled_kind, JobKind::Sampled { .. }));

    let specs = vec![JobSpec::new(3, exact_kind), JobSpec::new(3, sampled_kind)];
    let report = run_batch(&specs, &BatchOptions::with_workers(2)).unwrap();
    assert_eq!(report.tally().done, 2);
    let exact = report
        .jobs
        .iter()
        .find_map(|j| match &j.status {
            JobStatus::Done(JobValue::Prob { measured, .. }) => Some(*measured),
            _ => None,
        })
        .expect("exact tier ran");
    let (lo, hi, refuted) = report
        .jobs
        .iter()
        .find_map(|j| match &j.status {
            JobStatus::Done(JobValue::Estimate {
                lo, hi, refuted, ..
            }) => Some((*lo, *hi, *refuted)),
            _ => None,
        })
        .expect("sampled tier ran");
    assert!(
        lo <= exact && exact <= hi,
        "sampled interval [{lo}, {hi}] must contain exact {exact}"
    );
    assert!(!refuted, "the paper's T -> C claim must survive sampling");
}

/// One-off measurement helper for the bench symmetry block: full vs
/// quotient shared round-model sizes (run with `--ignored --nocapture`).
#[test]
#[ignore = "measurement helper"]
fn print_shared_model_sizes() {
    use pa_batch::ModelCache;
    let range = std::env::var("QC_RANGE").unwrap_or_else(|_| "3:4".to_string());
    let (lo, hi) = range.split_once(':').unwrap();
    let cache = ModelCache::new();
    for n in lo.parse().unwrap()..=hi.parse::<usize>().unwrap() {
        let t0 = std::time::Instant::now();
        let quot = cache.model_quotient(n, 200_000_000).unwrap();
        let tq = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let full = if std::env::var("QC_FULL").as_deref() == Ok("0") {
            None
        } else {
            cache
                .model(n, &pa_faults::FaultPlan::none(), 200_000_000)
                .ok()
        };
        let tf = t0.elapsed().as_secs_f64();
        println!(
            "n={n}: quotient={} ({tq:.2}s, {} MB) full={:?} ({tf:.2}s)",
            quot.explored.num_states(),
            quot.explored.mem_bytes() / (1 << 20),
            full.map(|m| m.explored.num_states()),
        );
    }
}
