//! Backend-agnostic CSR access: the [`CsrSource`] trait and the
//! block-streamed analysis engines that run on any implementation.
//!
//! [`crate::CsrMdp`] holds the whole model in five flat arrays; an
//! out-of-core backend (e.g. `pa-store`'s mmap-backed block file) holds the
//! same arrays cut into contiguous *blocks* of states and pages them in on
//! demand. [`CsrSource`] is the seam between the two: a backend exposes its
//! rows block by block as borrowed [`CsrRows`] slices, and every engine in
//! this module sweeps states strictly in block order — so an in-core model
//! (one block spanning everything) and a stored model (many blocks behind a
//! byte-budgeted cache) execute the *same* per-state floating-point
//! operations in the *same* order.
//!
//! # Bitwise parity with the in-core engines
//!
//! The engines here are serial twins of the kernels in `csr.rs`: identical
//! update expressions, identical buffer rotation, identical convergence
//! tests. The in-core kernels are bit-for-bit invariant under worker-count
//! chunking (see the `csr` module docs), so a serial sweep already produces
//! the canonical bytes — which makes every engine below bitwise identical
//! to its `CsrMdp` counterpart for any block structure and any cache
//! budget. `crates/store`'s parity tests and the bench `store` block pin
//! this contract.
//!
//! Two qualitative precomputations are *set-valued* rather than numeric and
//! use different (block-friendly) algorithms than their in-core twins:
//! `prob0` for [`crate::Objective::MaxProb`] (a forward fixpoint instead of
//! a backward BFS over a materialized predecessor graph) and the zero-cost
//! cycle check (a peeling fixpoint instead of a DFS). Both compute the
//! exact same set/answer — they are different iteration strategies for the
//! same fixpoint — so the numeric phases they feed remain bitwise
//! identical.
//!
//! The SCC-ordered solver is not available through this trait: it keeps
//! per-component subgraphs resident by design. A [`crate::Query`] over a
//! stored backend rejects [`crate::Solver::SccOrdered`] with
//! [`MdpError::InvalidQuery`].

use std::ops::Range;

use crate::csr::SolveStats;
use crate::{IterOptions, MdpError, Objective};

/// One contiguous block of CSR rows, borrowed from a backend.
///
/// Offsets are *block-relative*: `choice_offsets[0] == 0` indexes into the
/// block's own `costs`/`trans_offsets` slices, and `trans_offsets[0] == 0`
/// indexes into the block's own `targets`/`probs` slices. Successor state
/// ids in `targets` are **global**. The accessor methods take global state
/// indices (within [`CsrRows::states`]) and block-local choice/transition
/// indices, mirroring the [`crate::CsrMdp`] accessors.
#[derive(Debug, Clone, Copy)]
pub struct CsrRows<'a> {
    /// Global index of the first state in this block.
    pub first_state: usize,
    /// Per-state ranges into the block's choice arrays:
    /// `choice_offsets[s - first_state] .. choice_offsets[s - first_state + 1]`,
    /// length `states + 1`, starting at 0.
    pub choice_offsets: &'a [u32],
    /// Per-choice ranges into the block's transition arrays, length
    /// `choices + 1`, starting at 0.
    pub trans_offsets: &'a [u32],
    /// Cost of each choice in the block.
    pub costs: &'a [u32],
    /// Global successor state of each transition in the block.
    pub targets: &'a [u32],
    /// Probability of each transition in the block.
    pub probs: &'a [f64],
}

impl CsrRows<'_> {
    /// The global state indices covered by this block.
    #[inline]
    pub fn states(&self) -> Range<usize> {
        self.first_state..self.first_state + (self.choice_offsets.len() - 1)
    }

    /// The block-local choice-index range of global state `s`.
    #[inline]
    pub fn choice_range(&self, s: usize) -> Range<usize> {
        let ls = s - self.first_state;
        self.choice_offsets[ls] as usize..self.choice_offsets[ls + 1] as usize
    }

    /// The block-local transition-index range of block-local choice `c`.
    #[inline]
    pub fn trans_range(&self, c: usize) -> Range<usize> {
        self.trans_offsets[c] as usize..self.trans_offsets[c + 1] as usize
    }

    /// Whether global state `s` has no choices.
    #[inline]
    pub fn is_terminal(&self, s: usize) -> bool {
        let ls = s - self.first_state;
        self.choice_offsets[ls] == self.choice_offsets[ls + 1]
    }

    /// The expected value of block-local choice `c` under the value vector
    /// `source`, accumulated in transition order — the floating-point
    /// operation order every engine in this crate agrees on.
    #[inline]
    pub fn choice_value(&self, c: usize, source: &[f64]) -> f64 {
        let mut val = 0.0f64;
        for i in self.trans_range(c) {
            val += self.probs[i] * source[self.targets[i] as usize];
        }
        val
    }
}

/// A CSR model backend: rows grouped into contiguous blocks of states,
/// visited in state order.
///
/// Implementations must partition `0..num_states()` into consecutive
/// non-overlapping block ranges (`block_states(0).start == 0`, each block
/// starts where the previous ended). [`crate::CsrMdp`] implements this as a
/// single block over its full arrays; `pa-store`'s `StoredCsr` pages each
/// block in from disk on demand.
pub trait CsrSource: Sync {
    /// Number of states.
    fn num_states(&self) -> usize;
    /// Total number of choices.
    fn num_choices(&self) -> u64;
    /// Total number of probabilistic transitions.
    fn num_transitions(&self) -> u64;
    /// The initial state indices.
    fn initial_states(&self) -> &[usize];
    /// Number of row blocks.
    fn num_blocks(&self) -> usize;
    /// The global state range of block `block`.
    fn block_states(&self, block: usize) -> Range<usize>;
    /// Calls `f` with block `block`'s rows. Backends that page blocks in
    /// may fail with [`MdpError::Backend`] (I/O error, corrupt block).
    fn with_rows(&self, block: usize, f: &mut dyn FnMut(CsrRows<'_>)) -> Result<(), MdpError>;
}

pub(crate) fn check_target_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
) -> Result<(), MdpError> {
    if target.len() != src.num_states() {
        return Err(MdpError::TargetLengthMismatch {
            got: target.len(),
            expected: src.num_states(),
        });
    }
    Ok(())
}

fn for_each_block<S: CsrSource + ?Sized>(
    src: &S,
    f: &mut dyn FnMut(CsrRows<'_>),
) -> Result<(), MdpError> {
    for b in 0..src.num_blocks() {
        src.with_rows(b, f)?;
    }
    Ok(())
}

/// One serial double-buffered Jacobi sweep over all blocks in state order.
/// Identical to the serial path of `csr.rs`'s `jacobi_sweep` (which the
/// parallel path is bitwise-pinned against): per-state updates read the
/// previous iterate only, and the delta is the max absolute change.
fn jacobi_sweep_src<S: CsrSource + ?Sized>(
    src: &S,
    next: &mut [f64],
    prev: &[f64],
    update: &dyn Fn(&CsrRows<'_>, usize, &[f64]) -> f64,
) -> Result<f64, MdpError> {
    let mut delta = 0.0f64;
    for_each_block(src, &mut |rows| {
        for s in rows.states() {
            let v = update(&rows, s, prev);
            let d = (v - prev[s]).abs();
            if d > delta {
                delta = d;
            }
            next[s] = v;
        }
    })?;
    Ok(delta)
}

/// States with **maximal** reachability probability zero. Computes the same
/// "cannot reach the target" set as [`crate::CsrMdp::prob0_max`], but as a
/// forward least fixpoint (mark states with a positive-probability edge
/// into the marked set until stable) instead of a backward BFS — a
/// predecessor graph cannot be materialized for a model that does not fit
/// in memory.
pub(crate) fn prob0_max_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
) -> Result<Vec<bool>, MdpError> {
    check_target_src(src, target)?;
    let mut can_reach = target.to_vec();
    loop {
        let mut changed = false;
        for_each_block(src, &mut |rows| {
            for s in rows.states() {
                if can_reach[s] {
                    continue;
                }
                let reaches = rows.choice_range(s).any(|c| {
                    rows.trans_range(c)
                        .any(|i| rows.probs[i] > 0.0 && can_reach[rows.targets[i] as usize])
                });
                if reaches {
                    can_reach[s] = true;
                    changed = true;
                }
            }
        })?;
        if !changed {
            return Ok(can_reach.iter().map(|&b| !b).collect());
        }
    }
}

/// States with **minimal** reachability probability zero: the same greatest
/// fixpoint as [`crate::CsrMdp::prob0_min`], swept block by block.
pub(crate) fn prob0_min_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
) -> Result<Vec<bool>, MdpError> {
    check_target_src(src, target)?;
    let mut in_x: Vec<bool> = target.iter().map(|&t| !t).collect();
    loop {
        let mut changed = false;
        for_each_block(src, &mut |rows| {
            for s in rows.states() {
                if !in_x[s] {
                    continue;
                }
                let stays = rows.is_terminal(s)
                    || rows.choice_range(s).any(|c| {
                        rows.trans_range(c)
                            .all(|i| rows.probs[i] == 0.0 || in_x[rows.targets[i] as usize])
                    });
                if !stays {
                    in_x[s] = false;
                    changed = true;
                }
            }
        })?;
        if !changed {
            return Ok(in_x);
        }
    }
}

/// Unbounded reachability on any backend; the serial twin of
/// [`crate::CsrMdp::reach_prob`].
pub(crate) fn reach_prob_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
    objective: Objective,
    options: IterOptions,
    stats: &mut SolveStats,
) -> Result<Vec<f64>, MdpError> {
    let _span = pa_telemetry::span("mdp.vi.reach_prob_seconds");
    check_target_src(src, target)?;
    let zero = match objective {
        Objective::MaxProb => prob0_max_src(src, target)?,
        Objective::MinProb => prob0_min_src(src, target)?,
    };
    let n = src.num_states();
    if pa_telemetry::enabled() {
        pa_telemetry::counter("mdp.vi.runs").inc();
    }
    let mut cur = vec![0.0f64; n];
    for s in 0..n {
        if target[s] {
            cur[s] = 1.0;
        }
    }
    let mut prev = cur.clone();
    for _ in 0..options.max_sweeps {
        let sweep_span = pa_telemetry::span("mdp.vi.sweep_seconds");
        let delta = jacobi_sweep_src(src, &mut cur, &prev, &|rows, s, prev| {
            if target[s] || zero[s] || rows.is_terminal(s) {
                return prev[s];
            }
            let mut best = objective.start();
            for c in rows.choice_range(s) {
                let val = rows.choice_value(c, prev);
                if objective.better(val, best) {
                    best = val;
                }
            }
            best
        })?;
        sweep_span.finish();
        stats.sweeps += 1;
        stats.state_updates += n as u64;
        if pa_telemetry::enabled() {
            pa_telemetry::counter("mdp.vi.sweeps").inc();
            pa_telemetry::series("mdp.vi.residual").push(delta);
        }
        std::mem::swap(&mut cur, &mut prev);
        if delta <= options.epsilon {
            break;
        }
    }
    Ok(prev)
}

fn validate_costs_src<S: CsrSource + ?Sized>(src: &S) -> Result<(), MdpError> {
    let mut bad: Option<(usize, u32)> = None;
    for_each_block(src, &mut |rows| {
        if bad.is_some() {
            return;
        }
        for s in rows.states() {
            for c in rows.choice_range(s) {
                if rows.costs[c] > 1 {
                    bad = Some((s, rows.costs[c]));
                    return;
                }
            }
        }
    })?;
    match bad {
        Some((state, cost)) => Err(MdpError::BadDistribution {
            state,
            reason: format!("cost-bounded reachability supports costs 0 and 1, found {cost}"),
        }),
        None => Ok(()),
    }
}

/// One cost-bounded induction level on any backend; the serial twin of
/// `CsrMdp::solve_level_into` — same buffer alternation, same `4n + 8`
/// sweep cap, same `1e-14` inner tolerance.
#[allow(clippy::too_many_arguments)]
fn solve_level_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
    level_prev: &[f64],
    objective: Objective,
    values: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
    stats: &mut SolveStats,
) -> Result<(), MdpError> {
    let n = src.num_states();
    values.clear();
    values.resize(n, 0.0);
    for s in 0..n {
        if target[s] {
            values[s] = 1.0;
        }
    }
    scratch.clear();
    scratch.extend_from_slice(values);
    let level_sweeps =
        pa_telemetry::enabled().then(|| pa_telemetry::counter("mdp.vi.level_sweeps"));
    let max_sweeps = 4 * n + 8;
    let update = |rows: &CsrRows<'_>, s: usize, prev: &[f64]| {
        if target[s] || rows.is_terminal(s) {
            return prev[s];
        }
        let mut best = objective.start();
        for c in rows.choice_range(s) {
            let source = if rows.costs[c] == 1 { level_prev } else { prev };
            let val = rows.choice_value(c, source);
            if objective.better(val, best) {
                best = val;
            }
        }
        best
    };
    let mut done = 0usize;
    for k in 0..max_sweeps {
        if let Some(c) = &level_sweeps {
            c.inc();
        }
        stats.sweeps += 1;
        stats.state_updates += n as u64;
        let delta = if k % 2 == 0 {
            jacobi_sweep_src(src, values, scratch, &update)?
        } else {
            jacobi_sweep_src(src, scratch, values, &update)?
        };
        done = k + 1;
        if delta <= 1e-14 {
            break;
        }
    }
    if done.is_multiple_of(2) {
        std::mem::swap(values, scratch);
    }
    Ok(())
}

/// The twin of `CsrMdp::extract_level_decisions` on any backend.
fn extract_level_decisions_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
    level_prev: &[f64],
    values: &[f64],
    objective: Objective,
    dec: &mut Vec<Option<u32>>,
) -> Result<(), MdpError> {
    let n = src.num_states();
    dec.clear();
    dec.resize(n, None);
    for_each_block(src, &mut |rows| {
        for s in rows.states() {
            if target[s] || rows.is_terminal(s) {
                continue;
            }
            let mut best = objective.start();
            let mut best_i = 0u32;
            for (i, c) in rows.choice_range(s).enumerate() {
                let source = if rows.costs[c] == 1 {
                    level_prev
                } else {
                    values
                };
                let val = rows.choice_value(c, source);
                if objective.better(val, best) {
                    best = val;
                    best_i = i as u32;
                }
            }
            dec[s] = Some(best_i);
        }
    })
}

/// Cost-bounded backward induction on any backend; the serial twin of
/// `CsrMdp::bounded_levels_engine` (Jacobi path — the SCC path needs the
/// whole zero-cost condensation resident).
pub(crate) fn bounded_levels_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
    budget: u32,
    objective: Objective,
    mut policy: Option<&mut Vec<Vec<Option<u32>>>>,
    stats: &mut SolveStats,
) -> Result<Vec<f64>, MdpError> {
    check_target_src(src, target)?;
    validate_costs_src(src)?;
    let _span = pa_telemetry::span("mdp.vi.cost_bounded_seconds");
    let levels = pa_telemetry::enabled().then(|| pa_telemetry::counter("mdp.vi.levels"));
    let n = src.num_states();
    let mut level_prev = vec![0.0f64; n];
    let mut cur: Vec<f64> = Vec::new();
    let mut scratch: Vec<f64> = Vec::new();
    if pa_telemetry::enabled() {
        pa_telemetry::gauge("mdp.vi.level_buffer_bytes")
            .set_max((3 * n * std::mem::size_of::<f64>()) as i64);
    }
    for _k in 0..=budget {
        solve_level_src(
            src,
            target,
            &level_prev,
            objective,
            &mut cur,
            &mut scratch,
            stats,
        )?;
        if let Some(policy) = policy.as_deref_mut() {
            let mut dec = Vec::new();
            extract_level_decisions_src(src, target, &level_prev, &cur, objective, &mut dec)?;
            policy.push(dec);
        }
        std::mem::swap(&mut level_prev, &mut cur);
    }
    if let Some(c) = levels {
        c.add(u64::from(budget) + 1);
    }
    Ok(level_prev)
}

/// Qualitative almost-sure reachability on any backend: the same nested
/// `νZ. μY.` fixpoint as [`crate::CsrMdp::prob1`], swept block by block.
pub(crate) fn prob1_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
    objective: Objective,
) -> Result<Vec<bool>, MdpError> {
    check_target_src(src, target)?;
    let n = src.num_states();
    let choice_ok = |rows: &CsrRows<'_>, c: usize, z: &[bool], y: &[bool]| -> bool {
        let mut progresses = false;
        for i in rows.trans_range(c) {
            if rows.probs[i] == 0.0 {
                continue;
            }
            let t = rows.targets[i] as usize;
            if !z[t] {
                return false;
            }
            progresses |= y[t];
        }
        progresses
    };
    let mut z = vec![true; n];
    loop {
        let mut y = target.to_vec();
        loop {
            let mut changed = false;
            for_each_block(src, &mut |rows| {
                for s in rows.states() {
                    if y[s] || !z[s] || rows.is_terminal(s) {
                        continue;
                    }
                    let ok = match objective {
                        Objective::MinProb => {
                            rows.choice_range(s).all(|c| choice_ok(&rows, c, &z, &y))
                        }
                        Objective::MaxProb => {
                            rows.choice_range(s).any(|c| choice_ok(&rows, c, &z, &y))
                        }
                    };
                    if ok {
                        y[s] = true;
                        changed = true;
                    }
                }
            })?;
            if !changed {
                break;
            }
        }
        if y == z {
            return Ok(y);
        }
        z = y;
    }
}

/// Detects a cycle in the zero-cost off-target subgraph on any backend.
/// Computes the same answer as [`crate::CsrMdp::has_zero_cost_cycle`]'s
/// DFS, as a peeling greatest fixpoint (a DFS's random state-access pattern
/// defeats block paging): repeatedly discard states with no zero-cost
/// positive-probability edge into the remaining set; the remainder is
/// nonempty iff the subgraph has a cycle.
pub(crate) fn has_zero_cost_cycle_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
) -> Result<bool, MdpError> {
    check_target_src(src, target)?;
    let mut in_u: Vec<bool> = target.iter().map(|&t| !t).collect();
    loop {
        let mut changed = false;
        for_each_block(src, &mut |rows| {
            for s in rows.states() {
                if !in_u[s] {
                    continue;
                }
                let keeps = rows.choice_range(s).any(|c| {
                    rows.costs[c] == 0
                        && rows
                            .trans_range(c)
                            .any(|i| rows.probs[i] > 0.0 && in_u[rows.targets[i] as usize])
                });
                if !keeps {
                    in_u[s] = false;
                    changed = true;
                }
            }
        })?;
        if !changed {
            return Ok(in_u.iter().any(|&b| b));
        }
    }
}

/// Shared expected-cost Jacobi iteration on any backend; the serial twin of
/// `CsrMdp::expected_cost_iterate`.
fn expected_cost_iterate_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
    live: &[bool],
    objective: Objective,
    options: IterOptions,
    stats: &mut SolveStats,
) -> Result<Vec<f64>, MdpError> {
    let n = src.num_states();
    let ec_sweeps = pa_telemetry::enabled().then(|| pa_telemetry::counter("mdp.vi.ec_sweeps"));
    let mut cur = vec![0.0f64; n];
    let mut prev = cur.clone();
    for _ in 0..options.max_sweeps {
        if let Some(c) = &ec_sweeps {
            c.inc();
        }
        stats.sweeps += 1;
        stats.state_updates += n as u64;
        let delta = jacobi_sweep_src(src, &mut cur, &prev, &|rows, s, prev| {
            if target[s] || !live[s] || rows.is_terminal(s) {
                return prev[s];
            }
            let mut best = objective.start();
            for c in rows.choice_range(s) {
                let mut val = rows.costs[c] as f64;
                let mut ok = true;
                for i in rows.trans_range(c) {
                    let p = rows.probs[i];
                    if p == 0.0 {
                        continue;
                    }
                    let t = rows.targets[i] as usize;
                    if !target[t] && !live[t] {
                        ok = false;
                        break;
                    }
                    val += p * prev[t];
                }
                if ok && objective.better(val, best) {
                    best = val;
                }
            }
            if best.is_finite() {
                best
            } else {
                prev[s]
            }
        })?;
        std::mem::swap(&mut cur, &mut prev);
        if delta <= options.epsilon {
            break;
        }
    }
    let mut v = prev;
    for s in 0..n {
        if !target[s] && !live[s] {
            v[s] = f64::INFINITY;
        }
    }
    Ok(v)
}

/// Worst-case expected accumulated cost on any backend; the twin of
/// [`crate::CsrMdp::max_expected_cost`].
pub(crate) fn max_expected_cost_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
    options: IterOptions,
    stats: &mut SolveStats,
) -> Result<Vec<f64>, MdpError> {
    check_target_src(src, target)?;
    let proper = prob1_src(src, target, Objective::MinProb)?;
    expected_cost_iterate_src(src, target, &proper, Objective::MaxProb, options, stats)
}

/// Best-case expected accumulated cost on any backend; the twin of
/// [`crate::CsrMdp::min_expected_cost`].
pub(crate) fn min_expected_cost_src<S: CsrSource + ?Sized>(
    src: &S,
    target: &[bool],
    options: IterOptions,
    stats: &mut SolveStats,
) -> Result<Vec<f64>, MdpError> {
    check_target_src(src, target)?;
    if has_zero_cost_cycle_src(src, target)? {
        return Err(MdpError::DivergentExpectation { state: 0 });
    }
    let feasible = prob1_src(src, target, Objective::MaxProb)?;
    expected_cost_iterate_src(src, target, &feasible, Objective::MinProb, options, stats)
}

/// FNV-1a 64 digest of a backend's *logical* content: counts, initial
/// states, then every row's structure (choice count; per choice its cost
/// and transition count; per transition the global target and the exact
/// probability bits) in state order.
///
/// Independent of how the backend splits rows into blocks, so an in-core
/// [`crate::CsrMdp`] and any stored copy of the same model digest to the
/// same value — the round-trip check the `store-smoke` CI job and the bench
/// `store` block gate on.
pub fn csr_digest<S: CsrSource + ?Sized>(src: &S) -> Result<u64, MdpError> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(src.num_states() as u64);
    eat(src.num_choices());
    eat(src.num_transitions());
    eat(src.initial_states().len() as u64);
    for &s in src.initial_states() {
        eat(s as u64);
    }
    let mut hash = h;
    for_each_block(src, &mut |rows| {
        let mut h = hash;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for s in rows.states() {
            let cr = rows.choice_range(s);
            eat((cr.end - cr.start) as u64);
            for c in cr {
                eat(u64::from(rows.costs[c]));
                let tr = rows.trans_range(c);
                eat((tr.end - tr.start) as u64);
                for i in tr {
                    eat(u64::from(rows.targets[i]));
                    eat(rows.probs[i].to_bits());
                }
            }
        }
        hash = h;
    })?;
    Ok(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Choice, CsrMdp, ExplicitMdp};

    fn escape() -> CsrMdp {
        CsrMdp::from_explicit(
            &ExplicitMdp::new(
                vec![
                    vec![Choice::to(1, 1), Choice::dist(1, vec![(2, 0.5), (0, 0.5)])],
                    vec![Choice::to(1, 0)],
                    vec![],
                ],
                vec![0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn csr_mdp_is_a_single_block_source() {
        let csr = escape();
        assert_eq!(CsrSource::num_states(&csr), 3);
        assert_eq!(csr.num_blocks(), 1);
        assert_eq!(csr.block_states(0), 0..3);
        let mut seen = 0usize;
        csr.with_rows(0, &mut |rows| {
            for s in rows.states() {
                seen += 1;
                for c in rows.choice_range(s) {
                    let _ = rows.trans_range(c);
                }
            }
        })
        .unwrap();
        assert_eq!(seen, 3);
    }

    #[test]
    fn generic_engines_match_in_core_bitwise() {
        let csr = escape();
        let target = vec![false, false, true];
        let opts = IterOptions::default();
        let mut stats = SolveStats::default();
        for objective in [Objective::MaxProb, Objective::MinProb] {
            let in_core = csr.reach_prob(&target, objective, opts, Some(1)).unwrap();
            let generic = reach_prob_src(&csr, &target, objective, opts, &mut stats).unwrap();
            assert_eq!(in_core, generic, "{objective:?}");
        }
        let in_core = csr.max_expected_cost(&target, opts, Some(1)).unwrap();
        let generic = max_expected_cost_src(&csr, &target, opts, &mut stats).unwrap();
        assert_eq!(in_core, generic);
    }

    #[test]
    fn zero_cost_cycle_peeling_matches_dfs() {
        let cyclic = CsrMdp::from_explicit(
            &ExplicitMdp::new(
                vec![
                    vec![Choice::to(0, 1)],
                    vec![Choice::to(0, 0), Choice::to(1, 2)],
                    vec![],
                ],
                vec![0],
            )
            .unwrap(),
        );
        for target in [[false, false, true], [true, false, false]] {
            assert_eq!(
                cyclic.has_zero_cost_cycle(&target).unwrap(),
                has_zero_cost_cycle_src(&cyclic, &target).unwrap(),
            );
        }
    }

    #[test]
    fn digest_is_block_structure_independent_and_content_sensitive() {
        let a = escape();
        let d1 = csr_digest(&a).unwrap();
        let d2 = csr_digest(&a).unwrap();
        assert_eq!(d1, d2);
        let other = CsrMdp::from_explicit(
            &ExplicitMdp::new(
                vec![
                    vec![
                        Choice::to(1, 1),
                        Choice::dist(1, vec![(2, 0.25), (0, 0.75)]),
                    ],
                    vec![Choice::to(1, 0)],
                    vec![],
                ],
                vec![0],
            )
            .unwrap(),
        );
        assert_ne!(d1, csr_digest(&other).unwrap());
    }
}
