//! Unbounded reachability: qualitative graph precomputation plus value
//! iteration. The PRISM-style baseline against which the paper's manual
//! proof method is compared in the benchmarks.
//!
//! These entry points keep the original nested-model signatures but run on
//! the CSR engine ([`crate::CsrMdp`]): the model is flattened once, then
//! analyzed with double-buffered Jacobi sweeps that parallelize
//! deterministically (see the `csr` module docs). Callers holding a
//! [`crate::CsrMdp`] can invoke the engine directly and amortize the
//! flattening across analyses.

use crate::{CsrMdp, ExplicitMdp, MdpError};

/// Numerical options for value iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterOptions {
    /// Stop when the largest per-sweep change drops below this.
    pub epsilon: f64,
    /// Hard cap on sweeps.
    pub max_sweeps: usize,
}

impl Default for IterOptions {
    fn default() -> IterOptions {
        IterOptions {
            epsilon: 1e-12,
            max_sweeps: 1_000_000,
        }
    }
}

/// States with **maximal** reachability probability zero: no path to the
/// target exists in the transition graph (any choice, any branch).
pub fn prob0_max(mdp: &ExplicitMdp, target: &[bool]) -> Result<Vec<bool>, MdpError> {
    CsrMdp::from_explicit(mdp).prob0_max(target)
}

/// States with **minimal** reachability probability zero: the adversary has
/// a strategy that avoids the target surely. Computed as the greatest
/// fixpoint of `X = {s ∉ T : s terminal, or some choice keeps all mass in
/// X}` — terminal states count because an adversary may also stop
/// scheduling (Definition 2.2 allows returning nothing).
pub fn prob0_min(mdp: &ExplicitMdp, target: &[bool]) -> Result<Vec<bool>, MdpError> {
    CsrMdp::from_explicit(mdp).prob0_min(target)
}

/// States with reachability probability **exactly one** under the given
/// objective (`MinProb`: every adversary reaches the target almost surely;
/// `MaxProb`: some policy does). Nested-model wrapper over
/// [`CsrMdp::prob1`]; see there for the fixpoint and why the expected-cost
/// analyses need the qualitative answer rather than a thresholded
/// numerical one.
pub fn prob1(
    mdp: &ExplicitMdp,
    target: &[bool],
    objective: crate::Objective,
) -> Result<Vec<bool>, MdpError> {
    CsrMdp::from_explicit(mdp).prob1(target, objective)
}

/// Computes unbounded reachability probabilities
/// `P^opt[eventually reach target]` by qualitative precomputation followed
/// by value iteration from below (double-buffered Jacobi on the CSR
/// engine; deterministically parallel — see [`crate::CsrMdp`]).
///
/// A terminal non-target state has value 0 under both objectives (for
/// `MinProb` also because the adversary may simply stop scheduling).
///
// Unbounded reachability itself is exposed through `crate::Query` (no
// horizon); only the qualitative precomputations above remain free
// functions.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Choice, Objective, Query};

    /// Unbounded reachability via the `Query` builder (the migration target
    /// of the removed pre-`Query` free function).
    fn reach_prob(
        mdp: &ExplicitMdp,
        target: &[bool],
        objective: Objective,
        options: IterOptions,
    ) -> Result<Vec<f64>, MdpError> {
        Ok(Query::over(mdp)
            .objective(objective)
            .target(target)
            .options(options)
            .run()
            .map_err(MdpError::into_root)?
            .values)
    }

    /// 0: choice A stays in a loop {0,1}; choice B moves towards target 2
    /// with probability 1/2, else back to 0.
    fn escape() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![
                vec![Choice::to(1, 1), Choice::dist(1, vec![(2, 0.5), (0, 0.5)])],
                vec![Choice::to(1, 0)],
                vec![],
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn prob0_max_finds_graph_unreachable_states() {
        // 3-state model where state 1 is a dead end.
        let m = ExplicitMdp::new(
            vec![vec![Choice::to(1, 1), Choice::to(1, 2)], vec![], vec![]],
            vec![0],
        )
        .unwrap();
        let z = prob0_max(&m, &[false, false, true]).unwrap();
        assert_eq!(z, vec![false, true, false]);
    }

    #[test]
    fn prob0_min_detects_avoidance_strategy() {
        let m = escape();
        // The adversary can ping-pong 0<->1 forever, avoiding 2.
        let z = prob0_min(&m, &[false, false, true]).unwrap();
        assert_eq!(z, vec![true, true, false]);
    }

    #[test]
    fn prob0_min_counts_halting_as_avoidance() {
        // Single choice leads to target, but a terminal sink exists.
        let m = ExplicitMdp::new(vec![vec![Choice::to(1, 1)], vec![]], vec![0]).unwrap();
        // From 0, the only scheduled run reaches 1. But 1 itself, if it were
        // not the target... here target = {1}: min prob is 1? No: the
        // adversary may stop scheduling *at state 0*, so min reach = 0.
        //
        // Definition 2.2 allows the adversary to return nothing; our
        // prob0_min treats terminal states as avoiding, but a *non-terminal*
        // state where the adversary stops is equivalent to... stopping,
        // which avoids the target. That is exactly why `in_x` keeps states
        // whose choices all leave X OR which the adversary can park in X.
        // State 0 has a choice into the target, and "stopping" is modelled
        // only at terminal states; schemas like Unit-Time forbid stopping,
        // which is the semantics the Lehmann–Rabin analysis uses.
        let z = prob0_min(&m, &[false, true]).unwrap();
        assert_eq!(z, vec![false, false]);
    }

    #[test]
    fn prob1_separates_forced_from_possible() {
        let m = escape();
        // Choice A ping-pongs 0<->1 forever, so an adversary avoids the
        // target: Pmin < 1 on both loop states. Choice B still reaches 2
        // with probability 1/2 per attempt, so a cooperative scheduler
        // gets there almost surely: Pmax = 1 everywhere.
        let t = [false, false, true];
        assert_eq!(
            prob1(&m, &t, Objective::MinProb).unwrap(),
            vec![false, false, true]
        );
        assert_eq!(
            prob1(&m, &t, Objective::MaxProb).unwrap(),
            vec![true, true, true]
        );
    }

    #[test]
    fn prob1_handles_stochastic_loops_and_terminal_sinks() {
        // A stochastic self-loop that leaks to the target has Pmin = 1
        // even though no finite horizon reaches it surely — the case a
        // thresholded numeric reachability value gets wrong when value
        // iteration stops early.
        let m = ExplicitMdp::new(
            vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
            vec![0],
        )
        .unwrap();
        assert_eq!(
            prob1(&m, &[false, true], Objective::MinProb).unwrap(),
            vec![true, true]
        );
        // A terminal non-target state stays put forever: never almost-sure.
        let m = ExplicitMdp::new(vec![vec![Choice::to(1, 1)], vec![], vec![]], vec![0]).unwrap();
        assert_eq!(
            prob1(&m, &[false, true, false], Objective::MinProb).unwrap(),
            vec![true, true, false]
        );
        assert_eq!(
            prob1(&m, &[false, true, false], Objective::MaxProb).unwrap(),
            vec![true, true, false]
        );
    }

    #[test]
    fn reach_prob_max_is_one_when_escape_possible() {
        let m = escape();
        let v = reach_prob(
            &m,
            &[false, false, true],
            Objective::MaxProb,
            IterOptions::default(),
        )
        .unwrap();
        assert!((v[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reach_prob_min_is_zero_with_avoidance() {
        let m = escape();
        let v = reach_prob(
            &m,
            &[false, false, true],
            Objective::MinProb,
            IterOptions::default(),
        )
        .unwrap();
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 1.0);
    }

    #[test]
    fn forced_geometric_min_reach_is_one() {
        // One choice: flip until heads. Min = max = 1.
        let m = ExplicitMdp::new(
            vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
            vec![0],
        )
        .unwrap();
        let v = reach_prob(
            &m,
            &[false, true],
            Objective::MinProb,
            IterOptions::default(),
        )
        .unwrap();
        assert!((v[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iter_options_cap_sweeps() {
        let m = ExplicitMdp::new(
            vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
            vec![0],
        )
        .unwrap();
        let coarse = reach_prob(
            &m,
            &[false, true],
            Objective::MinProb,
            IterOptions {
                epsilon: 0.0,
                max_sweeps: 3,
            },
        )
        .unwrap();
        assert!(coarse[0] < 1.0);
    }
}
