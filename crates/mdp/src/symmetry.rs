//! Symmetry reduction: canonicalizing states to per-orbit representatives
//! so exploration builds the *quotient* MDP.
//!
//! A [`Symmetry`] is a finite group action on the state space of an
//! implicit model whose step relation is *equivariant*: for every group
//! element `g`, the choices of `g·s` are exactly the `g`-images of the
//! choices of `s` (as a multiset of cost-labelled distributions). Under
//! that hypothesis the value of any min/max objective is constant on
//! orbits, so it suffices to explore one representative per orbit —
//! [`Symmetry::canon`] — and redirect every successor to its
//! representative. The quotient model has up to `order()`-fold fewer
//! states and bit-identical values on representatives (see DESIGN §13 for
//! the soundness argument and the equality granularity per solver).
//!
//! The only instance shipped here is [`RingRotation`], the cyclic rotation
//! group of a ring of `n` identical processes — the symmetry of the
//! Lehmann–Rabin dining-philosophers ring. States opt in by implementing
//! [`RingState`]; canonical form is the lexicographically least rotation,
//! which the ring-rotation property tests in `pa-lehmann-rabin` pin as
//! value-preserving.

/// A group action on states, exposed through its canonicalization map.
///
/// Implementations must guarantee:
///
/// * **Idempotence** — `canon(canon(s)) == canon(s)`.
/// * **Orbit invariance** — `canon(g·s) == canon(s)` for every group
///   element `g` (for [`RingRotation`]: every rotation amount).
///
/// Both laws are property-tested for the shipped instances.
pub trait Symmetry<S>: Send + Sync {
    /// The canonical representative of the orbit of `s`.
    fn canon(&self, s: &S) -> S;

    /// The order of the acting group; each orbit has between 1 and this
    /// many states, so this bounds the achievable reduction factor.
    fn order(&self) -> usize;
}

/// States acted on by the cyclic rotation group of a ring.
///
/// `rotated(k)` relabels the ring so that new process `i` is old process
/// `i + k` (indices mod `n`), together with whatever per-process payload
/// the state carries (resources, obligations, budgets, fault status). The
/// `Ord` bound supplies the total order that picks the lexicographically
/// least rotation as the orbit representative.
pub trait RingState: Clone + Ord {
    /// The state relabelled by rotation amount `k` (new index `i` = old
    /// index `i + k`, mod the ring size).
    fn rotated(&self, k: usize) -> Self;
}

/// The cyclic rotation symmetry of a ring of `n` processes.
///
/// Canonical form is the minimum of all `n` rotations under the state's
/// `Ord`. Sound whenever the model treats all ring positions identically —
/// for the fault-wrapped models this means the fault plan must not name
/// specific processes (an empty plan); the `pa-faults` quotient entry
/// points enforce that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingRotation {
    n: usize,
}

impl RingRotation {
    /// The rotation group of a ring of `n` processes.
    pub fn new(n: usize) -> RingRotation {
        RingRotation { n }
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl<S: RingState + Send + Sync> Symmetry<S> for RingRotation {
    fn canon(&self, s: &S) -> S {
        let mut best = s.clone();
        for k in 1..self.n {
            let r = s.rotated(k);
            if r < best {
                best = r;
            }
        }
        best
    }

    fn order(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy ring state: one small payload value per position.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct Toy(Vec<u8>);

    impl RingState for Toy {
        fn rotated(&self, k: usize) -> Toy {
            let n = self.0.len();
            Toy((0..n).map(|i| self.0[(i + k) % n]).collect())
        }
    }

    #[test]
    fn canon_picks_the_least_rotation() {
        let sym = RingRotation::new(4);
        let s = Toy(vec![2, 0, 1, 0]);
        let c = sym.canon(&s);
        assert_eq!(c, Toy(vec![0, 1, 0, 2]));
    }

    #[test]
    fn canon_is_idempotent_and_orbit_invariant() {
        let sym = RingRotation::new(5);
        let s = Toy(vec![3, 1, 4, 1, 5]);
        let c = sym.canon(&s);
        assert_eq!(sym.canon(&c), c);
        for k in 0..5 {
            assert_eq!(sym.canon(&s.rotated(k)), c, "rotation {k}");
        }
    }

    #[test]
    fn symmetric_states_are_their_own_orbit() {
        let sym = RingRotation::new(3);
        let s = Toy(vec![7, 7, 7]);
        assert_eq!(sym.canon(&s), s);
        assert_eq!(<RingRotation as Symmetry<Toy>>::order(&sym), 3);
    }
}
