//! The unified quantitative-analysis entry point: [`Query`].
//!
//! The crate's original surface grew one free function per analysis —
//! bounded/unbounded reachability, expected cost, policy extraction —
//! each with its own signature for the same knobs (objective, tolerance,
//! workers, target). Those free functions are gone; [`Query`] folds every
//! analysis into one builder:
//!
//! ```
//! use pa_mdp::{Choice, ExplicitMdp, Query, QueryObjective};
//!
//! # fn main() -> Result<(), pa_mdp::MdpError> {
//! // Geometric trial: win a coin flip once per time unit.
//! let m = ExplicitMdp::new(
//!     vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
//!     vec![0],
//! )?;
//! let analysis = Query::over(&m)
//!     .objective(QueryObjective::MinProb)
//!     .target(vec![false, true])
//!     .horizon(3)
//!     .run()?;
//! assert!((analysis.values[0] - 0.875).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! Targets are accepted as a `bool` mask, a list of state indices, or (via
//! [`Query::target_where`]) a predicate, resolving the historical
//! `target: &[bool]`-vs-predicate split between `csr.rs` and `explore.rs`.
//! Every failure surfaces as a single [`MdpError::Query`] carrying the
//! stage that failed and the root cause as its
//! [`source`](std::error::Error::source).
//!
//! # Solver selection
//!
//! [`Solver::Jacobi`] is the original engine: global double-buffered
//! sweeps, deterministically parallel, bit-for-bit reproducible across
//! worker counts. [`Solver::SccOrdered`] condenses the choice graph first
//! and solves components in reverse topological order (see
//! [`crate::SccDecomposition`]); on layered models such as the
//! Lehmann–Rabin round MDPs it performs strictly fewer state updates. Per
//! query, pick one with [`Query::solver`]; process-wide, flip the default
//! with [`set_default_solver`] (how `tables --solver scc` switches every
//! migrated call site at once).

use std::sync::atomic::{AtomicU8, Ordering};

use crate::csr::SolveStats;
use crate::source::{self, CsrSource};
use crate::{BoundedPolicy, CsrMdp, ExplicitMdp, IterOptions, MdpError, Objective};

/// What a [`Query`] optimizes, quantifying over all adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryObjective {
    /// Minimal probability of reaching the target (the quantifier in the
    /// paper's `U —t→_p U'` statements).
    MinProb,
    /// Maximal probability of reaching the target.
    MaxProb,
    /// Minimal expected accumulated cost to the target.
    MinCost,
    /// Maximal expected accumulated cost to the target (Section 6.2).
    MaxCost,
}

impl From<Objective> for QueryObjective {
    fn from(o: Objective) -> QueryObjective {
        match o {
            Objective::MinProb => QueryObjective::MinProb,
            Objective::MaxProb => QueryObjective::MaxProb,
        }
    }
}

/// Which value-iteration engine a [`Query`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Global double-buffered Jacobi sweeps, deterministically parallel.
    Jacobi,
    /// SCC-condensed sweeps: components of the choice graph are solved in
    /// reverse topological order against already-fixed successors.
    SccOrdered,
}

/// The process-wide default solver used by queries that do not call
/// [`Query::solver`]: 0 = Jacobi, 1 = SccOrdered.
static DEFAULT_SOLVER: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default solver for queries that do not pick one
/// explicitly. Callers that owe bitwise-stable outputs (oracle tests, the
/// bench baselines) pin [`Solver::Jacobi`] per query and are unaffected.
pub fn set_default_solver(solver: Solver) {
    let v = match solver {
        Solver::Jacobi => 0,
        Solver::SccOrdered => 1,
    };
    DEFAULT_SOLVER.store(v, Ordering::Relaxed);
}

/// The current process-wide default solver.
pub fn default_solver() -> Solver {
    match DEFAULT_SOLVER.load(Ordering::Relaxed) {
        0 => Solver::Jacobi,
        _ => Solver::SccOrdered,
    }
}

/// Anything [`Query::target`] accepts: a per-state `bool` mask or a list
/// of target state indices.
pub trait IntoTarget {
    /// Resolves to a `bool` mask over `num_states` states.
    fn into_target(self, num_states: usize) -> Result<Vec<bool>, MdpError>;
}

impl IntoTarget for Vec<bool> {
    fn into_target(self, num_states: usize) -> Result<Vec<bool>, MdpError> {
        if self.len() != num_states {
            return Err(MdpError::TargetLengthMismatch {
                got: self.len(),
                expected: num_states,
            });
        }
        Ok(self)
    }
}

impl IntoTarget for &[bool] {
    fn into_target(self, num_states: usize) -> Result<Vec<bool>, MdpError> {
        self.to_vec().into_target(num_states)
    }
}

impl IntoTarget for &Vec<bool> {
    fn into_target(self, num_states: usize) -> Result<Vec<bool>, MdpError> {
        self.clone().into_target(num_states)
    }
}

impl<const N: usize> IntoTarget for &[bool; N] {
    fn into_target(self, num_states: usize) -> Result<Vec<bool>, MdpError> {
        self.as_slice().into_target(num_states)
    }
}

impl IntoTarget for &[usize] {
    fn into_target(self, num_states: usize) -> Result<Vec<bool>, MdpError> {
        let mut mask = vec![false; num_states];
        for &s in self {
            if s >= num_states {
                return Err(MdpError::BadStateIndex {
                    index: s,
                    num_states,
                });
            }
            mask[s] = true;
        }
        Ok(mask)
    }
}

impl IntoTarget for Vec<usize> {
    fn into_target(self, num_states: usize) -> Result<Vec<bool>, MdpError> {
        self.as_slice().into_target(num_states)
    }
}

impl<const N: usize> IntoTarget for &[usize; N] {
    fn into_target(self, num_states: usize) -> Result<Vec<bool>, MdpError> {
        self.as_slice().into_target(num_states)
    }
}

/// The typed result of [`Query::run`].
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The per-state optimal values: probabilities for the `*Prob`
    /// objectives, expected costs (with `f64::INFINITY` marking divergent
    /// states) for the `*Cost` objectives.
    pub values: Vec<f64>,
    /// The optimal cost-indexed policy, when [`Query::with_policy`] was
    /// requested.
    pub policy: Option<BoundedPolicy>,
    /// Work counters of the solve (sweeps, state updates, condensation
    /// shape).
    pub stats: SolveStats,
    /// The objective that was solved.
    pub objective: QueryObjective,
    /// The solver that ran.
    pub solver: Solver,
    /// The time horizon, if the query was cost-bounded.
    pub horizon: Option<u32>,
}

impl Analysis {
    /// The value of one state.
    pub fn value(&self, state: usize) -> f64 {
        self.values[state]
    }
}

/// The model a query runs against: a borrowed, already-flattened CSR (so
/// repeated queries amortize the flattening), one built and owned by the
/// query itself, or any [`CsrSource`] backend (e.g. an out-of-core stored
/// model) driven through the block-streamed engines.
enum QueryModel<'m> {
    Borrowed(&'m CsrMdp),
    Owned(CsrMdp),
    Source(&'m dyn CsrSource),
}

impl QueryModel<'_> {
    fn get(&self) -> &CsrMdp {
        match self {
            QueryModel::Borrowed(m) => m,
            QueryModel::Owned(m) => m,
            QueryModel::Source(_) => unreachable!("source queries never flatten"),
        }
    }

    fn num_states(&self) -> usize {
        match self {
            QueryModel::Borrowed(m) => m.num_states(),
            QueryModel::Owned(m) => m.num_states(),
            QueryModel::Source(s) => s.num_states(),
        }
    }
}

/// A builder for one quantitative analysis over all adversaries: pick an
/// objective, a target, optionally a time horizon / solver / tolerance /
/// worker count / policy extraction, then [`run`](Query::run).
///
/// See the [module docs](self) for an example and the solver-selection
/// guidance.
pub struct Query<'m> {
    model: QueryModel<'m>,
    objective: QueryObjective,
    target: Option<Result<Vec<bool>, MdpError>>,
    horizon: Option<u32>,
    solver: Option<Solver>,
    options: IterOptions,
    workers: Option<usize>,
    with_policy: bool,
}

impl Query<'static> {
    /// Starts a query over a nested model, flattening it to CSR once.
    pub fn over(mdp: &ExplicitMdp) -> Query<'static> {
        Query::new(QueryModel::Owned(CsrMdp::from_explicit(mdp)))
    }
}

impl<'m> Query<'m> {
    /// Starts a query over an already-flattened model.
    pub fn csr(mdp: &'m CsrMdp) -> Query<'m> {
        Query::new(QueryModel::Borrowed(mdp))
    }

    /// Starts a query over any CSR backend — in-core or out-of-core —
    /// behind the [`CsrSource`] trait.
    ///
    /// The analysis runs on the serial block-streamed engines, which are
    /// bitwise identical to the in-core Jacobi kernels (see the
    /// [`crate::source`] module docs); [`Solver::SccOrdered`] is rejected
    /// at the `"validate"` stage and [`Query::workers`] has no effect.
    pub fn source(src: &'m dyn CsrSource) -> Query<'m> {
        Query::new(QueryModel::Source(src))
    }

    fn new(model: QueryModel<'m>) -> Query<'m> {
        Query {
            model,
            objective: QueryObjective::MinProb,
            target: None,
            horizon: None,
            solver: None,
            options: IterOptions::default(),
            workers: None,
            with_policy: false,
        }
    }

    /// Sets the objective (default [`QueryObjective::MinProb`]).
    pub fn objective(mut self, objective: impl Into<QueryObjective>) -> Self {
        self.objective = objective.into();
        self
    }

    /// Sets the target set: a `bool` mask (`Vec<bool>` / `&[bool]`) or a
    /// list of state indices (`Vec<usize>` / `&[usize]`). Resolution
    /// errors are deferred to [`Query::run`].
    pub fn target(mut self, target: impl IntoTarget) -> Self {
        let n = self.model.num_states();
        self.target = Some(target.into_target(n));
        self
    }

    /// Sets the target set from a predicate over state indices.
    pub fn target_where(mut self, mut pred: impl FnMut(usize) -> bool) -> Self {
        let n = self.model.num_states();
        self.target = Some(Ok((0..n).map(&mut pred).collect()));
        self
    }

    /// Bounds the total accumulated cost (time, under the round-based
    /// model): the query becomes cost-bounded backward induction.
    /// Probability objectives only.
    pub fn horizon(mut self, budget: u32) -> Self {
        self.horizon = Some(budget);
        self
    }

    /// Picks the solver for this query (default: the process-wide
    /// [`default_solver`]).
    pub fn solver(mut self, solver: Solver) -> Self {
        self.solver = Some(solver);
        self
    }

    /// Sets the convergence tolerance of iterative solves.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.options.epsilon = epsilon;
        self
    }

    /// Caps the number of sweeps of iterative solves.
    pub fn max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.options.max_sweeps = max_sweeps;
        self
    }

    /// Sets both iteration options at once.
    pub fn options(mut self, options: IterOptions) -> Self {
        self.options = options;
        self
    }

    /// Forces the worker count of parallel sweeps (default: the
    /// `PA_MDP_WORKERS` environment variable, then available parallelism;
    /// see [`crate::resolve_workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Also extracts the optimal cost-indexed policy (the concrete
    /// worst-case or best-case adversary). Requires a [`Query::horizon`].
    pub fn with_policy(mut self) -> Self {
        self.with_policy = true;
        self
    }

    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// Always a [`MdpError::Query`] naming the failed stage, with the root
    /// cause in its [`source`](std::error::Error::source) chain:
    /// `"target"` for a missing or malformed target, `"validate"` for an
    /// unsupported setting combination ([`MdpError::InvalidQuery`] inside),
    /// `"solve"` for failures of the underlying analysis.
    pub fn run(self) -> Result<Analysis, MdpError> {
        let wrap = |stage: &'static str| {
            move |e: MdpError| MdpError::Query {
                stage,
                source: Box::new(e),
            }
        };
        let target = self
            .target
            .ok_or(MdpError::InvalidQuery {
                reason: "no target set; call .target(...) or .target_where(...)".into(),
            })
            .and_then(|t| t)
            .map_err(wrap("target"))?;
        let solver = self.solver.unwrap_or_else(default_solver);
        let use_scc = solver == Solver::SccOrdered;
        let mut stats = SolveStats::default();

        let prob_objective = match self.objective {
            QueryObjective::MinProb => Some(Objective::MinProb),
            QueryObjective::MaxProb => Some(Objective::MaxProb),
            QueryObjective::MinCost | QueryObjective::MaxCost => None,
        };

        if let QueryModel::Source(src) = &self.model {
            let src: &dyn CsrSource = *src;
            if use_scc {
                return Err(wrap("validate")(MdpError::InvalidQuery {
                    reason: "stored backends support the Jacobi solver only (the \
                             SCC-ordered solver keeps the whole condensation resident)"
                        .into(),
                }));
            }
            let values;
            let mut policy = None;
            match (prob_objective, self.horizon) {
                (Some(objective), Some(budget)) => {
                    let mut decisions: Vec<Vec<Option<u32>>> = Vec::new();
                    values = source::bounded_levels_src(
                        src,
                        &target,
                        budget,
                        objective,
                        self.with_policy.then_some(&mut decisions),
                        &mut stats,
                    )
                    .map_err(wrap("solve"))?;
                    if self.with_policy {
                        policy = Some(BoundedPolicy {
                            decision: decisions,
                        });
                    }
                }
                (Some(objective), None) => {
                    if self.with_policy {
                        return Err(wrap("validate")(MdpError::InvalidQuery {
                            reason: "policy extraction requires a horizon (cost-indexed \
                                     policies are only defined for bounded queries)"
                                .into(),
                        }));
                    }
                    values =
                        source::reach_prob_src(src, &target, objective, self.options, &mut stats)
                            .map_err(wrap("solve"))?;
                }
                (None, horizon) => {
                    if horizon.is_some() || self.with_policy {
                        return Err(wrap("validate")(MdpError::InvalidQuery {
                            reason: "expected-cost objectives support neither a horizon nor \
                                     policy extraction"
                                .into(),
                        }));
                    }
                    values = match self.objective {
                        QueryObjective::MaxCost => {
                            source::max_expected_cost_src(src, &target, self.options, &mut stats)
                        }
                        _ => source::min_expected_cost_src(src, &target, self.options, &mut stats),
                    }
                    .map_err(wrap("solve"))?;
                }
            }
            return Ok(Analysis {
                values,
                policy,
                stats,
                objective: self.objective,
                solver,
                horizon: self.horizon,
            });
        }

        let mdp = self.model.get();
        let values;
        let mut policy = None;
        match (prob_objective, self.horizon) {
            (Some(objective), Some(budget)) => {
                let mut decisions: Vec<Vec<Option<u32>>> = Vec::new();
                values = mdp
                    .bounded_levels_engine(
                        &target,
                        budget,
                        objective,
                        self.workers,
                        use_scc,
                        self.with_policy.then_some(&mut decisions),
                        &mut |_, _| {},
                        &mut stats,
                    )
                    .map_err(wrap("solve"))?;
                if self.with_policy {
                    policy = Some(BoundedPolicy {
                        decision: decisions,
                    });
                }
            }
            (Some(objective), None) => {
                if self.with_policy {
                    return Err(wrap("validate")(MdpError::InvalidQuery {
                        reason: "policy extraction requires a horizon (cost-indexed policies \
                                 are only defined for bounded queries)"
                            .into(),
                    }));
                }
                values = if use_scc {
                    mdp.reach_prob_scc(&target, objective, self.options, &mut stats)
                } else {
                    mdp.reach_prob_stats(&target, objective, self.options, self.workers, &mut stats)
                }
                .map_err(wrap("solve"))?;
            }
            (None, horizon) => {
                if horizon.is_some() || self.with_policy {
                    return Err(wrap("validate")(MdpError::InvalidQuery {
                        reason: "expected-cost objectives support neither a horizon nor \
                                 policy extraction"
                            .into(),
                    }));
                }
                values = match self.objective {
                    QueryObjective::MaxCost => mdp.max_expected_cost_solver(
                        &target,
                        self.options,
                        self.workers,
                        use_scc,
                        &mut stats,
                    ),
                    _ => mdp.min_expected_cost_solver(
                        &target,
                        self.options,
                        self.workers,
                        use_scc,
                        &mut stats,
                    ),
                }
                .map_err(wrap("solve"))?;
            }
        }
        Ok(Analysis {
            values,
            policy,
            stats,
            objective: self.objective,
            solver,
            horizon: self.horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Choice;

    fn geometric() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn target_accepts_mask_indices_and_predicate() {
        let m = geometric();
        let by_mask = Query::over(&m)
            .target(vec![false, true])
            .horizon(3)
            .run()
            .unwrap();
        let by_index = Query::over(&m).target(vec![1]).horizon(3).run().unwrap();
        let by_pred = Query::over(&m)
            .target_where(|s| s == 1)
            .horizon(3)
            .run()
            .unwrap();
        assert_eq!(by_mask.values, by_index.values);
        assert_eq!(by_mask.values, by_pred.values);
        assert_eq!(by_mask.values[0], 0.875);
    }

    #[test]
    fn missing_target_is_reported_at_the_target_stage() {
        let err = Query::over(&geometric()).horizon(1).run().unwrap_err();
        assert!(matches!(
            err,
            MdpError::Query {
                stage: "target",
                ..
            }
        ));
        assert!(matches!(err.into_root(), MdpError::InvalidQuery { .. }));
    }

    #[test]
    fn out_of_range_index_target_surfaces_bad_state_index() {
        let err = Query::over(&geometric())
            .target(vec![7usize])
            .horizon(1)
            .run()
            .unwrap_err();
        assert_eq!(
            err.into_root(),
            MdpError::BadStateIndex {
                index: 7,
                num_states: 2
            }
        );
    }

    #[test]
    fn horizon_on_cost_objective_is_rejected() {
        let err = Query::over(&geometric())
            .objective(QueryObjective::MaxCost)
            .target(vec![1])
            .horizon(3)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            MdpError::Query {
                stage: "validate",
                ..
            }
        ));
    }

    #[test]
    fn unbounded_policy_extraction_is_rejected() {
        let err = Query::over(&geometric())
            .target(vec![1])
            .with_policy()
            .run()
            .unwrap_err();
        assert!(matches!(err.into_root(), MdpError::InvalidQuery { .. }));
    }

    #[test]
    fn expected_cost_objective_runs_both_solvers() {
        let m = geometric();
        for solver in [Solver::Jacobi, Solver::SccOrdered] {
            let a = Query::over(&m)
                .objective(QueryObjective::MaxCost)
                .target(vec![1])
                .solver(solver)
                .run()
                .unwrap();
            assert!((a.values[0] - 2.0).abs() < 1e-6, "{solver:?}");
            assert_eq!(a.solver, solver);
        }
    }

    #[test]
    fn default_solver_round_trips() {
        assert_eq!(default_solver(), Solver::Jacobi);
        set_default_solver(Solver::SccOrdered);
        assert_eq!(default_solver(), Solver::SccOrdered);
        set_default_solver(Solver::Jacobi);
        assert_eq!(default_solver(), Solver::Jacobi);
    }
}
