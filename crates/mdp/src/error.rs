use std::error::Error;
use std::fmt;

/// Error type for MDP construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// State-space exploration exceeded the configured limit.
    StateLimitExceeded {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A state index was out of range for the model.
    BadStateIndex {
        /// The offending index.
        index: usize,
        /// Number of states in the model.
        num_states: usize,
    },
    /// A transition distribution was invalid (weights not summing to one,
    /// negative weight, or empty support).
    BadDistribution {
        /// The state whose choice is malformed.
        state: usize,
        /// Description of the defect.
        reason: String,
    },
    /// An analysis requires the target vector to have one entry per state.
    TargetLengthMismatch {
        /// Length of the supplied target vector.
        got: usize,
        /// Number of states in the model.
        expected: usize,
    },
    /// Expected-cost analysis was asked for a state from which the target
    /// is not reached almost surely under every adversary, so the worst-case
    /// expectation diverges.
    DivergentExpectation {
        /// The offending state index.
        state: usize,
    },
    /// The model has no initial states.
    NoInitialStates,
    /// A [`crate::Query`] was built with an unsupported combination of
    /// settings (for example a time horizon on an expected-cost objective).
    InvalidQuery {
        /// What was wrong with the query.
        reason: String,
    },
    /// A model backend failed while streaming rows (an out-of-core store
    /// hitting an I/O error or a corrupt block, a row sink failing to
    /// persist a state's choices).
    Backend {
        /// Description of the backend failure.
        reason: String,
    },
    /// A [`crate::Query`] failed while running; `stage` names the analysis
    /// phase and `source` carries the underlying error (also exposed via
    /// [`std::error::Error::source`]).
    Query {
        /// The query stage that failed (e.g. `"target"`, `"solve"`).
        stage: &'static str,
        /// The underlying error.
        source: Box<MdpError>,
    },
}

impl MdpError {
    /// Unwraps [`MdpError::Query`] wrappers down to the root cause, for
    /// callers that want to match the concrete variant (e.g.
    /// [`MdpError::BadDistribution`]) rather than the query stage.
    pub fn into_root(self) -> MdpError {
        match self {
            MdpError::Query { source, .. } => source.into_root(),
            other => other,
        }
    }
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::StateLimitExceeded { limit } => {
                write!(f, "state-space exploration exceeded limit of {limit} states")
            }
            MdpError::BadStateIndex { index, num_states } => {
                write!(f, "state index {index} out of range (model has {num_states})")
            }
            MdpError::BadDistribution { state, reason } => {
                write!(f, "invalid distribution at state {state}: {reason}")
            }
            MdpError::TargetLengthMismatch { got, expected } => {
                write!(f, "target vector has length {got}, expected {expected}")
            }
            MdpError::DivergentExpectation { state } => write!(
                f,
                "worst-case expected cost diverges from state {state} (target not reached almost surely)"
            ),
            MdpError::NoInitialStates => write!(f, "model has no initial states"),
            MdpError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            MdpError::Backend { reason } => write!(f, "model backend failed: {reason}"),
            MdpError::Query { stage, source } => {
                write!(f, "query failed during {stage}: {source}")
            }
        }
    }
}

impl Error for MdpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MdpError::Query { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = [
            MdpError::StateLimitExceeded { limit: 10 },
            MdpError::BadStateIndex {
                index: 5,
                num_states: 3,
            },
            MdpError::BadDistribution {
                state: 0,
                reason: "sums to 0.5".into(),
            },
            MdpError::TargetLengthMismatch {
                got: 2,
                expected: 3,
            },
            MdpError::DivergentExpectation { state: 7 },
            MdpError::NoInitialStates,
            MdpError::InvalidQuery {
                reason: "horizon on a cost objective".into(),
            },
            MdpError::Backend {
                reason: "block 3: I/O error".into(),
            },
            MdpError::Query {
                stage: "solve",
                source: Box::new(MdpError::NoInitialStates),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn query_error_exposes_source_chain_and_root() {
        let root = MdpError::TargetLengthMismatch {
            got: 2,
            expected: 3,
        };
        let wrapped = MdpError::Query {
            stage: "target",
            source: Box::new(MdpError::Query {
                stage: "solve",
                source: Box::new(root.clone()),
            }),
        };
        // std::error::Error::source walks one level at a time...
        let level1 = wrapped.source().expect("outer source");
        assert!(level1.source().is_some(), "inner Query keeps its source");
        // ...and into_root unwraps the whole chain.
        assert_eq!(wrapped.into_root(), root);
    }
}
