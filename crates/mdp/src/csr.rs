//! Compressed-sparse-row MDP engine: flat arrays plus deterministic
//! parallel value iteration.
//!
//! The nested [`ExplicitMdp`] (`Vec<Vec<Choice>>` with a `Vec<(usize,
//! f64)>` per choice) is convenient to build but hostile to sweep over:
//! every state visit chases two levels of pointers and the transition pairs
//! interleave an 8-byte index with an 8-byte probability across thousands
//! of small allocations. [`CsrMdp`] flattens the same model into five
//! contiguous arrays —
//!
//! ```text
//! choice_offsets : n+1      per-state range into the choice arrays
//! trans_offsets  : m+1      per-choice range into the transition arrays
//! costs          : m        per-choice cost
//! targets        : k        per-transition successor (u32)
//! probs          : k        per-transition probability
//! ```
//!
//! — built once after exploration, so every analysis sweep is a linear
//! walk.
//!
//! # Deterministic parallelism
//!
//! All iterative kernels are **double-buffered Jacobi** sweeps: the new
//! value of every state is computed from the previous iterate only, never
//! from values updated earlier in the same sweep. Per-state updates are
//! therefore independent, and the sweep is chunked across worker threads
//! (crossbeam scoped threads) over disjoint slices of the output buffer.
//! Because each state's update reads the same immutable previous iterate
//! and performs the same floating-point operations in the same order
//! regardless of chunking, and the convergence test reduces per-chunk
//! deltas with `f64::max` (order-independent for the finite values these
//! kernels produce), **results are bit-for-bit identical for every worker
//! count** — `workers = Some(1)` and `Some(8)` return the same bytes. The
//! property tests in `crates/mdp/tests/` pin this contract.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be forced with the `PA_MDP_WORKERS` environment variable or the
//! `workers` argument of each kernel.

use crate::{ExplicitMdp, IterOptions, MdpError, Objective};

/// Sweeps over fewer states than this stay on the calling thread: below
/// this size, thread spawn/join costs more than the sweep itself.
const PAR_MIN_STATES: usize = 4096;

/// Work counters accumulated by one quantitative solve, reported through
/// [`crate::Analysis::stats`]. The update counts are what the SCC-ordered
/// solver is designed to shrink: a global Jacobi sweep recomputes every
/// state until the slowest one converges, while the SCC-ordered path
/// touches each component only as long as *it* needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Value-iteration sweeps performed (global sweeps for the Jacobi
    /// solver, per-block sweeps for the SCC-ordered solver).
    pub sweeps: u64,
    /// Individual state-value computations performed.
    pub state_updates: u64,
    /// Strongly connected components of the condensation (0 for the
    /// Jacobi solver, which never builds one).
    pub components: u64,
    /// Components that contained a cycle and needed local iteration.
    pub nontrivial_components: u64,
}

/// Resolves an optional worker-count override: explicit argument, then the
/// `PA_MDP_WORKERS` environment variable, then available parallelism.
pub fn resolve_workers(workers: Option<usize>) -> usize {
    workers
        .or_else(|| {
            std::env::var("PA_MDP_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
}

/// A compressed-sparse-row view of an [`ExplicitMdp`].
///
/// Indices are `u32` internally (a model with 4 billion choices or
/// transitions would not fit in memory as nested vectors either);
/// construction asserts the bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMdp {
    /// `choice_offsets[s]..choice_offsets[s+1]` are state `s`'s choices.
    choice_offsets: Vec<u32>,
    /// `trans_offsets[c]..trans_offsets[c+1]` are choice `c`'s transitions.
    trans_offsets: Vec<u32>,
    /// Cost of each choice.
    costs: Vec<u32>,
    /// Successor state of each transition.
    targets: Vec<u32>,
    /// Probability of each transition.
    probs: Vec<f64>,
    /// Initial state indices.
    initial: Vec<usize>,
}

impl CsrMdp {
    /// Flattens a validated nested model. Choice and transition order are
    /// preserved exactly, so analyses on the CSR form visit successors in
    /// the same order (and produce bitwise-identical floating-point
    /// results) as the same algorithm on the nested form.
    pub fn from_explicit(mdp: &ExplicitMdp) -> CsrMdp {
        let n = mdp.num_states();
        let m = mdp.num_choices();
        let k = mdp.num_transitions();
        assert!(
            m < u32::MAX as usize && k < u32::MAX as usize,
            "model too large for u32 CSR offsets"
        );
        let mut choice_offsets = Vec::with_capacity(n + 1);
        let mut trans_offsets = Vec::with_capacity(m + 1);
        let mut costs = Vec::with_capacity(m);
        let mut targets = Vec::with_capacity(k);
        let mut probs = Vec::with_capacity(k);
        choice_offsets.push(0);
        trans_offsets.push(0);
        for s in 0..n {
            for c in mdp.choices(s) {
                costs.push(c.cost);
                for &(t, p) in &c.transitions {
                    targets.push(t as u32);
                    probs.push(p);
                }
                trans_offsets.push(targets.len() as u32);
            }
            choice_offsets.push(costs.len() as u32);
        }
        CsrMdp {
            choice_offsets,
            trans_offsets,
            costs,
            targets,
            probs,
            initial: mdp.initial_states().to_vec(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.choice_offsets.len() - 1
    }

    /// Total number of choices.
    pub fn num_choices(&self) -> usize {
        self.costs.len()
    }

    /// Total number of probabilistic transitions.
    pub fn num_transitions(&self) -> usize {
        self.targets.len()
    }

    /// The initial state indices.
    pub fn initial_states(&self) -> &[usize] {
        &self.initial
    }

    /// Heap bytes held by the flattened arrays (offsets, costs, targets,
    /// probabilities, initial states). This is the per-slot size a model
    /// cache accounts a resident CSR at when enforcing a byte budget.
    pub fn mem_bytes(&self) -> u64 {
        use std::mem::size_of;
        (self.choice_offsets.capacity() * size_of::<u32>()
            + self.trans_offsets.capacity() * size_of::<u32>()
            + self.costs.capacity() * size_of::<u32>()
            + self.targets.capacity() * size_of::<u32>()
            + self.probs.capacity() * size_of::<f64>()
            + self.initial.capacity() * size_of::<usize>()) as u64
    }

    /// The flat choice-index range of a state.
    #[inline]
    pub fn choice_range(&self, s: usize) -> std::ops::Range<usize> {
        self.choice_offsets[s] as usize..self.choice_offsets[s + 1] as usize
    }

    /// The flat transition-index range of a choice.
    #[inline]
    pub fn trans_range(&self, c: usize) -> std::ops::Range<usize> {
        self.trans_offsets[c] as usize..self.trans_offsets[c + 1] as usize
    }

    /// The cost of a flat choice index.
    #[inline]
    pub fn cost(&self, c: usize) -> u32 {
        self.costs[c]
    }

    /// The `(successor, probability)` pair of a flat transition index.
    #[inline]
    pub fn transition(&self, i: usize) -> (usize, f64) {
        (self.targets[i] as usize, self.probs[i])
    }

    /// Whether a state has no choices.
    #[inline]
    pub(crate) fn is_terminal(&self, s: usize) -> bool {
        self.choice_offsets[s] == self.choice_offsets[s + 1]
    }

    pub(crate) fn check_target(&self, target: &[bool]) -> Result<(), MdpError> {
        if target.len() != self.num_states() {
            return Err(MdpError::TargetLengthMismatch {
                got: target.len(),
                expected: self.num_states(),
            });
        }
        Ok(())
    }

    /// The expected value of choice `c` under the value vector `source`,
    /// accumulated in transition order (the floating-point operation order
    /// every engine in this crate agrees on).
    #[inline]
    pub(crate) fn choice_value(&self, c: usize, source: &[f64]) -> f64 {
        let mut val = 0.0f64;
        for i in self.trans_range(c) {
            val += self.probs[i] * source[self.targets[i] as usize];
        }
        val
    }

    /// States with **maximal** reachability probability zero (no path to
    /// the target). Backward reachability over a CSR predecessor graph
    /// built on the fly.
    pub fn prob0_max(&self, target: &[bool]) -> Result<Vec<bool>, MdpError> {
        self.check_target(target)?;
        let n = self.num_states();
        // In-degree count, prefix sum, fill: a predecessor CSR without
        // per-state vectors.
        let mut pred_off = vec![0u32; n + 1];
        for i in 0..self.num_transitions() {
            if self.probs[i] > 0.0 {
                pred_off[self.targets[i] as usize + 1] += 1;
            }
        }
        for t in 0..n {
            pred_off[t + 1] += pred_off[t];
        }
        let mut preds = vec![0u32; pred_off[n] as usize];
        let mut cursor = pred_off.clone();
        for s in 0..n {
            for c in self.choice_range(s) {
                for i in self.trans_range(c) {
                    if self.probs[i] > 0.0 {
                        let t = self.targets[i] as usize;
                        preds[cursor[t] as usize] = s as u32;
                        cursor[t] += 1;
                    }
                }
            }
        }
        let mut can_reach = target.to_vec();
        let mut stack: Vec<usize> = (0..n).filter(|&s| target[s]).collect();
        while let Some(t) = stack.pop() {
            for &s in &preds[pred_off[t] as usize..pred_off[t + 1] as usize] {
                if !can_reach[s as usize] {
                    can_reach[s as usize] = true;
                    stack.push(s as usize);
                }
            }
        }
        Ok(can_reach.iter().map(|&b| !b).collect())
    }

    /// States with **minimal** reachability probability zero: greatest
    /// fixpoint of "not target, and terminal or some choice keeps all mass
    /// in the set" (terminal states count as avoiding because the
    /// adversary may stop scheduling).
    pub fn prob0_min(&self, target: &[bool]) -> Result<Vec<bool>, MdpError> {
        self.check_target(target)?;
        let n = self.num_states();
        let mut in_x: Vec<bool> = target.iter().map(|&t| !t).collect();
        loop {
            let mut changed = false;
            for s in 0..n {
                if !in_x[s] {
                    continue;
                }
                let stays = self.is_terminal(s)
                    || self.choice_range(s).any(|c| {
                        self.trans_range(c)
                            .all(|i| self.probs[i] == 0.0 || in_x[self.targets[i] as usize])
                    });
                if !stays {
                    in_x[s] = false;
                    changed = true;
                }
            }
            if !changed {
                return Ok(in_x);
            }
        }
    }

    /// Unbounded reachability `P^opt[eventually reach target]` by
    /// qualitative precomputation plus parallel Jacobi value iteration.
    /// Semantics match an unbounded reachability [`crate::Query`];
    /// `workers` as in [`resolve_workers`].
    pub fn reach_prob(
        &self,
        target: &[bool],
        objective: Objective,
        options: IterOptions,
        workers: Option<usize>,
    ) -> Result<Vec<f64>, MdpError> {
        self.reach_prob_stats(
            target,
            objective,
            options,
            workers,
            &mut SolveStats::default(),
        )
    }

    /// [`CsrMdp::reach_prob`] with work counters accumulated into `stats`.
    pub(crate) fn reach_prob_stats(
        &self,
        target: &[bool],
        objective: Objective,
        options: IterOptions,
        workers: Option<usize>,
        stats: &mut SolveStats,
    ) -> Result<Vec<f64>, MdpError> {
        let _span = pa_telemetry::span("mdp.vi.reach_prob_seconds");
        self.check_target(target)?;
        let zero = match objective {
            Objective::MaxProb => self.prob0_max(target)?,
            Objective::MinProb => self.prob0_min(target)?,
        };
        let n = self.num_states();
        let workers = resolve_workers(workers);
        if pa_telemetry::enabled() {
            pa_telemetry::counter("mdp.vi.runs").inc();
        }
        let mut cur = vec![0.0f64; n];
        for s in 0..n {
            if target[s] {
                cur[s] = 1.0;
            }
        }
        let mut prev = cur.clone();
        for _ in 0..options.max_sweeps {
            let sweep_span = pa_telemetry::span("mdp.vi.sweep_seconds");
            let delta = jacobi_sweep(&mut cur, &prev, workers, |s, prev| {
                if target[s] || zero[s] || self.is_terminal(s) {
                    return prev[s];
                }
                let mut best = objective.start();
                for c in self.choice_range(s) {
                    let val = self.choice_value(c, prev);
                    if objective.better(val, best) {
                        best = val;
                    }
                }
                best
            });
            sweep_span.finish();
            stats.sweeps += 1;
            stats.state_updates += n as u64;
            if pa_telemetry::enabled() {
                pa_telemetry::counter("mdp.vi.sweeps").inc();
                pa_telemetry::series("mdp.vi.residual").push(delta);
            }
            std::mem::swap(&mut cur, &mut prev);
            if delta <= options.epsilon {
                break;
            }
        }
        Ok(prev)
    }

    /// One level of cost-bounded backward induction: the least fixpoint of
    /// the zero-cost subgraph given the previous level `level_prev`, as a
    /// parallel Jacobi iteration. See [`crate::cost_bounded_reach_levels`]
    /// for semantics (including the `4n + 8` sweep cap).
    ///
    /// The level's values end up in `values`; `scratch` is the second
    /// Jacobi buffer. Both are reused across calls (cleared and resized
    /// here), so a `budget`-level induction allocates two vectors total
    /// instead of one per level.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_level_into(
        &self,
        target: &[bool],
        level_prev: &[f64],
        objective: Objective,
        workers: usize,
        values: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
        stats: &mut SolveStats,
    ) {
        let n = self.num_states();
        values.clear();
        values.resize(n, 0.0);
        for s in 0..n {
            if target[s] {
                values[s] = 1.0;
            }
        }
        scratch.clear();
        scratch.extend_from_slice(values);
        let level_sweeps =
            pa_telemetry::enabled().then(|| pa_telemetry::counter("mdp.vi.level_sweeps"));
        let max_sweeps = 4 * n + 8;
        let update = |s: usize, prev: &[f64]| {
            if target[s] || self.is_terminal(s) {
                return prev[s];
            }
            let mut best = objective.start();
            for c in self.choice_range(s) {
                let source = if self.costs[c] == 1 { level_prev } else { prev };
                let val = self.choice_value(c, source);
                if objective.better(val, best) {
                    best = val;
                }
            }
            best
        };
        // Alternate write/read roles between the two buffers; after sweep
        // `k` the newest iterate is in `values` iff `k` is odd.
        let mut done = 0usize;
        for k in 0..max_sweeps {
            if let Some(c) = &level_sweeps {
                c.inc();
            }
            stats.sweeps += 1;
            stats.state_updates += n as u64;
            let delta = if k % 2 == 0 {
                jacobi_sweep(values, scratch, workers, update)
            } else {
                jacobi_sweep(scratch, values, workers, update)
            };
            done = k + 1;
            if delta <= 1e-14 {
                break;
            }
        }
        if done.is_multiple_of(2) {
            std::mem::swap(values, scratch);
        }
    }

    /// Extracts the optimal per-state choice of one budget level, given the
    /// converged level `values` and the previous level `level_prev`.
    /// Solver-independent: both the Jacobi and the SCC-ordered level solves
    /// feed their fixpoints through this.
    pub(crate) fn extract_level_decisions(
        &self,
        target: &[bool],
        level_prev: &[f64],
        values: &[f64],
        objective: Objective,
        dec: &mut Vec<Option<u32>>,
    ) {
        let n = self.num_states();
        dec.clear();
        dec.resize(n, None);
        for s in 0..n {
            if target[s] || self.is_terminal(s) {
                continue;
            }
            let mut best = objective.start();
            let mut best_i = 0u32;
            for (i, c) in self.choice_range(s).enumerate() {
                let source = if self.costs[c] == 1 {
                    level_prev
                } else {
                    values
                };
                let val = self.choice_value(c, source);
                if objective.better(val, best) {
                    best = val;
                    best_i = i as u32;
                }
            }
            dec[s] = Some(best_i);
        }
    }

    fn validate_costs(&self) -> Result<(), MdpError> {
        for s in 0..self.num_states() {
            for c in self.choice_range(s) {
                if self.costs[c] > 1 {
                    return Err(MdpError::BadDistribution {
                        state: s,
                        reason: format!(
                            "cost-bounded reachability supports costs 0 and 1, found {}",
                            self.costs[c]
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Cost-bounded reachability with a per-level callback; semantics match
    /// [`crate::cost_bounded_reach_levels`].
    pub fn cost_bounded_reach_levels(
        &self,
        target: &[bool],
        budget: u32,
        objective: Objective,
        workers: Option<usize>,
        mut on_level: impl FnMut(u32, &[f64]),
    ) -> Result<Vec<f64>, MdpError> {
        self.bounded_levels_engine(
            target,
            budget,
            objective,
            workers,
            false,
            None,
            &mut |k, v| on_level(k, v),
            &mut SolveStats::default(),
        )
    }

    /// The shared cost-bounded backward-induction loop: rotates three
    /// reused buffers (previous level, current level, Jacobi scratch)
    /// through every budget level instead of materializing one vector per
    /// level, optionally extracting the optimal cost-indexed policy along
    /// the way. `use_scc` routes each level through the SCC-ordered solver
    /// over the zero-cost condensation (computed once and reused across
    /// all levels).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn bounded_levels_engine(
        &self,
        target: &[bool],
        budget: u32,
        objective: Objective,
        workers: Option<usize>,
        use_scc: bool,
        mut policy: Option<&mut Vec<Vec<Option<u32>>>>,
        on_level: &mut dyn FnMut(u32, &[f64]),
        stats: &mut SolveStats,
    ) -> Result<Vec<f64>, MdpError> {
        self.check_target(target)?;
        self.validate_costs()?;
        let workers = resolve_workers(workers);
        let _span = pa_telemetry::span("mdp.vi.cost_bounded_seconds");
        let levels = pa_telemetry::enabled().then(|| pa_telemetry::counter("mdp.vi.levels"));
        let n = self.num_states();
        let scc = use_scc.then(|| self.zero_cost_scc());
        if let Some(scc) = &scc {
            CsrMdp::record_scc_shape(scc);
            stats.components = scc.num_components() as u64;
            stats.nontrivial_components = scc.num_nontrivial() as u64;
        }
        let mut level_prev = vec![0.0f64; n];
        let mut cur: Vec<f64> = Vec::new();
        let mut scratch: Vec<f64> = Vec::new();
        if pa_telemetry::enabled() {
            // High-water value-buffer footprint of the whole induction:
            // three reused f64 vectors, independent of the budget.
            pa_telemetry::gauge("mdp.vi.level_buffer_bytes")
                .set_max((3 * n * std::mem::size_of::<f64>()) as i64);
        }
        for k in 0..=budget {
            match &scc {
                Some(scc) => {
                    self.solve_level_scc(scc, target, &level_prev, objective, &mut cur, stats)
                }
                None => self.solve_level_into(
                    target,
                    &level_prev,
                    objective,
                    workers,
                    &mut cur,
                    &mut scratch,
                    stats,
                ),
            }
            if let Some(policy) = policy.as_deref_mut() {
                let mut dec = Vec::new();
                self.extract_level_decisions(target, &level_prev, &cur, objective, &mut dec);
                policy.push(dec);
            }
            on_level(k, &cur);
            std::mem::swap(&mut level_prev, &mut cur);
        }
        if let Some(c) = levels {
            c.add(u64::from(budget) + 1);
        }
        // The final level ended up in `level_prev` after the last swap.
        Ok(level_prev)
    }

    /// Qualitative almost-sure reachability: the set of states whose
    /// `MinProb` (resp. `MaxProb`) reachability value is *exactly* 1,
    /// decided on the transition graph alone.
    ///
    /// This is the standard nested fixpoint
    /// `νZ. μY. { s | s ∈ T ∨ Q a ∈ A(s): succ(a) ⊆ Z ∧ succ(a) ∩ Y ≠ ∅ }`
    /// with `Q = ∀` for [`Objective::MinProb`] (every adversary reaches the
    /// target almost surely) and `Q = ∃` for [`Objective::MaxProb`] (some
    /// policy does). Terminal non-target states never qualify: they stay
    /// put forever.
    ///
    /// The expected-cost solvers use this instead of thresholding a
    /// numerically iterated reachability value: on large models value
    /// iteration can stop with true-1 states still measurably below 1, and
    /// any cutoff then misclassifies proper states as divergent.
    pub fn prob1(&self, target: &[bool], objective: Objective) -> Result<Vec<bool>, MdpError> {
        self.check_target(target)?;
        let n = self.num_states();
        // A choice "stays" in Z when every positive-probability successor is
        // in Z, and "progresses" when some such successor is already in Y.
        let choice_ok = |c: usize, z: &[bool], y: &[bool]| -> bool {
            let mut progresses = false;
            for i in self.trans_range(c) {
                if self.probs[i] == 0.0 {
                    continue;
                }
                let t = self.targets[i] as usize;
                if !z[t] {
                    return false;
                }
                progresses |= y[t];
            }
            progresses
        };
        let mut z = vec![true; n];
        loop {
            // Inner least fixpoint: states that, while confined to Z, reach
            // a target state with positive probability.
            let mut y = target.to_vec();
            loop {
                let mut changed = false;
                for s in 0..n {
                    if y[s] || !z[s] || self.is_terminal(s) {
                        continue;
                    }
                    let ok = match objective {
                        Objective::MinProb => self.choice_range(s).all(|c| choice_ok(c, &z, &y)),
                        Objective::MaxProb => self.choice_range(s).any(|c| choice_ok(c, &z, &y)),
                    };
                    if ok {
                        y[s] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if y == z {
                return Ok(y);
            }
            z = y;
        }
    }

    /// Worst-case expected accumulated cost; semantics match a `MaxCost`
    /// [`crate::Query`].
    pub fn max_expected_cost(
        &self,
        target: &[bool],
        options: IterOptions,
        workers: Option<usize>,
    ) -> Result<Vec<f64>, MdpError> {
        self.max_expected_cost_solver(target, options, workers, false, &mut SolveStats::default())
    }

    /// [`CsrMdp::max_expected_cost`] with solver selection and work
    /// counters: `use_scc` routes the expected-cost iteration through the
    /// SCC-ordered solver. The properness mask comes from the graph-based
    /// [`CsrMdp::prob1`], so it is identical under either solver.
    pub(crate) fn max_expected_cost_solver(
        &self,
        target: &[bool],
        options: IterOptions,
        workers: Option<usize>,
        use_scc: bool,
        stats: &mut SolveStats,
    ) -> Result<Vec<f64>, MdpError> {
        self.check_target(target)?;
        let proper = self.prob1(target, Objective::MinProb)?;
        if use_scc {
            Ok(self.expected_cost_scc(target, &proper, Objective::MaxProb, options, stats))
        } else {
            self.expected_cost_iterate(target, &proper, Objective::MaxProb, options, workers, stats)
        }
    }

    /// Best-case expected accumulated cost; semantics match
    /// [`crate::min_expected_cost`].
    pub fn min_expected_cost(
        &self,
        target: &[bool],
        options: IterOptions,
        workers: Option<usize>,
    ) -> Result<Vec<f64>, MdpError> {
        self.min_expected_cost_solver(target, options, workers, false, &mut SolveStats::default())
    }

    /// [`CsrMdp::min_expected_cost`] with solver selection and work
    /// counters, as for [`CsrMdp::max_expected_cost_solver`].
    pub(crate) fn min_expected_cost_solver(
        &self,
        target: &[bool],
        options: IterOptions,
        workers: Option<usize>,
        use_scc: bool,
        stats: &mut SolveStats,
    ) -> Result<Vec<f64>, MdpError> {
        self.check_target(target)?;
        if self.has_zero_cost_cycle(target)? {
            return Err(MdpError::DivergentExpectation { state: 0 });
        }
        let feasible = self.prob1(target, Objective::MaxProb)?;
        if use_scc {
            Ok(self.expected_cost_scc(target, &feasible, Objective::MinProb, options, stats))
        } else {
            self.expected_cost_iterate(
                target,
                &feasible,
                Objective::MinProb,
                options,
                workers,
                stats,
            )
        }
    }

    /// Shared expected-cost Jacobi iteration. `live[s]` marks states whose
    /// expectation is finite (proper/feasible); others end at `f64::INFINITY`.
    /// A choice with a non-live, non-target successor is excluded (a proper
    /// policy never moves there; a maximizing adversary reaching one would
    /// contradict `live[s]`).
    fn expected_cost_iterate(
        &self,
        target: &[bool],
        live: &[bool],
        objective: Objective,
        options: IterOptions,
        workers: Option<usize>,
        stats: &mut SolveStats,
    ) -> Result<Vec<f64>, MdpError> {
        let n = self.num_states();
        let workers = resolve_workers(workers);
        let ec_sweeps = pa_telemetry::enabled().then(|| pa_telemetry::counter("mdp.vi.ec_sweeps"));
        let mut cur = vec![0.0f64; n];
        let mut prev = cur.clone();
        for _ in 0..options.max_sweeps {
            if let Some(c) = &ec_sweeps {
                c.inc();
            }
            stats.sweeps += 1;
            stats.state_updates += n as u64;
            let delta = jacobi_sweep(&mut cur, &prev, workers, |s, prev| {
                if target[s] || !live[s] || self.is_terminal(s) {
                    return prev[s];
                }
                let mut best = objective.start();
                for c in self.choice_range(s) {
                    let mut val = self.costs[c] as f64;
                    let mut ok = true;
                    for i in self.trans_range(c) {
                        let p = self.probs[i];
                        if p == 0.0 {
                            continue;
                        }
                        let t = self.targets[i] as usize;
                        if !target[t] && !live[t] {
                            ok = false;
                            break;
                        }
                        val += p * prev[t];
                    }
                    if ok && objective.better(val, best) {
                        best = val;
                    }
                }
                if best.is_finite() {
                    best
                } else {
                    prev[s]
                }
            });
            std::mem::swap(&mut cur, &mut prev);
            if delta <= options.epsilon {
                break;
            }
        }
        let mut v = prev;
        for s in 0..n {
            if !target[s] && !live[s] {
                v[s] = f64::INFINITY;
            }
        }
        Ok(v)
    }

    /// Detects a cycle in the zero-cost off-target transition subgraph.
    /// Semantics match [`crate::has_zero_cost_cycle`]; the CSR walk keeps a
    /// `(choice, transition)` cursor per stack frame instead of
    /// re-collecting successor vectors on every visit.
    pub fn has_zero_cost_cycle(&self, target: &[bool]) -> Result<bool, MdpError> {
        self.check_target(target)?;
        let n = self.num_states();
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; n];
        for root in 0..n {
            if colour[root] != Colour::White || target[root] {
                continue;
            }
            // Stack frames: (state, flat choice cursor, flat trans cursor).
            let mut stack: Vec<(usize, usize, usize)> = Vec::new();
            let start = self.choice_range(root).start;
            stack.push((root, start, usize::MAX));
            colour[root] = Colour::Grey;
            while let Some(&mut (s, ref mut c, ref mut i)) = stack.last_mut() {
                // Advance the cursor to the next zero-cost, positive-
                // probability, off-target successor of `s`.
                let mut next: Option<usize> = None;
                let choice_end = self.choice_range(s).end;
                'scan: while *c < choice_end {
                    if self.costs[*c] != 0 {
                        *c += 1;
                        *i = usize::MAX;
                        continue;
                    }
                    let range = self.trans_range(*c);
                    let mut ti = if *i == usize::MAX {
                        range.start
                    } else {
                        *i + 1
                    };
                    while ti < range.end {
                        let t = self.targets[ti] as usize;
                        if self.probs[ti] > 0.0 && !target[t] {
                            *i = ti;
                            next = Some(t);
                            break 'scan;
                        }
                        ti += 1;
                    }
                    *c += 1;
                    *i = usize::MAX;
                }
                match next {
                    Some(t) => match colour[t] {
                        Colour::Grey => return Ok(true),
                        Colour::White => {
                            colour[t] = Colour::Grey;
                            let start = self.choice_range(t).start;
                            stack.push((t, start, usize::MAX));
                        }
                        Colour::Black => {}
                    },
                    None => {
                        colour[s] = Colour::Black;
                        stack.pop();
                    }
                }
            }
        }
        Ok(false)
    }
}

impl From<&ExplicitMdp> for CsrMdp {
    fn from(mdp: &ExplicitMdp) -> CsrMdp {
        CsrMdp::from_explicit(mdp)
    }
}

/// An in-core model is a [`CsrSource`] with a single block spanning every
/// state: its offset arrays already start at 0, so the full slices satisfy
/// the block-relative contract as-is, and the block-streamed engines
/// execute the exact floating-point operation sequence of the in-core
/// kernels.
impl crate::source::CsrSource for CsrMdp {
    fn num_states(&self) -> usize {
        CsrMdp::num_states(self)
    }

    fn num_choices(&self) -> u64 {
        CsrMdp::num_choices(self) as u64
    }

    fn num_transitions(&self) -> u64 {
        CsrMdp::num_transitions(self) as u64
    }

    fn initial_states(&self) -> &[usize] {
        CsrMdp::initial_states(self)
    }

    fn num_blocks(&self) -> usize {
        1
    }

    fn block_states(&self, block: usize) -> std::ops::Range<usize> {
        assert_eq!(block, 0, "CsrMdp has a single block");
        0..CsrMdp::num_states(self)
    }

    fn with_rows(
        &self,
        block: usize,
        f: &mut dyn FnMut(crate::source::CsrRows<'_>),
    ) -> Result<(), MdpError> {
        assert_eq!(block, 0, "CsrMdp has a single block");
        f(crate::source::CsrRows {
            first_state: 0,
            choice_offsets: &self.choice_offsets,
            trans_offsets: &self.trans_offsets,
            costs: &self.costs,
            targets: &self.targets,
            probs: &self.probs,
        });
        Ok(())
    }
}

/// One double-buffered Jacobi sweep over all states, chunked across
/// `workers` scoped threads.
///
/// `update(s, prev)` computes state `s`'s next value from the previous
/// iterate only; the sweep writes it to `next[s]` and returns the maximal
/// `|next[s] - prev[s]|`. Chunks are disjoint slices of `next`, so no
/// synchronization is needed, and the result is bitwise independent of the
/// worker count (see the module docs).
fn jacobi_sweep<F>(next: &mut [f64], prev: &[f64], workers: usize, update: F) -> f64
where
    F: Fn(usize, &[f64]) -> f64 + Sync,
{
    let n = next.len();
    if workers <= 1 || n < PAR_MIN_STATES {
        let mut delta = 0.0f64;
        for (s, slot) in next.iter_mut().enumerate() {
            let v = update(s, prev);
            let d = (v - prev[s]).abs();
            if d > delta {
                delta = d;
            }
            *slot = v;
        }
        return delta;
    }
    let chunk = n.div_ceil(workers);
    let update = &update;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = next
            .chunks_mut(chunk)
            .enumerate()
            .map(|(w, slice)| {
                scope.spawn(move |_| {
                    let base = w * chunk;
                    let mut delta = 0.0f64;
                    for (off, slot) in slice.iter_mut().enumerate() {
                        let s = base + off;
                        let v = update(s, prev);
                        let d = (v - prev[s]).abs();
                        if d > delta {
                            delta = d;
                        }
                        *slot = v;
                    }
                    delta
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("value-iteration worker panicked"))
            .fold(0.0f64, f64::max)
    })
    .expect("value-iteration scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Choice;

    fn escape() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![
                vec![Choice::to(1, 1), Choice::dist(1, vec![(2, 0.5), (0, 0.5)])],
                vec![Choice::to(1, 0)],
                vec![],
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn csr_layout_matches_nested_counts() {
        let m = escape();
        let csr = CsrMdp::from_explicit(&m);
        assert_eq!(csr.num_states(), m.num_states());
        assert_eq!(csr.num_choices(), m.num_choices());
        assert_eq!(csr.num_transitions(), m.num_transitions());
        assert_eq!(csr.initial_states(), m.initial_states());
        // Spot-check flattening order: state 0's second choice.
        let c = csr.choice_range(0).nth(1).unwrap();
        assert_eq!(csr.cost(c), 1);
        let r = csr.trans_range(c);
        assert_eq!(csr.transition(r.start), (2, 0.5));
        assert_eq!(csr.transition(r.start + 1), (0, 0.5));
    }

    #[test]
    fn reach_prob_matches_known_values() {
        let csr = CsrMdp::from_explicit(&escape());
        let target = [false, false, true];
        let opts = IterOptions::default();
        let vmax = csr
            .reach_prob(&target, Objective::MaxProb, opts, Some(1))
            .unwrap();
        assert!((vmax[0] - 1.0).abs() < 1e-9);
        let vmin = csr
            .reach_prob(&target, Objective::MinProb, opts, Some(1))
            .unwrap();
        assert_eq!(vmin[0], 0.0);
    }

    #[test]
    fn worker_count_does_not_change_bits() {
        // Small model, but force the parallel path decision logic: with
        // n < PAR_MIN_STATES the sweep is serial either way, so exercise
        // the contract on a chain long enough to split.
        let n = PAR_MIN_STATES + 17;
        let mut choices = Vec::with_capacity(n);
        for s in 0..n - 1 {
            choices.push(vec![Choice::dist(
                1,
                vec![(s + 1, 0.7), (s, 0.25), (0, 0.05)],
            )]);
        }
        choices.push(vec![]);
        let m = ExplicitMdp::new(choices, vec![0]).unwrap();
        let csr = CsrMdp::from_explicit(&m);
        let target: Vec<bool> = (0..n).map(|s| s == n - 1).collect();
        let opts = IterOptions {
            epsilon: 1e-10,
            max_sweeps: 50_000,
        };
        let serial = csr
            .reach_prob(&target, Objective::MinProb, opts, Some(1))
            .unwrap();
        let parallel = csr
            .reach_prob(&target, Objective::MinProb, opts, Some(3))
            .unwrap();
        assert_eq!(serial, parallel, "Jacobi sweeps must be chunk-invariant");
    }

    #[test]
    fn zero_cost_cycle_walker_matches_semantics() {
        let cyclic = ExplicitMdp::new(
            vec![
                vec![Choice::to(0, 1)],
                vec![Choice::to(0, 0), Choice::to(1, 2)],
                vec![],
            ],
            vec![0],
        )
        .unwrap();
        let csr = CsrMdp::from_explicit(&cyclic);
        assert!(csr.has_zero_cost_cycle(&[false, false, true]).unwrap());
        assert!(!csr.has_zero_cost_cycle(&[true, false, false]).unwrap());
    }

    #[test]
    fn resolve_workers_prefers_explicit_argument() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert_eq!(resolve_workers(Some(0)), 1);
        assert!(resolve_workers(None) >= 1);
    }
}
