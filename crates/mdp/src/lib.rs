//! Explicit-state MDP model-checking substrate for the `timebounds`
//! workspace.
//!
//! The paper proves statements of the form `U —t→_p U'` by hand; this crate
//! verifies them mechanically, PRISM-style, by quantifying over *all*
//! adversaries of a schema at once:
//!
//! * [`explore`] — build an [`ExplicitMdp`] from any implicit
//!   [`pa_core::Automaton`], assigning each transition a time cost
//!   (0 = scheduling step inside a time unit, 1 = time-unit boundary).
//! * [`cost_bounded_reach`] — backward induction for
//!   `P^min/max[reach target within time t]`, the exact semantics of
//!   Definition 3.1 under the round-based timed model.
//! * [`reach_prob`] — unbounded reachability with qualitative
//!   precomputation ([`prob0_max`], [`prob0_min`]).
//! * [`max_expected_cost`] — worst-case expected time to the target
//!   (Section 6.2's quantity).
//! * [`check_invariant`] — exhaustive invariant checking with shortest
//!   witness paths (Lemma 6.1).
//! * [`cost_bounded_reach_with_policy`] — extracts the optimal adversary as
//!   a cost-indexed policy, so the worst case can be replayed and inspected.
//!
//! Since 0.2.0 these analyses share one entry point: [`Query`], a builder
//! unifying objective ([`QueryObjective`]), target (mask, index list, or
//! predicate), optional time horizon, solver, tolerance, worker count, and
//! policy extraction behind a single [`Query::run`] returning a typed
//! [`Analysis`]. The free functions above remain as thin deprecated
//! wrappers over it.
//!
//! All quantitative analyses run on a compressed-sparse-row engine
//! ([`CsrMdp`]): the nested model is flattened once into contiguous arrays
//! and swept with double-buffered Jacobi value iteration, parallelized
//! across disjoint state chunks with results that are bit-for-bit
//! identical for every worker count. Alternatively,
//! [`Solver::SccOrdered`] condenses the choice graph into strongly
//! connected components first ([`SccDecomposition`]) and solves them in
//! reverse topological order — far fewer state updates on the layered
//! round models this workspace targets (see the `query` module docs for
//! selection guidance). [`par_explore`] parallelizes state-space
//! exploration the same way (level-synchronized, deterministic merge). The
//! [`mod@reference`] module retains nested-model oracles — both a Jacobi
//! twin (bitwise comparison) and the original Gauss–Seidel engine
//! (tolerance comparison, benchmark baseline) — used by the property
//! tests.
//!
//! # Example
//!
//! ```
//! use pa_core::TableAutomaton;
//! use pa_mdp::{explore, QueryObjective};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A process that wins a coin flip once per time unit.
//! let m = TableAutomaton::builder()
//!     .start("try")
//!     .step("try", "flip", [("won", 0.5), ("try", 0.5)])?
//!     .build()?;
//! let e = explore(&m, |_, _| 1, 10_000)?;
//! let analysis = e
//!     .query_where(|s| *s == "won")
//!     .objective(QueryObjective::MinProb)
//!     .horizon(3)
//!     .run()?;
//! let start = e.mdp.initial_states()[0];
//! assert!((analysis.values[start] - 0.875).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod error;
mod expected;
mod explore;
pub mod fxhash;
mod horizon;
mod model;
pub mod query;
pub mod reference;
mod scc;
mod value_iter;

pub use csr::{resolve_workers, CsrMdp, SolveStats};
pub use error::MdpError;
pub use expected::{has_zero_cost_cycle, min_expected_cost, ExpectedCost};
pub use explore::{
    check_invariant, explore, par_explore, par_explore_workers, Explored, InvariantResult,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use horizon::{cost_bounded_reach_levels, BoundedPolicy, Objective};
pub use model::{Choice, ExplicitMdp};
pub use query::{
    default_solver, set_default_solver, Analysis, IntoTarget, Query, QueryObjective, Solver,
};
pub use scc::SccDecomposition;
pub use value_iter::{prob0_max, prob0_min, IterOptions};

// The deprecated pre-`Query` entry points keep their original paths.
#[allow(deprecated)]
pub use expected::max_expected_cost;
#[allow(deprecated)]
pub use horizon::{cost_bounded_reach, cost_bounded_reach_with_policy};
#[allow(deprecated)]
pub use value_iter::reach_prob;
