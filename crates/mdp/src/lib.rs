//! Explicit-state MDP model-checking substrate for the `timebounds`
//! workspace.
//!
//! The paper proves statements of the form `U —t→_p U'` by hand; this crate
//! verifies them mechanically, PRISM-style, by quantifying over *all*
//! adversaries of a schema at once:
//!
//! * [`Explore`] — build an [`ExplicitMdp`] from any implicit
//!   [`pa_core::Automaton`], assigning each transition a time cost
//!   (0 = scheduling step inside a time unit, 1 = time-unit boundary).
//!   The builder selects serial or parallel execution, an optional
//!   [`Symmetry`] (quotient construction, e.g. [`RingRotation`]), and the
//!   state representation ([`BoxedSpace`] or bit-packed [`PackedSpace`]).
//! * [`Query`] — the single analysis entry point: a builder unifying
//!   objective ([`QueryObjective`]: bounded/unbounded reachability per
//!   Definition 3.1, worst/best-case expected time per Section 6.2),
//!   target (mask, index list, or predicate), optional time horizon,
//!   solver, tolerance, worker count, and policy extraction behind a
//!   single [`Query::run`] returning a typed [`Analysis`].
//! * [`check_invariant`] — exhaustive invariant checking with shortest
//!   witness paths (Lemma 6.1).
//! * [`tag_choices`] — annotate explored choices (e.g. fault-injected
//!   crash self-loops) so absorbing structure can be audited before
//!   solving ([`tagged_absorbing_violations`]).
//!
//! The pre-`Query` free functions (`cost_bounded_reach`, `reach_prob`,
//! `max_expected_cost`, `cost_bounded_reach_with_policy`) were removed
//! after their deprecation cycle; every analysis now goes through
//! [`Query`].
//!
//! All quantitative analyses run on a compressed-sparse-row engine
//! ([`CsrMdp`]): the nested model is flattened once into contiguous arrays
//! and swept with double-buffered Jacobi value iteration, parallelized
//! across disjoint state chunks with results that are bit-for-bit
//! identical for every worker count. Alternatively,
//! [`Solver::SccOrdered`] condenses the choice graph into strongly
//! connected components first ([`SccDecomposition`]) and solves them in
//! reverse topological order — far fewer state updates on the layered
//! round models this workspace targets (see the `query` module docs for
//! selection guidance). [`Explore::workers`] parallelizes state-space
//! exploration the same way (level-synchronized, deterministic merge). The
//! [`mod@reference`] module retains nested-model oracles — both a Jacobi
//! twin (bitwise comparison) and the original Gauss–Seidel engine
//! (tolerance comparison, benchmark baseline) — used by the property
//! tests.
//!
//! # Example
//!
//! ```
//! use pa_core::TableAutomaton;
//! use pa_mdp::{Explore, QueryObjective};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A process that wins a coin flip once per time unit.
//! let m = TableAutomaton::builder()
//!     .start("try")
//!     .step("try", "flip", [("won", 0.5), ("try", 0.5)])?
//!     .build()?;
//! let e = Explore::new(&m).limit(10_000).run()?;
//! let analysis = e
//!     .query_where(|s| *s == "won")
//!     .objective(QueryObjective::MinProb)
//!     .horizon(3)
//!     .run()?;
//! let start = e.mdp.initial_states()[0];
//! assert!((analysis.values[start] - 0.875).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod error;
mod expected;
mod explore;
pub mod fxhash;
mod horizon;
mod model;
pub mod query;
pub mod reference;
mod scc;
pub mod source;
pub mod space;
pub mod symmetry;
mod tag;
mod value_iter;

pub use csr::{resolve_workers, CsrMdp, SolveStats};
pub use error::MdpError;
pub use expected::{has_zero_cost_cycle, min_expected_cost, ExpectedCost};
pub use explore::{check_invariant, Explore, Explored, InvariantResult, RowSink, StreamSummary};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use horizon::{cost_bounded_reach_levels, BoundedPolicy, Objective};
pub use model::{Choice, ExplicitMdp};
pub use query::{
    default_solver, set_default_solver, Analysis, IntoTarget, Query, QueryObjective, Solver,
};
pub use scc::SccDecomposition;
pub use source::{csr_digest, CsrRows, CsrSource};
pub use space::{BoxedSpace, PackedSpace, StateCodec, StateSpace};
pub use symmetry::{RingRotation, RingState, Symmetry};
pub use tag::{tag_choices, tagged_absorbing_violations, ChoiceTags, TAG_NONE};
pub use value_iter::{prob0_max, prob0_min, prob1, IterOptions};
