//! Reference engines over the nested [`ExplicitMdp`] representation, kept
//! as differential-testing oracles and benchmark baselines for the CSR
//! engine in [`crate::CsrMdp`].
//!
//! Two families live here:
//!
//! * `*_jacobi` — double-buffered Jacobi sweeps over the nested
//!   representation, performing the **same floating-point operations in
//!   the same order** as the CSR kernels. Property tests assert their
//!   results are bit-for-bit identical to the CSR engine (any worker
//!   count), which pins both the flattening and the parallel chunking.
//! * `*_gauss_seidel` — the original in-place Gauss–Seidel sweeps this
//!   crate shipped with before the CSR engine. Gauss–Seidel reads values
//!   updated earlier in the same sweep, so its iterates differ from
//!   Jacobi's and it cannot be parallelized deterministically; both
//!   converge to the same fixpoint, which property tests check within
//!   tolerance. These also serve as the before/after baseline for the
//!   benchmark numbers in `BENCH_mdp.json`.

use crate::{ExplicitMdp, IterOptions, MdpError, Objective};

/// Nested-representation Jacobi unbounded reachability: the bitwise oracle
/// for [`crate::CsrMdp::reach_prob`].
pub fn reach_prob_jacobi(
    mdp: &ExplicitMdp,
    target: &[bool],
    objective: Objective,
    options: IterOptions,
) -> Result<Vec<f64>, MdpError> {
    mdp.check_target(target)?;
    let n = mdp.num_states();
    let zero = match objective {
        Objective::MaxProb => crate::prob0_max(mdp, target)?,
        Objective::MinProb => crate::prob0_min(mdp, target)?,
    };
    let mut cur = vec![0.0f64; n];
    for s in 0..n {
        if target[s] {
            cur[s] = 1.0;
        }
    }
    let mut prev = cur.clone();
    for _ in 0..options.max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            let v = if target[s] || zero[s] || mdp.choices(s).is_empty() {
                prev[s]
            } else {
                let mut best = objective.start();
                for c in mdp.choices(s) {
                    let mut val = 0.0f64;
                    for &(t, p) in &c.transitions {
                        val += p * prev[t];
                    }
                    if objective.better(val, best) {
                        best = val;
                    }
                }
                best
            };
            let d = (v - prev[s]).abs();
            if d > delta {
                delta = d;
            }
            cur[s] = v;
        }
        std::mem::swap(&mut cur, &mut prev);
        if delta <= options.epsilon {
            break;
        }
    }
    Ok(prev)
}

/// Nested-representation Jacobi level solver shared by the bounded-
/// reachability oracle.
fn solve_level_jacobi(
    mdp: &ExplicitMdp,
    target: &[bool],
    level_prev: &[f64],
    objective: Objective,
) -> Vec<f64> {
    let n = mdp.num_states();
    let mut cur = vec![0.0f64; n];
    for s in 0..n {
        if target[s] {
            cur[s] = 1.0;
        }
    }
    let mut prev = cur.clone();
    let max_sweeps = 4 * n + 8;
    for _ in 0..max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            let v = if target[s] || mdp.choices(s).is_empty() {
                prev[s]
            } else {
                let mut best = objective.start();
                for c in mdp.choices(s) {
                    let source: &[f64] = if c.cost == 1 { level_prev } else { &prev };
                    let mut val = 0.0f64;
                    for &(t, p) in &c.transitions {
                        val += p * source[t];
                    }
                    if objective.better(val, best) {
                        best = val;
                    }
                }
                best
            };
            let d = (v - prev[s]).abs();
            if d > delta {
                delta = d;
            }
            cur[s] = v;
        }
        std::mem::swap(&mut cur, &mut prev);
        if delta <= 1e-14 {
            break;
        }
    }
    prev
}

/// Nested-representation Jacobi cost-bounded reachability: the bitwise
/// oracle for horizon queries (`Query` with a Jacobi solver).
pub fn cost_bounded_reach_jacobi(
    mdp: &ExplicitMdp,
    target: &[bool],
    budget: u32,
    objective: Objective,
) -> Result<Vec<f64>, MdpError> {
    mdp.check_target(target)?;
    for s in 0..mdp.num_states() {
        for c in mdp.choices(s) {
            if c.cost > 1 {
                return Err(MdpError::BadDistribution {
                    state: s,
                    reason: format!(
                        "cost-bounded reachability supports costs 0 and 1, found {}",
                        c.cost
                    ),
                });
            }
        }
    }
    let zeros = vec![0.0; mdp.num_states()];
    let mut cur = solve_level_jacobi(mdp, target, &zeros, objective);
    for _ in 1..=budget {
        cur = solve_level_jacobi(mdp, target, &cur, objective);
    }
    Ok(cur)
}

/// Nested-representation Jacobi expected cost: the bitwise oracle for
/// `MaxCost` queries / [`crate::min_expected_cost`] values.
/// `live` is the proper/feasible mask (see the CSR engine); pass the same
/// mask the engine computes.
fn expected_cost_jacobi(
    mdp: &ExplicitMdp,
    target: &[bool],
    live: &[bool],
    objective: Objective,
    options: IterOptions,
) -> Vec<f64> {
    let n = mdp.num_states();
    let mut cur = vec![0.0f64; n];
    let mut prev = cur.clone();
    for _ in 0..options.max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            let v = if target[s] || !live[s] || mdp.choices(s).is_empty() {
                prev[s]
            } else {
                let mut best = objective.start();
                for c in mdp.choices(s) {
                    let mut val = c.cost as f64;
                    let mut ok = true;
                    for &(t, p) in &c.transitions {
                        if p == 0.0 {
                            continue;
                        }
                        if !target[t] && !live[t] {
                            ok = false;
                            break;
                        }
                        val += p * prev[t];
                    }
                    if ok && objective.better(val, best) {
                        best = val;
                    }
                }
                if best.is_finite() {
                    best
                } else {
                    prev[s]
                }
            };
            let d = (v - prev[s]).abs();
            if d > delta {
                delta = d;
            }
            cur[s] = v;
        }
        std::mem::swap(&mut cur, &mut prev);
        if delta <= options.epsilon {
            break;
        }
    }
    prev
}

/// Nested Jacobi worst-case expected cost (bitwise oracle for `MaxCost`
/// queries under a Jacobi solver).
pub fn max_expected_cost_jacobi(
    mdp: &ExplicitMdp,
    target: &[bool],
    options: IterOptions,
) -> Result<Vec<f64>, MdpError> {
    mdp.check_target(target)?;
    let proper = crate::prob1(mdp, target, Objective::MinProb)?;
    let mut v = expected_cost_jacobi(mdp, target, &proper, Objective::MaxProb, options);
    for s in 0..mdp.num_states() {
        if !target[s] && !proper[s] {
            v[s] = f64::INFINITY;
        }
    }
    Ok(v)
}

/// Nested Jacobi best-case expected cost (bitwise oracle for
/// [`crate::min_expected_cost`]).
pub fn min_expected_cost_jacobi(
    mdp: &ExplicitMdp,
    target: &[bool],
    options: IterOptions,
) -> Result<Vec<f64>, MdpError> {
    mdp.check_target(target)?;
    if crate::has_zero_cost_cycle(mdp, target)? {
        return Err(MdpError::DivergentExpectation { state: 0 });
    }
    let feasible = crate::prob1(mdp, target, Objective::MaxProb)?;
    let mut v = expected_cost_jacobi(mdp, target, &feasible, Objective::MinProb, options);
    for s in 0..mdp.num_states() {
        if !target[s] && !feasible[s] {
            v[s] = f64::INFINITY;
        }
    }
    Ok(v)
}

/// The pre-CSR in-place Gauss–Seidel unbounded reachability, unchanged
/// from the original implementation. Converges to the same fixpoint as
/// [`crate::CsrMdp::reach_prob`] (tolerance-compared in property tests);
/// serves as the benchmark baseline.
pub fn reach_prob_gauss_seidel(
    mdp: &ExplicitMdp,
    target: &[bool],
    objective: Objective,
    options: IterOptions,
) -> Result<Vec<f64>, MdpError> {
    mdp.check_target(target)?;
    let n = mdp.num_states();
    let zero = match objective {
        Objective::MaxProb => crate::prob0_max(mdp, target)?,
        Objective::MinProb => crate::prob0_min(mdp, target)?,
    };
    let mut v = vec![0.0f64; n];
    for s in 0..n {
        if target[s] {
            v[s] = 1.0;
        }
    }
    for _ in 0..options.max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            if target[s] || zero[s] || mdp.choices(s).is_empty() {
                continue;
            }
            let mut best = match objective {
                Objective::MinProb => f64::INFINITY,
                Objective::MaxProb => f64::NEG_INFINITY,
            };
            for c in mdp.choices(s) {
                let val: f64 = c.transitions.iter().map(|&(t, p)| p * v[t]).sum();
                best = match objective {
                    Objective::MinProb => best.min(val),
                    Objective::MaxProb => best.max(val),
                };
            }
            let d = (best - v[s]).abs();
            if d > delta {
                delta = d;
            }
            v[s] = best;
        }
        if delta <= options.epsilon {
            break;
        }
    }
    Ok(v)
}

/// The pre-CSR Gauss–Seidel level solver, unchanged from the original
/// implementation.
fn solve_level_gauss_seidel(
    mdp: &ExplicitMdp,
    target: &[bool],
    prev: &[f64],
    objective: Objective,
) -> Vec<f64> {
    let n = mdp.num_states();
    let mut cur = vec![0.0f64; n];
    for s in 0..n {
        if target[s] {
            cur[s] = 1.0;
        }
    }
    let max_sweeps = 4 * n + 8;
    for _ in 0..max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            if target[s] || mdp.choices(s).is_empty() {
                continue;
            }
            let mut best = objective.start();
            for c in mdp.choices(s) {
                let source: &[f64] = if c.cost == 1 { prev } else { &cur };
                let v: f64 = c.transitions.iter().map(|&(t, p)| p * source[t]).sum();
                if objective.better(v, best) {
                    best = v;
                }
            }
            let d = (best - cur[s]).abs();
            if d > delta {
                delta = d;
            }
            cur[s] = best;
        }
        if delta <= 1e-14 {
            break;
        }
    }
    cur
}

/// The pre-CSR Gauss–Seidel cost-bounded reachability, unchanged from the
/// original implementation (benchmark baseline; tolerance-compared oracle).
pub fn cost_bounded_reach_gauss_seidel(
    mdp: &ExplicitMdp,
    target: &[bool],
    budget: u32,
    objective: Objective,
) -> Result<Vec<f64>, MdpError> {
    mdp.check_target(target)?;
    for s in 0..mdp.num_states() {
        for c in mdp.choices(s) {
            if c.cost > 1 {
                return Err(MdpError::BadDistribution {
                    state: s,
                    reason: format!(
                        "cost-bounded reachability supports costs 0 and 1, found {}",
                        c.cost
                    ),
                });
            }
        }
    }
    let zeros = vec![0.0; mdp.num_states()];
    let mut cur = solve_level_gauss_seidel(mdp, target, &zeros, objective);
    for _ in 1..=budget {
        cur = solve_level_gauss_seidel(mdp, target, &cur, objective);
    }
    Ok(cur)
}

/// The pre-CSR Gauss–Seidel worst-case expected cost, unchanged from the
/// original implementation.
pub fn max_expected_cost_gauss_seidel(
    mdp: &ExplicitMdp,
    target: &[bool],
    options: IterOptions,
) -> Result<Vec<f64>, MdpError> {
    mdp.check_target(target)?;
    let n = mdp.num_states();
    let proper = crate::prob1(mdp, target, Objective::MinProb)?;

    let mut v = vec![0.0f64; n];
    for _ in 0..options.max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            if target[s] || !proper[s] || mdp.choices(s).is_empty() {
                continue;
            }
            let mut best = f64::NEG_INFINITY;
            for c in mdp.choices(s) {
                let mut val = c.cost as f64;
                let mut ok = true;
                for &(t, p) in &c.transitions {
                    if p == 0.0 {
                        continue;
                    }
                    if !target[t] && !proper[t] {
                        ok = false;
                        break;
                    }
                    val += p * v[t];
                }
                if ok && val > best {
                    best = val;
                }
            }
            if best.is_finite() {
                let d = (best - v[s]).abs();
                if d > delta {
                    delta = d;
                }
                v[s] = best;
            }
        }
        if delta <= options.epsilon {
            break;
        }
    }
    for s in 0..n {
        if !target[s] && !proper[s] {
            v[s] = f64::INFINITY;
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Choice;

    fn geometric() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn jacobi_and_gauss_seidel_agree_on_geometric() {
        let m = geometric();
        let target = [false, true];
        let opts = IterOptions::default();
        let j = reach_prob_jacobi(&m, &target, Objective::MinProb, opts).unwrap();
        let g = reach_prob_gauss_seidel(&m, &target, Objective::MinProb, opts).unwrap();
        assert!((j[0] - g[0]).abs() < 1e-9);
        assert!((j[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_oracles_match_closed_form() {
        let m = geometric();
        let target = [false, true];
        for budget in 0..6 {
            let j = cost_bounded_reach_jacobi(&m, &target, budget, Objective::MinProb).unwrap();
            let g =
                cost_bounded_reach_gauss_seidel(&m, &target, budget, Objective::MinProb).unwrap();
            let expect = 1.0 - 0.5f64.powi(budget as i32);
            assert!((j[0] - expect).abs() < 1e-12);
            assert!((g[0] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_cost_oracles_agree() {
        let m = geometric();
        let target = [false, true];
        let opts = IterOptions::default();
        let j = max_expected_cost_jacobi(&m, &target, opts).unwrap();
        let g = max_expected_cost_gauss_seidel(&m, &target, opts).unwrap();
        assert!((j[0] - 2.0).abs() < 1e-6);
        assert!((g[0] - 2.0).abs() < 1e-6);
    }
}
