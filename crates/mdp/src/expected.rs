//! Expected accumulated cost until the target is reached — worst case
//! (`Query` with [`crate::QueryObjective::MaxCost`]) and best case
//! ([`min_expected_cost`]).
//!
//! The worst case is the quantity the paper bounds in Section 6.2: the
//! maximal (over adversaries) expected time to reach the critical region.
//! With round boundaries costing 1 and scheduling steps costing 0, the
//! expected accumulated cost is exactly the expected number of time
//! units. The best case is its dual: the expected time under the most
//! cooperative scheduler.

use crate::{CsrMdp, ExplicitMdp, IterOptions, MdpError};

/// Result of an expected-cost analysis: per-state expectations, with
/// `f64::INFINITY` marking states from which the target is not reached
/// almost surely under every adversary (so the worst-case expectation
/// diverges).
#[derive(Debug, Clone)]
pub struct ExpectedCost {
    /// Expected cost per state (∞ where divergent).
    pub values: Vec<f64>,
}

impl ExpectedCost {
    /// Maximal finite expectation over the given states.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::DivergentExpectation`] if any of the states has
    /// an infinite expectation.
    pub fn max_over(&self, states: impl IntoIterator<Item = usize>) -> Result<f64, MdpError> {
        let mut best = 0.0f64;
        for s in states {
            let v = self.values[s];
            if v.is_infinite() {
                return Err(MdpError::DivergentExpectation { state: s });
            }
            if v > best {
                best = v;
            }
        }
        Ok(best)
    }
}

/// Computes the worst-case (adversary-maximal) expected accumulated cost to
/// reach `target`.
///
/// Soundness precondition, checked per state: the *minimal* probability of
/// reaching the target must be 1 (then every adversary reaches it almost
/// surely, every policy is proper, and value iteration converges to the
/// optimum). States failing the precondition get `f64::INFINITY`.
///
/// Detects a cycle in the zero-cost transition subgraph (states connected
/// by choices with `cost == 0`, excluding `target` states).
///
/// Zero-cost cycles make *minimizing* expected-cost analyses degenerate: a
/// policy may loop forever at zero cost without reaching the target, and
/// value iteration from below would report 0 instead of rejecting the
/// improper policy. [`min_expected_cost`] therefore refuses such models.
/// (The round models of the case study are zero-cost-acyclic by
/// construction: every scheduling step consumes per-round budget.)
pub fn has_zero_cost_cycle(mdp: &ExplicitMdp, target: &[bool]) -> Result<bool, MdpError> {
    CsrMdp::from_explicit(mdp).has_zero_cost_cycle(target)
}

/// Computes the best-case (scheduler-minimal) expected accumulated cost to
/// reach `target`.
///
/// Soundness preconditions, both checked:
/// * the zero-cost subgraph (off-target) is acyclic — otherwise a
///   zero-cost-looping improper policy would corrupt the least fixpoint
///   (the function returns [`MdpError::BadDistribution`]-style structural
///   rejection via [`MdpError::DivergentExpectation`] on the offending
///   model);
/// * per state, the *maximal* reachability probability is 1 — otherwise
///   no policy reaches the target almost surely from that state and the
///   value is `f64::INFINITY`.
///
/// # Errors
///
/// Returns [`MdpError::TargetLengthMismatch`] for a malformed target, and
/// [`MdpError::DivergentExpectation`] (state 0 by convention) when the
/// zero-cost subgraph has a cycle.
pub fn min_expected_cost(
    mdp: &ExplicitMdp,
    target: &[bool],
    options: IterOptions,
) -> Result<ExpectedCost, MdpError> {
    let values = CsrMdp::from_explicit(mdp).min_expected_cost(target, options, None)?;
    Ok(ExpectedCost { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Choice, Query, QueryObjective};

    /// Worst-case expected cost via the `Query` builder (the migration
    /// target of the removed pre-`Query` free function).
    fn max_expected_cost(
        mdp: &ExplicitMdp,
        target: &[bool],
        options: IterOptions,
    ) -> Result<ExpectedCost, MdpError> {
        let analysis = Query::over(mdp)
            .objective(QueryObjective::MaxCost)
            .target(target)
            .options(options)
            .run()
            .map_err(MdpError::into_root)?;
        Ok(ExpectedCost {
            values: analysis.values,
        })
    }

    /// Geometric trial with success probability 1/2 per unit of time:
    /// expected time 2.
    fn geometric() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn geometric_expected_time_is_two() {
        let e = max_expected_cost(&geometric(), &[false, true], IterOptions::default()).unwrap();
        assert!((e.values[0] - 2.0).abs() < 1e-6, "{}", e.values[0]);
        assert_eq!(e.values[1], 0.0);
        assert!((e.max_over([0, 1]).unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn adversary_maximizes_among_choices() {
        // Choice A: reach target in 1 step; choice B: geometric with
        // expectation 4 (p = 1/4). Worst case picks B.
        let m = ExplicitMdp::new(
            vec![
                vec![
                    Choice::to(1, 1),
                    Choice::dist(1, vec![(1, 0.25), (0, 0.75)]),
                ],
                vec![],
            ],
            vec![0],
        )
        .unwrap();
        let e = max_expected_cost(&m, &[false, true], IterOptions::default()).unwrap();
        assert!((e.values[0] - 4.0).abs() < 1e-6, "{}", e.values[0]);
    }

    #[test]
    fn avoidable_target_diverges() {
        // The adversary can loop forever away from the target.
        let m = ExplicitMdp::new(
            vec![vec![Choice::to(1, 0), Choice::to(1, 1)], vec![]],
            vec![0],
        )
        .unwrap();
        let e = max_expected_cost(&m, &[false, true], IterOptions::default()).unwrap();
        assert!(e.values[0].is_infinite());
        assert!(matches!(
            e.max_over([0]),
            Err(MdpError::DivergentExpectation { state: 0 })
        ));
    }

    #[test]
    fn slow_mixing_chain_is_still_proper() {
        // The single choice leaks to the target with probability 1e-6 and
        // otherwise self-loops: Pmin = 1, so the expectation is finite
        // (1e6 rounds), but numeric value iteration on the reachability
        // probability stops far below 1. A thresholded numeric properness
        // mask misclassified exactly this shape as divergent (observed on
        // the batch driver's shared ring models); the qualitative prob1
        // mask must keep it live under both analyses.
        let m = ExplicitMdp::new(
            vec![
                vec![Choice::dist(1, vec![(0, 1.0 - 1e-6), (1, 1e-6)])],
                vec![],
            ],
            vec![0],
        )
        .unwrap();
        let hi = max_expected_cost(&m, &[false, true], IterOptions::default()).unwrap();
        assert!(hi.values[0].is_finite(), "proper state marked divergent");
        // The cost iteration is itself sweep-capped well short of
        // convergence here; only finiteness and the right order of
        // magnitude are owed.
        assert!(hi.values[0] > 1.0e5, "{}", hi.values[0]);
        let lo = min_expected_cost(&m, &[false, true], IterOptions::default()).unwrap();
        assert!(lo.values[0].is_finite(), "feasible state marked divergent");
    }

    #[test]
    fn zero_cost_steps_add_no_time() {
        // 0 -0-> 1 -1-> 2 (target): expected cost 1.
        let m = ExplicitMdp::new(
            vec![vec![Choice::to(0, 1)], vec![Choice::to(1, 2)], vec![]],
            vec![0],
        )
        .unwrap();
        let e = max_expected_cost(&m, &[false, false, true], IterOptions::default()).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cost_cycle_detection() {
        // 0 -0-> 1 -0-> 0 with target {2}: cycle.
        let cyclic = ExplicitMdp::new(
            vec![
                vec![Choice::to(0, 1)],
                vec![Choice::to(0, 0), Choice::to(1, 2)],
                vec![],
            ],
            vec![0],
        )
        .unwrap();
        assert!(has_zero_cost_cycle(&cyclic, &[false, false, true]).unwrap());
        // Making 0 the target breaks the off-target cycle.
        assert!(!has_zero_cost_cycle(&cyclic, &[true, false, false]).unwrap());
        // A chain has no cycle.
        let chain = ExplicitMdp::new(
            vec![vec![Choice::to(0, 1)], vec![Choice::to(1, 2)], vec![]],
            vec![0],
        )
        .unwrap();
        assert!(!has_zero_cost_cycle(&chain, &[false, false, true]).unwrap());
    }

    #[test]
    fn min_expected_cost_picks_the_fast_branch() {
        // Choice A: 1 step to target; choice B: geometric expectation 4.
        let m = ExplicitMdp::new(
            vec![
                vec![
                    Choice::to(1, 1),
                    Choice::dist(1, vec![(1, 0.25), (0, 0.75)]),
                ],
                vec![],
            ],
            vec![0],
        )
        .unwrap();
        let e = min_expected_cost(&m, &[false, true], IterOptions::default()).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-9, "{}", e.values[0]);
    }

    #[test]
    fn min_expected_cost_rejects_zero_cost_cycles() {
        let m = ExplicitMdp::new(
            vec![vec![Choice::to(0, 0), Choice::to(1, 1)], vec![]],
            vec![0],
        )
        .unwrap();
        assert!(matches!(
            min_expected_cost(&m, &[false, true], IterOptions::default()),
            Err(MdpError::DivergentExpectation { .. })
        ));
    }

    #[test]
    fn min_expected_cost_marks_unreachable_states_infinite() {
        let m = ExplicitMdp::new(vec![vec![], vec![]], vec![0]).unwrap();
        let e = min_expected_cost(&m, &[false, true], IterOptions::default()).unwrap();
        assert!(e.values[0].is_infinite());
    }

    #[test]
    fn min_is_below_max() {
        let m = ExplicitMdp::new(
            vec![
                vec![Choice::to(1, 1), Choice::dist(1, vec![(1, 0.5), (0, 0.5)])],
                vec![],
            ],
            vec![0],
        )
        .unwrap();
        let lo = min_expected_cost(&m, &[false, true], IterOptions::default()).unwrap();
        let hi = max_expected_cost(&m, &[false, true], IterOptions::default()).unwrap();
        assert!(lo.values[0] <= hi.values[0]);
    }

    #[test]
    fn target_states_cost_zero() {
        let e = max_expected_cost(&geometric(), &[true, true], IterOptions::default()).unwrap();
        assert_eq!(e.values, vec![0.0, 0.0]);
    }
}
