//! Cost-bounded reachability by backward induction.
//!
//! This is the engine behind exact verification of arrow statements
//! `U —t→_p U'`: with intra-round scheduling steps costing 0 and round
//! boundaries costing 1, the minimal probability (over all adversaries) of
//! reaching `U'` with total cost at most `t` is exactly the quantity
//! Definition 3.1 bounds.
//!
//! For finite-horizon reachability objectives on a finite MDP, deterministic
//! cost-indexed Markov policies attain the optimum over *all* history-
//! dependent deterministic adversaries, so backward induction quantifies
//! over the paper's full adversary class (substitution 2 in DESIGN.md).

use crate::{ExplicitMdp, MdpError};

/// Whether the adversary minimizes or maximizes the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Worst case for the algorithm: the adversary minimizes the
    /// probability of reaching the target (the quantifier in `U —t→_p U'`).
    MinProb,
    /// Best case: the adversary maximizes the probability.
    MaxProb,
}

impl Objective {
    fn better(self, a: f64, b: f64) -> bool {
        match self {
            Objective::MinProb => a < b,
            Objective::MaxProb => a > b,
        }
    }

    fn start(self) -> f64 {
        match self {
            Objective::MinProb => f64::INFINITY,
            Objective::MaxProb => f64::NEG_INFINITY,
        }
    }
}

/// A deterministic cost-indexed policy extracted from backward induction:
/// `decision[k][s]` is the optimal choice index in state `s` with `k` cost
/// units of budget remaining (`None` for states without choices).
#[derive(Debug, Clone)]
pub struct BoundedPolicy {
    /// `decision[k][s]`, `k = 0..=budget`.
    pub decision: Vec<Vec<Option<u32>>>,
}

impl BoundedPolicy {
    /// The optimal choice in `state` with `remaining` budget (clamped to
    /// the largest computed level).
    pub fn choice(&self, state: usize, remaining: u32) -> Option<u32> {
        let k = (remaining as usize).min(self.decision.len() - 1);
        self.decision[k][state]
    }
}

fn validate_costs(mdp: &ExplicitMdp) -> Result<(), MdpError> {
    for s in 0..mdp.num_states() {
        for c in mdp.choices(s) {
            if c.cost > 1 {
                return Err(MdpError::BadDistribution {
                    state: s,
                    reason: format!(
                        "cost-bounded reachability supports costs 0 and 1, found {}",
                        c.cost
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Computes one level of the induction: the fixpoint of
/// `v(s) = opt_c [ Σ p · (cost(c)=1 ? prev : v)(t) ]` over the zero-cost
/// subgraph, starting from 0 (the least fixpoint, reached exactly when the
/// zero-cost subgraph is acyclic, and approached monotonically from below —
/// hence conservatively for `MinProb` claims — otherwise).
fn solve_level(
    mdp: &ExplicitMdp,
    target: &[bool],
    prev: &[f64],
    objective: Objective,
    decisions: Option<&mut Vec<Option<u32>>>,
) -> Vec<f64> {
    let n = mdp.num_states();
    let mut cur = vec![0.0f64; n];
    for s in 0..n {
        if target[s] {
            cur[s] = 1.0;
        }
    }
    // Gauss–Seidel sweeps to the (least) fixpoint.
    let max_sweeps = 4 * n + 8;
    for _ in 0..max_sweeps {
        let mut delta = 0.0f64;
        for s in 0..n {
            if target[s] || mdp.choices(s).is_empty() {
                continue;
            }
            let mut best = objective.start();
            for c in mdp.choices(s) {
                let source: &[f64] = if c.cost == 1 { prev } else { &cur };
                let v: f64 = c.transitions.iter().map(|&(t, p)| p * source[t]).sum();
                if objective.better(v, best) {
                    best = v;
                }
            }
            let d = (best - cur[s]).abs();
            if d > delta {
                delta = d;
            }
            cur[s] = best;
        }
        if delta <= 1e-14 {
            break;
        }
    }
    if let Some(dec) = decisions {
        dec.clear();
        dec.resize(n, None);
        for s in 0..n {
            if target[s] || mdp.choices(s).is_empty() {
                continue;
            }
            let mut best = objective.start();
            let mut best_i = 0u32;
            for (i, c) in mdp.choices(s).iter().enumerate() {
                let source: &[f64] = if c.cost == 1 { prev } else { &cur };
                let v: f64 = c.transitions.iter().map(|&(t, p)| p * source[t]).sum();
                if objective.better(v, best) {
                    best = v;
                    best_i = i as u32;
                }
            }
            dec[s] = Some(best_i);
        }
    }
    cur
}

/// Computes `P^opt[reach target with total cost ≤ budget]` for every state,
/// invoking `on_level(k, values)` after each budget level `k = 0..=budget`
/// (useful for probability-vs-time CDF series). Returns the final level.
///
/// # Errors
///
/// Returns [`MdpError::TargetLengthMismatch`] for a malformed target vector
/// and [`MdpError::BadDistribution`] if any transition cost exceeds 1.
pub fn cost_bounded_reach_levels(
    mdp: &ExplicitMdp,
    target: &[bool],
    budget: u32,
    objective: Objective,
    mut on_level: impl FnMut(u32, &[f64]),
) -> Result<Vec<f64>, MdpError> {
    mdp.check_target(target)?;
    validate_costs(mdp)?;
    // Level 0: only zero-cost steps allowed.
    let zeros = vec![0.0; mdp.num_states()];
    let mut cur = solve_level(mdp, target, &zeros, objective, None);
    on_level(0, &cur);
    for k in 1..=budget {
        cur = solve_level(mdp, target, &cur, objective, None);
        on_level(k, &cur);
    }
    Ok(cur)
}

/// Computes `P^opt[reach target with total cost ≤ budget]` for every state.
///
/// # Errors
///
/// Same as [`cost_bounded_reach_levels`].
pub fn cost_bounded_reach(
    mdp: &ExplicitMdp,
    target: &[bool],
    budget: u32,
    objective: Objective,
) -> Result<Vec<f64>, MdpError> {
    cost_bounded_reach_levels(mdp, target, budget, objective, |_, _| {})
}

/// Like [`cost_bounded_reach`] but also extracts the optimal cost-indexed
/// policy — the concrete worst-case (or best-case) adversary.
///
/// # Errors
///
/// Same as [`cost_bounded_reach_levels`].
pub fn cost_bounded_reach_with_policy(
    mdp: &ExplicitMdp,
    target: &[bool],
    budget: u32,
    objective: Objective,
) -> Result<(Vec<f64>, BoundedPolicy), MdpError> {
    mdp.check_target(target)?;
    validate_costs(mdp)?;
    let zeros = vec![0.0; mdp.num_states()];
    let mut decision = Vec::with_capacity(budget as usize + 1);
    let mut dec0 = Vec::new();
    let mut cur = solve_level(mdp, target, &zeros, objective, Some(&mut dec0));
    decision.push(dec0);
    for _ in 1..=budget {
        let mut dec = Vec::new();
        cur = solve_level(mdp, target, &cur, objective, Some(&mut dec));
        decision.push(dec);
    }
    Ok((cur, BoundedPolicy { decision }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Choice;

    /// Geometric trial: each round, flip a coin; heads wins.
    /// State 0 = trying, 1 = won.
    fn geometric() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn geometric_bounded_reach_is_one_minus_half_pow() {
        let m = geometric();
        let target = [false, true];
        for budget in 0..6 {
            let v = cost_bounded_reach(&m, &target, budget, Objective::MinProb).unwrap();
            let expect = 1.0 - 0.5f64.powi(budget as i32);
            assert!(
                (v[0] - expect).abs() < 1e-12,
                "budget {budget}: {} vs {expect}",
                v[0]
            );
        }
    }

    #[test]
    fn target_states_have_probability_one_at_zero_budget() {
        let m = geometric();
        let v = cost_bounded_reach(&m, &[false, true], 0, Objective::MinProb).unwrap();
        assert_eq!(v[1], 1.0);
    }

    /// Adversary picks between a safe branch (never reaches) and a risky
    /// branch (reaches with probability 1): min picks safe, max risky.
    fn pick() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![
                vec![Choice::to(1, 1), Choice::to(1, 2)],
                vec![], // dead end
                vec![], // target
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn min_and_max_differ_under_nondeterminism() {
        let m = pick();
        let target = [false, false, true];
        let vmin = cost_bounded_reach(&m, &target, 3, Objective::MinProb).unwrap();
        let vmax = cost_bounded_reach(&m, &target, 3, Objective::MaxProb).unwrap();
        assert_eq!(vmin[0], 0.0);
        assert_eq!(vmax[0], 1.0);
    }

    #[test]
    fn zero_cost_steps_do_not_consume_budget() {
        // 0 -0-> 1 -0-> 2 (target): reachable even with budget 0.
        let m = ExplicitMdp::new(
            vec![vec![Choice::to(0, 1)], vec![Choice::to(0, 2)], vec![]],
            vec![0],
        )
        .unwrap();
        let v = cost_bounded_reach(&m, &[false, false, true], 0, Objective::MinProb).unwrap();
        assert_eq!(v[0], 1.0);
    }

    #[test]
    fn cost_one_steps_consume_budget() {
        // 0 -1-> 1 -1-> 2 (target): needs budget 2.
        let m = ExplicitMdp::new(
            vec![vec![Choice::to(1, 1)], vec![Choice::to(1, 2)], vec![]],
            vec![0],
        )
        .unwrap();
        let target = [false, false, true];
        let v1 = cost_bounded_reach(&m, &target, 1, Objective::MinProb).unwrap();
        let v2 = cost_bounded_reach(&m, &target, 2, Objective::MinProb).unwrap();
        assert_eq!(v1[0], 0.0);
        assert_eq!(v2[0], 1.0);
    }

    #[test]
    fn levels_are_monotone_in_budget() {
        let m = geometric();
        let mut last = -1.0;
        cost_bounded_reach_levels(&m, &[false, true], 8, Objective::MinProb, |_, v| {
            assert!(v[0] >= last - 1e-12);
            last = v[0];
        })
        .unwrap();
    }

    #[test]
    fn rejects_costs_above_one() {
        let m = ExplicitMdp::new(vec![vec![Choice::to(2, 0)]], vec![0]).unwrap();
        assert!(matches!(
            cost_bounded_reach(&m, &[false], 3, Objective::MinProb),
            Err(MdpError::BadDistribution { .. })
        ));
    }

    #[test]
    fn rejects_bad_target_length() {
        let m = geometric();
        assert!(matches!(
            cost_bounded_reach(&m, &[false], 3, Objective::MinProb),
            Err(MdpError::TargetLengthMismatch { .. })
        ));
    }

    #[test]
    fn policy_extraction_picks_optimal_choice() {
        let m = pick();
        let target = [false, false, true];
        let (_, pmin) = cost_bounded_reach_with_policy(&m, &target, 3, Objective::MinProb).unwrap();
        let (_, pmax) = cost_bounded_reach_with_policy(&m, &target, 3, Objective::MaxProb).unwrap();
        // With budget remaining, min avoids the target (choice 0 → dead end),
        // max goes for it (choice 1 → target).
        assert_eq!(pmin.choice(0, 3), Some(0));
        assert_eq!(pmax.choice(0, 3), Some(1));
        // Terminal states have no decision.
        assert_eq!(pmin.choice(1, 3), None);
    }

    #[test]
    fn policy_clamps_budget_lookup() {
        let m = pick();
        let (_, p) =
            cost_bounded_reach_with_policy(&m, &[false, false, true], 1, Objective::MaxProb)
                .unwrap();
        assert_eq!(p.choice(0, 99), p.choice(0, 1));
    }
}
