//! Cost-bounded reachability by backward induction.
//!
//! This is the engine behind exact verification of arrow statements
//! `U —t→_p U'`: with intra-round scheduling steps costing 0 and round
//! boundaries costing 1, the minimal probability (over all adversaries) of
//! reaching `U'` with total cost at most `t` is exactly the quantity
//! Definition 3.1 bounds.
//!
//! For finite-horizon reachability objectives on a finite MDP, deterministic
//! cost-indexed Markov policies attain the optimum over *all* history-
//! dependent deterministic adversaries, so backward induction quantifies
//! over the paper's full adversary class (substitution 2 in DESIGN.md).

use crate::{CsrMdp, ExplicitMdp, MdpError};

/// Whether the adversary minimizes or maximizes the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Worst case for the algorithm: the adversary minimizes the
    /// probability of reaching the target (the quantifier in `U —t→_p U'`).
    MinProb,
    /// Best case: the adversary maximizes the probability.
    MaxProb,
}

impl Objective {
    /// Whether `a` improves on `b` under this objective.
    #[inline]
    pub(crate) fn better(self, a: f64, b: f64) -> bool {
        match self {
            Objective::MinProb => a < b,
            Objective::MaxProb => a > b,
        }
    }

    /// The identity element of the optimization (`±∞`).
    #[inline]
    pub(crate) fn start(self) -> f64 {
        match self {
            Objective::MinProb => f64::INFINITY,
            Objective::MaxProb => f64::NEG_INFINITY,
        }
    }
}

/// A deterministic cost-indexed policy extracted from backward induction:
/// `decision[k][s]` is the optimal choice index in state `s` with `k` cost
/// units of budget remaining (`None` for states without choices).
#[derive(Debug, Clone)]
pub struct BoundedPolicy {
    /// `decision[k][s]`, `k = 0..=budget`.
    pub decision: Vec<Vec<Option<u32>>>,
}

impl BoundedPolicy {
    /// The optimal choice in `state` with `remaining` budget (clamped to
    /// the largest computed level).
    pub fn choice(&self, state: usize, remaining: u32) -> Option<u32> {
        let k = (remaining as usize).min(self.decision.len() - 1);
        self.decision[k][state]
    }
}

/// Computes `P^opt[reach target with total cost ≤ budget]` for every state,
/// invoking `on_level(k, values)` after each budget level `k = 0..=budget`
/// (useful for probability-vs-time CDF series). Returns the final level.
///
/// Each level is the fixpoint of
/// `v(s) = opt_c [ Σ p · (cost(c)=1 ? prev : v)(t) ]` over the zero-cost
/// subgraph, starting from 0 (the least fixpoint, reached exactly when the
/// zero-cost subgraph is acyclic, and approached monotonically from below —
/// hence conservatively for `MinProb` claims — otherwise). Levels run on
/// the CSR engine's deterministic parallel Jacobi sweeps.
///
/// # Errors
///
/// Returns [`MdpError::TargetLengthMismatch`] for a malformed target vector
/// and [`MdpError::BadDistribution`] if any transition cost exceeds 1.
pub fn cost_bounded_reach_levels(
    mdp: &ExplicitMdp,
    target: &[bool],
    budget: u32,
    objective: Objective,
    on_level: impl FnMut(u32, &[f64]),
) -> Result<Vec<f64>, MdpError> {
    CsrMdp::from_explicit(mdp).cost_bounded_reach_levels(target, budget, objective, None, on_level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Choice, Query};

    /// Bounded reachability via the `Query` builder (the migration target
    /// of the removed pre-`Query` free function).
    fn cost_bounded_reach(
        mdp: &ExplicitMdp,
        target: &[bool],
        budget: u32,
        objective: Objective,
    ) -> Result<Vec<f64>, MdpError> {
        Ok(Query::over(mdp)
            .objective(objective)
            .target(target)
            .horizon(budget)
            .run()
            .map_err(MdpError::into_root)?
            .values)
    }

    fn cost_bounded_reach_with_policy(
        mdp: &ExplicitMdp,
        target: &[bool],
        budget: u32,
        objective: Objective,
    ) -> Result<(Vec<f64>, BoundedPolicy), MdpError> {
        let analysis = Query::over(mdp)
            .objective(objective)
            .target(target)
            .horizon(budget)
            .with_policy()
            .run()
            .map_err(MdpError::into_root)?;
        let policy = analysis
            .policy
            .expect("with_policy() query returns a policy");
        Ok((analysis.values, policy))
    }

    /// Geometric trial: each round, flip a coin; heads wins.
    /// State 0 = trying, 1 = won.
    fn geometric() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![vec![Choice::dist(1, vec![(1, 0.5), (0, 0.5)])], vec![]],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn geometric_bounded_reach_is_one_minus_half_pow() {
        let m = geometric();
        let target = [false, true];
        for budget in 0..6 {
            let v = cost_bounded_reach(&m, &target, budget, Objective::MinProb).unwrap();
            let expect = 1.0 - 0.5f64.powi(budget as i32);
            assert!(
                (v[0] - expect).abs() < 1e-12,
                "budget {budget}: {} vs {expect}",
                v[0]
            );
        }
    }

    #[test]
    fn target_states_have_probability_one_at_zero_budget() {
        let m = geometric();
        let v = cost_bounded_reach(&m, &[false, true], 0, Objective::MinProb).unwrap();
        assert_eq!(v[1], 1.0);
    }

    /// Adversary picks between a safe branch (never reaches) and a risky
    /// branch (reaches with probability 1): min picks safe, max risky.
    fn pick() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![
                vec![Choice::to(1, 1), Choice::to(1, 2)],
                vec![], // dead end
                vec![], // target
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn min_and_max_differ_under_nondeterminism() {
        let m = pick();
        let target = [false, false, true];
        let vmin = cost_bounded_reach(&m, &target, 3, Objective::MinProb).unwrap();
        let vmax = cost_bounded_reach(&m, &target, 3, Objective::MaxProb).unwrap();
        assert_eq!(vmin[0], 0.0);
        assert_eq!(vmax[0], 1.0);
    }

    #[test]
    fn zero_cost_steps_do_not_consume_budget() {
        // 0 -0-> 1 -0-> 2 (target): reachable even with budget 0.
        let m = ExplicitMdp::new(
            vec![vec![Choice::to(0, 1)], vec![Choice::to(0, 2)], vec![]],
            vec![0],
        )
        .unwrap();
        let v = cost_bounded_reach(&m, &[false, false, true], 0, Objective::MinProb).unwrap();
        assert_eq!(v[0], 1.0);
    }

    #[test]
    fn cost_one_steps_consume_budget() {
        // 0 -1-> 1 -1-> 2 (target): needs budget 2.
        let m = ExplicitMdp::new(
            vec![vec![Choice::to(1, 1)], vec![Choice::to(1, 2)], vec![]],
            vec![0],
        )
        .unwrap();
        let target = [false, false, true];
        let v1 = cost_bounded_reach(&m, &target, 1, Objective::MinProb).unwrap();
        let v2 = cost_bounded_reach(&m, &target, 2, Objective::MinProb).unwrap();
        assert_eq!(v1[0], 0.0);
        assert_eq!(v2[0], 1.0);
    }

    #[test]
    fn levels_are_monotone_in_budget() {
        let m = geometric();
        let mut last = -1.0;
        cost_bounded_reach_levels(&m, &[false, true], 8, Objective::MinProb, |_, v| {
            assert!(v[0] >= last - 1e-12);
            last = v[0];
        })
        .unwrap();
    }

    #[test]
    fn rejects_costs_above_one() {
        let m = ExplicitMdp::new(vec![vec![Choice::to(2, 0)]], vec![0]).unwrap();
        assert!(matches!(
            cost_bounded_reach(&m, &[false], 3, Objective::MinProb),
            Err(MdpError::BadDistribution { .. })
        ));
    }

    #[test]
    fn rejects_bad_target_length() {
        let m = geometric();
        assert!(matches!(
            cost_bounded_reach(&m, &[false], 3, Objective::MinProb),
            Err(MdpError::TargetLengthMismatch { .. })
        ));
    }

    #[test]
    fn policy_extraction_picks_optimal_choice() {
        let m = pick();
        let target = [false, false, true];
        let (_, pmin) = cost_bounded_reach_with_policy(&m, &target, 3, Objective::MinProb).unwrap();
        let (_, pmax) = cost_bounded_reach_with_policy(&m, &target, 3, Objective::MaxProb).unwrap();
        // With budget remaining, min avoids the target (choice 0 → dead end),
        // max goes for it (choice 1 → target).
        assert_eq!(pmin.choice(0, 3), Some(0));
        assert_eq!(pmax.choice(0, 3), Some(1));
        // Terminal states have no decision.
        assert_eq!(pmin.choice(1, 3), None);
    }

    #[test]
    fn policy_clamps_budget_lookup() {
        let m = pick();
        let (_, p) =
            cost_bounded_reach_with_policy(&m, &[false, false, true], 1, Objective::MaxProb)
                .unwrap();
        assert_eq!(p.choice(0, 99), p.choice(0, 1));
    }
}
