//! Choice tagging: annotate the choices of an explored model with small
//! labels so structural contracts can be audited before solving.
//!
//! The fault subsystem is the motivating consumer: when a fault layer
//! lowers crashed processes into the explored MDP, every choice it injects
//! for a dead configuration must be an *absorbing* deterministic self-loop
//! — otherwise the new states would leak probability mass and corrupt
//! both the Jacobi and the SCC-ordered solvers (an absorbing state is a
//! trivial SCC; a mis-built one becomes a spurious nontrivial component).
//! [`tag_choices`] recomputes the implicit automaton's steps in explored
//! order to assign a tag per choice, and
//! [`tagged_absorbing_violations`] reports every tagged choice that fails
//! the absorbing contract.

use pa_core::Automaton;

use crate::{ExplicitMdp, Explored};

/// The neutral tag: an ordinary protocol choice.
pub const TAG_NONE: u8 = 0;

/// Per-choice tags aligned with an [`Explored`] model: `tags[s][k]`
/// labels `mdp.choices(s)[k]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceTags {
    /// `tags[state][choice]`, in the explored model's choice order.
    pub tags: Vec<Vec<u8>>,
}

impl ChoiceTags {
    /// The tag of choice `k` in state `s`.
    pub fn tag(&self, s: usize, k: usize) -> u8 {
        self.tags[s][k]
    }

    /// Number of choices carrying `tag`.
    pub fn count(&self, tag: u8) -> usize {
        self.tags
            .iter()
            .map(|cs| cs.iter().filter(|&&t| t == tag).count())
            .sum()
    }
}

/// Tags every choice of an explored model by re-enumerating the implicit
/// automaton's steps in explored state order (exploration preserves choice
/// order, so `steps(&states[s])[k]` *is* `mdp.choices(s)[k]`).
///
/// Records the number of non-[`TAG_NONE`] choices in the
/// `mdp.tag.tagged_choices` telemetry counter when telemetry is enabled.
///
/// # Panics
///
/// Panics if the automaton's step count for some state disagrees with the
/// explored model — that means the automaton is not the one that was
/// explored (or is nondeterministic in its step enumeration, which the
/// exploration contract forbids).
pub fn tag_choices<M: Automaton, SP: crate::StateSpace<M::State>>(
    automaton: &M,
    explored: &Explored<M::State, SP>,
    mut tag_of: impl FnMut(&M::State, &M::Action) -> u8,
) -> ChoiceTags {
    let mut tags = Vec::with_capacity(explored.num_states());
    let mut tagged = 0u64;
    for s in 0..explored.num_states() {
        let state = explored.state(s);
        let steps = automaton.steps(&state);
        assert_eq!(
            steps.len(),
            explored.mdp.choices(s).len(),
            "state {s}: automaton disagrees with the explored model"
        );
        let row: Vec<u8> = steps
            .iter()
            .map(|step| {
                let t = tag_of(&state, &step.action);
                if t != TAG_NONE {
                    tagged += 1;
                }
                t
            })
            .collect();
        tags.push(row);
    }
    if pa_telemetry::enabled() {
        pa_telemetry::counter("mdp.tag.tagged_choices").add(tagged);
    }
    ChoiceTags { tags }
}

/// Audits the absorbing contract of every choice carrying `tag`: such a
/// choice must be a deterministic self-loop (one transition, back to its
/// own state, probability exactly 1). Returns the `(state, choice)` pairs
/// that violate it — an empty vector certifies that all tagged choices
/// are absorbing, so both solvers treat the tagged states as sinks.
pub fn tagged_absorbing_violations(
    mdp: &ExplicitMdp,
    tags: &ChoiceTags,
    tag: u8,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for s in 0..mdp.num_states() {
        for (k, choice) in mdp.choices(s).iter().enumerate() {
            if tags.tag(s, k) != tag {
                continue;
            }
            let absorbing = choice.transitions.len() == 1
                && choice.transitions[0].0 == s
                && choice.transitions[0].1 == 1.0;
            if !absorbing {
                out.push((s, k));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Explore;
    use pa_core::TableAutomaton;

    const TAG_CRASH: u8 = 1;

    /// 0 --go--> 1; 1 --stay--> 1 (absorbing); 0 --bad--> {0, 1}.
    fn model() -> TableAutomaton<u8, &'static str> {
        TableAutomaton::builder()
            .start(0)
            .det_step(0, "go", 1)
            .step(0, "bad", [(0, 0.5), (1, 0.5)])
            .unwrap()
            .det_step(1, "stay", 1)
            .build()
            .unwrap()
    }

    #[test]
    fn tags_align_with_choice_order() {
        let m = model();
        let e = Explore::new(&m).limit(100).run().unwrap();
        let tags = tag_choices(
            &m,
            &e,
            |_, a| if *a == "stay" { TAG_CRASH } else { TAG_NONE },
        );
        assert_eq!(tags.count(TAG_CRASH), 1);
        let s1 = e.index_of(&1).unwrap();
        assert_eq!(tags.tag(s1, 0), TAG_CRASH);
    }

    #[test]
    fn absorbing_self_loops_pass_the_audit() {
        let m = model();
        let e = Explore::new(&m).limit(100).run().unwrap();
        let tags = tag_choices(
            &m,
            &e,
            |_, a| if *a == "stay" { TAG_CRASH } else { TAG_NONE },
        );
        assert!(tagged_absorbing_violations(&e.mdp, &tags, TAG_CRASH).is_empty());
    }

    #[test]
    fn non_absorbing_tagged_choices_are_reported() {
        let m = model();
        let e = Explore::new(&m).limit(100).run().unwrap();
        // Mis-tag the probabilistic branch as a crash choice.
        let tags = tag_choices(
            &m,
            &e,
            |_, a| if *a == "bad" { TAG_CRASH } else { TAG_NONE },
        );
        let bad = tagged_absorbing_violations(&e.mdp, &tags, TAG_CRASH);
        let s0 = e.index_of(&0).unwrap();
        assert_eq!(bad, vec![(s0, 1)]);
    }

    #[test]
    fn untagged_choices_are_never_audited() {
        let m = model();
        let e = Explore::new(&m).limit(100).run().unwrap();
        let tags = tag_choices(&m, &e, |_, _| TAG_NONE);
        assert!(tagged_absorbing_violations(&e.mdp, &tags, TAG_CRASH).is_empty());
    }
}
