use crate::MdpError;

/// One nondeterministic choice available in a state: a transition cost
/// (0 or more time units) and a probability distribution over successor
/// state indices.
///
/// Costs let one MDP transition relation encode the round-based timed
/// semantics: intra-round scheduling steps cost 0, round boundaries cost 1,
/// and "time ≤ t" becomes "total cost ≤ t".
#[derive(Debug, Clone, PartialEq)]
pub struct Choice {
    /// Time cost incurred by taking this choice.
    pub cost: u32,
    /// `(successor index, probability)` pairs.
    pub transitions: Vec<(usize, f64)>,
}

impl Choice {
    /// A deterministic choice to one successor.
    pub fn to(cost: u32, successor: usize) -> Choice {
        Choice {
            cost,
            transitions: vec![(successor, 1.0)],
        }
    }

    /// A probabilistic choice.
    pub fn dist(cost: u32, transitions: Vec<(usize, f64)>) -> Choice {
        Choice { cost, transitions }
    }
}

/// An explicit-state Markov decision process with costed transitions.
///
/// States are dense indices `0..num_states()`. Each state carries a list of
/// [`Choice`]s; a state with no choices is absorbing for every analysis
/// (reachability value 0 unless it is a target, expected cost 0 once
/// reached — see the individual algorithms).
///
/// Construct with [`ExplicitMdp::new`], which validates every distribution,
/// or via the [`crate::Explore`] builder from an implicit
/// [`pa_core::Automaton`].
#[derive(Debug, Clone)]
pub struct ExplicitMdp {
    choices: Vec<Vec<Choice>>,
    initial: Vec<usize>,
}

impl ExplicitMdp {
    /// Creates a model from per-state choice lists and initial states.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadDistribution`] if any choice has an empty
    /// support, a negative weight, or weights not summing to one;
    /// [`MdpError::BadStateIndex`] if any transition or initial state is out
    /// of range; [`MdpError::NoInitialStates`] if `initial` is empty.
    pub fn new(choices: Vec<Vec<Choice>>, initial: Vec<usize>) -> Result<ExplicitMdp, MdpError> {
        let n = choices.len();
        if initial.is_empty() {
            return Err(MdpError::NoInitialStates);
        }
        for &i in &initial {
            if i >= n {
                return Err(MdpError::BadStateIndex {
                    index: i,
                    num_states: n,
                });
            }
        }
        for (s, cs) in choices.iter().enumerate() {
            for c in cs {
                if c.transitions.is_empty() {
                    return Err(MdpError::BadDistribution {
                        state: s,
                        reason: "empty support".into(),
                    });
                }
                let mut sum = 0.0;
                for &(t, p) in &c.transitions {
                    if t >= n {
                        return Err(MdpError::BadStateIndex {
                            index: t,
                            num_states: n,
                        });
                    }
                    if !p.is_finite() || p < 0.0 {
                        return Err(MdpError::BadDistribution {
                            state: s,
                            reason: format!("weight {p}"),
                        });
                    }
                    sum += p;
                }
                if (sum - 1.0).abs() > 1e-6 {
                    return Err(MdpError::BadDistribution {
                        state: s,
                        reason: format!("weights sum to {sum}"),
                    });
                }
            }
        }
        Ok(ExplicitMdp { choices, initial })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.choices.len()
    }

    /// Total number of choices across all states.
    pub fn num_choices(&self) -> usize {
        self.choices.iter().map(Vec::len).sum()
    }

    /// Total number of probabilistic transitions.
    pub fn num_transitions(&self) -> usize {
        self.choices
            .iter()
            .flat_map(|cs| cs.iter())
            .map(|c| c.transitions.len())
            .sum()
    }

    /// Heap bytes held by the nested choice lists and the initial-state
    /// vector, counted at `Vec` capacities. Used for per-slot size
    /// accounting when a model cache enforces a byte budget.
    pub fn mem_bytes(&self) -> u64 {
        use std::mem::size_of;
        let nested: usize = self
            .choices
            .iter()
            .map(|cs| {
                cs.capacity() * size_of::<Choice>()
                    + cs.iter()
                        .map(|c| c.transitions.capacity() * size_of::<(usize, f64)>())
                        .sum::<usize>()
            })
            .sum();
        (self.choices.capacity() * size_of::<Vec<Choice>>()
            + nested
            + self.initial.capacity() * size_of::<usize>()) as u64
    }

    /// The choices of a state.
    pub fn choices(&self, state: usize) -> &[Choice] {
        &self.choices[state]
    }

    /// The initial state indices.
    pub fn initial_states(&self) -> &[usize] {
        &self.initial
    }

    /// Validates that a target vector matches the state count.
    pub(crate) fn check_target(&self, target: &[bool]) -> Result<(), MdpError> {
        if target.len() != self.num_states() {
            return Err(MdpError::TargetLengthMismatch {
                got: target.len(),
                expected: self.num_states(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-state chain with a probabilistic middle step.
    pub(crate) fn chain() -> ExplicitMdp {
        ExplicitMdp::new(
            vec![
                vec![Choice::dist(1, vec![(1, 0.5), (2, 0.5)])],
                vec![Choice::to(1, 2)],
                vec![],
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn counts_are_consistent() {
        let m = chain();
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.num_choices(), 2);
        assert_eq!(m.num_transitions(), 3);
        assert_eq!(m.initial_states(), [0]);
    }

    #[test]
    fn rejects_empty_initial() {
        assert!(matches!(
            ExplicitMdp::new(vec![vec![]], vec![]),
            Err(MdpError::NoInitialStates)
        ));
    }

    #[test]
    fn rejects_out_of_range_targets() {
        let r = ExplicitMdp::new(vec![vec![Choice::to(0, 5)]], vec![0]);
        assert!(matches!(r, Err(MdpError::BadStateIndex { .. })));
    }

    #[test]
    fn rejects_unnormalized_distribution() {
        let r = ExplicitMdp::new(vec![vec![Choice::dist(0, vec![(0, 0.4)])], vec![]], vec![0]);
        assert!(matches!(r, Err(MdpError::BadDistribution { .. })));
    }

    #[test]
    fn rejects_negative_weight() {
        let r = ExplicitMdp::new(
            vec![vec![Choice::dist(0, vec![(0, -0.5), (0, 1.5)])]],
            vec![0],
        );
        assert!(matches!(r, Err(MdpError::BadDistribution { .. })));
    }

    #[test]
    fn rejects_empty_support() {
        let r = ExplicitMdp::new(vec![vec![Choice::dist(0, vec![])]], vec![0]);
        assert!(matches!(r, Err(MdpError::BadDistribution { .. })));
    }

    #[test]
    fn check_target_validates_length() {
        let m = chain();
        assert!(m.check_target(&[false, false, true]).is_ok());
        assert!(m.check_target(&[false]).is_err());
    }
}
