//! State-space exploration: building an [`ExplicitMdp`] from an implicit
//! [`pa_core::Automaton`].
//!
//! Two explorers share one deterministic contract:
//!
//! * [`explore`] — serial FIFO breadth-first search, interning states with
//!   the crate's [`FxHashMap`] (SipHash dominated the profile; model states
//!   are not attacker-controlled, see [`crate::fxhash`]).
//! * [`par_explore`] — level-synchronized parallel BFS. Each BFS level is
//!   split into contiguous shards (adaptively oversharded when the fresh
//!   yield of the busiest shard runs hot — see [`next_shard_factor`]);
//!   workers expand their shard against a
//!   read-only snapshot of the intern table, deduplicating *new* successor
//!   states in a worker-local `FxHashMap`. The main thread then merges
//!   shard outputs **in shard order**, assigning global state ids in
//!   exactly the order the serial explorer would (shard order = level
//!   order; within a shard, encounter order). The result — state ids,
//!   choice lists, transitions, and even the state at which a
//!   [`MdpError::StateLimitExceeded`] fires — is identical to [`explore`]
//!   for every worker count, which the property tests assert.

use std::collections::VecDeque;

use pa_core::Automaton;

use crate::fxhash::FxHashMap;
use crate::{Choice, ExplicitMdp, MdpError};

/// The result of exploring an implicit model: the explicit MDP plus the
/// bidirectional mapping between dense indices and concrete states.
///
/// Choice order is preserved: `mdp.choices(i)[k]` corresponds to
/// `automaton.steps(&states[i])[k]`, so an optimal policy over the explicit
/// model can be replayed on the implicit one.
#[derive(Debug, Clone)]
pub struct Explored<S> {
    /// Concrete state of each index.
    pub states: Vec<S>,
    /// Index of each concrete state.
    pub index: FxHashMap<S, usize>,
    /// The explicit model.
    pub mdp: ExplicitMdp,
}

impl<S: Clone + Eq + std::hash::Hash> Explored<S> {
    /// Builds a dense boolean target vector from a state predicate.
    ///
    /// This is the bridge between the two target conventions in this crate:
    /// analyses take dense `&[bool]` masks (states are anonymous indices
    /// there), while exploration-level code thinks in predicates over
    /// concrete states. [`Explored::query_where`] composes the two
    /// directly; [`crate::Query::target`] also accepts index lists.
    pub fn target_where(&self, pred: impl FnMut(&S) -> bool) -> Vec<bool> {
        self.states.iter().map(pred).collect()
    }

    /// Starts a [`crate::Query`] over the explored model (flattening it to
    /// CSR once).
    pub fn query(&self) -> crate::Query<'static> {
        crate::Query::over(&self.mdp)
    }

    /// Starts a [`crate::Query`] targeting the states that satisfy `pred`.
    pub fn query_where(&self, pred: impl FnMut(&S) -> bool) -> crate::Query<'static> {
        let target = self.target_where(pred);
        self.query().target(target)
    }

    /// Dense index of a concrete state, or `None` when it was never
    /// reached. This is the lookup direction policy replay needs: a
    /// trajectory's concrete state maps back to the index the extracted
    /// [`crate::BoundedPolicy`] was computed over.
    pub fn index_of(&self, state: &S) -> Option<usize> {
        self.index.get(state).copied()
    }

    /// Indices of states satisfying a predicate.
    pub fn states_where(&self, mut pred: impl FnMut(&S) -> bool) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(s))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Records the outcome of a finished exploration into the telemetry
/// registry. Serial and parallel explorers share these names, so consumers
/// see one set of exploration metrics regardless of engine.
fn record_explored(mdp: &ExplicitMdp) {
    if !pa_telemetry::enabled() {
        return;
    }
    pa_telemetry::counter("mdp.explore.runs").inc();
    pa_telemetry::counter("mdp.explore.states").add(mdp.num_states() as u64);
    pa_telemetry::counter("mdp.explore.choices").add(mdp.num_choices() as u64);
    pa_telemetry::counter("mdp.explore.transitions").add(mdp.num_transitions() as u64);
}

/// Explores the reachable state space of an implicit automaton into an
/// [`ExplicitMdp`], assigning each transition the cost given by `cost_of`.
///
/// # Errors
///
/// Returns [`MdpError::StateLimitExceeded`] if more than `limit` states are
/// discovered, and propagates model-validation errors (which indicate a bug
/// in the implicit model, e.g. an unnormalized step distribution).
pub fn explore<M: Automaton>(
    automaton: &M,
    mut cost_of: impl FnMut(&M::State, &M::Action) -> u32,
    limit: usize,
) -> Result<Explored<M::State>, MdpError> {
    let _span = pa_telemetry::span("mdp.explore.seconds");
    let mut states: Vec<M::State> = Vec::new();
    let mut index: FxHashMap<M::State, usize> = FxHashMap::default();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut choices: Vec<Vec<Choice>> = Vec::new();

    // Interns a state by reference, cloning only on first sight — the hot
    // path (an already-known successor) is a single hash lookup.
    let intern = |s: &M::State,
                  states: &mut Vec<M::State>,
                  index: &mut FxHashMap<M::State, usize>,
                  queue: &mut VecDeque<usize>|
     -> Result<usize, MdpError> {
        if let Some(&id) = index.get(s) {
            return Ok(id);
        }
        let id = states.len();
        if id >= limit {
            return Err(MdpError::StateLimitExceeded { limit });
        }
        states.push(s.clone());
        index.insert(s.clone(), id);
        queue.push_back(id);
        Ok(id)
    };

    let mut initial = Vec::new();
    for s in automaton.start_states() {
        initial.push(intern(&s, &mut states, &mut index, &mut queue)?);
    }
    if initial.is_empty() {
        return Err(MdpError::NoInitialStates);
    }

    while let Some(id) = queue.pop_front() {
        let state = states[id].clone();
        let mut cs = Vec::new();
        for step in automaton.steps(&state) {
            let cost = cost_of(&state, &step.action);
            let mut transitions = Vec::with_capacity(step.target.len());
            for (t, p) in step.target.iter() {
                let ti = intern(t, &mut states, &mut index, &mut queue)?;
                transitions.push((ti, p.value()));
            }
            cs.push(Choice { cost, transitions });
        }
        debug_assert_eq!(choices.len(), id);
        choices.push(cs);
    }

    let mdp = ExplicitMdp::new(choices, initial)?;
    record_explored(&mdp);
    Ok(Explored { states, index, mdp })
}

/// Cap on the adaptive oversharding factor: more than 8 shards per worker
/// buys no further balance but multiplies spawn overhead.
const MAX_SHARD_FACTOR: usize = 8;

/// Adapts the oversharding factor from one BFS level's fresh-state yields.
///
/// Contiguous chunking keeps the *input* shards even; imbalance shows up in
/// how unevenly *new* states fall out of them. When the busiest shard
/// yields more than ~150% of an even split, the next level is cut into
/// `2×` as many shards per worker (capped at [`MAX_SHARD_FACTOR`]) so the
/// OS scheduler can spread the hot region across workers; once yields are
/// within ~110% of even, the factor decays back toward 1 to shed spawn
/// overhead.
///
/// Pure and driven only by deterministic quantities (fresh yields are a
/// function of the model and the previous factors), so the shard schedule —
/// and therefore the exploration result, which is shard-size-invariant by
/// the merge contract anyway — stays reproducible for a fixed worker count.
fn next_shard_factor(factor: usize, max_fresh: u64, total_fresh: u64, shards: usize) -> usize {
    if shards <= 1 || total_fresh == 0 {
        return factor;
    }
    let even = total_fresh as f64 / shards as f64;
    if max_fresh as f64 > even * 1.5 {
        (factor * 2).min(MAX_SHARD_FACTOR)
    } else if max_fresh as f64 <= even * 1.1 {
        (factor / 2).max(1)
    } else {
        factor
    }
}

/// A successor reference produced by a shard worker: either a state already
/// interned when the level started, or the `k`-th *new* state this shard
/// discovered.
enum Succ {
    Known(usize),
    Fresh(usize),
}

/// One choice as expanded by a shard: its cost and shard-relative targets.
type ShardChoice = (u32, Vec<(Succ, f64)>);

/// One shard's expansion output for a BFS level.
struct ShardOutput<S> {
    /// New states in encounter order (shard-local ids `0..fresh.len()`).
    fresh: Vec<S>,
    /// Per expanded state, its choices as `(cost, transitions)`.
    expansions: Vec<Vec<ShardChoice>>,
}

/// Expands `chunk` (state ids of the current level) against the read-only
/// snapshot: successors already in `index` become [`Succ::Known`], new ones
/// are deduplicated into a shard-local intern map.
fn expand_shard<M: Automaton>(
    automaton: &M,
    cost_of: &(impl Fn(&M::State, &M::Action) -> u32 + Sync),
    states: &[M::State],
    index: &FxHashMap<M::State, usize>,
    chunk: &[usize],
) -> ShardOutput<M::State> {
    let mut fresh: Vec<M::State> = Vec::new();
    let mut local: FxHashMap<M::State, usize> = FxHashMap::default();
    let mut expansions = Vec::with_capacity(chunk.len());
    for &id in chunk {
        let state = &states[id];
        let mut cs = Vec::new();
        for step in automaton.steps(state) {
            let cost = cost_of(state, &step.action);
            let mut transitions = Vec::with_capacity(step.target.len());
            for (t, p) in step.target.iter() {
                let succ = if let Some(&g) = index.get(t) {
                    Succ::Known(g)
                } else if let Some(&l) = local.get(t) {
                    Succ::Fresh(l)
                } else {
                    let l = fresh.len();
                    fresh.push(t.clone());
                    local.insert(t.clone(), l);
                    Succ::Fresh(l)
                };
                transitions.push((succ, p.value()));
            }
            cs.push((cost, transitions));
        }
        expansions.push(cs);
    }
    ShardOutput { fresh, expansions }
}

/// Parallel [`explore`] with the default worker count (available
/// parallelism, overridable via `PA_MDP_WORKERS`). Drop-in replacement:
/// produces bit-for-bit the same [`Explored`] as the serial explorer.
///
/// # Errors
///
/// Same as [`explore`].
pub fn par_explore<M>(
    automaton: &M,
    cost_of: impl Fn(&M::State, &M::Action) -> u32 + Sync,
    limit: usize,
) -> Result<Explored<M::State>, MdpError>
where
    M: Automaton + Sync,
    M::State: Send + Sync,
{
    par_explore_workers(automaton, cost_of, limit, None)
}

/// [`par_explore`] with an explicit worker count (used by the determinism
/// property tests; `None` resolves as in [`crate::resolve_workers`]).
///
/// # Errors
///
/// Same as [`explore`].
pub fn par_explore_workers<M>(
    automaton: &M,
    cost_of: impl Fn(&M::State, &M::Action) -> u32 + Sync,
    limit: usize,
    workers: Option<usize>,
) -> Result<Explored<M::State>, MdpError>
where
    M: Automaton + Sync,
    M::State: Send + Sync,
{
    let workers = crate::csr::resolve_workers(workers);
    if workers <= 1 {
        // One worker: the sharded frontier machinery only adds overhead,
        // and the serial BFS produces the identical result by contract.
        return explore(automaton, |s, a| cost_of(s, a), limit);
    }
    // Below this level width, shard spawn overhead dominates expansion.
    const PAR_MIN_LEVEL: usize = 128;

    let mut states: Vec<M::State> = Vec::new();
    let mut index: FxHashMap<M::State, usize> = FxHashMap::default();
    let mut choices: Vec<Vec<Choice>> = Vec::new();

    // Level 0: intern the start states serially, exactly like `explore`.
    let mut initial = Vec::new();
    let mut level: Vec<usize> = Vec::new();
    for s in automaton.start_states() {
        let id = if let Some(&id) = index.get(&s) {
            id
        } else {
            let id = states.len();
            if id >= limit {
                return Err(MdpError::StateLimitExceeded { limit });
            }
            states.push(s.clone());
            index.insert(s, id);
            level.push(id);
            id
        };
        initial.push(id);
    }
    if initial.is_empty() {
        return Err(MdpError::NoInitialStates);
    }

    let _span = pa_telemetry::span("mdp.explore.seconds");
    let cost_of = &cost_of;
    // Adaptive oversharding: shards per level = workers × this factor,
    // adjusted between levels by `next_shard_factor`.
    let mut shard_factor: usize = 1;
    while !level.is_empty() {
        if pa_telemetry::enabled() {
            pa_telemetry::histogram("mdp.explore.frontier").record(level.len() as u64);
            pa_telemetry::gauge("mdp.explore.peak_frontier").set_max(level.len() as i64);
        }
        // Expand the level in shards (in parallel when it pays off)...
        let outputs: Vec<ShardOutput<M::State>> = if workers <= 1 || level.len() < PAR_MIN_LEVEL {
            vec![expand_shard(automaton, cost_of, &states, &index, &level)]
        } else {
            let shards = (workers * shard_factor).min(level.len());
            let chunk = level.len().div_ceil(shards);
            let states_ref: &[M::State] = &states;
            let index_ref = &index;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = level
                    .chunks(chunk)
                    .map(|shard| {
                        scope.spawn(move |_| {
                            expand_shard(automaton, cost_of, states_ref, index_ref, shard)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("exploration worker panicked"))
                    .collect()
            })
            .expect("exploration scope panicked")
        };

        // Shard imbalance: how much the busiest shard's fresh-state yield
        // exceeds a perfectly even split (100 = balanced). Contiguous
        // chunking makes the *input* shards even; the imbalance shows up in
        // how unevenly new states fall out of them. The same yields drive
        // the adaptive factor for the next level — unconditionally, so the
        // shard schedule does not depend on whether telemetry is on.
        if outputs.len() > 1 {
            let total: u64 = outputs.iter().map(|o| o.fresh.len() as u64).sum();
            let max = outputs
                .iter()
                .map(|o| o.fresh.len() as u64)
                .max()
                .unwrap_or(0);
            let next = next_shard_factor(shard_factor, max, total, outputs.len());
            if pa_telemetry::enabled() {
                if let Some(pct) = (max * outputs.len() as u64 * 100).checked_div(total) {
                    pa_telemetry::histogram("mdp.explore.shard_imbalance_pct").record(pct);
                }
                if next > shard_factor {
                    pa_telemetry::counter("mdp.explore.rebalances").inc();
                }
                pa_telemetry::gauge("mdp.explore.shard_factor").set_max(next as i64);
            }
            shard_factor = next;
        }

        // ...then merge deterministically: shard order is level order, so
        // global ids are assigned exactly as the serial explorer would.
        let mut next_level: Vec<usize> = Vec::new();
        for out in outputs {
            let mut local_to_global = Vec::with_capacity(out.fresh.len());
            for s in out.fresh {
                // A state can be fresh in two shards at once; the first
                // shard (earlier in level order) wins, as in serial BFS.
                let id = if let Some(&id) = index.get(&s) {
                    id
                } else {
                    let id = states.len();
                    if id >= limit {
                        return Err(MdpError::StateLimitExceeded { limit });
                    }
                    states.push(s.clone());
                    index.insert(s, id);
                    next_level.push(id);
                    id
                };
                local_to_global.push(id);
            }
            for cs in out.expansions {
                let resolved: Vec<Choice> = cs
                    .into_iter()
                    .map(|(cost, transitions)| Choice {
                        cost,
                        transitions: transitions
                            .into_iter()
                            .map(|(succ, p)| {
                                let t = match succ {
                                    Succ::Known(g) => g,
                                    Succ::Fresh(l) => local_to_global[l],
                                };
                                (t, p)
                            })
                            .collect(),
                    })
                    .collect();
                choices.push(resolved);
            }
        }
        debug_assert_eq!(choices.len() + next_level.len(), states.len());
        level = next_level;
    }

    let mdp = ExplicitMdp::new(choices, initial)?;
    record_explored(&mdp);
    Ok(Explored { states, index, mdp })
}

/// The outcome of an exhaustive invariant check over the reachable states.
#[derive(Debug, Clone)]
pub enum InvariantResult<S> {
    /// Every reachable state satisfies the invariant.
    Holds {
        /// Number of states examined.
        states_checked: usize,
    },
    /// A reachable state violates the invariant; a shortest witness path of
    /// states from a start state is included.
    Violated {
        /// The violating state.
        state: S,
        /// States along a shortest path from a start state to the violation
        /// (inclusive of both endpoints).
        path: Vec<S>,
    },
}

impl<S> InvariantResult<S> {
    /// `true` when the invariant holds everywhere.
    pub fn holds(&self) -> bool {
        matches!(self, InvariantResult::Holds { .. })
    }
}

/// Exhaustively checks a state invariant over the reachable state space of
/// `automaton` (breadth-first, so a violation comes with a shortest witness
/// path). Used for Lemma 6.1 of the paper.
///
/// # Errors
///
/// Returns [`MdpError::StateLimitExceeded`] if the reachable space exceeds
/// `limit`.
pub fn check_invariant<M: Automaton>(
    automaton: &M,
    mut invariant: impl FnMut(&M::State) -> bool,
    limit: usize,
) -> Result<InvariantResult<M::State>, MdpError> {
    let mut index: FxHashMap<M::State, usize> = FxHashMap::default();
    let mut parent: Vec<Option<usize>> = Vec::new();
    let mut states: Vec<M::State> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let push = |s: &M::State,
                from: Option<usize>,
                index: &mut FxHashMap<M::State, usize>,
                states: &mut Vec<M::State>,
                parent: &mut Vec<Option<usize>>,
                queue: &mut VecDeque<usize>|
     -> Result<Option<usize>, MdpError> {
        if index.contains_key(s) {
            return Ok(None);
        }
        let id = states.len();
        if id >= limit {
            return Err(MdpError::StateLimitExceeded { limit });
        }
        index.insert(s.clone(), id);
        states.push(s.clone());
        parent.push(from);
        queue.push_back(id);
        Ok(Some(id))
    };

    let mut witness: Option<usize> = None;
    'outer: {
        for s in automaton.start_states() {
            if let Some(id) = push(&s, None, &mut index, &mut states, &mut parent, &mut queue)? {
                if !invariant(&states[id]) {
                    witness = Some(id);
                    break 'outer;
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            let state = states[id].clone();
            for step in automaton.steps(&state) {
                for (t, _) in step.target.iter() {
                    if let Some(nid) = push(
                        t,
                        Some(id),
                        &mut index,
                        &mut states,
                        &mut parent,
                        &mut queue,
                    )? {
                        if !invariant(&states[nid]) {
                            witness = Some(nid);
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    match witness {
        None => Ok(InvariantResult::Holds {
            states_checked: states.len(),
        }),
        Some(id) => {
            let mut path = Vec::new();
            let mut cur = Some(id);
            while let Some(i) = cur {
                path.push(states[i].clone());
                cur = parent[i];
            }
            path.reverse();
            Ok(InvariantResult::Violated {
                state: states[id].clone(),
                path,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_core::TableAutomaton;

    fn coin_walk() -> TableAutomaton<u8, &'static str> {
        // 0 --flip--> {1, 2}; 1 --back--> 0; 2 terminal.
        TableAutomaton::builder()
            .start(0)
            .step(0, "flip", [(1, 0.5), (2, 0.5)])
            .unwrap()
            .det_step(1, "back", 0)
            .build()
            .unwrap()
    }

    #[test]
    fn explore_builds_consistent_mapping() {
        let m = coin_walk();
        let e = explore(&m, |_, _| 1, 1000).unwrap();
        assert_eq!(e.states.len(), 3);
        assert_eq!(e.mdp.num_states(), 3);
        for (i, s) in e.states.iter().enumerate() {
            assert_eq!(e.index[s], i);
        }
        // Initial state is state 0 of the automaton.
        let init = e.mdp.initial_states()[0];
        assert_eq!(e.states[init], 0);
    }

    #[test]
    fn explore_respects_costs() {
        let m = coin_walk();
        let e = explore(&m, |_, a| if *a == "flip" { 1 } else { 0 }, 1000).unwrap();
        let s0 = e.index[&0];
        let s1 = e.index[&1];
        assert_eq!(e.mdp.choices(s0)[0].cost, 1);
        assert_eq!(e.mdp.choices(s1)[0].cost, 0);
    }

    #[test]
    fn explore_enforces_limit() {
        let m = coin_walk();
        assert!(matches!(
            explore(&m, |_, _| 1, 2),
            Err(MdpError::StateLimitExceeded { limit: 2 })
        ));
    }

    #[test]
    fn par_explore_matches_serial_exactly() {
        let m = coin_walk();
        let serial = explore(&m, |_, _| 1, 1000).unwrap();
        for workers in [1, 2, 5] {
            let par = par_explore_workers(&m, |_, _| 1, 1000, Some(workers)).unwrap();
            assert_eq!(par.states, serial.states, "workers={workers}");
            for s in 0..serial.mdp.num_states() {
                assert_eq!(
                    par.mdp.choices(s),
                    serial.mdp.choices(s),
                    "workers={workers}"
                );
            }
            assert_eq!(
                par.mdp.initial_states(),
                serial.mdp.initial_states(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn shard_factor_doubles_on_hot_shard_and_decays_when_even() {
        // Busiest shard at 4× even split: double, then saturate at the cap.
        assert_eq!(next_shard_factor(1, 40, 40, 4), 2);
        assert_eq!(next_shard_factor(4, 40, 40, 4), 8);
        assert_eq!(next_shard_factor(8, 40, 40, 4), 8);
        // Perfectly even yields decay the factor back toward 1.
        assert_eq!(next_shard_factor(4, 10, 40, 4), 2);
        assert_eq!(next_shard_factor(1, 10, 40, 4), 1);
        // In the dead band (110%..150% of even) the factor holds.
        assert_eq!(next_shard_factor(2, 13, 40, 4), 2);
        // Degenerate inputs leave the factor alone.
        assert_eq!(next_shard_factor(3, 0, 0, 4), 3);
        assert_eq!(next_shard_factor(3, 5, 5, 1), 3);
    }

    /// A two-level model wide enough to trigger parallel sharding
    /// (`PAR_MIN_LEVEL`), with all the branching concentrated in one corner
    /// of the first level so the contiguous shards yield unevenly and the
    /// adaptive factor actually engages.
    fn skewed_fanout() -> TableAutomaton<u32, &'static str> {
        let mut b = TableAutomaton::builder().start(0);
        let width = 400u32;
        for i in 0..width {
            b = b.det_step(0, "spread", i + 1).det_step(i + 1, "go", {
                // The last few first-level states fan out 64-wide; the rest
                // are funnels into a handful of shared states.
                if i >= width - 8 {
                    10_000 + i * 64
                } else {
                    1_000 + i % 4
                }
            });
        }
        for i in width - 8..width {
            for j in 0..64u32 {
                b = b.det_step(10_000 + i * 64, "fan", 20_000 + i * 64 + j);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn adaptive_sharding_leaves_exploration_unchanged() {
        let m = skewed_fanout();
        let serial = explore(&m, |_, _| 1, 1_000_000).unwrap();
        for workers in [2, 3, 8] {
            let par = par_explore_workers(&m, |_, _| 1, 1_000_000, Some(workers)).unwrap();
            assert_eq!(par.states, serial.states, "workers={workers}");
            for s in 0..serial.mdp.num_states() {
                assert_eq!(
                    par.mdp.choices(s),
                    serial.mdp.choices(s),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn par_explore_enforces_limit_like_serial() {
        let m = coin_walk();
        assert!(matches!(
            par_explore_workers(&m, |_, _| 1, 2, Some(3)),
            Err(MdpError::StateLimitExceeded { limit: 2 })
        ));
    }

    #[test]
    fn target_where_matches_predicate() {
        let m = coin_walk();
        let e = explore(&m, |_, _| 1, 1000).unwrap();
        let t = e.target_where(|s| *s == 2);
        assert_eq!(t.iter().filter(|b| **b).count(), 1);
        assert_eq!(e.states_where(|s| *s == 2).len(), 1);
    }

    #[test]
    fn invariant_holds_on_safe_model() {
        let m = coin_walk();
        let r = check_invariant(&m, |s| *s <= 2, 1000).unwrap();
        assert!(r.holds());
        match r {
            InvariantResult::Holds { states_checked } => assert_eq!(states_checked, 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn invariant_violation_gives_shortest_path() {
        let m = coin_walk();
        let r = check_invariant(&m, |s| *s != 2, 1000).unwrap();
        match r {
            InvariantResult::Violated { state, path } => {
                assert_eq!(state, 2);
                assert_eq!(path, vec![0, 2]);
            }
            _ => panic!("expected violation"),
        }
    }

    #[test]
    fn invariant_checks_start_states_too() {
        let m = TableAutomaton::<u8, char>::builder()
            .start(9)
            .build()
            .unwrap();
        let r = check_invariant(&m, |s| *s != 9, 10).unwrap();
        assert!(!r.holds());
    }
}
