//! State-space exploration: building an [`ExplicitMdp`] from an implicit
//! [`pa_core::Automaton`].
//!
//! The single entry point is the [`Explore`] builder:
//!
//! ```ignore
//! let explored = Explore::new(&model)
//!     .cost(round_cost)             // default: every transition costs 1
//!     .workers(4)                   // default: serial
//!     .symmetry(RingRotation::new(n)) // default: no reduction
//!     .capacity_hint(1 << 20)
//!     .limit(20_000_000)
//!     .run()?;                      // or .run_in(PackedSpace::new(codec))
//! ```
//!
//! Serial and parallel runs share one deterministic contract:
//!
//! * serial — FIFO breadth-first search, interning states through a
//!   [`StateSpace`] (hashing with the crate's [`FxHashMap`]; SipHash
//!   dominated the profile, and model states are not attacker-controlled,
//!   see [`crate::fxhash`]).
//! * parallel — level-synchronized BFS. Each BFS level is split into
//!   contiguous shards (adaptively oversharded when the fresh yield of the
//!   busiest shard runs hot — see [`next_shard_factor`]); workers expand
//!   their shard against a read-only snapshot of the intern table,
//!   deduplicating *new* successor states in a worker-local `FxHashMap`.
//!   The main thread then merges shard outputs **in shard order**,
//!   assigning global state ids in exactly the order the serial explorer
//!   would (shard order = level order; within a shard, encounter order).
//!   The result — state ids, choice lists, transitions, and even the state
//!   at which a [`MdpError::StateLimitExceeded`] fires — is identical to
//!   the serial run for every worker count, which the property tests
//!   assert.
//!
//! With a [`Symmetry`] installed, every start state and every successor is
//! canonicalized to its orbit representative before interning, so the
//! explorers build the *quotient* MDP (up to `order()`-fold smaller).
//! Canonicalization happens at the same points in both engines, so the
//! determinism contract extends to quotient runs. The cost function must
//! be constant on orbits (all shipped cost functions depend only on the
//! action).

use std::collections::VecDeque;
use std::marker::PhantomData;

use pa_core::Automaton;

use crate::fxhash::FxHashMap;
use crate::space::{BoxedSpace, StateSpace};
use crate::symmetry::Symmetry;
use crate::{Choice, ExplicitMdp, MdpError};

/// The result of exploring an implicit model: the explicit MDP plus the
/// state store mapping dense indices to concrete states.
///
/// Choice order is preserved: `mdp.choices(i)[k]` corresponds to
/// `automaton.steps(&state(i))[k]`, so an optimal policy over the explicit
/// model can be replayed on the implicit one. The space parameter defaults
/// to the boxed representation; [`crate::PackedSpace`] substitutes a
/// fixed-width encoded store with the same dense ids.
#[derive(Debug, Clone)]
pub struct Explored<S, SP = BoxedSpace<S>> {
    /// The state store: dense id ↔ concrete state.
    pub space: SP,
    /// The explicit model.
    pub mdp: ExplicitMdp,
    marker: PhantomData<fn() -> S>,
}

impl<S, SP: StateSpace<S>> Explored<S, SP> {
    /// Wraps a state store and model pair.
    fn new(space: SP, mdp: ExplicitMdp) -> Explored<S, SP> {
        Explored {
            space,
            mdp,
            marker: PhantomData,
        }
    }

    /// Decodes the concrete state with dense index `i`.
    pub fn state(&self, i: usize) -> S {
        self.space.state(i)
    }

    /// Number of explored states.
    pub fn num_states(&self) -> usize {
        self.space.len()
    }

    /// Builds a dense boolean target vector from a state predicate.
    ///
    /// This is the bridge between the two target conventions in this crate:
    /// analyses take dense `&[bool]` masks (states are anonymous indices
    /// there), while exploration-level code thinks in predicates over
    /// concrete states. [`Explored::query_where`] composes the two
    /// directly; [`crate::Query::target`] also accepts index lists.
    pub fn target_where(&self, mut pred: impl FnMut(&S) -> bool) -> Vec<bool> {
        let mut out = vec![false; self.space.len()];
        self.space.for_each_state(|i, s| out[i] = pred(s));
        out
    }

    /// Starts a [`crate::Query`] over the explored model (flattening it to
    /// CSR once).
    pub fn query(&self) -> crate::Query<'static> {
        crate::Query::over(&self.mdp)
    }

    /// Starts a [`crate::Query`] targeting the states that satisfy `pred`.
    pub fn query_where(&self, pred: impl FnMut(&S) -> bool) -> crate::Query<'static> {
        let target = self.target_where(pred);
        self.query().target(target)
    }

    /// Dense index of a concrete state, or `None` when it was never
    /// reached. This is the lookup direction policy replay needs: a
    /// trajectory's concrete state maps back to the index the extracted
    /// [`crate::BoundedPolicy`] was computed over.
    ///
    /// On a quotient model the store holds orbit representatives only —
    /// canonicalize the probe with the same [`Symmetry`] before looking it
    /// up.
    pub fn index_of(&self, state: &S) -> Option<usize> {
        self.space.get(state)
    }

    /// Indices of states satisfying a predicate.
    pub fn states_where(&self, mut pred: impl FnMut(&S) -> bool) -> Vec<usize> {
        let mut out = Vec::new();
        self.space.for_each_state(|i, s| {
            if pred(s) {
                out.push(i);
            }
        });
        out
    }

    /// Estimated resident bytes of the state store (see
    /// [`StateSpace::mem_bytes`]).
    pub fn mem_bytes(&self) -> u64 {
        self.space.mem_bytes()
    }
}

impl<S: Clone + Eq + std::hash::Hash> Explored<S, BoxedSpace<S>> {
    /// The explored states in id order (boxed representation only).
    pub fn states(&self) -> &[S] {
        self.space.states()
    }

    /// Consumes the exploration into its state vector.
    pub fn into_states(self) -> Vec<S> {
        self.space.into_states()
    }
}

/// Records the outcome of a finished exploration into the telemetry
/// registry. Serial and parallel explorers share these names, so consumers
/// see one set of exploration metrics regardless of engine.
fn record_explored(mdp: &ExplicitMdp) {
    if !pa_telemetry::enabled() {
        return;
    }
    pa_telemetry::counter("mdp.explore.runs").inc();
    pa_telemetry::counter("mdp.explore.states").add(mdp.num_states() as u64);
    pa_telemetry::counter("mdp.explore.choices").add(mdp.num_choices() as u64);
    pa_telemetry::counter("mdp.explore.transitions").add(mdp.num_transitions() as u64);
}

/// Worker-count selection for an [`Explore`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workers {
    /// Serial FIFO BFS (the default).
    Serial,
    /// Parallel with the environment-resolved count
    /// ([`crate::resolve_workers`] with `None`).
    Auto,
    /// Parallel with an explicit count.
    Exact(usize),
}

/// Builder for state-space exploration — see the crate docs for the
/// contract and an example.
pub struct Explore<
    'a,
    M: Automaton,
    F = fn(&<M as Automaton>::State, &<M as Automaton>::Action) -> u32,
> {
    automaton: &'a M,
    cost_of: F,
    limit: usize,
    workers: Workers,
    symmetry: Option<Box<dyn Symmetry<M::State> + 'a>>,
    capacity_hint: usize,
}

/// The default cost function: every transition costs one unit.
fn unit_cost<S, A>(_s: &S, _a: &A) -> u32 {
    1
}

impl<'a, M: Automaton> Explore<'a, M> {
    /// Starts a builder over `automaton` with unit costs, no state limit,
    /// serial execution, and no symmetry reduction.
    pub fn new(automaton: &'a M) -> Explore<'a, M> {
        Explore {
            automaton,
            cost_of: unit_cost::<M::State, M::Action>,
            limit: usize::MAX,
            workers: Workers::Serial,
            symmetry: None,
            capacity_hint: 0,
        }
    }
}

impl<'a, M: Automaton, F> Explore<'a, M, F> {
    /// Sets the transition cost function (replacing the unit default).
    /// With a symmetry installed the function must be constant on orbits.
    pub fn cost<F2: Fn(&M::State, &M::Action) -> u32>(self, cost_of: F2) -> Explore<'a, M, F2> {
        Explore {
            automaton: self.automaton,
            cost_of,
            limit: self.limit,
            workers: self.workers,
            symmetry: self.symmetry,
            capacity_hint: self.capacity_hint,
        }
    }

    /// Caps the number of explored states;
    /// [`MdpError::StateLimitExceeded`] fires beyond it.
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Requests parallel exploration: `Some(k)` for an explicit worker
    /// count, `None` for the environment-resolved default (as in
    /// [`crate::resolve_workers`]). A count of 1 runs the serial engine,
    /// which produces the identical result by contract.
    pub fn workers(mut self, workers: impl Into<Option<usize>>) -> Self {
        self.workers = match workers.into() {
            Some(k) => Workers::Exact(k),
            None => Workers::Auto,
        };
        self
    }

    /// Requests parallel exploration with the environment-resolved worker
    /// count (sugar for `.workers(None)`).
    pub fn parallel(mut self) -> Self {
        self.workers = Workers::Auto;
        self
    }

    /// Installs a symmetry: states are canonicalized to orbit
    /// representatives before interning, building the quotient MDP.
    pub fn symmetry(mut self, symmetry: impl Symmetry<M::State> + 'a) -> Self {
        self.symmetry = Some(Box::new(symmetry));
        self
    }

    /// Pre-reserves the state store (and interner) for roughly `states`
    /// entries, avoiding rehash stalls on explorations of known size.
    pub fn capacity_hint(mut self, states: usize) -> Self {
        self.capacity_hint = states;
        self
    }
}

impl<M, F> Explore<'_, M, F>
where
    M: Automaton + Sync,
    M::State: Send + Sync,
    F: Fn(&M::State, &M::Action) -> u32 + Sync,
{
    /// Runs the exploration into the default boxed state store.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateLimitExceeded`] if more than the configured
    /// limit of states is discovered, [`MdpError::NoInitialStates`] for a
    /// model without start states, and propagates model-validation errors
    /// (which indicate a bug in the implicit model, e.g. an unnormalized
    /// step distribution).
    pub fn run(self) -> Result<Explored<M::State>, MdpError> {
        self.run_in(BoxedSpace::default())
    }

    /// Runs the exploration into an explicit state store (e.g. a
    /// [`crate::PackedSpace`] holding fixed-width encoded states).
    ///
    /// # Errors
    ///
    /// Same as [`Explore::run`].
    pub fn run_in<SP>(self, mut space: SP) -> Result<Explored<M::State, SP>, MdpError>
    where
        SP: StateSpace<M::State> + Send + Sync,
    {
        if self.capacity_hint > 0 {
            space.reserve(self.capacity_hint.min(self.limit));
        }
        let sym = self.symmetry.as_deref();
        let workers = match self.workers {
            Workers::Serial => 1,
            Workers::Auto => crate::csr::resolve_workers(None),
            Workers::Exact(k) => crate::csr::resolve_workers(Some(k)),
        };
        let mdp = if workers <= 1 {
            let mut cost_of = &self.cost_of;
            serial_core(self.automaton, &mut cost_of, self.limit, sym, &mut space)?
        } else {
            par_core(
                self.automaton,
                &self.cost_of,
                self.limit,
                sym,
                &mut space,
                workers,
            )?
        };
        record_explored(&mdp);
        Ok(Explored::new(space, mdp))
    }
}

/// A row-by-row consumer for [`Explore::run_streamed`]: receives each
/// explored state's validated choice list exactly once, in dense-id order
/// (`0, 1, 2, …`), instead of the exploration accumulating the whole
/// nested model in memory.
///
/// `pa-store`'s block writer implements this to spill CSR blocks to disk
/// as exploration closes them.
pub trait RowSink {
    /// Consumes state `id`'s choices. `id` increases by exactly one per
    /// call. Errors (e.g. I/O failures of a disk spill) abort the
    /// exploration; [`MdpError::Backend`] is the conventional carrier.
    fn state_row(&mut self, id: usize, choices: &[Choice]) -> Result<(), MdpError>;
}

/// Counts of a finished [`Explore::run_streamed`] exploration — what an
/// [`ExplicitMdp`] would have reported, without the model ever having been
/// resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSummary {
    /// The initial state indices.
    pub initial: Vec<usize>,
    /// Number of explored states (rows emitted).
    pub num_states: usize,
    /// Total number of choices across all rows.
    pub num_choices: u64,
    /// Total number of probabilistic transitions across all rows.
    pub num_transitions: u64,
}

impl<M, F> Explore<'_, M, F>
where
    M: Automaton + Sync,
    M::State: Send + Sync,
    F: Fn(&M::State, &M::Action) -> u32 + Sync,
{
    /// Runs the exploration, streaming each state's choices to `sink`
    /// instead of materializing an [`ExplicitMdp`]. Returns the state store
    /// and the exploration counts; peak memory is the store plus the BFS
    /// frontier — the model itself lives wherever the sink puts it.
    ///
    /// Rows are emitted in dense-id order with the exact ids, choice
    /// order, and transition order of [`Explore::run_in`] (serial FIFO BFS
    /// assigns ids in pop order, so a popped state's row is final).
    /// Streaming always runs the serial engine — a worker-count setting is
    /// ignored — and the serial/parallel determinism contract makes that
    /// the same model the parallel explorer would build.
    ///
    /// Each row is validated as [`ExplicitMdp::new`] would (empty support,
    /// non-finite or negative weights, weight sums); successor indices come
    /// from the interner and are in range by construction.
    ///
    /// # Errors
    ///
    /// As [`Explore::run_in`], plus whatever `sink` returns.
    pub fn run_streamed<SP>(
        self,
        mut space: SP,
        sink: &mut dyn RowSink,
    ) -> Result<(SP, StreamSummary), MdpError>
    where
        SP: StateSpace<M::State> + Send + Sync,
    {
        if self.capacity_hint > 0 {
            space.reserve(self.capacity_hint.min(self.limit));
        }
        let sym = self.symmetry.as_deref();
        let _span = pa_telemetry::span("mdp.explore.seconds");
        let mut queue: VecDeque<usize> = VecDeque::new();

        let intern = |s: &M::State,
                      space: &mut SP,
                      queue: &mut VecDeque<usize>|
         -> Result<usize, MdpError> {
            let canon;
            let s = match sym {
                Some(sym) => {
                    canon = sym.canon(s);
                    &canon
                }
                None => s,
            };
            let (id, new) = space.intern(s);
            if new {
                if space.len() > self.limit {
                    return Err(MdpError::StateLimitExceeded { limit: self.limit });
                }
                queue.push_back(id);
            }
            Ok(id)
        };

        let mut initial = Vec::new();
        for s in self.automaton.start_states() {
            initial.push(intern(&s, &mut space, &mut queue)?);
        }
        if initial.is_empty() {
            return Err(MdpError::NoInitialStates);
        }

        let cost_of = &self.cost_of;
        let mut num_choices = 0u64;
        let mut num_transitions = 0u64;
        let mut emitted = 0usize;
        while let Some(id) = queue.pop_front() {
            let state = space.state(id);
            let mut cs = Vec::new();
            for step in self.automaton.steps(&state) {
                let cost = cost_of(&state, &step.action);
                let mut transitions = Vec::with_capacity(step.target.len());
                for (t, p) in step.target.iter() {
                    let ti = intern(t, &mut space, &mut queue)?;
                    transitions.push((ti, p.value()));
                }
                cs.push(Choice { cost, transitions });
            }
            validate_row(id, &cs)?;
            num_choices += cs.len() as u64;
            num_transitions += cs.iter().map(|c| c.transitions.len() as u64).sum::<u64>();
            debug_assert_eq!(emitted, id);
            sink.state_row(id, &cs)?;
            emitted += 1;
        }

        let summary = StreamSummary {
            initial,
            num_states: space.len(),
            num_choices,
            num_transitions,
        };
        debug_assert_eq!(emitted, summary.num_states);
        if pa_telemetry::enabled() {
            pa_telemetry::counter("mdp.explore.runs").inc();
            pa_telemetry::counter("mdp.explore.states").add(summary.num_states as u64);
            pa_telemetry::counter("mdp.explore.choices").add(summary.num_choices);
            pa_telemetry::counter("mdp.explore.transitions").add(summary.num_transitions);
        }
        Ok((space, summary))
    }
}

/// Per-row distribution validation for the streaming explorer — the same
/// rules [`ExplicitMdp::new`] applies to a finished model (successor
/// indices are interner-produced and therefore in range).
fn validate_row(state: usize, cs: &[Choice]) -> Result<(), MdpError> {
    for c in cs {
        if c.transitions.is_empty() {
            return Err(MdpError::BadDistribution {
                state,
                reason: "empty support".into(),
            });
        }
        let mut sum = 0.0;
        for &(_, p) in &c.transitions {
            if !p.is_finite() || p < 0.0 {
                return Err(MdpError::BadDistribution {
                    state,
                    reason: format!("weight {p}"),
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(MdpError::BadDistribution {
                state,
                reason: format!("weights sum to {sum}"),
            });
        }
    }
    Ok(())
}

/// Serial FIFO BFS over `automaton`, interning (canonicalized) states into
/// `space`. The builder's serial path.
fn serial_core<M: Automaton, SP: StateSpace<M::State>>(
    automaton: &M,
    cost_of: &mut impl FnMut(&M::State, &M::Action) -> u32,
    limit: usize,
    sym: Option<&dyn Symmetry<M::State>>,
    space: &mut SP,
) -> Result<ExplicitMdp, MdpError> {
    let _span = pa_telemetry::span("mdp.explore.seconds");
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut choices: Vec<Vec<Choice>> = Vec::new();

    // Interns a state (canonicalizing first under a symmetry); the hot
    // path (an already-known successor) is a single hash lookup.
    let intern =
        |s: &M::State, space: &mut SP, queue: &mut VecDeque<usize>| -> Result<usize, MdpError> {
            let canon;
            let s = match sym {
                Some(sym) => {
                    canon = sym.canon(s);
                    &canon
                }
                None => s,
            };
            let (id, new) = space.intern(s);
            if new {
                if space.len() > limit {
                    return Err(MdpError::StateLimitExceeded { limit });
                }
                queue.push_back(id);
            }
            Ok(id)
        };

    let mut initial = Vec::new();
    for s in automaton.start_states() {
        initial.push(intern(&s, space, &mut queue)?);
    }
    if initial.is_empty() {
        return Err(MdpError::NoInitialStates);
    }

    while let Some(id) = queue.pop_front() {
        let state = space.state(id);
        let mut cs = Vec::new();
        for step in automaton.steps(&state) {
            let cost = cost_of(&state, &step.action);
            let mut transitions = Vec::with_capacity(step.target.len());
            for (t, p) in step.target.iter() {
                let ti = intern(t, space, &mut queue)?;
                transitions.push((ti, p.value()));
            }
            cs.push(Choice { cost, transitions });
        }
        debug_assert_eq!(choices.len(), id);
        choices.push(cs);
    }

    ExplicitMdp::new(choices, initial)
}

/// Cap on the adaptive oversharding factor: more than 8 shards per worker
/// buys no further balance but multiplies spawn overhead.
const MAX_SHARD_FACTOR: usize = 8;

/// Adapts the oversharding factor from one BFS level's fresh-state yields.
///
/// Contiguous chunking keeps the *input* shards even; imbalance shows up in
/// how unevenly *new* states fall out of them. When the busiest shard
/// yields more than ~150% of an even split, the next level is cut into
/// `2×` as many shards per worker (capped at [`MAX_SHARD_FACTOR`]) so the
/// OS scheduler can spread the hot region across workers; once yields are
/// within ~110% of even, the factor decays back toward 1 to shed spawn
/// overhead.
///
/// Pure and driven only by deterministic quantities (fresh yields are a
/// function of the model and the previous factors), so the shard schedule —
/// and therefore the exploration result, which is shard-size-invariant by
/// the merge contract anyway — stays reproducible for a fixed worker count.
fn next_shard_factor(factor: usize, max_fresh: u64, total_fresh: u64, shards: usize) -> usize {
    if shards <= 1 || total_fresh == 0 {
        return factor;
    }
    let even = total_fresh as f64 / shards as f64;
    if max_fresh as f64 > even * 1.5 {
        (factor * 2).min(MAX_SHARD_FACTOR)
    } else if max_fresh as f64 <= even * 1.1 {
        (factor / 2).max(1)
    } else {
        factor
    }
}

/// A successor reference produced by a shard worker: either a state already
/// interned when the level started, or the `k`-th *new* state this shard
/// discovered.
enum Succ {
    Known(usize),
    Fresh(usize),
}

/// One choice as expanded by a shard: its cost and shard-relative targets.
type ShardChoice = (u32, Vec<(Succ, f64)>);

/// One shard's expansion output for a BFS level.
struct ShardOutput<S> {
    /// New states in encounter order (shard-local ids `0..fresh.len()`).
    fresh: Vec<S>,
    /// Per expanded state, its choices as `(cost, transitions)`.
    expansions: Vec<Vec<ShardChoice>>,
}

/// Expands `chunk` (state ids of the current level) against the read-only
/// snapshot: successors already interned become [`Succ::Known`], new ones
/// are deduplicated into a shard-local intern map. Under a symmetry, each
/// successor is canonicalized first — the same point at which the serial
/// engine canonicalizes, preserving the determinism contract.
fn expand_shard<M: Automaton, SP: StateSpace<M::State>>(
    automaton: &M,
    cost_of: &(impl Fn(&M::State, &M::Action) -> u32 + Sync),
    sym: Option<&dyn Symmetry<M::State>>,
    space: &SP,
    chunk: &[usize],
) -> ShardOutput<M::State> {
    let mut fresh: Vec<M::State> = Vec::new();
    let mut local: FxHashMap<M::State, usize> = FxHashMap::default();
    let mut expansions = Vec::with_capacity(chunk.len());
    for &id in chunk {
        let state = space.state(id);
        let mut cs = Vec::new();
        for step in automaton.steps(&state) {
            let cost = cost_of(&state, &step.action);
            let mut transitions = Vec::with_capacity(step.target.len());
            for (t, p) in step.target.iter() {
                let canon;
                let t = match sym {
                    Some(sym) => {
                        canon = sym.canon(t);
                        &canon
                    }
                    None => t,
                };
                let succ = if let Some(g) = space.get(t) {
                    Succ::Known(g)
                } else if let Some(&l) = local.get(t) {
                    Succ::Fresh(l)
                } else {
                    let l = fresh.len();
                    fresh.push(t.clone());
                    local.insert(t.clone(), l);
                    Succ::Fresh(l)
                };
                transitions.push((succ, p.value()));
            }
            cs.push((cost, transitions));
        }
        expansions.push(cs);
    }
    ShardOutput { fresh, expansions }
}

/// Level-synchronized parallel BFS (see the [module docs](self) for the
/// merge contract). `workers` is already resolved and `> 1`.
fn par_core<M, F, SP>(
    automaton: &M,
    cost_of: &F,
    limit: usize,
    sym: Option<&dyn Symmetry<M::State>>,
    space: &mut SP,
    workers: usize,
) -> Result<ExplicitMdp, MdpError>
where
    M: Automaton + Sync,
    M::State: Send + Sync,
    F: Fn(&M::State, &M::Action) -> u32 + Sync,
    SP: StateSpace<M::State> + Send + Sync,
{
    // Below this level width, shard spawn overhead dominates expansion.
    const PAR_MIN_LEVEL: usize = 128;

    let mut choices: Vec<Vec<Choice>> = Vec::new();

    // Level 0: intern the start states serially, exactly like the serial
    // engine.
    let mut initial = Vec::new();
    let mut level: Vec<usize> = Vec::new();
    for s in automaton.start_states() {
        let canon;
        let s = match sym {
            Some(sym) => {
                canon = sym.canon(&s);
                &canon
            }
            None => &s,
        };
        let (id, new) = space.intern(s);
        if new {
            if space.len() > limit {
                return Err(MdpError::StateLimitExceeded { limit });
            }
            level.push(id);
        }
        initial.push(id);
    }
    if initial.is_empty() {
        return Err(MdpError::NoInitialStates);
    }

    let _span = pa_telemetry::span("mdp.explore.seconds");
    // Adaptive oversharding: shards per level = workers × this factor,
    // adjusted between levels by `next_shard_factor`.
    let mut shard_factor: usize = 1;
    while !level.is_empty() {
        if pa_telemetry::enabled() {
            pa_telemetry::histogram("mdp.explore.frontier").record(level.len() as u64);
            pa_telemetry::gauge("mdp.explore.peak_frontier").set_max(level.len() as i64);
        }
        // Expand the level in shards (in parallel when it pays off)...
        let outputs: Vec<ShardOutput<M::State>> = if level.len() < PAR_MIN_LEVEL {
            vec![expand_shard(automaton, cost_of, sym, space, &level)]
        } else {
            let shards = (workers * shard_factor).min(level.len());
            let chunk = level.len().div_ceil(shards);
            let space_ref: &SP = space;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = level
                    .chunks(chunk)
                    .map(|shard| {
                        scope
                            .spawn(move |_| expand_shard(automaton, cost_of, sym, space_ref, shard))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("exploration worker panicked"))
                    .collect()
            })
            .expect("exploration scope panicked")
        };

        // Shard imbalance: how much the busiest shard's fresh-state yield
        // exceeds a perfectly even split (100 = balanced). Contiguous
        // chunking makes the *input* shards even; the imbalance shows up in
        // how unevenly new states fall out of them. The same yields drive
        // the adaptive factor for the next level — unconditionally, so the
        // shard schedule does not depend on whether telemetry is on.
        if outputs.len() > 1 {
            let total: u64 = outputs.iter().map(|o| o.fresh.len() as u64).sum();
            let max = outputs
                .iter()
                .map(|o| o.fresh.len() as u64)
                .max()
                .unwrap_or(0);
            let next = next_shard_factor(shard_factor, max, total, outputs.len());
            if pa_telemetry::enabled() {
                if let Some(pct) = (max * outputs.len() as u64 * 100).checked_div(total) {
                    pa_telemetry::histogram("mdp.explore.shard_imbalance_pct").record(pct);
                }
                if next > shard_factor {
                    pa_telemetry::counter("mdp.explore.rebalances").inc();
                }
                pa_telemetry::gauge("mdp.explore.shard_factor").set_max(next as i64);
            }
            shard_factor = next;
        }

        // ...then merge deterministically: shard order is level order, so
        // global ids are assigned exactly as the serial explorer would.
        let mut next_level: Vec<usize> = Vec::new();
        for out in outputs {
            let mut local_to_global = Vec::with_capacity(out.fresh.len());
            for s in out.fresh {
                // A state can be fresh in two shards at once; the first
                // shard (earlier in level order) wins, as in serial BFS.
                let (id, new) = space.intern(&s);
                if new {
                    if space.len() > limit {
                        return Err(MdpError::StateLimitExceeded { limit });
                    }
                    next_level.push(id);
                }
                local_to_global.push(id);
            }
            for cs in out.expansions {
                let resolved: Vec<Choice> = cs
                    .into_iter()
                    .map(|(cost, transitions)| Choice {
                        cost,
                        transitions: transitions
                            .into_iter()
                            .map(|(succ, p)| {
                                let t = match succ {
                                    Succ::Known(g) => g,
                                    Succ::Fresh(l) => local_to_global[l],
                                };
                                (t, p)
                            })
                            .collect(),
                    })
                    .collect();
                choices.push(resolved);
            }
        }
        debug_assert_eq!(choices.len() + next_level.len(), space.len());
        level = next_level;
    }

    ExplicitMdp::new(choices, initial)
}

/// The outcome of an exhaustive invariant check over the reachable states.
#[derive(Debug, Clone)]
pub enum InvariantResult<S> {
    /// Every reachable state satisfies the invariant.
    Holds {
        /// Number of states examined.
        states_checked: usize,
    },
    /// A reachable state violates the invariant; a shortest witness path of
    /// states from a start state is included.
    Violated {
        /// The violating state.
        state: S,
        /// States along a shortest path from a start state to the violation
        /// (inclusive of both endpoints).
        path: Vec<S>,
    },
}

impl<S> InvariantResult<S> {
    /// `true` when the invariant holds everywhere.
    pub fn holds(&self) -> bool {
        matches!(self, InvariantResult::Holds { .. })
    }
}

/// Exhaustively checks a state invariant over the reachable state space of
/// `automaton` (breadth-first, so a violation comes with a shortest witness
/// path). Used for Lemma 6.1 of the paper.
///
/// # Errors
///
/// Returns [`MdpError::StateLimitExceeded`] if the reachable space exceeds
/// `limit`.
pub fn check_invariant<M: Automaton>(
    automaton: &M,
    mut invariant: impl FnMut(&M::State) -> bool,
    limit: usize,
) -> Result<InvariantResult<M::State>, MdpError> {
    let mut index: FxHashMap<M::State, usize> = FxHashMap::default();
    let mut parent: Vec<Option<usize>> = Vec::new();
    let mut states: Vec<M::State> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let push = |s: &M::State,
                from: Option<usize>,
                index: &mut FxHashMap<M::State, usize>,
                states: &mut Vec<M::State>,
                parent: &mut Vec<Option<usize>>,
                queue: &mut VecDeque<usize>|
     -> Result<Option<usize>, MdpError> {
        if index.contains_key(s) {
            return Ok(None);
        }
        let id = states.len();
        if id >= limit {
            return Err(MdpError::StateLimitExceeded { limit });
        }
        index.insert(s.clone(), id);
        states.push(s.clone());
        parent.push(from);
        queue.push_back(id);
        Ok(Some(id))
    };

    let mut witness: Option<usize> = None;
    'outer: {
        for s in automaton.start_states() {
            if let Some(id) = push(&s, None, &mut index, &mut states, &mut parent, &mut queue)? {
                if !invariant(&states[id]) {
                    witness = Some(id);
                    break 'outer;
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            let state = states[id].clone();
            for step in automaton.steps(&state) {
                for (t, _) in step.target.iter() {
                    if let Some(nid) = push(
                        t,
                        Some(id),
                        &mut index,
                        &mut states,
                        &mut parent,
                        &mut queue,
                    )? {
                        if !invariant(&states[nid]) {
                            witness = Some(nid);
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    match witness {
        None => Ok(InvariantResult::Holds {
            states_checked: states.len(),
        }),
        Some(id) => {
            let mut path = Vec::new();
            let mut cur = Some(id);
            while let Some(i) = cur {
                path.push(states[i].clone());
                cur = parent[i];
            }
            path.reverse();
            Ok(InvariantResult::Violated {
                state: states[id].clone(),
                path,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::RingState;
    use pa_core::TableAutomaton;

    fn coin_walk() -> TableAutomaton<u8, &'static str> {
        // 0 --flip--> {1, 2}; 1 --back--> 0; 2 terminal.
        TableAutomaton::builder()
            .start(0)
            .step(0, "flip", [(1, 0.5), (2, 0.5)])
            .unwrap()
            .det_step(1, "back", 0)
            .build()
            .unwrap()
    }

    #[test]
    fn explore_builds_consistent_mapping() {
        let m = coin_walk();
        let e = Explore::new(&m).limit(1000).run().unwrap();
        assert_eq!(e.num_states(), 3);
        assert_eq!(e.mdp.num_states(), 3);
        for (i, s) in e.states().iter().enumerate() {
            assert_eq!(e.index_of(s), Some(i));
        }
        // Initial state is state 0 of the automaton.
        let init = e.mdp.initial_states()[0];
        assert_eq!(e.state(init), 0);
    }

    #[test]
    fn explore_respects_costs() {
        let m = coin_walk();
        let e = Explore::new(&m)
            .cost(|_, a| if *a == "flip" { 1 } else { 0 })
            .limit(1000)
            .run()
            .unwrap();
        let s0 = e.index_of(&0).unwrap();
        let s1 = e.index_of(&1).unwrap();
        assert_eq!(e.mdp.choices(s0)[0].cost, 1);
        assert_eq!(e.mdp.choices(s1)[0].cost, 0);
    }

    #[test]
    fn explore_enforces_limit() {
        let m = coin_walk();
        assert!(matches!(
            Explore::new(&m).limit(2).run(),
            Err(MdpError::StateLimitExceeded { limit: 2 })
        ));
    }

    #[test]
    fn par_explore_matches_serial_exactly() {
        let m = coin_walk();
        let serial = Explore::new(&m).limit(1000).run().unwrap();
        for workers in [1, 2, 5] {
            let par = Explore::new(&m).limit(1000).workers(workers).run().unwrap();
            assert_eq!(par.states(), serial.states(), "workers={workers}");
            for s in 0..serial.mdp.num_states() {
                assert_eq!(
                    par.mdp.choices(s),
                    serial.mdp.choices(s),
                    "workers={workers}"
                );
            }
            assert_eq!(
                par.mdp.initial_states(),
                serial.mdp.initial_states(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn shard_factor_doubles_on_hot_shard_and_decays_when_even() {
        // Busiest shard at 4× even split: double, then saturate at the cap.
        assert_eq!(next_shard_factor(1, 40, 40, 4), 2);
        assert_eq!(next_shard_factor(4, 40, 40, 4), 8);
        assert_eq!(next_shard_factor(8, 40, 40, 4), 8);
        // Perfectly even yields decay the factor back toward 1.
        assert_eq!(next_shard_factor(4, 10, 40, 4), 2);
        assert_eq!(next_shard_factor(1, 10, 40, 4), 1);
        // In the dead band (110%..150% of even) the factor holds.
        assert_eq!(next_shard_factor(2, 13, 40, 4), 2);
        // Degenerate inputs leave the factor alone.
        assert_eq!(next_shard_factor(3, 0, 0, 4), 3);
        assert_eq!(next_shard_factor(3, 5, 5, 1), 3);
    }

    /// A two-level model wide enough to trigger parallel sharding
    /// (`PAR_MIN_LEVEL`), with all the branching concentrated in one corner
    /// of the first level so the contiguous shards yield unevenly and the
    /// adaptive factor actually engages.
    fn skewed_fanout() -> TableAutomaton<u32, &'static str> {
        let mut b = TableAutomaton::builder().start(0);
        let width = 400u32;
        for i in 0..width {
            b = b.det_step(0, "spread", i + 1).det_step(i + 1, "go", {
                // The last few first-level states fan out 64-wide; the rest
                // are funnels into a handful of shared states.
                if i >= width - 8 {
                    10_000 + i * 64
                } else {
                    1_000 + i % 4
                }
            });
        }
        for i in width - 8..width {
            for j in 0..64u32 {
                b = b.det_step(10_000 + i * 64, "fan", 20_000 + i * 64 + j);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn adaptive_sharding_leaves_exploration_unchanged() {
        let m = skewed_fanout();
        let serial = Explore::new(&m).limit(1_000_000).run().unwrap();
        for workers in [2, 3, 8] {
            let par = Explore::new(&m)
                .limit(1_000_000)
                .workers(workers)
                .run()
                .unwrap();
            assert_eq!(par.states(), serial.states(), "workers={workers}");
            for s in 0..serial.mdp.num_states() {
                assert_eq!(
                    par.mdp.choices(s),
                    serial.mdp.choices(s),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn par_explore_enforces_limit_like_serial() {
        let m = coin_walk();
        assert!(matches!(
            Explore::new(&m).limit(2).workers(3).run(),
            Err(MdpError::StateLimitExceeded { limit: 2 })
        ));
    }

    #[test]
    fn target_where_matches_predicate() {
        let m = coin_walk();
        let e = Explore::new(&m).limit(1000).run().unwrap();
        let t = e.target_where(|s| *s == 2);
        assert_eq!(t.iter().filter(|b| **b).count(), 1);
        assert_eq!(e.states_where(|s| *s == 2).len(), 1);
    }

    /// A ring automaton over rotation-closed `Vec<u8>` states: each step
    /// increments one position (saturating at 2), so the full space is all
    /// `{0,1,2}^n` vectors and the quotient is their necklace classes.
    #[derive(Clone)]
    struct RingCounter {
        n: usize,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
    struct RingVec(Vec<u8>);

    impl RingState for RingVec {
        fn rotated(&self, k: usize) -> RingVec {
            let n = self.0.len();
            RingVec((0..n).map(|i| self.0[(i + k) % n]).collect())
        }
    }

    impl Automaton for RingCounter {
        type State = RingVec;
        type Action = usize;

        fn start_states(&self) -> Vec<RingVec> {
            vec![RingVec(vec![0; self.n])]
        }

        fn steps(&self, s: &RingVec) -> Vec<pa_core::Step<RingVec, usize>> {
            (0..self.n)
                .filter(|&i| s.0[i] < 2)
                .map(|i| {
                    let mut t = s.clone();
                    t.0[i] += 1;
                    pa_core::Step::deterministic(i, t)
                })
                .collect()
        }
    }

    #[test]
    fn symmetry_builds_the_quotient() {
        use crate::symmetry::{RingRotation, Symmetry};
        let m = RingCounter { n: 4 };
        let full = Explore::new(&m).limit(100_000).run().unwrap();
        let quot = Explore::new(&m)
            .limit(100_000)
            .symmetry(RingRotation::new(4))
            .run()
            .unwrap();
        // Full space: 3^4 = 81 vectors; necklaces of {0,1,2}^4: 24.
        assert_eq!(full.num_states(), 81);
        assert_eq!(quot.num_states(), 24);
        // Every quotient state is canonical and every full state's orbit
        // representative is present.
        let sym = RingRotation::new(4);
        for i in 0..quot.num_states() {
            let s = quot.state(i);
            assert_eq!(sym.canon(&s), s);
        }
        for i in 0..full.num_states() {
            let rep = sym.canon(&full.state(i));
            assert!(quot.index_of(&rep).is_some());
        }
    }

    #[test]
    fn quotient_exploration_is_deterministic_across_workers() {
        use crate::symmetry::RingRotation;
        let m = RingCounter { n: 5 };
        let serial = Explore::new(&m)
            .limit(100_000)
            .symmetry(RingRotation::new(5))
            .run()
            .unwrap();
        for workers in [2, 4] {
            let par = Explore::new(&m)
                .limit(100_000)
                .symmetry(RingRotation::new(5))
                .workers(workers)
                .run()
                .unwrap();
            assert_eq!(par.states(), serial.states(), "workers={workers}");
            for s in 0..serial.mdp.num_states() {
                assert_eq!(par.mdp.choices(s), serial.mdp.choices(s));
            }
        }
    }

    #[test]
    fn capacity_hint_does_not_change_the_result() {
        let m = coin_walk();
        let plain = Explore::new(&m).limit(1000).run().unwrap();
        let hinted = Explore::new(&m)
            .limit(1000)
            .capacity_hint(512)
            .run()
            .unwrap();
        assert_eq!(plain.states(), hinted.states());
    }

    #[test]
    fn invariant_holds_on_safe_model() {
        let m = coin_walk();
        let r = check_invariant(&m, |s| *s <= 2, 1000).unwrap();
        assert!(r.holds());
        match r {
            InvariantResult::Holds { states_checked } => assert_eq!(states_checked, 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn invariant_violation_gives_shortest_path() {
        let m = coin_walk();
        let r = check_invariant(&m, |s| *s != 2, 1000).unwrap();
        match r {
            InvariantResult::Violated { state, path } => {
                assert_eq!(state, 2);
                assert_eq!(path, vec![0, 2]);
            }
            _ => panic!("expected violation"),
        }
    }

    #[test]
    fn invariant_checks_start_states_too() {
        let m = TableAutomaton::<u8, char>::builder()
            .start(9)
            .build()
            .unwrap();
        let r = check_invariant(&m, |s| *s != 9, 10).unwrap();
        assert!(!r.holds());
    }
}
