use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use pa_core::Automaton;

use crate::{Choice, ExplicitMdp, MdpError};

/// The result of exploring an implicit model: the explicit MDP plus the
/// bidirectional mapping between dense indices and concrete states.
///
/// Choice order is preserved: `mdp.choices(i)[k]` corresponds to
/// `automaton.steps(&states[i])[k]`, so an optimal policy over the explicit
/// model can be replayed on the implicit one.
#[derive(Debug, Clone)]
pub struct Explored<S> {
    /// Concrete state of each index.
    pub states: Vec<S>,
    /// Index of each concrete state.
    pub index: HashMap<S, usize>,
    /// The explicit model.
    pub mdp: ExplicitMdp,
}

impl<S: Clone + Eq + std::hash::Hash> Explored<S> {
    /// Builds a dense boolean target vector from a state predicate.
    pub fn target_where(&self, pred: impl FnMut(&S) -> bool) -> Vec<bool> {
        self.states.iter().map(pred).collect()
    }

    /// Indices of states satisfying a predicate.
    pub fn states_where(&self, mut pred: impl FnMut(&S) -> bool) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(s))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Explores the reachable state space of an implicit automaton into an
/// [`ExplicitMdp`], assigning each transition the cost given by `cost_of`.
///
/// # Errors
///
/// Returns [`MdpError::StateLimitExceeded`] if more than `limit` states are
/// discovered, and propagates model-validation errors (which indicate a bug
/// in the implicit model, e.g. an unnormalized step distribution).
pub fn explore<M: Automaton>(
    automaton: &M,
    mut cost_of: impl FnMut(&M::State, &M::Action) -> u32,
    limit: usize,
) -> Result<Explored<M::State>, MdpError> {
    let mut states: Vec<M::State> = Vec::new();
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut choices: Vec<Vec<Choice>> = Vec::new();

    let intern = |s: M::State,
                  states: &mut Vec<M::State>,
                  index: &mut HashMap<M::State, usize>,
                  queue: &mut VecDeque<usize>|
     -> Result<usize, MdpError> {
        match index.entry(s) {
            Entry::Occupied(e) => Ok(*e.get()),
            Entry::Vacant(e) => {
                let id = states.len();
                if id >= limit {
                    return Err(MdpError::StateLimitExceeded { limit });
                }
                states.push(e.key().clone());
                e.insert(id);
                queue.push_back(id);
                Ok(id)
            }
        }
    };

    let mut initial = Vec::new();
    for s in automaton.start_states() {
        initial.push(intern(s, &mut states, &mut index, &mut queue)?);
    }
    if initial.is_empty() {
        return Err(MdpError::NoInitialStates);
    }

    while let Some(id) = queue.pop_front() {
        let state = states[id].clone();
        let mut cs = Vec::new();
        for step in automaton.steps(&state) {
            let cost = cost_of(&state, &step.action);
            let mut transitions = Vec::with_capacity(step.target.len());
            for (t, p) in step.target.iter() {
                let ti = intern(t.clone(), &mut states, &mut index, &mut queue)?;
                transitions.push((ti, p.value()));
            }
            cs.push(Choice { cost, transitions });
        }
        debug_assert_eq!(choices.len(), id);
        choices.push(cs);
    }

    let mdp = ExplicitMdp::new(choices, initial)?;
    Ok(Explored { states, index, mdp })
}

/// The outcome of an exhaustive invariant check over the reachable states.
#[derive(Debug, Clone)]
pub enum InvariantResult<S> {
    /// Every reachable state satisfies the invariant.
    Holds {
        /// Number of states examined.
        states_checked: usize,
    },
    /// A reachable state violates the invariant; a shortest witness path of
    /// states from a start state is included.
    Violated {
        /// The violating state.
        state: S,
        /// States along a shortest path from a start state to the violation
        /// (inclusive of both endpoints).
        path: Vec<S>,
    },
}

impl<S> InvariantResult<S> {
    /// `true` when the invariant holds everywhere.
    pub fn holds(&self) -> bool {
        matches!(self, InvariantResult::Holds { .. })
    }
}

/// Exhaustively checks a state invariant over the reachable state space of
/// `automaton` (breadth-first, so a violation comes with a shortest witness
/// path). Used for Lemma 6.1 of the paper.
///
/// # Errors
///
/// Returns [`MdpError::StateLimitExceeded`] if the reachable space exceeds
/// `limit`.
pub fn check_invariant<M: Automaton>(
    automaton: &M,
    mut invariant: impl FnMut(&M::State) -> bool,
    limit: usize,
) -> Result<InvariantResult<M::State>, MdpError> {
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut parent: Vec<Option<usize>> = Vec::new();
    let mut states: Vec<M::State> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let push = |s: M::State,
                from: Option<usize>,
                index: &mut HashMap<M::State, usize>,
                states: &mut Vec<M::State>,
                parent: &mut Vec<Option<usize>>,
                queue: &mut VecDeque<usize>|
     -> Result<Option<usize>, MdpError> {
        if index.contains_key(&s) {
            return Ok(None);
        }
        let id = states.len();
        if id >= limit {
            return Err(MdpError::StateLimitExceeded { limit });
        }
        index.insert(s.clone(), id);
        states.push(s);
        parent.push(from);
        queue.push_back(id);
        Ok(Some(id))
    };

    let mut witness: Option<usize> = None;
    'outer: {
        for s in automaton.start_states() {
            if let Some(id) = push(s, None, &mut index, &mut states, &mut parent, &mut queue)? {
                if !invariant(&states[id]) {
                    witness = Some(id);
                    break 'outer;
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            let state = states[id].clone();
            for step in automaton.steps(&state) {
                for (t, _) in step.target.iter() {
                    if let Some(nid) = push(
                        t.clone(),
                        Some(id),
                        &mut index,
                        &mut states,
                        &mut parent,
                        &mut queue,
                    )? {
                        if !invariant(&states[nid]) {
                            witness = Some(nid);
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    match witness {
        None => Ok(InvariantResult::Holds {
            states_checked: states.len(),
        }),
        Some(id) => {
            let mut path = Vec::new();
            let mut cur = Some(id);
            while let Some(i) = cur {
                path.push(states[i].clone());
                cur = parent[i];
            }
            path.reverse();
            Ok(InvariantResult::Violated {
                state: states[id].clone(),
                path,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_core::TableAutomaton;

    fn coin_walk() -> TableAutomaton<u8, &'static str> {
        // 0 --flip--> {1, 2}; 1 --back--> 0; 2 terminal.
        TableAutomaton::builder()
            .start(0)
            .step(0, "flip", [(1, 0.5), (2, 0.5)])
            .unwrap()
            .det_step(1, "back", 0)
            .build()
            .unwrap()
    }

    #[test]
    fn explore_builds_consistent_mapping() {
        let m = coin_walk();
        let e = explore(&m, |_, _| 1, 1000).unwrap();
        assert_eq!(e.states.len(), 3);
        assert_eq!(e.mdp.num_states(), 3);
        for (i, s) in e.states.iter().enumerate() {
            assert_eq!(e.index[s], i);
        }
        // Initial state is state 0 of the automaton.
        let init = e.mdp.initial_states()[0];
        assert_eq!(e.states[init], 0);
    }

    #[test]
    fn explore_respects_costs() {
        let m = coin_walk();
        let e = explore(&m, |_, a| if *a == "flip" { 1 } else { 0 }, 1000).unwrap();
        let s0 = e.index[&0];
        let s1 = e.index[&1];
        assert_eq!(e.mdp.choices(s0)[0].cost, 1);
        assert_eq!(e.mdp.choices(s1)[0].cost, 0);
    }

    #[test]
    fn explore_enforces_limit() {
        let m = coin_walk();
        assert!(matches!(
            explore(&m, |_, _| 1, 2),
            Err(MdpError::StateLimitExceeded { limit: 2 })
        ));
    }

    #[test]
    fn target_where_matches_predicate() {
        let m = coin_walk();
        let e = explore(&m, |_, _| 1, 1000).unwrap();
        let t = e.target_where(|s| *s == 2);
        assert_eq!(t.iter().filter(|b| **b).count(), 1);
        assert_eq!(e.states_where(|s| *s == 2).len(), 1);
    }

    #[test]
    fn invariant_holds_on_safe_model() {
        let m = coin_walk();
        let r = check_invariant(&m, |s| *s <= 2, 1000).unwrap();
        assert!(r.holds());
        match r {
            InvariantResult::Holds { states_checked } => assert_eq!(states_checked, 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn invariant_violation_gives_shortest_path() {
        let m = coin_walk();
        let r = check_invariant(&m, |s| *s != 2, 1000).unwrap();
        match r {
            InvariantResult::Violated { state, path } => {
                assert_eq!(state, 2);
                assert_eq!(path, vec![0, 2]);
            }
            _ => panic!("expected violation"),
        }
    }

    #[test]
    fn invariant_checks_start_states_too() {
        let m = TableAutomaton::<u8, char>::builder()
            .start(9)
            .build()
            .unwrap();
        let r = check_invariant(&m, |s| *s != 9, 10).unwrap();
        assert!(!r.holds());
    }
}
