//! Pluggable state representations for exploration: the [`StateSpace`]
//! trait and its two implementations.
//!
//! Exploration needs exactly three things from a state store: intern a
//! state to a dense id, look a state up, and decode an id back to a state.
//! [`BoxedSpace`] is the historical representation — states kept verbatim
//! in a `Vec` plus an `FxHashMap` interner. [`PackedSpace`] stores each
//! state as a fixed-width word produced by a [`StateCodec`], so the
//! frontier, the interner, and [`crate::Explored`] hold copyable words
//! instead of heap-allocating state structs — several-fold less resident
//! memory on the ring models, which is what buys exploration headroom at
//! `n = 8..9` (see BENCH's `symmetry` block).
//!
//! The two are interchangeable anywhere an [`crate::Explored`] is
//! consumed: analyses only see dense indices, and the decoded-state
//! accessors ([`StateSpace::state`], [`StateSpace::for_each_state`])
//! reconstruct states on demand.

use std::hash::Hash;

use crate::fxhash::FxHashMap;

/// A dense-id state store: the interner and decoder behind
/// [`crate::Explored`].
///
/// Ids are assigned contiguously from 0 in interning order, which the
/// explorers rely on for their determinism contract.
pub trait StateSpace<S> {
    /// Interns `s`, returning its id and whether it was newly inserted.
    fn intern(&mut self, s: &S) -> (usize, bool);

    /// The id of `s`, if it has been interned.
    fn get(&self, s: &S) -> Option<usize>;

    /// Decodes the state with id `id` (clones for boxed spaces, unpacks
    /// for packed ones).
    fn state(&self, id: usize) -> S;

    /// Number of interned states.
    fn len(&self) -> usize;

    /// Whether the space is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-reserves capacity for `additional` more states.
    fn reserve(&mut self, additional: usize);

    /// Drops the lookup index, keeping id-to-state decoding intact. Frees
    /// the interner's memory once no further [`StateSpace::intern`] /
    /// [`StateSpace::get`] calls are needed (long-lived benchmark models
    /// do this between exploration and analysis).
    fn clear_index(&mut self);

    /// Estimated resident bytes of the store's own tables (vectors and
    /// interner). Heap payloads owned by individual boxed states are not
    /// counted — packed spaces have none, which is the point.
    fn mem_bytes(&self) -> u64;

    /// Calls `f` with every `(id, state)` pair in id order, decoding each
    /// state once.
    fn for_each_state(&self, f: impl FnMut(usize, &S));
}

/// The boxed representation: states stored verbatim.
#[derive(Debug, Clone)]
pub struct BoxedSpace<S> {
    states: Vec<S>,
    index: FxHashMap<S, usize>,
}

impl<S> Default for BoxedSpace<S> {
    fn default() -> BoxedSpace<S> {
        BoxedSpace {
            states: Vec::new(),
            index: FxHashMap::default(),
        }
    }
}

impl<S> BoxedSpace<S> {
    /// The interned states, in id order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Consumes the space into its state vector.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }
}

impl<S: Clone + Eq + Hash> StateSpace<S> for BoxedSpace<S> {
    fn intern(&mut self, s: &S) -> (usize, bool) {
        if let Some(&id) = self.index.get(s) {
            return (id, false);
        }
        let id = self.states.len();
        self.states.push(s.clone());
        self.index.insert(s.clone(), id);
        (id, true)
    }

    fn get(&self, s: &S) -> Option<usize> {
        self.index.get(s).copied()
    }

    fn state(&self, id: usize) -> S {
        self.states[id].clone()
    }

    fn len(&self) -> usize {
        self.states.len()
    }

    fn reserve(&mut self, additional: usize) {
        self.states.reserve(additional);
        self.index.reserve(additional);
    }

    fn clear_index(&mut self) {
        self.index = FxHashMap::default();
    }

    fn mem_bytes(&self) -> u64 {
        let entry = std::mem::size_of::<S>() as u64;
        // Hash-map entries carry the key, the id, and control metadata.
        self.states.capacity() as u64 * entry
            + self.index.capacity() as u64 * (entry + std::mem::size_of::<usize>() as u64 + 1)
    }

    fn for_each_state(&self, mut f: impl FnMut(usize, &S)) {
        for (i, s) in self.states.iter().enumerate() {
            f(i, s);
        }
    }
}

/// A fixed-width encoding of a state type: the bridge into
/// [`PackedSpace`].
///
/// `pack` followed by `unpack` must be the identity on every state the
/// model can produce (the codec round-trip property tests pin this for the
/// ring codecs). Equality of words must coincide with equality of states,
/// since the packed interner deduplicates on words.
pub trait StateCodec {
    /// The state type being encoded.
    type State;
    /// The fixed-width encoded form, e.g. `[u64; 3]`.
    type Word: Copy + Eq + Hash + Send + Sync;

    /// Encodes a state.
    fn pack(&self, s: &Self::State) -> Self::Word;

    /// Decodes a word produced by [`StateCodec::pack`].
    fn unpack(&self, w: &Self::Word) -> Self::State;
}

/// The packed representation: states stored as fixed-width words.
#[derive(Debug, Clone)]
pub struct PackedSpace<C: StateCodec> {
    codec: C,
    words: Vec<C::Word>,
    index: FxHashMap<C::Word, usize>,
}

impl<C: StateCodec> PackedSpace<C> {
    /// An empty packed space using `codec`.
    pub fn new(codec: C) -> PackedSpace<C> {
        PackedSpace {
            codec,
            words: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// The codec in use.
    pub fn codec(&self) -> &C {
        &self.codec
    }

    /// The packed words, in id order.
    pub fn words(&self) -> &[C::Word] {
        &self.words
    }
}

impl<C: StateCodec> StateSpace<C::State> for PackedSpace<C> {
    fn intern(&mut self, s: &C::State) -> (usize, bool) {
        let w = self.codec.pack(s);
        if let Some(&id) = self.index.get(&w) {
            return (id, false);
        }
        let id = self.words.len();
        self.words.push(w);
        self.index.insert(w, id);
        (id, true)
    }

    fn get(&self, s: &C::State) -> Option<usize> {
        self.index.get(&self.codec.pack(s)).copied()
    }

    fn state(&self, id: usize) -> C::State {
        self.codec.unpack(&self.words[id])
    }

    fn len(&self) -> usize {
        self.words.len()
    }

    fn reserve(&mut self, additional: usize) {
        self.words.reserve(additional);
        self.index.reserve(additional);
    }

    fn clear_index(&mut self) {
        self.index = FxHashMap::default();
    }

    fn mem_bytes(&self) -> u64 {
        let entry = std::mem::size_of::<C::Word>() as u64;
        self.words.capacity() as u64 * entry
            + self.index.capacity() as u64 * (entry + std::mem::size_of::<usize>() as u64 + 1)
    }

    fn for_each_state(&self, mut f: impl FnMut(usize, &C::State)) {
        for (i, w) in self.words.iter().enumerate() {
            let s = self.codec.unpack(w);
            f(i, &s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A codec packing `(u8, u8)` pairs into a single `u16`.
    struct PairCodec;

    impl StateCodec for PairCodec {
        type State = (u8, u8);
        type Word = u16;

        fn pack(&self, s: &(u8, u8)) -> u16 {
            u16::from(s.0) << 8 | u16::from(s.1)
        }

        fn unpack(&self, w: &u16) -> (u8, u8) {
            ((w >> 8) as u8, (w & 0xFF) as u8)
        }
    }

    #[test]
    fn boxed_interns_and_decodes() {
        let mut sp: BoxedSpace<String> = BoxedSpace::default();
        let (a, fresh_a) = sp.intern(&"a".to_string());
        let (b, fresh_b) = sp.intern(&"b".to_string());
        let (a2, fresh_a2) = sp.intern(&"a".to_string());
        assert_eq!((a, fresh_a), (0, true));
        assert_eq!((b, fresh_b), (1, true));
        assert_eq!((a2, fresh_a2), (0, false));
        assert_eq!(sp.len(), 2);
        assert_eq!(sp.state(1), "b");
        assert_eq!(sp.get(&"b".to_string()), Some(1));
        assert_eq!(sp.get(&"c".to_string()), None);
    }

    #[test]
    fn packed_matches_boxed_behaviour() {
        let mut boxed: BoxedSpace<(u8, u8)> = BoxedSpace::default();
        let mut packed = PackedSpace::new(PairCodec);
        for s in [(1, 2), (3, 4), (1, 2), (0, 0), (3, 4)] {
            assert_eq!(boxed.intern(&s), packed.intern(&s));
        }
        assert_eq!(boxed.len(), packed.len());
        for i in 0..boxed.len() {
            assert_eq!(boxed.state(i), packed.state(i));
        }
        let mut seen = Vec::new();
        packed.for_each_state(|i, s| seen.push((i, *s)));
        assert_eq!(seen, vec![(0, (1, 2)), (1, (3, 4)), (2, (0, 0))]);
    }

    #[test]
    fn clear_index_keeps_decoding() {
        let mut sp = PackedSpace::new(PairCodec);
        sp.intern(&(9, 9));
        sp.clear_index();
        assert_eq!(sp.state(0), (9, 9));
        assert_eq!(sp.len(), 1);
    }

    #[test]
    fn packed_word_store_is_smaller_than_boxed() {
        let mut boxed: BoxedSpace<(u64, u64, u64, u64)> = BoxedSpace::default();
        let mut packed = PackedSpace::new(PairCodec);
        for i in 0..100u8 {
            boxed.intern(&(u64::from(i), 0, 0, 0));
            packed.intern(&(i, 0));
        }
        assert!(packed.mem_bytes() < boxed.mem_bytes());
    }
}
