//! Strongly-connected-component condensation of the CSR choice graph and
//! the SCC-ordered value-iteration paths built on it.
//!
//! The round-based timed models this workspace analyses (Section 5's
//! Lehmann–Rabin rounds) are nearly DAGs: obligations and per-round budgets
//! strictly shrink inside a round, so cycles are confined to small pockets
//! of the state space. A global Jacobi sweep nevertheless revisits *every*
//! state until the *slowest* state converges. The SCC-ordered solver
//! instead:
//!
//! 1. condenses the positive-probability choice graph into strongly
//!    connected components with an **iterative** (explicit-stack) Tarjan
//!    pass — no recursion, so million-state models cannot overflow the
//!    call stack;
//! 2. visits components in Tarjan emission order, which is **reverse
//!    topological**: every edge leaving a component points to a component
//!    that has already been solved, so successor values are final;
//! 3. resolves each *trivial* component (a single state without a
//!    self-loop) in one closed-form update from its already-fixed
//!    successors, and iterates each nontrivial component with local
//!    double-buffered Jacobi sweeps until the usual tolerance.
//!
//! On an acyclic model every component is trivial, so each state is
//! computed exactly once from exact inputs — the same floating-point
//! expression, in the same transition order, the global Jacobi sweep
//! evaluates on its final pass. Results are therefore **bit-for-bit
//! identical** to the Jacobi path on acyclic blocks, and agree within
//! iteration tolerance on cyclic ones; the property tests in
//! `crates/mdp/tests/scc_query.rs` pin both contracts.
//!
//! # Telemetry
//!
//! With the registry enabled, every SCC-ordered solve records:
//!
//! * `mdp.scc.runs` — solves taken through the SCC path;
//! * `mdp.scc.components` / `mdp.scc.nontrivial_components` — condensation
//!   shape;
//! * `mdp.scc.component_size` — histogram of component sizes;
//! * `mdp.scc.block_sweeps` — local Jacobi sweeps summed over blocks;
//! * `mdp.scc.state_updates` — individual state-value computations;
//! * `mdp.scc.saved_updates` — estimated updates a global Jacobi schedule
//!   would have spent minus the updates actually performed. The estimate
//!   multiplies the state count by the critical-path sweep depth of the
//!   condensation (a lower bound on equivalent global sweeps), so it
//!   *understates* the true saving.

use crate::csr::SolveStats;
use crate::{CsrMdp, IterOptions, MdpError, Objective};

/// Marker for an unvisited state in the Tarjan pass.
const UNVISITED: u32 = u32::MAX;

/// A condensation of the CSR choice graph into strongly connected
/// components, stored in **solve order** (reverse topological: component 0
/// is a sink; every edge `s → t` with `component_of(s) != component_of(t)`
/// satisfies `component_of(t) < component_of(s)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    /// Component id of each state (ids follow solve order).
    comp_of: Vec<u32>,
    /// `comp_offsets[c]..comp_offsets[c+1]` indexes `comp_states`.
    comp_offsets: Vec<u32>,
    /// States grouped by component.
    comp_states: Vec<u32>,
    /// Whether a component has an internal cycle (more than one state, or
    /// a single state with a self-loop) and so needs local iteration.
    nontrivial: Vec<bool>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.comp_offsets.len() - 1
    }

    /// The states of component `c`.
    pub fn component(&self, c: usize) -> &[u32] {
        let lo = self.comp_offsets[c] as usize;
        let hi = self.comp_offsets[c + 1] as usize;
        &self.comp_states[lo..hi]
    }

    /// The component id of a state (solve order).
    pub fn component_of(&self, s: usize) -> usize {
        self.comp_of[s] as usize
    }

    /// Whether component `c` contains a cycle and needs local iteration.
    pub fn is_nontrivial(&self, c: usize) -> bool {
        self.nontrivial[c]
    }

    /// Number of components that need local iteration.
    pub fn num_nontrivial(&self) -> usize {
        self.nontrivial.iter().filter(|&&b| b).count()
    }
}

/// One explicit Tarjan stack frame: a state plus its flat choice/transition
/// cursors into the CSR arrays (resumed after each child visit).
struct Frame {
    state: u32,
    choice: usize,
    trans: usize,
}

impl CsrMdp {
    /// Condenses the positive-probability choice graph (every choice, every
    /// transition with `p > 0`) into strongly connected components in
    /// reverse topological order.
    pub fn scc(&self) -> SccDecomposition {
        self.scc_filtered(false)
    }

    /// Like [`CsrMdp::scc`], but over the **zero-cost** subgraph only:
    /// choices with `cost == 1` read the previous budget level during
    /// cost-bounded induction, so their transitions are always fixed and
    /// do not constrain the per-level solve order.
    pub fn zero_cost_scc(&self) -> SccDecomposition {
        self.scc_filtered(true)
    }

    /// Iterative Tarjan over the CSR arrays. `zero_cost_only` drops
    /// choices with nonzero cost from the edge relation.
    fn scc_filtered(&self, zero_cost_only: bool) -> SccDecomposition {
        let n = self.num_states();
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut next_index = 0u32;
        let mut tarjan_stack: Vec<u32> = Vec::new();
        let mut frames: Vec<Frame> = Vec::new();

        let mut comp_of = vec![0u32; n];
        let mut comp_offsets: Vec<u32> = vec![0];
        let mut comp_states: Vec<u32> = Vec::with_capacity(n);
        let mut nontrivial: Vec<bool> = Vec::new();

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            frames.push(Frame {
                state: root as u32,
                choice: self.choice_range(root).start,
                trans: usize::MAX,
            });
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            tarjan_stack.push(root as u32);
            on_stack[root] = true;

            while let Some(frame) = frames.last_mut() {
                let s = frame.state as usize;
                // Advance the cursor to the next positive-probability
                // successor of `s` (zero-cost choices only, if filtering).
                let mut next: Option<usize> = None;
                let choice_end = self.choice_range(s).end;
                'scan: while frame.choice < choice_end {
                    if zero_cost_only && self.cost(frame.choice) != 0 {
                        frame.choice += 1;
                        frame.trans = usize::MAX;
                        continue;
                    }
                    let range = self.trans_range(frame.choice);
                    let mut ti = if frame.trans == usize::MAX {
                        range.start
                    } else {
                        frame.trans + 1
                    };
                    while ti < range.end {
                        let (t, p) = self.transition(ti);
                        if p > 0.0 {
                            frame.trans = ti;
                            next = Some(t);
                            break 'scan;
                        }
                        ti += 1;
                    }
                    frame.choice += 1;
                    frame.trans = usize::MAX;
                }
                match next {
                    Some(t) if index[t] == UNVISITED => {
                        index[t] = next_index;
                        lowlink[t] = next_index;
                        next_index += 1;
                        tarjan_stack.push(t as u32);
                        on_stack[t] = true;
                        frames.push(Frame {
                            state: t as u32,
                            choice: self.choice_range(t).start,
                            trans: usize::MAX,
                        });
                    }
                    Some(t) => {
                        if on_stack[t] && index[t] < lowlink[s] {
                            lowlink[s] = index[t];
                        }
                    }
                    None => {
                        // `s` is exhausted: emit its component if it is a
                        // root, then propagate its lowlink to the parent.
                        if lowlink[s] == index[s] {
                            let comp = nontrivial.len() as u32;
                            let start = comp_states.len();
                            loop {
                                let w = tarjan_stack.pop().expect("nonempty Tarjan stack");
                                on_stack[w as usize] = false;
                                comp_of[w as usize] = comp;
                                comp_states.push(w);
                                if w as usize == s {
                                    break;
                                }
                            }
                            let size = comp_states.len() - start;
                            let cyclic = size > 1 || self.has_direct_edge(s, s, zero_cost_only);
                            nontrivial.push(cyclic);
                            comp_offsets.push(comp_states.len() as u32);
                        }
                        let low = lowlink[s];
                        frames.pop();
                        if let Some(parent) = frames.last() {
                            let p = parent.state as usize;
                            if low < lowlink[p] {
                                lowlink[p] = low;
                            }
                        }
                    }
                }
            }
        }

        SccDecomposition {
            comp_of,
            comp_offsets,
            comp_states,
            nontrivial,
        }
    }

    /// Whether the (optionally zero-cost-filtered) choice graph has a
    /// direct positive-probability edge `from → to`.
    fn has_direct_edge(&self, from: usize, to: usize, zero_cost_only: bool) -> bool {
        self.choice_range(from).any(|c| {
            (!zero_cost_only || self.cost(c) == 0)
                && self.trans_range(c).any(|i| {
                    let (t, p) = self.transition(i);
                    t == to && p > 0.0
                })
        })
    }

    /// Records the condensation shape into the telemetry registry (once
    /// per solve; the per-block counters are recorded by the solve itself).
    pub(crate) fn record_scc_shape(scc: &SccDecomposition) {
        if !pa_telemetry::enabled() {
            return;
        }
        pa_telemetry::counter("mdp.scc.runs").inc();
        pa_telemetry::counter("mdp.scc.components").add(scc.num_components() as u64);
        pa_telemetry::counter("mdp.scc.nontrivial_components").add(scc.num_nontrivial() as u64);
        let sizes = pa_telemetry::histogram("mdp.scc.component_size");
        for c in 0..scc.num_components() {
            sizes.record(scc.component(c).len() as u64);
        }
    }

    /// The SCC-ordered solve kernel shared by every quantitative analysis:
    /// visits `scc`'s components in reverse topological order, resolving
    /// trivial components in one update and iterating nontrivial ones with
    /// local double-buffered Jacobi sweeps (reads of `values` during a
    /// block sweep always observe the pre-sweep iterate, exactly like the
    /// global Jacobi kernel).
    ///
    /// `fixed(s)` marks states whose value never changes (targets,
    /// qualitative-zero states, terminals); `update(s, values)` computes a
    /// state's next value from the current iterate. `block_cap(len)` bounds
    /// the local sweeps of a block of `len` states.
    #[allow(clippy::too_many_arguments)]
    fn scc_ordered_solve(
        &self,
        scc: &SccDecomposition,
        values: &mut [f64],
        epsilon: f64,
        block_cap: impl Fn(usize) -> usize,
        fixed: impl Fn(usize) -> bool,
        update: impl Fn(usize, &[f64]) -> f64,
        zero_cost_only: bool,
        stats: &mut SolveStats,
    ) {
        let telemetry = pa_telemetry::enabled();
        let block_sweeps = telemetry.then(|| pa_telemetry::counter("mdp.scc.block_sweeps"));
        let updates_before = stats.state_updates;
        // Critical-path sweep depth of the condensation, for the
        // saved-updates estimate (only maintained while telemetry is on —
        // it costs one extra edge scan per block).
        let mut chain: Vec<u64> = if telemetry {
            vec![0; scc.num_components()]
        } else {
            Vec::new()
        };
        let mut max_chain = 0u64;
        let mut scratch: Vec<f64> = Vec::new();

        for c in 0..scc.num_components() {
            let states = scc.component(c);
            let rounds: u64;
            if !scc.is_nontrivial(c) {
                let s = states[0] as usize;
                if fixed(s) {
                    rounds = 0;
                } else {
                    values[s] = update(s, values);
                    stats.state_updates += 1;
                    rounds = 1;
                }
            } else {
                let cap = block_cap(states.len()).max(1);
                let mut local = 0u64;
                loop {
                    local += 1;
                    stats.sweeps += 1;
                    stats.state_updates += states.len() as u64;
                    let mut delta = 0.0f64;
                    scratch.clear();
                    for &s in states {
                        let s = s as usize;
                        let v = if fixed(s) {
                            values[s]
                        } else {
                            update(s, values)
                        };
                        let d = (v - values[s]).abs();
                        if d > delta {
                            delta = d;
                        }
                        scratch.push(v);
                    }
                    for (i, &s) in states.iter().enumerate() {
                        values[s as usize] = scratch[i];
                    }
                    if delta <= epsilon || local as usize >= cap {
                        break;
                    }
                }
                if let Some(counter) = &block_sweeps {
                    counter.add(local);
                }
                rounds = local;
            }
            if telemetry {
                let mut succ_chain = 0u64;
                for &s in states {
                    let s = s as usize;
                    for ch in self.choice_range(s) {
                        if zero_cost_only && self.cost(ch) != 0 {
                            continue;
                        }
                        for i in self.trans_range(ch) {
                            let (t, p) = self.transition(i);
                            if p > 0.0 {
                                let tc = scc.component_of(t);
                                if tc != c && chain[tc] > succ_chain {
                                    succ_chain = chain[tc];
                                }
                            }
                        }
                    }
                }
                chain[c] = rounds + succ_chain;
                if chain[c] > max_chain {
                    max_chain = chain[c];
                }
            }
        }

        if telemetry {
            let performed = stats.state_updates - updates_before;
            let global_estimate = self.num_states() as u64 * max_chain;
            pa_telemetry::counter("mdp.scc.state_updates").add(performed);
            pa_telemetry::counter("mdp.scc.saved_updates")
                .add(global_estimate.saturating_sub(performed));
        }
    }

    /// SCC-ordered unbounded reachability: semantics of
    /// [`CsrMdp::reach_prob`], solved block by block. Bitwise-identical to
    /// the Jacobi path on acyclic models, within iteration tolerance
    /// otherwise.
    pub(crate) fn reach_prob_scc(
        &self,
        target: &[bool],
        objective: Objective,
        options: IterOptions,
        stats: &mut SolveStats,
    ) -> Result<Vec<f64>, MdpError> {
        let _span = pa_telemetry::span("mdp.vi.reach_prob_seconds");
        let zero = match objective {
            Objective::MaxProb => self.prob0_max(target)?,
            Objective::MinProb => self.prob0_min(target)?,
        };
        let scc = self.scc();
        CsrMdp::record_scc_shape(&scc);
        stats.components = scc.num_components() as u64;
        stats.nontrivial_components = scc.num_nontrivial() as u64;
        let n = self.num_states();
        let mut values = vec![0.0f64; n];
        for s in 0..n {
            if target[s] {
                values[s] = 1.0;
            }
        }
        self.scc_ordered_solve(
            &scc,
            &mut values,
            options.epsilon,
            |_| options.max_sweeps,
            |s| target[s] || zero[s] || self.is_terminal(s),
            |s, v| {
                let mut best = objective.start();
                for c in self.choice_range(s) {
                    let val = self.choice_value(c, v);
                    if objective.better(val, best) {
                        best = val;
                    }
                }
                best
            },
            false,
            stats,
        );
        Ok(values)
    }

    /// SCC-ordered expected-cost iteration: semantics of the Jacobi
    /// expected-cost kernel (`live` masks proper/feasible states; others
    /// are forced to `f64::INFINITY` at the end).
    pub(crate) fn expected_cost_scc(
        &self,
        target: &[bool],
        live: &[bool],
        objective: Objective,
        options: IterOptions,
        stats: &mut SolveStats,
    ) -> Vec<f64> {
        let scc = self.scc();
        CsrMdp::record_scc_shape(&scc);
        stats.components = scc.num_components() as u64;
        stats.nontrivial_components = scc.num_nontrivial() as u64;
        let n = self.num_states();
        let mut values = vec![0.0f64; n];
        self.scc_ordered_solve(
            &scc,
            &mut values,
            options.epsilon,
            |_| options.max_sweeps,
            |s| target[s] || !live[s] || self.is_terminal(s),
            |s, v| {
                let mut best = objective.start();
                for c in self.choice_range(s) {
                    let mut val = self.cost(c) as f64;
                    let mut ok = true;
                    for i in self.trans_range(c) {
                        let (t, p) = self.transition(i);
                        if p == 0.0 {
                            continue;
                        }
                        if !target[t] && !live[t] {
                            ok = false;
                            break;
                        }
                        val += p * v[t];
                    }
                    if ok && objective.better(val, best) {
                        best = val;
                    }
                }
                if best.is_finite() {
                    best
                } else {
                    v[s]
                }
            },
            false,
            stats,
        );
        for s in 0..n {
            if !target[s] && !live[s] {
                values[s] = f64::INFINITY;
            }
        }
        values
    }

    /// One SCC-ordered level of cost-bounded backward induction over the
    /// zero-cost condensation `scc` (choices with `cost == 1` read the
    /// fixed `level_prev`). Writes the level's values into `values`;
    /// semantics of the Jacobi [`CsrMdp::solve_level_into`], including the
    /// per-block `4·len + 8` sweep cap mirroring the global `4n + 8` one.
    pub(crate) fn solve_level_scc(
        &self,
        scc: &SccDecomposition,
        target: &[bool],
        level_prev: &[f64],
        objective: Objective,
        values: &mut Vec<f64>,
        stats: &mut SolveStats,
    ) {
        let n = self.num_states();
        values.clear();
        values.resize(n, 0.0);
        for s in 0..n {
            if target[s] {
                values[s] = 1.0;
            }
        }
        self.scc_ordered_solve(
            scc,
            values,
            1e-14,
            |len| 4 * len + 8,
            |s| target[s] || self.is_terminal(s),
            |s, v| {
                let mut best = objective.start();
                for c in self.choice_range(s) {
                    let source = if self.cost(c) == 1 { level_prev } else { v };
                    let val = self.choice_value(c, source);
                    if objective.better(val, best) {
                        best = val;
                    }
                }
                best
            },
            true,
            stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Choice, ExplicitMdp};

    fn csr(choices: Vec<Vec<Choice>>) -> CsrMdp {
        CsrMdp::from_explicit(&ExplicitMdp::new(choices, vec![0]).unwrap())
    }

    /// Every cross-component edge must point to an earlier (already
    /// solved) component.
    fn assert_reverse_topological(m: &CsrMdp, scc: &SccDecomposition) {
        for s in 0..m.num_states() {
            for c in m.choice_range(s) {
                for i in m.trans_range(c) {
                    let (t, p) = m.transition(i);
                    if p > 0.0 && scc.component_of(t) != scc.component_of(s) {
                        assert!(
                            scc.component_of(t) < scc.component_of(s),
                            "edge {s} -> {t} violates solve order"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_cycle_is_one_nontrivial_component() {
        let m = csr(vec![
            vec![Choice::to(1, 1)],
            vec![Choice::to(1, 2)],
            vec![Choice::to(1, 0)],
        ]);
        let scc = m.scc();
        assert_eq!(scc.num_components(), 1);
        assert!(scc.is_nontrivial(0));
        assert_eq!(scc.num_nontrivial(), 1);
        let mut states: Vec<u32> = scc.component(0).to_vec();
        states.sort_unstable();
        assert_eq!(states, vec![0, 1, 2]);
    }

    #[test]
    fn pure_dag_is_all_trivial_in_reverse_topological_order() {
        // Diamond: 0 -> {1, 2} -> 3.
        let m = csr(vec![
            vec![Choice::dist(1, vec![(1, 0.5), (2, 0.5)])],
            vec![Choice::to(1, 3)],
            vec![Choice::to(1, 3)],
            vec![],
        ]);
        let scc = m.scc();
        assert_eq!(scc.num_components(), 4);
        assert_eq!(scc.num_nontrivial(), 0);
        assert_reverse_topological(&m, &scc);
        // The sink must be solved first, the source last.
        assert_eq!(scc.component_of(3), 0);
        assert_eq!(scc.component_of(0), 3);
    }

    #[test]
    fn two_nested_cycles_condense_to_two_components() {
        // {0 <-> 1} -> {2 <-> 3} -> 4.
        let m = csr(vec![
            vec![Choice::to(1, 1)],
            vec![Choice::to(1, 0), Choice::to(1, 2)],
            vec![Choice::to(1, 3)],
            vec![Choice::to(1, 2), Choice::to(1, 4)],
            vec![],
        ]);
        let scc = m.scc();
        assert_eq!(scc.num_components(), 3);
        assert_eq!(scc.num_nontrivial(), 2);
        assert_reverse_topological(&m, &scc);
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(2), scc.component_of(3));
        assert!(scc.component_of(2) < scc.component_of(0));
        assert_eq!(scc.component_of(4), 0);
        assert!(!scc.is_nontrivial(scc.component_of(4)));
    }

    #[test]
    fn self_loop_makes_a_singleton_nontrivial() {
        let m = csr(vec![
            vec![Choice::dist(1, vec![(0, 0.5), (1, 0.5)])],
            vec![],
        ]);
        let scc = m.scc();
        assert_eq!(scc.num_components(), 2);
        let c0 = scc.component_of(0);
        assert!(scc.is_nontrivial(c0));
        assert!(!scc.is_nontrivial(scc.component_of(1)));
    }

    #[test]
    fn zero_cost_scc_ignores_costed_choices() {
        // The only cycle runs through a cost-1 choice, so the zero-cost
        // condensation is a pure DAG while the full one has a cycle.
        let m = csr(vec![vec![Choice::to(0, 1)], vec![Choice::to(1, 0)]]);
        assert_eq!(m.scc().num_nontrivial(), 1);
        let zc = m.zero_cost_scc();
        assert_eq!(zc.num_components(), 2);
        assert_eq!(zc.num_nontrivial(), 0);
        // 1 has no zero-cost successors: it must be solved before 0.
        assert!(zc.component_of(1) < zc.component_of(0));
    }

    #[test]
    fn zero_probability_edges_do_not_connect_components() {
        let m = csr(vec![
            vec![Choice::dist(1, vec![(1, 0.0), (2, 1.0)])],
            vec![Choice::to(1, 0)],
            vec![],
        ]);
        // Without the p = 0 edge 0 -> 1, states 0 and 1 are not strongly
        // connected (only 1 -> 0 exists).
        let scc = m.scc();
        assert_eq!(scc.num_components(), 3);
        assert_eq!(scc.num_nontrivial(), 0);
    }
}
