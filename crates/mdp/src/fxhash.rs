//! A fast, non-cryptographic hasher for state interning.
//!
//! State-space exploration spends a large share of its time hashing
//! concrete states into the intern map. The std `HashMap` default
//! (SipHash-1-3) is keyed and DoS-resistant, which exploration does not
//! need: keys are model states, not attacker-controlled input. This module
//! provides a multiply-xor hasher in the style of Firefox's FxHash — one
//! multiplication per word of input — plus map aliases used by the
//! [`crate::Explore`] builder's serial and parallel paths.
//!
//! The hash is deterministic across runs and threads, which the
//! deterministic parallel exploration relies on (shard-local maps hash the
//! same state to the same bucket sequence regardless of which worker
//! owns it).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (a 64-bit odd constant derived from
/// the golden ratio, spreading entropy into high bits under wrapping
/// multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A multiply-xor streaming hasher: `state = (state rotl 5 ^ word) * SEED`
/// per 8-byte word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Drop-in for `HashMap` where keys
/// are trusted (e.g. model states during exploration).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let a = hash_of(&(1u64, 2u64, [3u8; 5]));
        let b = hash_of(&(1u64, 2u64, [3u8; 5]));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(
            seen.len(),
            10_000,
            "no collisions on small consecutive keys"
        );
    }

    #[test]
    fn byte_stream_prefix_matters() {
        assert_ne!(hash_of(&[0u8; 3]), hash_of(&[0u8; 4]));
        assert_ne!(hash_of(&b"abcdefgh"), hash_of(&b"abcdefgi"));
    }

    #[test]
    fn map_alias_behaves_like_hashmap() {
        let mut m: FxHashMap<(u8, u8), usize> = FxHashMap::default();
        for i in 0..100u8 {
            m.insert((i, i / 2), i as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&(40, 20)], 40);
    }
}
