//! Integration tests for the `pa-telemetry` instrumentation of the MDP
//! engine: the reported metrics must be *exact*, not merely plausible.
//!
//! The probe model is a forced geometric chain: one non-target state with a
//! single choice that reaches the target with probability 1/2 and self-loops
//! otherwise. Jacobi value iteration from below then improves by exactly
//! `0.5^k` in sweep `k` — a dyadic rational, exact in `f64` — so the whole
//! residual trajectory is predictable to the last bit.

use std::sync::Mutex;

use pa_mdp::{Choice, CsrMdp, ExplicitMdp, IterOptions, Objective};

/// Telemetry state is process-global; run the tests of this file one at a
/// time (the file itself is its own process, so no other test binary can
/// interfere).
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn geometric_chain() -> ExplicitMdp {
    let coin = Choice {
        cost: 1,
        transitions: vec![(1, 0.5), (0, 0.5)],
    };
    ExplicitMdp::new(vec![vec![coin], Vec::new()], vec![0]).expect("valid model")
}

#[test]
fn vi_reports_exact_sweep_count_and_monotone_residuals() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    pa_telemetry::set_enabled(true);
    pa_telemetry::reset();

    let csr = CsrMdp::from_explicit(&geometric_chain());
    let target = vec![false, true];
    let opts = IterOptions {
        epsilon: 0.0,
        max_sweeps: 10,
    };
    let values = csr
        .reach_prob(&target, Objective::MaxProb, opts, None)
        .unwrap();
    // After 10 sweeps from below: 1 - 2^-10.
    assert_eq!(values[0], 1.0 - 0.5f64.powi(10));

    let snap = pa_telemetry::snapshot();
    pa_telemetry::set_enabled(false);

    assert_eq!(snap.counter("mdp.vi.runs"), Some(1));
    assert_eq!(snap.counter("mdp.vi.sweeps"), Some(10));
    let residuals = &snap
        .series("mdp.vi.residual")
        .expect("residuals recorded")
        .values;
    assert_eq!(residuals.len(), 10);
    for (k, &delta) in residuals.iter().enumerate() {
        assert_eq!(delta, 0.5f64.powi(k as i32 + 1), "sweep {}", k + 1);
    }
    assert!(
        residuals.windows(2).all(|w| w[1] <= w[0]),
        "residual trajectory must be monotone non-increasing: {residuals:?}"
    );

    // The span instrumentation saw one solve and one timing per sweep.
    let run_timer = snap.timer("mdp.vi.reach_prob_seconds").unwrap();
    assert_eq!(run_timer.count, 1);
    let sweep_timer = snap.timer("mdp.vi.sweep_seconds").unwrap();
    assert_eq!(sweep_timer.count, 10);
    assert!(sweep_timer.total_seconds >= 0.0);
}

#[test]
fn convergence_stops_the_sweep_counter_early() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    pa_telemetry::set_enabled(true);
    pa_telemetry::reset();

    let csr = CsrMdp::from_explicit(&geometric_chain());
    let target = vec![false, true];
    // epsilon 0.3 is crossed by the second sweep (residual 0.25).
    let opts = IterOptions {
        epsilon: 0.3,
        max_sweeps: 100,
    };
    csr.reach_prob(&target, Objective::MaxProb, opts, None)
        .unwrap();

    let snap = pa_telemetry::snapshot();
    pa_telemetry::set_enabled(false);
    assert_eq!(snap.counter("mdp.vi.sweeps"), Some(2));
    assert_eq!(snap.series("mdp.vi.residual").unwrap().values, [0.5, 0.25]);
}

#[test]
fn disabled_registry_records_nothing() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    // Zero everything out, then run the workload with telemetry off.
    pa_telemetry::set_enabled(true);
    pa_telemetry::reset();
    pa_telemetry::set_enabled(false);

    let csr = CsrMdp::from_explicit(&geometric_chain());
    let target = vec![false, true];
    let opts = IterOptions {
        epsilon: 0.0,
        max_sweeps: 10,
    };
    csr.reach_prob(&target, Objective::MaxProb, opts, None)
        .unwrap();

    pa_telemetry::set_enabled(true);
    let snap = pa_telemetry::snapshot();
    pa_telemetry::set_enabled(false);
    assert_eq!(snap.counter("mdp.vi.runs"), Some(0));
    assert_eq!(snap.counter("mdp.vi.sweeps"), Some(0));
    assert_eq!(
        snap.series("mdp.vi.residual").map(|s| s.values.len()),
        Some(0),
        "no residuals while disabled"
    );
    assert_eq!(snap.timer("mdp.vi.sweep_seconds").unwrap().count, 0);
}
