//! Equivalence contracts of the SCC-ordered solver and the `Query` API:
//!
//! * on models whose relevant graph is **acyclic** (a DAG for unbounded
//!   queries; a zero-cost-acyclic "DAG of rounds" for horizon queries —
//!   cost-1 edges may still form cycles), `Solver::SccOrdered` is
//!   **bit-for-bit** identical to `Solver::Jacobi`: every component is
//!   trivial, so each state is computed once from exact successor values —
//!   the same floating-point expression, in the same transition order, the
//!   converged Jacobi sweep evaluates;
//! * on models with nontrivial SCCs (e.g. the ring-rotation family, where
//!   probabilistic steps fall back into earlier states), the two solvers
//!   agree within iteration tolerance (≤ 1e-10 here);
//! * Jacobi-pinned `Query` runs match the nested-model oracles bitwise
//!   (the contract the removed pre-`Query` wrappers used to pin);
//! * on a layered round model the SCC-ordered solve performs strictly
//!   fewer state updates than the global Jacobi schedule.

use pa_mdp::{
    reference, Choice, CsrMdp, ExplicitMdp, IterOptions, Objective, Query, QueryObjective, Solver,
};
use proptest::prelude::*;

fn lcg(seed: u64) -> impl FnMut() -> usize {
    let mut x = seed;
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    }
}

/// A random **DAG** model: every edge goes strictly forward, costs are
/// 0/1, distributions are deterministic or fair two-point.
fn random_dag() -> impl Strategy<Value = ExplicitMdp> {
    (3usize..10, any::<u64>()).prop_map(|(n, seed)| {
        let mut next = lcg(seed);
        let mut choices = Vec::with_capacity(n);
        for s in 0..n - 1 {
            let mut cs = Vec::new();
            for _ in 0..=next() % 2 {
                let cost = (next() % 2) as u32;
                let a = s + 1 + next() % (n - s - 1);
                let b = s + 1 + next() % (n - s - 1);
                cs.push(if a == b {
                    Choice::to(cost, a)
                } else {
                    Choice::dist(cost, vec![(a, 0.5), (b, 0.5)])
                });
            }
            choices.push(cs);
        }
        choices.push(Vec::new());
        ExplicitMdp::new(choices, vec![0]).expect("valid model")
    })
}

/// A random **DAG of rounds**: the zero-cost subgraph only moves forward,
/// but cost-1 choices may jump anywhere — including backwards, forming
/// cycles through round boundaries (the ring-rotation shape).
fn random_round_dag() -> impl Strategy<Value = ExplicitMdp> {
    (3usize..10, any::<u64>()).prop_map(|(n, seed)| {
        let mut next = lcg(seed);
        let mut choices = Vec::with_capacity(n);
        for s in 0..n - 1 {
            let mut cs = Vec::new();
            for _ in 0..=next() % 2 {
                let cost = (next() % 2) as u32;
                let (a, b) = if cost == 0 {
                    // Zero-cost edges stay strictly forward.
                    (s + 1 + next() % (n - s - 1), s + 1 + next() % (n - s - 1))
                } else {
                    // Round boundaries may rotate back.
                    (next() % n, next() % n)
                };
                cs.push(if a == b {
                    Choice::to(cost, a)
                } else {
                    Choice::dist(cost, vec![(a, 0.5), (b, 0.5)])
                });
            }
            choices.push(cs);
        }
        choices.push(Vec::new());
        ExplicitMdp::new(choices, vec![0]).expect("valid model")
    })
}

/// A fully random model: cycles anywhere, zero-cost loops included.
fn random_cyclic() -> impl Strategy<Value = ExplicitMdp> {
    (2usize..9, any::<u64>()).prop_map(|(n, seed)| {
        let mut next = lcg(seed);
        let mut choices = Vec::with_capacity(n);
        for _ in 0..n {
            let mut cs = Vec::new();
            for _ in 0..next() % 3 {
                let cost = (next() % 2) as u32;
                let a = next() % n;
                let b = next() % n;
                cs.push(if a == b {
                    Choice::to(cost, a)
                } else {
                    Choice::dist(cost, vec![(a, 0.5), (b, 0.5)])
                });
            }
            choices.push(cs);
        }
        ExplicitMdp::new(choices, vec![0]).expect("valid model")
    })
}

fn target_last(m: &ExplicitMdp) -> Vec<bool> {
    (0..m.num_states())
        .map(|s| s == m.num_states() - 1)
        .collect()
}

fn assert_bitwise(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: state {i}: {x} vs {y} differ in bits"
        );
    }
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.is_infinite() || y.is_infinite() {
            assert_eq!(x, y, "{what}: state {i}");
        } else {
            assert!((x - y).abs() <= tol, "{what}: state {i}: {x} vs {y}");
        }
    }
}

proptest! {
    /// Unbounded reachability on DAGs: SCC-ordered == Jacobi, bitwise,
    /// and both match the nested-model oracle.
    #[test]
    fn scc_unbounded_reach_is_bitwise_on_dags(m in random_dag()) {
        let target = target_last(&m);
        let opts = IterOptions::default();
        for objective in [Objective::MinProb, Objective::MaxProb] {
            let jacobi = Query::over(&m)
                .objective(objective)
                .target(&target)
                .options(opts)
                .solver(Solver::Jacobi)
                .run()
                .unwrap();
            let scc = Query::over(&m)
                .objective(objective)
                .target(&target)
                .options(opts)
                .solver(Solver::SccOrdered)
                .run()
                .unwrap();
            assert_bitwise(&jacobi.values, &scc.values, "reach");
            let oracle = reference::reach_prob_jacobi(&m, &target, objective, opts).unwrap();
            assert_bitwise(&oracle, &scc.values, "reach vs oracle");
        }
    }

    /// Horizon queries on DAG-of-rounds models (zero-cost subgraph
    /// acyclic, cost-1 cycles allowed): bitwise across solvers, and the
    /// extracted policies pick identical choices.
    #[test]
    fn scc_horizon_is_bitwise_on_round_dags(m in random_round_dag(), budget in 0u32..6) {
        let target = target_last(&m);
        for objective in [Objective::MinProb, Objective::MaxProb] {
            let jacobi = Query::over(&m)
                .objective(objective)
                .target(&target)
                .horizon(budget)
                .with_policy()
                .solver(Solver::Jacobi)
                .run()
                .unwrap();
            let scc = Query::over(&m)
                .objective(objective)
                .target(&target)
                .horizon(budget)
                .with_policy()
                .solver(Solver::SccOrdered)
                .run()
                .unwrap();
            assert_bitwise(&jacobi.values, &scc.values, "horizon");
            let pj = jacobi.policy.unwrap();
            let ps = scc.policy.unwrap();
            prop_assert_eq!(pj.decision, ps.decision);
        }
    }

    /// Models with nontrivial SCCs: solvers agree within 1e-10 on
    /// reachability and on expected cost (infinities must coincide).
    #[test]
    fn scc_agrees_within_tolerance_on_cyclic_models(m in random_cyclic()) {
        let target = target_last(&m);
        let opts = IterOptions::default();
        for objective in [QueryObjective::MinProb, QueryObjective::MaxProb] {
            let jacobi = Query::over(&m)
                .objective(objective)
                .target(&target)
                .options(opts)
                .solver(Solver::Jacobi)
                .run()
                .unwrap();
            let scc = Query::over(&m)
                .objective(objective)
                .target(&target)
                .options(opts)
                .solver(Solver::SccOrdered)
                .run()
                .unwrap();
            assert_close(&jacobi.values, &scc.values, 1e-10, "cyclic reach");
        }
        let jacobi = Query::over(&m)
            .objective(QueryObjective::MaxCost)
            .target(&target)
            .solver(Solver::Jacobi)
            .run()
            .unwrap();
        let scc = Query::over(&m)
            .objective(QueryObjective::MaxCost)
            .target(&target)
            .solver(Solver::SccOrdered)
            .run()
            .unwrap();
        assert_close(&jacobi.values, &scc.values, 1e-7, "cyclic expected cost");
    }

    /// The condensation's solve-order invariant on arbitrary models: every
    /// cross-component edge points to an already-solved component, and the
    /// component arrays partition the state space.
    #[test]
    fn condensation_is_reverse_topological(m in random_cyclic()) {
        let csr = CsrMdp::from_explicit(&m);
        let scc = csr.scc();
        let mut seen = vec![false; csr.num_states()];
        for c in 0..scc.num_components() {
            for &s in scc.component(c) {
                prop_assert!(!seen[s as usize]);
                seen[s as usize] = true;
                prop_assert_eq!(scc.component_of(s as usize), c);
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
        for s in 0..csr.num_states() {
            for c in csr.choice_range(s) {
                for i in csr.trans_range(c) {
                    let (t, p) = csr.transition(i);
                    if p > 0.0 && scc.component_of(t) != scc.component_of(s) {
                        prop_assert!(scc.component_of(t) < scc.component_of(s));
                    }
                }
            }
        }
    }

    /// A Jacobi-pinned `Query` reproduces the nested-model oracles bitwise
    /// on arbitrary cyclic models — the exact contract the removed
    /// pre-`Query` wrappers used to pin, now stated directly against the
    /// builder. Policy extraction must not perturb the values.
    #[test]
    fn jacobi_query_matches_oracles_bitwise(m in random_cyclic(), budget in 0u32..5) {
        let target = target_last(&m);
        let opts = IterOptions::default();

        let bounded = Query::over(&m)
            .objective(QueryObjective::MinProb)
            .target(&target)
            .horizon(budget)
            .solver(Solver::Jacobi)
            .run()
            .unwrap();
        let oracle =
            reference::cost_bounded_reach_jacobi(&m, &target, budget, Objective::MinProb).unwrap();
        assert_bitwise(&bounded.values, &oracle, "bounded reach vs oracle");

        let unbounded = Query::over(&m)
            .objective(QueryObjective::MaxProb)
            .target(&target)
            .options(opts)
            .solver(Solver::Jacobi)
            .run()
            .unwrap();
        let oracle = reference::reach_prob_jacobi(&m, &target, Objective::MaxProb, opts).unwrap();
        assert_bitwise(&unbounded.values, &oracle, "unbounded reach vs oracle");

        let cost = Query::over(&m)
            .objective(QueryObjective::MaxCost)
            .target(&target)
            .options(opts)
            .solver(Solver::Jacobi)
            .run()
            .unwrap();
        let oracle = reference::max_expected_cost_jacobi(&m, &target, opts).unwrap();
        assert_bitwise(&cost.values, &oracle, "max expected cost vs oracle");

        let with_policy = Query::over(&m)
            .objective(QueryObjective::MaxProb)
            .target(&target)
            .horizon(budget)
            .with_policy()
            .solver(Solver::Jacobi)
            .run()
            .unwrap();
        let plain = Query::over(&m)
            .objective(QueryObjective::MaxProb)
            .target(&target)
            .horizon(budget)
            .solver(Solver::Jacobi)
            .run()
            .unwrap();
        assert_bitwise(&with_policy.values, &plain.values, "policy extraction");
        prop_assert!(with_policy.policy.is_some());
    }
}

/// A layered round model in the shape of the Lehmann–Rabin round MDPs:
/// `levels` rounds, each with `width` intra-round states chained by
/// zero-cost steps, a probabilistic cost-1 round boundary that advances or
/// repeats the round, and a final target state.
fn layered_rounds(levels: usize, width: usize) -> ExplicitMdp {
    let id = |l: usize, w: usize| l * width + w;
    let n = levels * width + 1;
    let mut choices = vec![Vec::new(); n];
    for l in 0..levels {
        for w in 0..width - 1 {
            choices[id(l, w)].push(Choice::to(0, id(l, w + 1)));
        }
        let next = if l + 1 == levels { n - 1 } else { id(l + 1, 0) };
        // Round boundary: advance with 1/2, repeat the round otherwise.
        choices[id(l, width - 1)].push(Choice::dist(1, vec![(next, 0.5), (id(l, 0), 0.5)]));
    }
    ExplicitMdp::new(choices, vec![0]).expect("valid layered model")
}

#[test]
fn scc_saves_state_updates_on_layered_round_models() {
    let m = layered_rounds(12, 6);
    let target = target_last(&m);
    let jacobi = Query::over(&m)
        .objective(QueryObjective::MaxProb)
        .target(&target)
        .solver(Solver::Jacobi)
        .workers(1)
        .run()
        .unwrap();
    let scc = Query::over(&m)
        .objective(QueryObjective::MaxProb)
        .target(&target)
        .solver(Solver::SccOrdered)
        .run()
        .unwrap();
    assert_close(&jacobi.values, &scc.values, 1e-10, "layered reach");
    assert!(scc.stats.components > 0, "condensation recorded");
    assert!(
        scc.stats.state_updates < jacobi.stats.state_updates,
        "SCC ordering must perform strictly fewer updates: {} vs {}",
        scc.stats.state_updates,
        jacobi.stats.state_updates
    );
}

#[test]
fn scc_horizon_reuses_one_condensation_across_levels() {
    let m = layered_rounds(6, 4);
    let target = target_last(&m);
    let a = Query::over(&m)
        .objective(QueryObjective::MinProb)
        .target(&target)
        .horizon(20)
        .solver(Solver::SccOrdered)
        .run()
        .unwrap();
    let b = Query::over(&m)
        .objective(QueryObjective::MinProb)
        .target(&target)
        .horizon(20)
        .solver(Solver::Jacobi)
        .run()
        .unwrap();
    // Zero-cost subgraph of a round model is acyclic: bitwise agreement.
    assert_bitwise(&b.values, &a.values, "layered horizon");
    assert_eq!(
        a.stats.nontrivial_components, 0,
        "round models are zero-cost acyclic"
    );
    assert!(a.stats.state_updates < b.stats.state_updates);
}
