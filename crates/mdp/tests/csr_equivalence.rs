//! Property tests pinning down the CSR engine's equivalence contracts:
//!
//! * every CSR analysis is **bit-for-bit** identical to its nested-model
//!   Jacobi oracle in [`pa_mdp::reference`];
//! * worker count never changes a single bit of any result;
//! * the CSR fixpoints agree with the original Gauss–Seidel engine up to
//!   iteration tolerance (the two methods converge to the same fixpoint
//!   along different trajectories, so only tolerance equality is owed);
//! * a parallel [`Explore`] run reproduces the serial one exactly —
//!   same states in the same order, same choices, same limit errors.

use pa_core::{Automaton, Step};
use pa_mdp::{
    min_expected_cost, reference, Choice, CsrMdp, ExpectedCost, ExplicitMdp, Explore, IterOptions,
    MdpError, Objective, Query, QueryObjective, Solver,
};
use pa_prob::FiniteDist;
use proptest::prelude::*;

// The nested-model oracles pin the *Jacobi* trajectory, so the `Query`
// calls below pin `Solver::Jacobi` explicitly — bitwise comparison is only
// owed against the matching solver, independent of the process default.

fn reach_prob(
    mdp: &ExplicitMdp,
    target: &[bool],
    objective: Objective,
    options: IterOptions,
) -> Result<Vec<f64>, MdpError> {
    Ok(Query::over(mdp)
        .objective(objective)
        .target(target)
        .options(options)
        .solver(Solver::Jacobi)
        .run()?
        .values)
}

fn cost_bounded_reach(
    mdp: &ExplicitMdp,
    target: &[bool],
    budget: u32,
    objective: Objective,
) -> Result<Vec<f64>, MdpError> {
    Ok(Query::over(mdp)
        .objective(objective)
        .target(target)
        .horizon(budget)
        .solver(Solver::Jacobi)
        .run()?
        .values)
}

fn max_expected_cost(
    mdp: &ExplicitMdp,
    target: &[bool],
    options: IterOptions,
) -> Result<ExpectedCost, MdpError> {
    let analysis = Query::over(mdp)
        .objective(QueryObjective::MaxCost)
        .target(target)
        .options(options)
        .solver(Solver::Jacobi)
        .run()?;
    Ok(ExpectedCost {
        values: analysis.values,
    })
}

/// Strategy: a random MDP with up to 8 states, up to 2 choices per state,
/// cost-0/1 transitions, and fair two-point distributions.
fn random_mdp() -> impl Strategy<Value = ExplicitMdp> {
    (2usize..9, any::<u64>()).prop_map(|(n, seed)| {
        let mut x = seed;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        let choices: Vec<Vec<Choice>> = (0..n)
            .map(|_| {
                let k = next() % 3; // 0..=2 choices; 0 = terminal state
                (0..k)
                    .map(|_| {
                        let cost = (next() % 2) as u32;
                        let a = next() % n;
                        let b = next() % n;
                        if a == b {
                            Choice::to(cost, a)
                        } else {
                            Choice::dist(cost, vec![(a, 0.5), (b, 0.5)])
                        }
                    })
                    .collect()
            })
            .collect();
        ExplicitMdp::new(choices, vec![0]).expect("valid random model")
    })
}

fn last_state_target(m: &ExplicitMdp) -> Vec<bool> {
    (0..m.num_states())
        .map(|s| s == m.num_states() - 1)
        .collect()
}

/// Bitwise equality of two value vectors (`to_bits` so that even the sign
/// of zero and the exact rounding of every sum must match).
fn assert_bitwise(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for s in 0..a.len() {
        assert_eq!(
            a[s].to_bits(),
            b[s].to_bits(),
            "state {s}: {} vs {}",
            a[s],
            b[s]
        );
    }
}

fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for s in 0..a.len() {
        if a[s].is_infinite() || b[s].is_infinite() {
            assert_eq!(a[s], b[s], "state {s}");
        } else {
            let scale = 1.0 + a[s].abs().max(b[s].abs());
            assert!(
                (a[s] - b[s]).abs() <= tol * scale,
                "state {s}: {} vs {}",
                a[s],
                b[s]
            );
        }
    }
}

proptest! {
    #[test]
    fn reach_prob_matches_nested_jacobi_bitwise(m in random_mdp()) {
        let target = last_state_target(&m);
        for objective in [Objective::MinProb, Objective::MaxProb] {
            let csr = reach_prob(&m, &target, objective, IterOptions::default()).unwrap();
            let oracle =
                reference::reach_prob_jacobi(&m, &target, objective, IterOptions::default())
                    .unwrap();
            assert_bitwise(&csr, &oracle);
        }
    }

    #[test]
    fn cost_bounded_reach_matches_nested_jacobi_bitwise(m in random_mdp(), budget in 0u32..8) {
        let target = last_state_target(&m);
        for objective in [Objective::MinProb, Objective::MaxProb] {
            let csr = cost_bounded_reach(&m, &target, budget, objective).unwrap();
            let oracle =
                reference::cost_bounded_reach_jacobi(&m, &target, budget, objective).unwrap();
            assert_bitwise(&csr, &oracle);
        }
    }

    #[test]
    fn expected_costs_match_nested_jacobi_bitwise(m in random_mdp()) {
        let target = last_state_target(&m);
        let csr = max_expected_cost(&m, &target, IterOptions::default()).unwrap();
        let oracle =
            reference::max_expected_cost_jacobi(&m, &target, IterOptions::default()).unwrap();
        assert_bitwise(&csr.values, &oracle);

        // The minimizing analysis may reject the model (zero-cost cycles);
        // engine and oracle must agree on that, too.
        let csr_min = min_expected_cost(&m, &target, IterOptions::default());
        let oracle_min = reference::min_expected_cost_jacobi(&m, &target, IterOptions::default());
        match (csr_min, oracle_min) {
            (Ok(e), Ok(o)) => assert_bitwise(&e.values, &o),
            (Err(MdpError::DivergentExpectation { .. }),
             Err(MdpError::DivergentExpectation { .. })) => {}
            (a, b) => prop_assert!(false, "divergence mismatch: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn worker_count_is_invisible_in_results(m in random_mdp(), budget in 0u32..6) {
        let target = last_state_target(&m);
        let csr = CsrMdp::from_explicit(&m);
        let opts = IterOptions::default();
        for objective in [Objective::MinProb, Objective::MaxProb] {
            let serial = csr.reach_prob(&target, objective, opts, Some(1)).unwrap();
            let parallel = csr.reach_prob(&target, objective, opts, Some(3)).unwrap();
            assert_bitwise(&serial, &parallel);

            let serial = csr
                .cost_bounded_reach_levels(&target, budget, objective, Some(1), |_, _| {})
                .unwrap();
            let parallel = csr
                .cost_bounded_reach_levels(&target, budget, objective, Some(4), |_, _| {})
                .unwrap();
            assert_bitwise(&serial, &parallel);
        }
        let serial = csr.max_expected_cost(&target, opts, Some(1)).unwrap();
        let parallel = csr.max_expected_cost(&target, opts, Some(3)).unwrap();
        assert_bitwise(&serial, &parallel);
    }

    #[test]
    fn csr_agrees_with_gauss_seidel_up_to_tolerance(m in random_mdp(), budget in 0u32..6) {
        let target = last_state_target(&m);
        let opts = IterOptions::default();
        // Per-level solving truncates its inner fixpoint at 4n + 8 sweeps
        // (a bound on zero-cost *chain* depth, inherited from the original
        // engine). On models with zero-cost cycles that truncation leaves
        // different residues under Jacobi and Gauss–Seidel, so tolerance
        // equality of the bounded recursion is only owed on zero-cost-
        // acyclic models — the shape of every case-study round model.
        let zc = pa_mdp::has_zero_cost_cycle(&m, &target).unwrap();
        for objective in [Objective::MinProb, Objective::MaxProb] {
            let csr = reach_prob(&m, &target, objective, opts).unwrap();
            let gs = reference::reach_prob_gauss_seidel(&m, &target, objective, opts).unwrap();
            assert_close(&csr, &gs, 1e-6);

            if !zc {
                let csr = cost_bounded_reach(&m, &target, budget, objective).unwrap();
                let gs =
                    reference::cost_bounded_reach_gauss_seidel(&m, &target, budget, objective)
                        .unwrap();
                // Both recursions are exact here, so the gap is tiny.
                assert_close(&csr, &gs, 1e-9);
            }
        }
        let csr = max_expected_cost(&m, &target, opts).unwrap();
        let gs = reference::max_expected_cost_gauss_seidel(&m, &target, opts).unwrap();
        assert_close(&csr.values, &gs, 1e-6);
    }
}

/// A pseudo-random implicit automaton over `0..n`: fanout and successor
/// pairs are scrambled from the state value, so exploration order and
/// deduplication are exercised on irregular graphs without any RNG state.
#[derive(Debug)]
struct ScrambleGraph {
    n: u64,
    fanout: u64,
}

impl Automaton for ScrambleGraph {
    type State = u64;
    type Action = u64;

    fn start_states(&self) -> Vec<u64> {
        vec![0]
    }

    fn steps(&self, s: &u64) -> Vec<Step<u64, u64>> {
        let mix = |k: u64, salt: u64| {
            s.wrapping_add(k.rotate_left(17) ^ salt)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                >> 11
        };
        (0..self.fanout)
            .map(|k| {
                let a = mix(k, 0xA5A5) % self.n;
                let b = mix(k, 0x5A5A) % self.n;
                if a == b {
                    Step::deterministic(k, a)
                } else {
                    Step {
                        action: k,
                        target: FiniteDist::new([(a, 0.5), (b, 0.5)]).expect("two-point dist"),
                    }
                }
            })
            .collect()
    }
}

proptest! {
    #[test]
    fn par_explore_reproduces_serial_exploration(n in 2u64..80, fanout in 1u64..4) {
        let g = ScrambleGraph { n, fanout };
        let cost = |s: &u64, a: &u64| ((s ^ a) % 2) as u32;
        let serial = Explore::new(&g).cost(cost).limit(10_000).run().unwrap();
        for workers in [1usize, 2, 5] {
            let par = Explore::new(&g)
                .cost(cost)
                .limit(10_000)
                .workers(workers)
                .run()
                .unwrap();
            prop_assert_eq!(par.states(), serial.states(), "workers={}", workers);
            prop_assert_eq!(par.mdp.initial_states(), serial.mdp.initial_states());
            prop_assert_eq!(par.mdp.num_states(), serial.mdp.num_states());
            for s in 0..serial.mdp.num_states() {
                prop_assert_eq!(par.mdp.choices(s), serial.mdp.choices(s), "state {}", s);
            }
        }
    }

    #[test]
    fn par_explore_hits_the_same_state_limit(n in 8u64..60, limit in 1usize..8) {
        let g = ScrambleGraph { n, fanout: 3 };
        let cost = |_: &u64, _: &u64| 1u32;
        let serial = Explore::new(&g).cost(cost).limit(limit).run();
        let par = Explore::new(&g).cost(cost).limit(limit).workers(3).run();
        match (serial, par) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.states(), b.states()),
            (
                Err(MdpError::StateLimitExceeded { limit: a }),
                Err(MdpError::StateLimitExceeded { limit: b }),
            ) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "limit mismatch: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}
