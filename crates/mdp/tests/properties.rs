//! Property-based tests for the MDP analysis algorithms on randomly
//! generated models.

use pa_core::TableAutomaton;
use pa_mdp::{
    prob0_max, prob0_min, Choice, ExpectedCost, ExplicitMdp, Explore, IterOptions, MdpError,
    Objective, Query, QueryObjective,
};
use proptest::prelude::*;

/// Bounded reachability through the `Query` builder (the pre-`Query` free
/// function was removed after its deprecation cycle).
fn cost_bounded_reach(
    mdp: &ExplicitMdp,
    target: &[bool],
    budget: u32,
    objective: Objective,
) -> Result<Vec<f64>, MdpError> {
    Ok(Query::over(mdp)
        .objective(objective)
        .target(target)
        .horizon(budget)
        .run()?
        .values)
}

/// Unbounded reachability through the `Query` builder.
fn reach_prob(
    mdp: &ExplicitMdp,
    target: &[bool],
    objective: Objective,
    options: IterOptions,
) -> Result<Vec<f64>, MdpError> {
    Ok(Query::over(mdp)
        .objective(objective)
        .target(target)
        .options(options)
        .run()?
        .values)
}

/// Worst-case expected cost through the `Query` builder.
fn max_expected_cost(
    mdp: &ExplicitMdp,
    target: &[bool],
    options: IterOptions,
) -> Result<ExpectedCost, MdpError> {
    let analysis = Query::over(mdp)
        .objective(QueryObjective::MaxCost)
        .target(target)
        .options(options)
        .run()?;
    Ok(ExpectedCost {
        values: analysis.values,
    })
}

/// Strategy: a random MDP with `n` states, up to `c` choices per state,
/// cost-0/1 transitions, and fair two-point distributions.
fn random_mdp() -> impl Strategy<Value = ExplicitMdp> {
    (2usize..8, any::<u64>()).prop_map(|(n, seed)| {
        let mut x = seed;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        let choices: Vec<Vec<Choice>> = (0..n)
            .map(|_| {
                let k = next() % 3; // 0..=2 choices; 0 = terminal state
                (0..k)
                    .map(|_| {
                        let cost = (next() % 2) as u32;
                        let a = next() % n;
                        let b = next() % n;
                        if a == b {
                            Choice::to(cost, a)
                        } else {
                            Choice::dist(cost, vec![(a, 0.5), (b, 0.5)])
                        }
                    })
                    .collect()
            })
            .collect();
        ExplicitMdp::new(choices, vec![0]).expect("valid random model")
    })
}

/// Strategy: an implicit automaton whose first BFS level is wide enough to
/// shard in parallel, with a seed-controlled skew in where the branching
/// lands — the shape that drives `par_explore`'s adaptive shard sizing.
fn skewed_automaton() -> impl Strategy<Value = TableAutomaton<u32, &'static str>> {
    (150usize..400, any::<u64>()).prop_map(|(width, seed)| {
        let mut x = seed;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        let hot = next() % width; // branching concentrates after this index
        let mut b = TableAutomaton::builder().start(0);
        for i in 0..width as u32 {
            b = b.det_step(0, "spread", i + 1);
            let fan = if i as usize >= hot {
                1 + next() % 24
            } else {
                1
            };
            for j in 0..fan as u32 {
                b = b.det_step(i + 1, "fan", 10_000 + i * 32 + j);
            }
        }
        b.build().expect("valid generated automaton")
    })
}

proptest! {
    #[test]
    fn adaptive_parallel_exploration_matches_serial(m in skewed_automaton(), workers in 2usize..9) {
        let serial = Explore::new(&m).limit(1_000_000).run().unwrap();
        let par = Explore::new(&m)
            .limit(1_000_000)
            .workers(workers)
            .run()
            .unwrap();
        prop_assert_eq!(par.states(), serial.states());
        prop_assert_eq!(par.mdp.initial_states(), serial.mdp.initial_states());
        for s in 0..serial.mdp.num_states() {
            prop_assert_eq!(par.mdp.choices(s), serial.mdp.choices(s));
        }
    }

    #[test]
    fn bounded_values_are_probabilities_and_monotone(m in random_mdp(), budget in 0u32..8) {
        let target: Vec<bool> = (0..m.num_states()).map(|s| s == m.num_states() - 1).collect();
        let v1 = cost_bounded_reach(&m, &target, budget, Objective::MinProb).unwrap();
        let v2 = cost_bounded_reach(&m, &target, budget + 1, Objective::MinProb).unwrap();
        for s in 0..m.num_states() {
            prop_assert!((0.0..=1.0).contains(&v1[s]));
            prop_assert!(v2[s] + 1e-12 >= v1[s], "monotone in budget");
        }
    }

    #[test]
    fn min_is_dominated_by_max(m in random_mdp(), budget in 0u32..8) {
        let target: Vec<bool> = (0..m.num_states()).map(|s| s == 0).collect();
        let lo = cost_bounded_reach(&m, &target, budget, Objective::MinProb).unwrap();
        let hi = cost_bounded_reach(&m, &target, budget, Objective::MaxProb).unwrap();
        for s in 0..m.num_states() {
            prop_assert!(lo[s] <= hi[s] + 1e-12);
        }
    }

    #[test]
    fn unbounded_dominates_bounded(m in random_mdp(), budget in 0u32..8) {
        let target: Vec<bool> = (0..m.num_states()).map(|s| s == m.num_states() - 1).collect();
        let bounded = cost_bounded_reach(&m, &target, budget, Objective::MaxProb).unwrap();
        let unbounded = reach_prob(&m, &target, Objective::MaxProb, IterOptions::default()).unwrap();
        for s in 0..m.num_states() {
            prop_assert!(unbounded[s] + 1e-9 >= bounded[s]);
        }
    }

    #[test]
    fn prob0_sets_match_values(m in random_mdp()) {
        let target: Vec<bool> = (0..m.num_states()).map(|s| s == m.num_states() - 1).collect();
        let zero_max = prob0_max(&m, &target).unwrap();
        let zero_min = prob0_min(&m, &target).unwrap();
        let vmax = reach_prob(&m, &target, Objective::MaxProb, IterOptions::default()).unwrap();
        let vmin = reach_prob(&m, &target, Objective::MinProb, IterOptions::default()).unwrap();
        #[allow(clippy::needless_range_loop)]
        for s in 0..m.num_states() {
            if zero_max[s] {
                prop_assert!(vmax[s] == 0.0, "prob0_max state has max value {}", vmax[s]);
            }
            if zero_min[s] {
                prop_assert!(vmin[s] == 0.0, "prob0_min state has min value {}", vmin[s]);
            }
            // Targets are never in a prob0 set.
            if target[s] {
                prop_assert!(!zero_max[s] && !zero_min[s]);
            }
        }
    }

    #[test]
    fn expected_cost_is_nonnegative_and_zero_on_targets(m in random_mdp()) {
        let target: Vec<bool> = (0..m.num_states()).map(|s| s == m.num_states() - 1).collect();
        let e = max_expected_cost(&m, &target, IterOptions::default()).unwrap();
        #[allow(clippy::needless_range_loop)]
        for s in 0..m.num_states() {
            if target[s] {
                prop_assert_eq!(e.values[s], 0.0);
            } else {
                prop_assert!(e.values[s] >= 0.0);
            }
        }
    }

    #[test]
    fn target_states_have_value_one_at_any_budget(m in random_mdp(), budget in 0u32..6) {
        let target: Vec<bool> = (0..m.num_states()).map(|s| s % 2 == 0).collect();
        for objective in [Objective::MinProb, Objective::MaxProb] {
            let v = cost_bounded_reach(&m, &target, budget, objective).unwrap();
            for s in 0..m.num_states() {
                if target[s] {
                    prop_assert_eq!(v[s], 1.0);
                }
            }
        }
    }
}
