//! Property tests for the `pa-store/csr/v1` format: serialize → (mmap)
//! → deserialize is the identity on arbitrary blocks, and damaged files —
//! truncation anywhere, a flipped payload bit — surface as *named* errors,
//! never as UB or silently zeroed rows.

use proptest::prelude::*;

use pa_mdp::{Choice, CsrSource};
use pa_store::{StoreError, StoreWriter, StoredCsr};

/// An arbitrary small model as nested rows: per state, a list of choices,
/// each a cost in {0,1} and a normalized support over the state ids.
fn arb_rows(max_states: usize) -> impl Strategy<Value = Vec<Vec<Choice>>> {
    prop::collection::vec(
        prop::collection::vec(
            (
                0u32..=1,
                prop::collection::vec((0usize..max_states, 1u32..=8), 1..4),
            ),
            0..4,
        ),
        1..max_states + 1,
    )
    .prop_map(|rows| {
        let n = rows.len();
        rows.into_iter()
            .map(|choices| {
                choices
                    .into_iter()
                    .map(|(cost, support)| {
                        let total: u32 = support.iter().map(|&(_, w)| w).sum();
                        let transitions = support
                            .into_iter()
                            .map(|(t, w)| (t % n, f64::from(w) / f64::from(total)))
                            .collect();
                        Choice { cost, transitions }
                    })
                    .collect()
            })
            .collect()
    })
}

fn write_store(
    dir: &std::path::Path,
    rows: &[Vec<Choice>],
    block_bytes: usize,
) -> pa_store::StoreFile {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("model.pacsr");
    let mut w = StoreWriter::create(&path, 0, block_bytes).unwrap();
    let mut choices = 0u64;
    let mut trans = 0u64;
    for (id, cs) in rows.iter().enumerate() {
        choices += cs.len() as u64;
        trans += cs.iter().map(|c| c.transitions.len() as u64).sum::<u64>();
        w.push_row(id, cs).unwrap();
    }
    w.finish(&[0], choices, trans).unwrap()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pa-store-props-{}-{tag}", std::process::id()))
}

proptest! {
    /// Round trip: every row read back from disk equals what was written,
    /// for a block size small enough to split most cases multi-block.
    #[test]
    fn round_trip_is_identity(rows in arb_rows(24)) {
        let dir = tmpdir("roundtrip");
        let file = write_store(&dir, &rows, 256);
        let stored = StoredCsr::new(file, u64::MAX);
        prop_assert_eq!(CsrSource::num_states(&stored), rows.len());
        let mut seen = vec![false; rows.len()];
        for b in 0..stored.num_blocks() {
            stored.with_rows(b, &mut |r| {
                for s in r.states() {
                    seen[s] = true;
                    let want = &rows[s];
                    let cr = r.choice_range(s);
                    assert_eq!(cr.len(), want.len(), "state {s} choice count");
                    for (c, choice) in cr.zip(want) {
                        assert_eq!(r.costs[c], choice.cost);
                        let tr = r.trans_range(c);
                        assert_eq!(tr.len(), choice.transitions.len());
                        for (i, &(t, p)) in tr.zip(&choice.transitions) {
                            assert_eq!(r.targets[i] as usize, t);
                            assert_eq!(r.probs[i].to_bits(), p.to_bits());
                        }
                    }
                }
            }).unwrap();
        }
        prop_assert!(seen.iter().all(|&s| s));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncating the file anywhere strictly inside it yields a named
    /// StoreError from open (or, for cuts inside a late block whose footer
    /// is gone too, still from open — the footer is always behind the cut).
    #[test]
    fn truncation_is_a_named_error(rows in arb_rows(12), frac in 0.0f64..1.0) {
        let dir = tmpdir("truncate");
        let file = write_store(&dir, &rows, 256);
        let path = file.path().to_path_buf();
        drop(file);
        let full = std::fs::read(&path).unwrap();
        let cut = ((full.len() as f64 * frac) as usize).min(full.len() - 1);
        std::fs::write(&path, &full[..cut]).unwrap();
        match pa_store::StoreFile::open(&path) {
            Err(
                StoreError::Truncated { .. }
                | StoreError::BadMagic
                | StoreError::Unsupported { .. }
                | StoreError::BadBlock { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(_) => prop_assert!(false, "opened a truncated file"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping one bit of one block's payload is caught by the digest on
    /// page-in — a named DigestMismatch naming the block.
    #[test]
    fn corrupted_payload_is_a_digest_mismatch(rows in arb_rows(12), seed in 0usize..4096) {
        let dir = tmpdir("corrupt");
        let file = write_store(&dir, &rows, 256);
        let path = file.path().to_path_buf();
        let metas: Vec<_> = file.blocks().to_vec();
        drop(file);
        let meta = metas[seed % metas.len()];
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = meta.offset as usize + seed % meta.payload_len as usize;
        bytes[victim] ^= 1 << (seed % 8);
        std::fs::write(&path, &bytes).unwrap();
        let stored = StoredCsr::open(&path, u64::MAX).unwrap();
        let mut hit_bad_block = false;
        for b in 0..stored.num_blocks() {
            if let Err(e) = stored.with_rows(b, &mut |_| {}) {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("digest mismatch") || msg.contains("inconsistent"),
                    "unexpected error: {msg}"
                );
                hit_bad_block = true;
            }
        }
        // The flipped bit sat in *some* block; if it was a keys block (none
        // here: key_words = 0) or exactly cancelled nothing — every block is
        // CSR, so one with_rows must have failed.
        prop_assert!(hit_bad_block, "bit flip in block payload went unnoticed");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let dir = tmpdir("magic");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.pacsr");
    std::fs::write(&path, vec![0u8; 8192]).unwrap();
    assert!(matches!(
        pa_store::StoreFile::open(&path),
        Err(StoreError::BadMagic)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_file_is_truncated_not_a_panic() {
    let dir = tmpdir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.pacsr");
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        pa_store::StoreFile::open(&path),
        Err(StoreError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
