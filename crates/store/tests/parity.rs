//! The tentpole correctness gate: every analysis on a stored backend must
//! be **bitwise identical** to the in-core pipeline — for any cache
//! budget, down to a single resident block.
//!
//! Models are the real paper models at `n = 3` (the release-mode bench
//! `store` block re-pins the same contract at `n = 4`): all five arrow
//! checks on the round model, the expected-time bracket, a fault-plan
//! query on the faulty round model, and the rotation-quotient model with
//! packed keys.

use pa_faults::{
    faulty_round_cost, FaultEvent, FaultKind, FaultPlan, FaultyRoundMdp, FaultyStateCodec,
};
use pa_lehmann_rabin::{
    paper, reachable_configs, reachable_configs_quotient, region_pred, round_cost, set_pred,
    time_to_budget, Config, RoundConfig, RoundMdp,
};
use pa_mdp::{
    csr_digest, CsrSource, Explore, MdpError, PackedSpace, Query, QueryObjective, RingRotation,
    Solver,
};
use pa_store::SpillTo;

const N: usize = 3;
const LIMIT: usize = 2_000_000;

/// Cache budgets the whole suite quantifies over: effectively unbounded,
/// and 1 byte — which forces every block out as soon as it is unpinned,
/// so only the block being swept is ever resident.
const BUDGETS: [u64; 2] = [u64::MAX, 1];

/// Tiny blocks so even the n=3 models split into many of them.
const BLOCK_BYTES: usize = 4096;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pa-store-parity-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn round_model(from: &str, to_expr: &pa_core::SetExpr) -> RoundMdp {
    let from = region_pred(from).unwrap();
    let to = set_pred(to_expr).unwrap();
    let starts: Vec<Config> = reachable_configs(N, LIMIT)
        .unwrap()
        .into_iter()
        .filter(from)
        .collect();
    assert!(!starts.is_empty());
    RoundMdp::new(RoundConfig::new(N).unwrap())
        .with_starts(starts)
        .with_absorb(move |c| to(c))
}

fn assert_bitwise(tag: &str, in_core: &[f64], stored: &[f64]) {
    assert_eq!(in_core.len(), stored.len(), "{tag}: length");
    for (i, (a, b)) in in_core.iter().zip(stored).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{tag}: state {i} diverges ({a} vs {b})"
        );
    }
}

#[test]
fn all_five_arrows_are_bitwise_identical_for_any_budget() {
    for (arrow, name) in paper::all_arrows() {
        let atoms: Vec<&str> = arrow.from().atoms().collect();
        assert_eq!(atoms.len(), 1, "paper arrows start from a single region");
        let model = round_model(atoms[0], arrow.to());
        let to = set_pred(arrow.to()).unwrap();
        let budget = time_to_budget(arrow.time());

        let explored = Explore::new(&model)
            .cost(round_cost)
            .limit(LIMIT)
            .run()
            .unwrap();
        let target = explored.target_where(|rs| to(&rs.config));
        let in_core = explored
            .query()
            .objective(QueryObjective::MinProb)
            .target(target.clone())
            .horizon(budget)
            .solver(Solver::Jacobi)
            .run()
            .unwrap();
        let csr = pa_mdp::CsrMdp::from_explicit(&explored.mdp);
        let in_core_digest = csr_digest(&csr).unwrap();

        for cache_budget in BUDGETS {
            let dir = tmpdir(&format!("arrow-{name}-{cache_budget}"));
            let stored = Explore::new(&model)
                .cost(round_cost)
                .limit(LIMIT)
                .spill_to(&dir, cache_budget)
                .block_bytes(BLOCK_BYTES)
                .run()
                .unwrap();
            assert!(
                CsrSource::num_blocks(stored.store()) > 1,
                "{name}: model must split into multiple blocks for the test to bite"
            );
            assert_eq!(
                csr_digest(stored.store()).unwrap(),
                in_core_digest,
                "{name}: stored content digest"
            );
            let target2 = stored.target_where(|rs| to(&rs.config));
            assert_eq!(target, target2, "{name}: target mask");
            let analysis = stored
                .query()
                .objective(QueryObjective::MinProb)
                .target(target2)
                .horizon(budget)
                .run()
                .unwrap();
            assert_bitwise(name, &in_core.values, &analysis.values);
            if cache_budget == 1 {
                let stats = stored.store().cache().local_stats();
                assert!(stats.evictions > 0, "{name}: a 1-byte budget must evict");
                assert!(
                    stats.faults > stats.evictions,
                    "{name}: every eviction implies a refault later or earlier"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn expected_time_bracket_is_bitwise_identical() {
    let arrow = paper::arrow_g_to_p();
    let model = round_model("G", arrow.to());
    let to = set_pred(arrow.to()).unwrap();

    let explored = Explore::new(&model)
        .cost(round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    let target = explored.target_where(|rs| to(&rs.config));
    let mut in_core = Vec::new();
    for objective in [QueryObjective::MaxCost, QueryObjective::MinCost] {
        in_core.push(
            explored
                .query()
                .objective(objective)
                .target(target.clone())
                .solver(Solver::Jacobi)
                .run()
                .unwrap()
                .values,
        );
    }

    for cache_budget in BUDGETS {
        let dir = tmpdir(&format!("bracket-{cache_budget}"));
        let stored = Explore::new(&model)
            .cost(round_cost)
            .limit(LIMIT)
            .spill_to(&dir, cache_budget)
            .block_bytes(BLOCK_BYTES)
            .run()
            .unwrap();
        let target2 = stored.target_where(|rs| to(&rs.config));
        for (i, objective) in [QueryObjective::MaxCost, QueryObjective::MinCost]
            .into_iter()
            .enumerate()
        {
            let analysis = stored
                .query()
                .objective(objective)
                .target(target2.clone())
                .run()
                .unwrap();
            assert_bitwise(
                &format!("bracket {objective:?}"),
                &in_core[i],
                &analysis.values,
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn fault_plan_query_is_bitwise_identical() {
    let configs = reachable_configs(N, LIMIT).unwrap();
    let cfg = RoundConfig::new(N).unwrap();
    let plan = FaultPlan::new(vec![FaultEvent {
        round: 2,
        process: 0,
        kind: FaultKind::CrashStop,
    }])
    .unwrap();
    let model = FaultyRoundMdp::new(cfg, plan)
        .unwrap()
        .with_starts(configs.clone());
    let in_p = region_pred("P").unwrap();

    let explored = Explore::new(&model)
        .cost(faulty_round_cost)
        .limit(LIMIT)
        .run()
        .unwrap();
    let target = explored.target_where(|s| in_p(&s.inner.config));
    let in_core = explored
        .query()
        .objective(QueryObjective::MinProb)
        .target(target.clone())
        .horizon(8)
        .solver(Solver::Jacobi)
        .run()
        .unwrap();

    for cache_budget in BUDGETS {
        let dir = tmpdir(&format!("faults-{cache_budget}"));
        let stored = Explore::new(&model)
            .cost(faulty_round_cost)
            .limit(LIMIT)
            .spill_to(&dir, cache_budget)
            .block_bytes(BLOCK_BYTES)
            .run()
            .unwrap();
        let target2 = stored.target_where(|s| in_p(&s.inner.config));
        assert_eq!(target, target2);
        let analysis = stored
            .query()
            .objective(QueryObjective::MinProb)
            .target(target2)
            .horizon(8)
            .run()
            .unwrap();
        assert_bitwise("fault plan", &in_core.values, &analysis.values);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn quotient_model_with_packed_keys_round_trips_and_matches() {
    let configs = reachable_configs_quotient(N, LIMIT).unwrap();
    let cfg = RoundConfig::new(N).unwrap();
    let model = FaultyRoundMdp::new(cfg, FaultPlan::none())
        .unwrap()
        .with_starts(configs.clone());
    let codec = FaultyStateCodec::new(N, model.round_cap()).unwrap();
    let in_p = region_pred("P").unwrap();

    let explored = Explore::new(&model)
        .cost(faulty_round_cost)
        .limit(LIMIT)
        .symmetry(RingRotation::new(N))
        .run_in(PackedSpace::new(codec))
        .unwrap();
    let target = explored.target_where(|s| in_p(&s.inner.config));
    let in_core = explored
        .query()
        .objective(QueryObjective::MinProb)
        .target(target.clone())
        .horizon(6)
        .solver(Solver::Jacobi)
        .run()
        .unwrap();

    for cache_budget in BUDGETS {
        let dir = tmpdir(&format!("quotient-{cache_budget}"));
        let codec = FaultyStateCodec::new(N, model.round_cap()).unwrap();
        let stored = Explore::new(&model)
            .cost(faulty_round_cost)
            .limit(LIMIT)
            .symmetry(RingRotation::new(N))
            .spill_to(&dir, cache_budget)
            .block_bytes(BLOCK_BYTES)
            .run_in(PackedSpace::new(codec))
            .unwrap();
        // The packed key words round-trip through the keys blocks.
        let on_disk = stored.store().file().read_keys().unwrap();
        let in_memory: Vec<u64> = stored
            .space()
            .words()
            .iter()
            .flat_map(|w| w.iter().copied())
            .collect();
        assert_eq!(on_disk, in_memory, "spilled keys are the interned words");
        let target2 = stored.target_where(|s| in_p(&s.inner.config));
        assert_eq!(target, target2);
        let analysis = stored
            .query()
            .objective(QueryObjective::MinProb)
            .target(target2)
            .horizon(6)
            .run()
            .unwrap();
        assert_bitwise("quotient", &in_core.values, &analysis.values);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn scc_solver_is_rejected_on_stored_backends_at_validate() {
    let arrow = paper::arrow_p_to_c();
    let model = round_model("P", arrow.to());
    let dir = tmpdir("scc-reject");
    let stored = Explore::new(&model)
        .cost(round_cost)
        .limit(LIMIT)
        .spill_to(&dir, u64::MAX)
        .run()
        .unwrap();
    let err = stored
        .query()
        .objective(QueryObjective::MinProb)
        .target_where(|_| true)
        .horizon(1)
        .solver(Solver::SccOrdered)
        .run()
        .unwrap_err();
    match err {
        MdpError::Query { stage, source } => {
            assert_eq!(stage, "validate");
            assert!(matches!(*source, MdpError::InvalidQuery { .. }));
        }
        other => panic!("expected a validate-stage Query error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopened_store_answers_identically_without_the_original_space() {
    // A store file outlives the process that wrote it: reopen via
    // StoredCsr::open and query with an index-mask target.
    let arrow = paper::arrow_f_to_gp();
    let model = round_model("F", arrow.to());
    let to = set_pred(arrow.to()).unwrap();
    let budget = time_to_budget(arrow.time());
    let dir = tmpdir("reopen");
    let stored = Explore::new(&model)
        .cost(round_cost)
        .limit(LIMIT)
        .spill_to(&dir, u64::MAX)
        .block_bytes(BLOCK_BYTES)
        .run()
        .unwrap();
    let target = stored.target_where(|rs| to(&rs.config));
    let first = stored
        .query()
        .objective(QueryObjective::MinProb)
        .target(target.clone())
        .horizon(budget)
        .run()
        .unwrap();
    let path = stored.store().file().path().to_path_buf();
    drop(stored);

    let reopened = pa_store::StoredCsr::open(&path, 1).unwrap();
    let again = Query::source(&reopened)
        .objective(QueryObjective::MinProb)
        .target(target)
        .horizon(budget)
        .run()
        .unwrap();
    assert_bitwise("reopen", &first.values, &again.values);
    std::fs::remove_dir_all(&dir).unwrap();
}
