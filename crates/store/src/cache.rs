//! The byte-budgeted resident-block cache.
//!
//! [`BlockCache`] mirrors `pa-batch`'s `ModelCache::with_budget`
//! semantics at block granularity: blocks page in on demand (a *fault*,
//! verified against their written digest, so a reload is bitwise identical
//! to the original bytes), stay resident while any caller still holds
//! their [`std::sync::Arc`] (a *pin* — pinned blocks are never evicted),
//! and once the resident total exceeds the budget the least-recently-used
//! unpinned block is dropped. The block a fault just brought in is itself
//! exempt from that fault's eviction pass, so any budget — down to a
//! single byte — leaves exactly the block being swept resident and the
//! engines still terminate.
//!
//! Telemetry: `mdp.store.faults`, `mdp.store.hits`, `mdp.store.evictions`
//! counters and the `mdp.store.resident_bytes` /
//! `mdp.store.peak_resident_bytes` gauges, plus process-wide totals via
//! [`crate::stats`] (what `pa-serve`'s `stats` verb reports).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pa_mdp::fxhash::FxHashMap;

use crate::error::StoreError;
use crate::format::{MappedBlock, StoreFile};

static RESIDENT: AtomicU64 = AtomicU64::new(0);
static PEAK_RESIDENT: AtomicU64 = AtomicU64::new(0);
static FAULTS: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static BUDGET: AtomicU64 = AtomicU64::new(0);
static CACHES: AtomicU64 = AtomicU64::new(0);

/// A process-wide snapshot of block-cache activity, summed over every live
/// [`BlockCache`] (counters also include caches that have since dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes of block payload currently resident across all caches.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` over the process lifetime.
    pub peak_resident_bytes: u64,
    /// Blocks paged in from disk.
    pub faults: u64,
    /// Block requests served from residency.
    pub hits: u64,
    /// Blocks dropped to enforce a budget.
    pub evictions: u64,
    /// Sum of the byte budgets of all live caches.
    pub budget_bytes: u64,
    /// Number of live caches.
    pub caches: u64,
}

/// The process-wide [`StoreStats`] snapshot.
pub fn stats() -> StoreStats {
    StoreStats {
        resident_bytes: RESIDENT.load(Ordering::Relaxed),
        peak_resident_bytes: PEAK_RESIDENT.load(Ordering::Relaxed),
        faults: FAULTS.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        budget_bytes: BUDGET.load(Ordering::Relaxed),
        caches: CACHES.load(Ordering::Relaxed),
    }
}

fn add_resident(bytes: u64) {
    let now = RESIDENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_RESIDENT.fetch_max(now, Ordering::Relaxed);
    if pa_telemetry::enabled() {
        pa_telemetry::gauge("mdp.store.resident_bytes").set(now as i64);
        pa_telemetry::gauge("mdp.store.peak_resident_bytes").set_max(now as i64);
    }
}

fn sub_resident(bytes: u64) {
    let now = RESIDENT.fetch_sub(bytes, Ordering::Relaxed) - bytes;
    if pa_telemetry::enabled() {
        pa_telemetry::gauge("mdp.store.resident_bytes").set(now as i64);
    }
}

struct Slot {
    block: Arc<MappedBlock>,
    last_use: u64,
    bytes: u64,
}

struct Inner {
    resident: FxHashMap<usize, Slot>,
    clock: u64,
    resident_bytes: u64,
    faults: u64,
    hits: u64,
    evictions: u64,
    peak_resident: u64,
}

/// An LRU cache of mapped blocks with a byte budget; see the
/// [module docs](self) for the pin/evict contract.
pub struct BlockCache {
    budget: u64,
    inner: Mutex<Inner>,
}

impl BlockCache {
    /// An empty cache that evicts past `budget` resident payload bytes.
    pub fn with_budget(budget: u64) -> BlockCache {
        BUDGET.fetch_add(budget, Ordering::Relaxed);
        CACHES.fetch_add(1, Ordering::Relaxed);
        BlockCache {
            budget,
            inner: Mutex::new(Inner {
                resident: FxHashMap::default(),
                clock: 0,
                resident_bytes: 0,
                faults: 0,
                hits: 0,
                evictions: 0,
                peak_resident: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Returns block `idx` of `file`, faulting it in if not resident, then
    /// enforces the budget. The returned [`Arc`] pins the block: it cannot
    /// be evicted while the caller holds it.
    pub fn block(&self, file: &StoreFile, idx: usize) -> Result<Arc<MappedBlock>, StoreError> {
        let mut inner = self.inner.lock().expect("block cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(slot) = inner.resident.get_mut(&idx) {
            slot.last_use = clock;
            let block = Arc::clone(&slot.block);
            inner.hits += 1;
            HITS.fetch_add(1, Ordering::Relaxed);
            if pa_telemetry::enabled() {
                pa_telemetry::counter("mdp.store.hits").inc();
            }
            return Ok(block);
        }
        // Fault: load and digest-verify under the lock (the workspace's
        // solvers are single-threaded per model, so there is no concurrent
        // load to overlap with).
        let block = Arc::new(file.load_block(idx)?);
        let bytes = block.resident_bytes();
        inner.faults += 1;
        FAULTS.fetch_add(1, Ordering::Relaxed);
        if pa_telemetry::enabled() {
            pa_telemetry::counter("mdp.store.faults").inc();
        }
        inner.resident.insert(
            idx,
            Slot {
                block: Arc::clone(&block),
                last_use: clock,
                bytes,
            },
        );
        inner.resident_bytes += bytes;
        inner.peak_resident = inner.peak_resident.max(inner.resident_bytes);
        add_resident(bytes);
        while inner.resident_bytes > self.budget {
            // LRU victim among unpinned blocks; the block just faulted in
            // is pinned by the caller-bound Arc above, so it survives.
            let victim = inner
                .resident
                .iter()
                .filter(|(_, s)| Arc::strong_count(&s.block) == 1)
                .min_by_key(|(_, s)| s.last_use)
                .map(|(&k, _)| k);
            let Some(victim) = victim else { break };
            let slot = inner.resident.remove(&victim).expect("victim resident");
            inner.resident_bytes -= slot.bytes;
            inner.evictions += 1;
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            sub_resident(slot.bytes);
            if pa_telemetry::enabled() {
                pa_telemetry::counter("mdp.store.evictions").inc();
            }
        }
        Ok(block)
    }

    /// This cache's own activity snapshot (budget totals in
    /// `budget_bytes`, `caches == 1`).
    pub fn local_stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("block cache poisoned");
        StoreStats {
            resident_bytes: inner.resident_bytes,
            peak_resident_bytes: inner.peak_resident,
            faults: inner.faults,
            hits: inner.hits,
            evictions: inner.evictions,
            budget_bytes: self.budget,
            caches: 1,
        }
    }
}

impl Drop for BlockCache {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().expect("block cache poisoned");
        if inner.resident_bytes > 0 {
            sub_resident(inner.resident_bytes);
        }
        BUDGET.fetch_sub(self.budget, Ordering::Relaxed);
        CACHES.fetch_sub(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.local_stats();
        f.debug_struct("BlockCache")
            .field("budget", &self.budget)
            .field("resident_bytes", &s.resident_bytes)
            .field("faults", &s.faults)
            .field("evictions", &s.evictions)
            .finish()
    }
}
