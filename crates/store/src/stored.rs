//! Stored models: the [`CsrSource`] backend over a store file and the
//! [`StoredModel`] wrapper that pairs it with its in-memory state space.

use std::marker::PhantomData;
use std::ops::Range;
use std::path::Path;

use pa_mdp::{CsrRows, CsrSource, MdpError, Query, StateSpace};

use crate::cache::BlockCache;
use crate::error::StoreError;
use crate::format::{BlockKind, StoreFile};

/// A [`CsrSource`] over a `pa-store/csr/v1` file: each CSR block pages in
/// through a [`BlockCache`] on demand, so an analysis touches at most
/// `cache budget + one block` of payload at a time.
#[derive(Debug)]
pub struct StoredCsr {
    file: StoreFile,
    cache: BlockCache,
    /// Indices into `file.blocks()` of the CSR blocks, in state order.
    csr_blocks: Vec<usize>,
    /// Global state range of each CSR block.
    ranges: Vec<Range<usize>>,
}

impl StoredCsr {
    /// Wraps an opened file with a cache of `cache_budget` payload bytes.
    pub fn new(file: StoreFile, cache_budget: u64) -> StoredCsr {
        let csr_blocks: Vec<usize> = file
            .blocks()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.kind == BlockKind::Csr)
            .map(|(i, _)| i)
            .collect();
        let ranges = csr_blocks
            .iter()
            .map(|&i| {
                let m = &file.blocks()[i];
                m.first_state as usize..(m.first_state + m.states) as usize
            })
            .collect();
        StoredCsr {
            file,
            cache: BlockCache::with_budget(cache_budget),
            csr_blocks,
            ranges,
        }
    }

    /// Opens `path` and wraps it; see [`StoredCsr::new`].
    pub fn open(path: impl AsRef<Path>, cache_budget: u64) -> Result<StoredCsr, StoreError> {
        Ok(StoredCsr::new(StoreFile::open(path)?, cache_budget))
    }

    /// The underlying file.
    pub fn file(&self) -> &StoreFile {
        &self.file
    }

    /// The block cache (budget, activity counters).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// Starts a [`Query`] over this backend (block-streamed engines; see
    /// [`pa_mdp::Query::source`]).
    pub fn query(&self) -> Query<'_> {
        Query::source(self)
    }
}

impl CsrSource for StoredCsr {
    fn num_states(&self) -> usize {
        self.file.num_states()
    }

    fn num_choices(&self) -> u64 {
        self.file.num_choices()
    }

    fn num_transitions(&self) -> u64 {
        self.file.num_transitions()
    }

    fn initial_states(&self) -> &[usize] {
        self.file.initial()
    }

    fn num_blocks(&self) -> usize {
        self.csr_blocks.len()
    }

    fn block_states(&self, block: usize) -> Range<usize> {
        self.ranges[block].clone()
    }

    fn with_rows(&self, block: usize, f: &mut dyn FnMut(CsrRows<'_>)) -> Result<(), MdpError> {
        let mapped = self
            .cache
            .block(&self.file, self.csr_blocks[block])
            .map_err(MdpError::from)?;
        f(mapped.rows());
        Ok(())
    }
}

/// A spilled model: the state space (resident, for predicates and state
/// decoding) plus the [`StoredCsr`] rows (on disk, paged in per block).
///
/// The accessor surface mirrors [`pa_mdp::Explored`] so call sites switch
/// backends without restructuring: `target_where`, `states_where`,
/// `index_of`, `state`, and `query`/`query_where` behave identically —
/// except queries run on the block-streamed engines.
#[derive(Debug)]
pub struct StoredModel<S, SP> {
    space: SP,
    csr: StoredCsr,
    _state: PhantomData<fn() -> S>,
}

impl<S, SP: StateSpace<S>> StoredModel<S, SP> {
    /// Pairs a state space with its stored rows. The space must be the one
    /// the rows were explored with (ids must agree).
    pub fn new(space: SP, csr: StoredCsr) -> StoredModel<S, SP> {
        debug_assert_eq!(space.len(), pa_mdp::CsrSource::num_states(&csr));
        StoredModel {
            space,
            csr,
            _state: PhantomData,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.space.len()
    }

    /// Decodes state `i`.
    pub fn state(&self, i: usize) -> S {
        self.space.state(i)
    }

    /// The id of `state`, if explored.
    pub fn index_of(&self, state: &S) -> Option<usize> {
        self.space.get(state)
    }

    /// A target mask from a state predicate.
    pub fn target_where(&self, mut pred: impl FnMut(&S) -> bool) -> Vec<bool> {
        let mut mask = vec![false; self.space.len()];
        self.space.for_each_state(|i, s| mask[i] = pred(s));
        mask
    }

    /// The state indices satisfying `pred`.
    pub fn states_where(&self, mut pred: impl FnMut(&S) -> bool) -> Vec<usize> {
        let mut out = Vec::new();
        self.space.for_each_state(|i, s| {
            if pred(s) {
                out.push(i);
            }
        });
        out
    }

    /// Starts a [`Query`] over the stored rows.
    pub fn query(&self) -> Query<'_> {
        self.csr.query()
    }

    /// Starts a [`Query`] targeting the states satisfying `pred`.
    pub fn query_where(&self, pred: impl FnMut(&S) -> bool) -> Query<'_> {
        let target = self.target_where(pred);
        self.query().target(target)
    }

    /// The state space.
    pub fn space(&self) -> &SP {
        &self.space
    }

    /// The stored rows backend.
    pub fn store(&self) -> &StoredCsr {
        &self.csr
    }

    /// Resident footprint: the state space's tables plus the block cache
    /// budget. This is what a model *costs while held* — the spilled rows
    /// are excluded by design, which is why `pa-batch` accounts stored
    /// models at this size rather than model size.
    pub fn mem_bytes(&self) -> u64 {
        self.space.mem_bytes() + self.csr.cache().budget()
    }
}
