//! Read-only file mappings: raw `mmap(2)` on Unix with an owned-buffer
//! fallback everywhere else (and whenever the mapping call itself fails —
//! e.g. on a filesystem without mmap support).
//!
//! This is the only module in the workspace that touches raw pointers:
//! `pa-mdp` is `#![forbid(unsafe_code)]`, so the unsafety of borrowing the
//! page cache is confined here, behind [`Mapping::bytes`].

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

use crate::error::StoreError;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only view of a byte range of a file: either a live `mmap`
/// (faulted in by the kernel page by page, evicted by dropping) or an
/// owned, 8-byte-aligned buffer read conventionally.
pub enum Mapping {
    /// A raw `mmap(2)` region. Pointer and length are the exact mapping
    /// arguments; `len` bytes starting at `ptr` are valid for reads for
    /// the lifetime of the value.
    #[cfg(unix)]
    Mapped {
        /// Base address returned by `mmap`.
        ptr: *const u8,
        /// Mapped length in bytes.
        len: usize,
    },
    /// Owned fallback. Backed by `Vec<u64>` so the base address is 8-byte
    /// aligned, matching the page alignment the mapped path guarantees —
    /// the typed-slice casts in `format.rs` rely on it.
    Owned {
        /// The buffer; only the first `len` bytes are payload.
        buf: Vec<u64>,
        /// Payload length in bytes.
        len: usize,
    },
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated after
// construction; shared references to immutable memory are Send + Sync.
#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `len` bytes of `file` starting at `offset`. `offset` must be
    /// page-aligned for the mmap path (the store writer aligns every block
    /// to 4096); if the mapping fails for any reason the owned read path
    /// is used instead, so callers never observe the difference.
    pub fn map(file: &File, offset: u64, len: usize) -> Result<Mapping, StoreError> {
        #[cfg(unix)]
        if len > 0 && offset.is_multiple_of(4096) {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    offset as i64,
                )
            };
            if ptr != sys::map_failed() {
                return Ok(Mapping::Mapped {
                    ptr: ptr as *const u8,
                    len,
                });
            }
        }
        Mapping::read_owned(file, offset, len)
    }

    /// The owned fallback: seek and read the range into an aligned buffer.
    pub fn read_owned(file: &File, offset: u64, len: usize) -> Result<Mapping, StoreError> {
        let mut buf = vec![0u64; len.div_ceil(8)];
        let mut f = file;
        f.seek(SeekFrom::Start(offset))
            .map_err(StoreError::io("seek to block"))?;
        let bytes = unsafe {
            // SAFETY: a Vec<u64> of div_ceil(len, 8) elements owns at
            // least `len` initialized bytes at an 8-aligned base.
            std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len)
        };
        f.read_exact(bytes).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated {
                    what: format!("block payload at offset {offset} ({len} bytes)"),
                }
            } else {
                StoreError::Io {
                    op: "read block".into(),
                    source: e,
                }
            }
        })?;
        Ok(Mapping::Owned { buf, len })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Mapping::Mapped { ptr, len } => {
                // SAFETY: ptr/len are the live mmap region created in
                // `map`, valid for reads until Drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Mapping::Owned { buf, len } => {
                // SAFETY: the Vec owns at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Whether this view is a live kernel mapping (false: owned buffer).
    /// Diagnostic only — the two paths expose identical bytes.
    #[allow(dead_code)]
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Mapping::Mapped { .. } => true,
            Mapping::Owned { .. } => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Mapping::Mapped { ptr, len } = self {
            // SAFETY: unmapping the exact region mmap returned; the value
            // is being dropped so no borrow of the bytes can outlive this.
            unsafe {
                sys::munmap(*ptr as *mut std::os::raw::c_void, *len);
            }
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Mapping::Mapped { len, .. } => write!(f, "Mapping::Mapped({len} bytes)"),
            Mapping::Owned { len, .. } => write!(f, "Mapping::Owned({len} bytes)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(content: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "pa-store-mmap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        f.sync_all().unwrap();
        (path.clone(), File::open(&path).unwrap())
    }

    #[test]
    fn mapped_and_owned_views_agree() {
        let mut content = vec![0u8; 8192];
        for (i, b) in content.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let (path, f) = temp_file(&content);
        let mapped = Mapping::map(&f, 4096, 4096).unwrap();
        let owned = Mapping::read_owned(&f, 4096, 4096).unwrap();
        assert_eq!(mapped.bytes(), owned.bytes());
        assert_eq!(owned.bytes(), &content[4096..]);
        assert!(!owned.is_mapped());
        drop(mapped);
        drop(owned);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn owned_read_past_eof_is_truncated_error() {
        let (path, f) = temp_file(&[1, 2, 3]);
        let err = Mapping::read_owned(&f, 0, 64).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }), "{err}");
        std::fs::remove_file(path).unwrap();
    }
}
