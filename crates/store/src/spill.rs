//! Spilled exploration: the [`SpillTo`] extension on [`Explore`] and the
//! key-word bridge from state spaces to the store's keys blocks.

use std::hash::Hash;
use std::path::{Path, PathBuf};

use pa_core::Automaton;
use pa_mdp::{BoxedSpace, Explore, PackedSpace, StateCodec, StateSpace};

use crate::error::StoreError;
use crate::format::{StoreWriter, DEFAULT_BLOCK_BYTES};
use crate::stored::{StoredCsr, StoredModel};

/// A fixed-width packed word that can dump itself as `u64`s — what a
/// [`PackedSpace`] needs so its interned keys can be spilled alongside the
/// rows.
pub trait KeyWord: Copy {
    /// Width in `u64` words.
    const WORDS: usize;
    /// Appends the word's `u64`s to `out`.
    fn append_to(&self, out: &mut Vec<u64>);
}

impl KeyWord for u64 {
    const WORDS: usize = 1;
    fn append_to(&self, out: &mut Vec<u64>) {
        out.push(*self);
    }
}

impl<const N: usize> KeyWord for [u64; N] {
    const WORDS: usize = N;
    fn append_to(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(self);
    }
}

/// A state space whose interned keys can be written to keys blocks.
/// `key_words() == 0` means the space has no fixed-width encoding (boxed
/// spaces) and no keys blocks are written — the space itself stays the
/// only id → state record.
pub trait KeySource {
    /// Per-state key width in `u64` words.
    fn key_words(&self) -> usize;
    /// Appends state `id`'s key words to `out`.
    fn append_key(&self, id: usize, out: &mut Vec<u64>);
}

impl<C: StateCodec> KeySource for PackedSpace<C>
where
    C::Word: KeyWord,
{
    fn key_words(&self) -> usize {
        C::Word::WORDS
    }

    fn append_key(&self, id: usize, out: &mut Vec<u64>) {
        self.words()[id].append_to(out);
    }
}

impl<S: Clone + Eq + Hash> KeySource for BoxedSpace<S> {
    fn key_words(&self) -> usize {
        0
    }

    fn append_key(&self, _id: usize, _out: &mut Vec<u64>) {}
}

/// Adds [`SpillTo::spill_to`] to [`Explore`]: route the exploration
/// through a disk store instead of materializing the model.
pub trait SpillTo: Sized {
    /// Spills explored CSR blocks into `dir/model.pacsr` and serves
    /// queries through a block cache of `cache_budget` payload bytes.
    ///
    /// The exploration itself holds one pending block plus the state space
    /// and BFS frontier; analyses hold the cache budget plus their value
    /// vectors. Results are bitwise identical to the in-core pipeline for
    /// every budget (see the [`pa_mdp::source`] module docs).
    fn spill_to(self, dir: impl AsRef<Path>, cache_budget: u64) -> Spilling<Self> {
        Spilling {
            explore: self,
            dir: dir.as_ref().to_path_buf(),
            cache_budget,
            block_bytes: DEFAULT_BLOCK_BYTES,
        }
    }
}

impl<M: Automaton, F> SpillTo for Explore<'_, M, F> {}

/// An [`Explore`] routed to disk; built by [`SpillTo::spill_to`].
#[derive(Debug)]
pub struct Spilling<E> {
    explore: E,
    dir: PathBuf,
    cache_budget: u64,
    block_bytes: usize,
}

impl<E> Spilling<E> {
    /// Overrides the target payload bytes per block (default 8 MiB).
    /// Smaller blocks let tighter cache budgets stay within RSS bounds;
    /// larger blocks make sweeps more sequential.
    pub fn block_bytes(mut self, bytes: usize) -> Spilling<E> {
        self.block_bytes = bytes;
        self
    }
}

impl<M, F> Spilling<Explore<'_, M, F>>
where
    M: Automaton + Sync,
    M::State: Send + Sync,
    F: Fn(&M::State, &M::Action) -> u32 + Sync,
{
    /// Runs the spilled exploration with a [`BoxedSpace`].
    pub fn run(self) -> Result<StoredModel<M::State, BoxedSpace<M::State>>, StoreError>
    where
        M::State: Clone + Eq + Hash,
    {
        self.run_in(BoxedSpace::default())
    }

    /// Runs the spilled exploration with the given state space, writing
    /// CSR blocks as the BFS closes them and (for packed spaces) the
    /// interned key words afterwards.
    ///
    /// # Errors
    ///
    /// Exploration errors ([`pa_mdp::MdpError`], wrapped) and store I/O
    /// errors.
    pub fn run_in<SP>(self, space: SP) -> Result<StoredModel<M::State, SP>, StoreError>
    where
        SP: StateSpace<M::State> + KeySource + Send + Sync,
    {
        std::fs::create_dir_all(&self.dir).map_err(StoreError::io("create spill directory"))?;
        let path = self.dir.join("model.pacsr");
        let mut writer = StoreWriter::create(&path, space.key_words(), self.block_bytes)?;
        let (space, summary) = self.explore.run_streamed(space, &mut writer)?;
        let kw = space.key_words();
        if kw > 0 {
            let chunk = (self.block_bytes / (kw * 8)).max(1);
            let mut words = Vec::with_capacity(chunk.min(summary.num_states) * kw);
            let mut first = 0usize;
            while first < summary.num_states {
                let count = chunk.min(summary.num_states - first);
                words.clear();
                for id in first..first + count {
                    space.append_key(id, &mut words);
                }
                writer.push_keys(first, count, &words)?;
                first += count;
            }
        }
        let file = writer.finish(
            &summary.initial,
            summary.num_choices,
            summary.num_transitions,
        )?;
        Ok(StoredModel::new(
            space,
            StoredCsr::new(file, self.cache_budget),
        ))
    }
}
