//! The `pa-store/csr/v1` on-disk format: writer, reader, and block views.
//!
//! ```text
//! offset 0     header   magic "PACSRv1\0" · version u32 · key_words u32
//! offset 4096  blocks   each page-aligned (4096); payload layouts below
//! ...          footer   counts · initial ids · one 64-byte meta per block
//! end-16       trailer  footer_offset u64 · magic "PACSRFTR"
//! ```
//!
//! Every multi-byte value is little-endian; [`StoreFile::open`] rejects
//! big-endian hosts rather than byte-swap on every access. A *CSR* block
//! holds a contiguous run of states' rows with block-relative `u32`
//! offsets (the in-memory [`CsrRows`] shape, dumped):
//!
//! ```text
//! probs  f64 × trans          (8-aligned: first section, page-aligned base)
//! choice_offsets u32 × states+1
//! trans_offsets  u32 × choices+1
//! costs          u32 × choices
//! targets        u32 × trans   (global state ids)
//! ```
//!
//! A *keys* block holds the packed state words of a run of states
//! (`u64 × states × key_words`), so the interned id → state mapping
//! round-trips through disk alongside the rows. Each block's payload is
//! FNV-1a-64 digested at write time; the digest is re-verified on every
//! page-in, so a corrupt block surfaces as a named
//! [`StoreError::DigestMismatch`] — never as silently wrong probabilities.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pa_mdp::{Choice, MdpError, RowSink};

use crate::error::StoreError;
use crate::mmap::Mapping;

/// File magic: the first 8 bytes of every store file.
pub const HEADER_MAGIC: [u8; 8] = *b"PACSRv1\0";
/// Trailer magic: the last 8 bytes of every store file.
pub const FOOTER_MAGIC: [u8; 8] = *b"PACSRFTR";
/// Format version written into the header.
pub const VERSION: u32 = 1;
/// Block alignment: every block payload starts on a 4096-byte boundary so
/// the mmap path can map it directly.
pub const BLOCK_ALIGN: u64 = 4096;
/// Default target payload size per block (8 MiB). Small enough that a
/// one-block cache budget stays modest, large enough that sweeps are
/// sequential I/O.
pub const DEFAULT_BLOCK_BYTES: usize = 8 << 20;

/// What a block stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A run of states' CSR rows.
    Csr,
    /// A run of states' packed key words.
    Keys,
}

/// One block's footer entry: geometry, file location, and payload digest.
#[derive(Debug, Clone, Copy)]
pub struct BlockMeta {
    /// What the block stores.
    pub kind: BlockKind,
    /// Global id of the first state covered.
    pub first_state: u64,
    /// Number of states covered.
    pub states: u64,
    /// Number of choices (0 for key blocks).
    pub choices: u64,
    /// Number of transitions (0 for key blocks).
    pub trans: u64,
    /// Byte offset of the payload (multiple of [`BLOCK_ALIGN`]).
    pub offset: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// FNV-1a 64 digest of the payload bytes.
    pub digest: u64,
}

impl BlockMeta {
    fn expected_payload(&self, key_words: usize) -> u64 {
        match self.kind {
            BlockKind::Csr => {
                self.trans * 8
                    + (self.states + 1) * 4
                    + (self.choices + 1) * 4
                    + self.choices * 4
                    + self.trans * 4
            }
            BlockKind::Keys => self.states * key_words as u64 * 8,
        }
    }
}

/// FNV-1a 64 over raw bytes — the same constants as the workspace's other
/// digests (`pa-batch`'s report digest, `pa_mdp::csr_digest`).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u32s(out: &mut Vec<u8>, vals: &[u32]) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends CSR blocks to a new store file as rows stream in; implements
/// [`RowSink`] so [`pa_mdp::Explore::run_streamed`] can drive it directly.
///
/// Rows accumulate in memory until the pending payload reaches the block
/// target, then the block is flushed — peak writer memory is one block
/// plus buffered-writer overhead, independent of model size.
#[derive(Debug)]
pub struct StoreWriter {
    file: BufWriter<File>,
    path: PathBuf,
    key_words: usize,
    block_bytes: usize,
    pos: u64,
    blocks: Vec<BlockMeta>,
    first_state: usize,
    next_state: usize,
    choice_offsets: Vec<u32>,
    trans_offsets: Vec<u32>,
    costs: Vec<u32>,
    targets: Vec<u32>,
    probs: Vec<f64>,
}

impl StoreWriter {
    /// Creates `path` (truncating any existing file) and writes the
    /// header. `key_words` is the per-state packed-key width in `u64`s
    /// (0: no key blocks will be written).
    pub fn create(
        path: impl AsRef<Path>,
        key_words: usize,
        block_bytes: usize,
    ) -> Result<StoreWriter, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(StoreError::io("create store file"))?;
        let mut w = StoreWriter {
            file: BufWriter::new(file),
            path,
            key_words,
            block_bytes: block_bytes.max(4096),
            pos: 0,
            blocks: Vec::new(),
            first_state: 0,
            next_state: 0,
            choice_offsets: vec![0],
            trans_offsets: vec![0],
            costs: Vec::new(),
            targets: Vec::new(),
            probs: Vec::new(),
        };
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&HEADER_MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&(key_words as u32).to_le_bytes());
        w.write_all(&header)?;
        w.pad_to_align()?;
        Ok(w)
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file
            .write_all(bytes)
            .map_err(StoreError::io("write store file"))?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    fn pad_to_align(&mut self) -> Result<(), StoreError> {
        let rem = self.pos % BLOCK_ALIGN;
        if rem != 0 {
            let pad = vec![0u8; (BLOCK_ALIGN - rem) as usize];
            self.write_all(&pad)?;
        }
        Ok(())
    }

    fn pending_bytes(&self) -> usize {
        self.probs.len() * 8
            + (self.choice_offsets.len() + self.trans_offsets.len()) * 4
            + (self.costs.len() + self.targets.len()) * 4
    }

    /// Appends one state's row to the pending block, flushing first if the
    /// block target is reached.
    pub fn push_row(&mut self, id: usize, choices: &[Choice]) -> Result<(), StoreError> {
        debug_assert_eq!(id, self.next_state, "rows must arrive in dense-id order");
        if self.pending_bytes() >= self.block_bytes && self.next_state > self.first_state {
            self.flush_csr_block()?;
        }
        for c in choices {
            self.costs.push(c.cost);
            for &(t, p) in &c.transitions {
                let t32 = u32::try_from(t).map_err(|_| StoreError::Unsupported {
                    reason: format!("state id {t} exceeds the format's u32 target range"),
                })?;
                self.targets.push(t32);
                self.probs.push(p);
            }
            self.trans_offsets.push(self.targets.len() as u32);
        }
        self.choice_offsets.push(self.costs.len() as u32);
        self.next_state = id + 1;
        Ok(())
    }

    fn flush_csr_block(&mut self) -> Result<(), StoreError> {
        let states = self.next_state - self.first_state;
        if states == 0 {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(self.pending_bytes());
        for p in &self.probs {
            payload.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        push_u32s(&mut payload, &self.choice_offsets);
        push_u32s(&mut payload, &self.trans_offsets);
        push_u32s(&mut payload, &self.costs);
        push_u32s(&mut payload, &self.targets);
        let meta = BlockMeta {
            kind: BlockKind::Csr,
            first_state: self.first_state as u64,
            states: states as u64,
            choices: self.costs.len() as u64,
            trans: self.targets.len() as u64,
            offset: self.pos,
            payload_len: payload.len() as u64,
            digest: fnv1a_64(&payload),
        };
        self.write_all(&payload)?;
        self.pad_to_align()?;
        self.blocks.push(meta);
        self.first_state = self.next_state;
        self.choice_offsets.clear();
        self.choice_offsets.push(0);
        self.trans_offsets.clear();
        self.trans_offsets.push(0);
        self.costs.clear();
        self.targets.clear();
        self.probs.clear();
        Ok(())
    }

    /// Writes the packed key words of states `first..first + count` as one
    /// keys block. Callers chunk so each block stays near the block
    /// target; `words` must hold exactly `count * key_words` values.
    pub fn push_keys(
        &mut self,
        first: usize,
        count: usize,
        words: &[u64],
    ) -> Result<(), StoreError> {
        assert_eq!(words.len(), count * self.key_words);
        let mut payload = Vec::with_capacity(words.len() * 8);
        for w in words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        let meta = BlockMeta {
            kind: BlockKind::Keys,
            first_state: first as u64,
            states: count as u64,
            choices: 0,
            trans: 0,
            offset: self.pos,
            payload_len: payload.len() as u64,
            digest: fnv1a_64(&payload),
        };
        self.write_all(&payload)?;
        self.pad_to_align()?;
        self.blocks.push(meta);
        Ok(())
    }

    /// Flushes the pending block, writes the footer and trailer, syncs,
    /// and reopens the finished file through the reader (so every write
    /// path exercises the open-time validation).
    ///
    /// `initial`, `num_choices`, and `num_transitions` are the exploration
    /// totals (a [`pa_mdp::StreamSummary`] carries them).
    pub fn finish(
        mut self,
        initial: &[usize],
        num_choices: u64,
        num_transitions: u64,
    ) -> Result<StoreFile, StoreError> {
        self.flush_csr_block()?;
        let num_states = self.next_state as u64;
        let mut footer = Vec::new();
        footer.extend_from_slice(&num_states.to_le_bytes());
        footer.extend_from_slice(&num_choices.to_le_bytes());
        footer.extend_from_slice(&num_transitions.to_le_bytes());
        footer.extend_from_slice(&(self.key_words as u64).to_le_bytes());
        footer.extend_from_slice(&(initial.len() as u64).to_le_bytes());
        for &s in initial {
            footer.extend_from_slice(&(s as u64).to_le_bytes());
        }
        footer.extend_from_slice(&(self.blocks.len() as u64).to_le_bytes());
        for b in &self.blocks {
            let kind: u64 = match b.kind {
                BlockKind::Csr => 0,
                BlockKind::Keys => 1,
            };
            for v in [
                kind,
                b.first_state,
                b.states,
                b.choices,
                b.trans,
                b.offset,
                b.payload_len,
                b.digest,
            ] {
                footer.extend_from_slice(&v.to_le_bytes());
            }
        }
        let footer_offset = self.pos;
        self.write_all(&footer)?;
        let mut trailer = Vec::with_capacity(16);
        trailer.extend_from_slice(&footer_offset.to_le_bytes());
        trailer.extend_from_slice(&FOOTER_MAGIC);
        self.write_all(&trailer)?;
        self.file
            .flush()
            .map_err(StoreError::io("flush store file"))?;
        self.file
            .get_ref()
            .sync_all()
            .map_err(StoreError::io("sync store file"))?;
        StoreFile::open(&self.path)
    }
}

impl RowSink for StoreWriter {
    fn state_row(&mut self, id: usize, choices: &[Choice]) -> Result<(), MdpError> {
        self.push_row(id, choices).map_err(MdpError::from)
    }
}

/// A validated, opened store file: parsed footer plus the file handle
/// blocks are mapped from. Open-time validation checks the header, the
/// trailer, footer bounds, every block's geometry arithmetic, and that the
/// CSR blocks partition `0..num_states` consecutively; payload digests are
/// checked lazily, on each page-in.
#[derive(Debug)]
pub struct StoreFile {
    file: File,
    path: PathBuf,
    num_states: usize,
    num_choices: u64,
    num_transitions: u64,
    key_words: usize,
    initial: Vec<usize>,
    blocks: Vec<BlockMeta>,
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
    what: &'static str,
}

impl Cursor<'_> {
    fn u64(&mut self) -> Result<u64, StoreError> {
        let end = self.at + 8;
        if end > self.buf.len() {
            return Err(StoreError::Truncated {
                what: self.what.to_string(),
            });
        }
        let v = u64::from_le_bytes(self.buf[self.at..end].try_into().expect("8 bytes"));
        self.at = end;
        Ok(v)
    }
}

impl StoreFile {
    /// Opens and validates `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<StoreFile, StoreError> {
        if cfg!(target_endian = "big") {
            return Err(StoreError::Unsupported {
                reason: "pa-store/csr/v1 files are little-endian; this host is big-endian".into(),
            });
        }
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path).map_err(StoreError::io("open store file"))?;
        let len = file
            .metadata()
            .map_err(StoreError::io("stat store file"))?
            .len();
        if len < BLOCK_ALIGN + 16 {
            return Err(StoreError::Truncated {
                what: "header and trailer".into(),
            });
        }
        let mut header = [0u8; 16];
        file.read_exact(&mut header)
            .map_err(StoreError::io("read header"))?;
        if header[..8] != HEADER_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::Unsupported {
                reason: format!("format version {version} (this reader speaks {VERSION})"),
            });
        }
        let key_words = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
        let mut trailer = [0u8; 16];
        file.seek(SeekFrom::Start(len - 16))
            .map_err(StoreError::io("seek to trailer"))?;
        file.read_exact(&mut trailer)
            .map_err(StoreError::io("read trailer"))?;
        if trailer[8..] != FOOTER_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let footer_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        if footer_offset < BLOCK_ALIGN || footer_offset > len - 16 {
            return Err(StoreError::Truncated {
                what: "footer".into(),
            });
        }
        let mut footer = vec![0u8; (len - 16 - footer_offset) as usize];
        file.seek(SeekFrom::Start(footer_offset))
            .map_err(StoreError::io("seek to footer"))?;
        file.read_exact(&mut footer)
            .map_err(StoreError::io("read footer"))?;
        let mut cur = Cursor {
            buf: &footer,
            at: 0,
            what: "footer",
        };
        let num_states = cur.u64()? as usize;
        let num_choices = cur.u64()?;
        let num_transitions = cur.u64()?;
        let footer_key_words = cur.u64()? as usize;
        if footer_key_words != key_words {
            return Err(StoreError::Unsupported {
                reason: format!(
                    "header says {key_words} key words, footer says {footer_key_words}"
                ),
            });
        }
        let initial_count = cur.u64()? as usize;
        let mut initial = Vec::with_capacity(initial_count);
        for _ in 0..initial_count {
            let s = cur.u64()? as usize;
            if s >= num_states {
                return Err(StoreError::BadBlock {
                    block: 0,
                    reason: format!("initial state {s} out of range ({num_states} states)"),
                });
            }
            initial.push(s);
        }
        let num_blocks = cur.u64()? as usize;
        let mut blocks = Vec::with_capacity(num_blocks);
        let mut next_csr_state = 0u64;
        for i in 0..num_blocks {
            let kind = match cur.u64()? {
                0 => BlockKind::Csr,
                1 => BlockKind::Keys,
                other => {
                    return Err(StoreError::BadBlock {
                        block: i,
                        reason: format!("unknown block kind {other}"),
                    })
                }
            };
            let meta = BlockMeta {
                kind,
                first_state: cur.u64()?,
                states: cur.u64()?,
                choices: cur.u64()?,
                trans: cur.u64()?,
                offset: cur.u64()?,
                payload_len: cur.u64()?,
                digest: cur.u64()?,
            };
            if !meta.offset.is_multiple_of(BLOCK_ALIGN) {
                return Err(StoreError::BadBlock {
                    block: i,
                    reason: format!("offset {} not {BLOCK_ALIGN}-aligned", meta.offset),
                });
            }
            if meta.offset + meta.payload_len > footer_offset {
                return Err(StoreError::Truncated {
                    what: format!("block {i} payload"),
                });
            }
            if meta.payload_len != meta.expected_payload(key_words) {
                return Err(StoreError::BadBlock {
                    block: i,
                    reason: format!(
                        "payload length {} does not match geometry (expected {})",
                        meta.payload_len,
                        meta.expected_payload(key_words)
                    ),
                });
            }
            if meta.kind == BlockKind::Csr {
                if meta.first_state != next_csr_state {
                    return Err(StoreError::BadBlock {
                        block: i,
                        reason: format!(
                            "CSR blocks must partition the state space consecutively \
                             (expected first state {next_csr_state}, found {})",
                            meta.first_state
                        ),
                    });
                }
                next_csr_state += meta.states;
            }
            blocks.push(meta);
        }
        if next_csr_state != num_states as u64 {
            return Err(StoreError::BadBlock {
                block: blocks.len().saturating_sub(1),
                reason: format!(
                    "CSR blocks cover {next_csr_state} states, footer declares {num_states}"
                ),
            });
        }
        Ok(StoreFile {
            file,
            path,
            num_states,
            num_choices,
            num_transitions,
            key_words,
            initial,
            blocks,
        })
    }

    /// Path the file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Total number of choices.
    pub fn num_choices(&self) -> u64 {
        self.num_choices
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> u64 {
        self.num_transitions
    }

    /// Per-state packed-key width in `u64` words (0: no keys stored).
    pub fn key_words(&self) -> usize {
        self.key_words
    }

    /// The initial state indices.
    pub fn initial(&self) -> &[usize] {
        &self.initial
    }

    /// All block metadata, in file order.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Pages block `idx` in (mmap where possible, buffered read
    /// otherwise) and verifies its payload digest.
    pub fn load_block(&self, idx: usize) -> Result<MappedBlock, StoreError> {
        let meta = self.blocks[idx];
        let mapping = Mapping::map(&self.file, meta.offset, meta.payload_len as usize)?;
        let got = fnv1a_64(mapping.bytes());
        if got != meta.digest {
            return Err(StoreError::DigestMismatch {
                block: idx,
                expected: meta.digest,
                got,
            });
        }
        let block = MappedBlock {
            mapping,
            meta,
            key_words: self.key_words,
        };
        if meta.kind == BlockKind::Csr {
            let rows = block.rows();
            let co_last = rows.choice_offsets[meta.states as usize];
            let to_last = rows.trans_offsets[meta.choices as usize];
            if u64::from(co_last) != meta.choices || u64::from(to_last) != meta.trans {
                return Err(StoreError::BadBlock {
                    block: idx,
                    reason: format!(
                        "offset arrays end at ({co_last}, {to_last}), geometry says \
                         ({}, {})",
                        meta.choices, meta.trans
                    ),
                });
            }
        }
        Ok(block)
    }

    /// Reads every keys block back into one id-ordered word vector (states
    /// with ids below the first keys block, if any, are absent). Intended
    /// for round-trip verification and re-opening stored models.
    pub fn read_keys(&self) -> Result<Vec<u64>, StoreError> {
        let mut words = Vec::new();
        for (i, meta) in self.blocks.iter().enumerate() {
            if meta.kind == BlockKind::Keys {
                let block = self.load_block(i)?;
                words.extend_from_slice(block.keys());
            }
        }
        Ok(words)
    }
}

/// One resident block: the mapping plus its parsed geometry. CSR blocks
/// expose [`MappedBlock::rows`]; keys blocks expose [`MappedBlock::keys`].
#[derive(Debug)]
pub struct MappedBlock {
    mapping: Mapping,
    meta: BlockMeta,
    key_words: usize,
}

impl MappedBlock {
    fn u32s(&self, off: usize, len: usize) -> &[u32] {
        let b = &self.mapping.bytes()[off..off + len * 4];
        debug_assert_eq!(b.as_ptr() as usize % 4, 0);
        // SAFETY: the range is in bounds, 4-aligned (8-aligned base, all
        // section offsets are multiples of 4), and u32 has no invalid bit
        // patterns.
        unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u32>(), len) }
    }

    /// The block's geometry and location.
    pub fn meta(&self) -> &BlockMeta {
        &self.meta
    }

    /// Payload size in bytes — what the block costs while resident.
    pub fn resident_bytes(&self) -> u64 {
        self.meta.payload_len
    }

    /// The block's rows. Panics if called on a keys block.
    pub fn rows(&self) -> pa_mdp::CsrRows<'_> {
        assert_eq!(self.meta.kind, BlockKind::Csr);
        let states = self.meta.states as usize;
        let choices = self.meta.choices as usize;
        let trans = self.meta.trans as usize;
        let probs = {
            let b = &self.mapping.bytes()[..trans * 8];
            debug_assert_eq!(b.as_ptr() as usize % 8, 0);
            // SAFETY: in bounds, 8-aligned base, f64 accepts any bit
            // pattern (probabilities were written as raw to_bits).
            unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<f64>(), trans) }
        };
        let mut off = trans * 8;
        let choice_offsets = self.u32s(off, states + 1);
        off += (states + 1) * 4;
        let trans_offsets = self.u32s(off, choices + 1);
        off += (choices + 1) * 4;
        let costs = self.u32s(off, choices);
        off += choices * 4;
        let targets = self.u32s(off, trans);
        pa_mdp::CsrRows {
            first_state: self.meta.first_state as usize,
            choice_offsets,
            trans_offsets,
            costs,
            targets,
            probs,
        }
    }

    /// The block's packed key words. Panics if called on a CSR block.
    pub fn keys(&self) -> &[u64] {
        assert_eq!(self.meta.kind, BlockKind::Keys);
        let len = self.meta.states as usize * self.key_words;
        let b = &self.mapping.bytes()[..len * 8];
        debug_assert_eq!(b.as_ptr() as usize % 8, 0);
        // SAFETY: in bounds, 8-aligned, u64 has no invalid bit patterns.
        unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u64>(), len) }
    }
}
