//! Out-of-core state spaces for the `timebounds` workspace: spill explored
//! CSR blocks to an append-only `pa-store/csr/v1` file, page them back on
//! demand through a byte-budgeted mmap block cache, and run the
//! block-streamed solvers so peak memory is bounded by the cache budget —
//! with results bitwise identical to the in-core pipeline.
//!
//! The crate is the disk side of the [`pa_mdp::CsrSource`] seam:
//!
//! * [`SpillTo::spill_to`] — builder option on [`pa_mdp::Explore`]: the
//!   serial BFS streams each closed state row into a [`StoreWriter`],
//!   which flushes page-aligned, FNV-digested blocks; packed state keys
//!   follow as their own blocks. Peak exploration memory is the state
//!   space, the frontier, and one pending block.
//! * [`StoredCsr`] / [`StoredModel`] — the reopened file behind a
//!   [`BlockCache`] (LRU, pin counts, byte budget mirroring `pa-batch`'s
//!   `ModelCache::with_budget` semantics). [`pa_mdp::Query::source`] runs
//!   bounded/unbounded reachability and expected-time analyses block by
//!   block; any budget down to a single resident block terminates with
//!   bitwise-identical values (pinned by this crate's parity tests and the
//!   bench `store` block).
//! * [`stats`] — process-wide residency/fault/eviction totals, surfaced as
//!   `mdp.store.*` telemetry and in `pa-serve`'s `stats` responses.
//!
//! DESIGN §15 documents the format, the block lifecycle, and the soundness
//! argument that the streamed solvers converge to the in-core fixpoint.
//!
//! # Example
//!
//! ```
//! use pa_core::TableAutomaton;
//! use pa_mdp::QueryObjective;
//! use pa_store::SpillTo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let m = TableAutomaton::builder()
//!     .start("try")
//!     .step("try", "flip", [("won", 0.5), ("try", 0.5)])?
//!     .build()?;
//! let dir = std::env::temp_dir().join(format!("pa-store-doc-{}", std::process::id()));
//! let stored = pa_mdp::Explore::new(&m)
//!     .limit(10_000)
//!     .spill_to(&dir, 1 << 20)
//!     .run()?;
//! let analysis = stored
//!     .query_where(|s| *s == "won")
//!     .objective(QueryObjective::MinProb)
//!     .horizon(3)
//!     .run()?;
//! let start = stored.store().file().initial()[0];
//! assert!((analysis.values[start] - 0.875).abs() < 1e-12);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cache;
mod error;
mod format;
mod mmap;
mod spill;
mod stored;

pub use cache::{stats, BlockCache, StoreStats};
pub use error::StoreError;
pub use format::{
    fnv1a_64, BlockKind, BlockMeta, MappedBlock, StoreFile, StoreWriter, BLOCK_ALIGN,
    DEFAULT_BLOCK_BYTES, FOOTER_MAGIC, HEADER_MAGIC, VERSION,
};
pub use spill::{KeySource, KeyWord, SpillTo, Spilling};
pub use stored::{StoredCsr, StoredModel};
