use std::error::Error;
use std::fmt;
use std::io;

use pa_mdp::MdpError;

/// Error type for the on-disk store: creation, spilling, opening, and
/// block paging.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the store-side operation that
    /// hit it.
    Io {
        /// What the store was doing (e.g. `"write block 3"`).
        op: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The file ends before a structure it promises (header, footer,
    /// trailer, or a block's payload).
    Truncated {
        /// Which structure was cut short.
        what: String,
    },
    /// The file does not start with the `pa-store/csr/v1` magic, or the
    /// footer trailer magic is wrong.
    BadMagic,
    /// The file declares a format version this reader does not speak, or a
    /// layout this build cannot map (e.g. a big-endian host).
    Unsupported {
        /// Why the file cannot be read here.
        reason: String,
    },
    /// A block's payload does not hash to the digest recorded at write
    /// time — disk corruption or a concurrent overwrite.
    DigestMismatch {
        /// The block whose payload is corrupt.
        block: usize,
        /// The digest recorded in the footer.
        expected: u64,
        /// The digest of the bytes actually on disk.
        got: u64,
    },
    /// A block's declared geometry (state/choice/transition counts and
    /// payload length) is internally inconsistent.
    BadBlock {
        /// The offending block.
        block: usize,
        /// What is inconsistent.
        reason: String,
    },
    /// An exploration or analysis error from the MDP layer.
    Mdp(MdpError),
}

impl StoreError {
    pub(crate) fn io(op: impl Into<String>) -> impl FnOnce(io::Error) -> StoreError {
        let op = op.into();
        move |source| StoreError::Io { op, source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, source } => write!(f, "I/O error while trying to {op}: {source}"),
            StoreError::Truncated { what } => {
                write!(f, "store file truncated: {what} extends past end of file")
            }
            StoreError::BadMagic => write!(f, "not a pa-store/csr/v1 file (bad magic)"),
            StoreError::Unsupported { reason } => write!(f, "unsupported store file: {reason}"),
            StoreError::DigestMismatch {
                block,
                expected,
                got,
            } => write!(
                f,
                "block {block} payload digest mismatch: footer records {expected:016x}, \
                 disk bytes hash to {got:016x}"
            ),
            StoreError::BadBlock { block, reason } => {
                write!(f, "block {block} metadata inconsistent: {reason}")
            }
            StoreError::Mdp(e) => write!(f, "{e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Mdp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MdpError> for StoreError {
    fn from(e: MdpError) -> StoreError {
        StoreError::Mdp(e)
    }
}

impl From<StoreError> for MdpError {
    /// Lowers a store failure into the MDP layer's backend variant, so the
    /// block-streamed engines surface paging errors through the normal
    /// [`MdpError`] channel. An already-wrapped [`StoreError::Mdp`] passes
    /// through unchanged.
    fn from(e: StoreError) -> MdpError {
        match e {
            StoreError::Mdp(inner) => inner,
            other => MdpError::Backend {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_named() {
        let variants = [
            StoreError::Io {
                op: "write block 3".into(),
                source: io::Error::other("disk full"),
            },
            StoreError::Truncated {
                what: "footer".into(),
            },
            StoreError::BadMagic,
            StoreError::Unsupported {
                reason: "version 9".into(),
            },
            StoreError::DigestMismatch {
                block: 2,
                expected: 1,
                got: 2,
            },
            StoreError::BadBlock {
                block: 0,
                reason: "payload length".into(),
            },
            StoreError::Mdp(MdpError::NoInitialStates),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn lowering_to_mdp_error_unwraps_mdp_and_wraps_the_rest() {
        let roundtrip: MdpError = StoreError::Mdp(MdpError::NoInitialStates).into();
        assert_eq!(roundtrip, MdpError::NoInitialStates);
        let backend: MdpError = StoreError::BadMagic.into();
        match backend {
            MdpError::Backend { reason } => assert!(reason.contains("magic")),
            other => panic!("expected Backend, got {other:?}"),
        }
    }
}
