//! Property-based tests for the probability substrate.

use pa_prob::rng::SplitMix64;
use pa_prob::stats::{BernoulliEstimator, OnlineStats, Z_95};
use pa_prob::{FiniteDist, Prob, ProbInterval};
use proptest::prelude::*;

/// Strategy: a vector of positive weights, normalized to sum to one.
fn normalized_weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, 1..8).prop_map(|ws| {
        let sum: f64 = ws.iter().sum();
        ws.into_iter().map(|w| w / sum).collect()
    })
}

proptest! {
    #[test]
    fn normalized_weights_build_valid_distributions(ws in normalized_weights()) {
        let d = FiniteDist::new(ws.iter().copied().enumerate()).unwrap();
        prop_assert!(d.is_normalized());
        prop_assert!(d.len() <= ws.len());
    }

    #[test]
    fn prob_where_and_complement_sum_to_one(ws in normalized_weights(), cut in 0usize..8) {
        let d = FiniteDist::new(ws.iter().copied().enumerate()).unwrap();
        let a = d.prob_where(|i| *i < cut).value();
        let b = d.prob_where(|i| *i >= cut).value();
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn map_preserves_total_mass(ws in normalized_weights(), modulus in 1usize..5) {
        let d = FiniteDist::new(ws.iter().copied().enumerate()).unwrap();
        let mapped = d.map(|i| i % modulus);
        prop_assert!(mapped.is_normalized());
    }

    #[test]
    fn product_marginals_match_factors(
        wa in normalized_weights(),
        wb in normalized_weights(),
    ) {
        let a = FiniteDist::new(wa.iter().copied().enumerate()).unwrap();
        let b = FiniteDist::new(wb.iter().copied().enumerate()).unwrap();
        let p = a.product(&b);
        prop_assert!(p.is_normalized());
        for (v, w) in a.iter() {
            let marginal = p.prob_where(|(x, _)| x == v).value();
            prop_assert!((marginal - w.value()).abs() < 1e-9);
        }
    }

    #[test]
    fn expectation_is_linear(ws in normalized_weights(), scale in -10.0f64..10.0) {
        let d = FiniteDist::new(ws.iter().copied().enumerate()).unwrap();
        let e1 = d.expect(|i| *i as f64);
        let e2 = d.expect(|i| scale * *i as f64);
        prop_assert!((e2 - scale * e1).abs() < 1e-7);
    }

    #[test]
    fn prob_mul_is_bounded_by_min(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let pa = Prob::new(a).unwrap();
        let pb = Prob::new(b).unwrap();
        let prod = pa * pb;
        prop_assert!(prod.value() <= pa.min(pb).value() + 1e-12);
    }

    #[test]
    fn prob_complement_is_involutive(a in 0.0f64..=1.0) {
        let p = Prob::new(a).unwrap();
        prop_assert!((p.complement().complement().value() - a).abs() < 1e-12);
    }

    #[test]
    fn interval_product_contains_products(
        lo1 in 0.0f64..=1.0, w1 in 0.0f64..=0.3,
        lo2 in 0.0f64..=1.0, w2 in 0.0f64..=0.3,
        t1 in 0.0f64..=1.0, t2 in 0.0f64..=1.0,
    ) {
        let i1 = ProbInterval::new(
            Prob::new(lo1.min(1.0 - w1)).unwrap(),
            Prob::new((lo1.min(1.0 - w1) + w1).min(1.0)).unwrap(),
        ).unwrap();
        let i2 = ProbInterval::new(
            Prob::new(lo2.min(1.0 - w2)).unwrap(),
            Prob::new((lo2.min(1.0 - w2) + w2).min(1.0)).unwrap(),
        ).unwrap();
        // Any point in each bracket has its product inside the bracket product.
        let p1 = i1.lo().value() + t1 * (i1.hi().value() - i1.lo().value());
        let p2 = i2.lo().value() + t2 * (i2.hi().value() - i2.lo().value());
        let prod = i1.product(i2);
        prop_assert!(prod.contains(Prob::new(p1 * p2).unwrap()));
    }

    #[test]
    fn online_stats_merge_equals_sequential(xs in prop::collection::vec(-100.0f64..100.0, 2..64), split in 0usize..64) {
        let split = split.min(xs.len());
        let mut all = OnlineStats::new();
        for &x in &xs { all.push(x); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - all.variance()).abs() < 1e-7);
    }

    #[test]
    fn wilson_interval_contains_point_estimate(successes in 0u64..1000, extra in 0u64..1000) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let mut est = BernoulliEstimator::new();
        for i in 0..trials {
            est.record(i < successes);
        }
        let ci = est.wilson_interval(Z_95);
        prop_assert!(ci.contains(est.point().unwrap()), "{ci}");
    }

    #[test]
    fn splitmix_trial_streams_are_reproducible(seed in any::<u64>(), trial in 0u64..1000) {
        use rand::Rng;
        let mut a = SplitMix64::for_trial(seed, trial);
        let mut b = SplitMix64::for_trial(seed, trial);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sampling_stays_in_support(ws in normalized_weights(), seed in any::<u64>()) {
        let d = FiniteDist::new(ws.iter().copied().enumerate()).unwrap();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let v = d.sample(&mut rng);
            prop_assert!(d.support().any(|s| s == v));
        }
    }
}
