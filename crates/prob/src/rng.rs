//! Deterministic, splittable random number generation.
//!
//! Every stochastic experiment in the workspace must be reproducible from a
//! single `u64` seed. [`SplitMix64`] is a tiny, well-studied generator (Steele
//! et al., *Fast splittable pseudorandom number generators*, OOPSLA 2014) that
//! doubles as a seed-derivation function: [`SplitMix64::split`] produces an
//! independent child stream, so parallel Monte-Carlo trials each get their
//! own deterministic generator without coordination.

use std::convert::Infallible;

use rand::rand_core::TryRng;

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 pseudorandom number generator.
///
/// Implements the infallible [`rand::Rng`] interface (via
/// `TryRng<Error = Infallible>`) so it can drive any `rand` API, and provides
/// [`split`](SplitMix64::split) for deriving independent child generators.
///
/// # Examples
///
/// ```
/// use pa_prob::rng::SplitMix64;
/// use rand::RngExt;
///
/// let mut rng = SplitMix64::new(42);
/// let x: f64 = rng.random();
/// assert!((0.0..1.0).contains(&x));
///
/// // Same seed, same stream:
/// let mut rng2 = SplitMix64::new(42);
/// assert_eq!(rng2.random::<f64>(), x);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
    draws: u64,
}

/// Generators compare by stream state only: the [`draws`](SplitMix64::draws)
/// bookkeeping does not affect future output, so it does not affect
/// equality.
impl PartialEq for SplitMix64 {
    fn eq(&self, other: &SplitMix64) -> bool {
        self.state == other.state
    }
}

impl Eq for SplitMix64 {}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        if pa_telemetry::enabled() {
            pa_telemetry::counter("prob.rng.streams").inc();
        }
        SplitMix64 {
            state: seed,
            draws: 0,
        }
    }

    /// Number of `u64` words this generator has produced so far. Each
    /// `u32`, `u64` or float draw consumes one word; `fill_bytes` consumes
    /// one word per started 8-byte chunk. The Monte-Carlo runner folds
    /// these into the `sim.mc.rng_draws` telemetry counter.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Derives an independent child generator.
    ///
    /// The child's seed is mixed from the parent's current state, and the
    /// parent advances, so successive `split` calls yield distinct streams.
    pub fn split(&mut self) -> SplitMix64 {
        let child_seed = mix64(self.next().wrapping_mul(GOLDEN_GAMMA));
        SplitMix64::new(child_seed)
    }

    /// Derives the `index`-th child generator of `seed` without mutating any
    /// state — convenient for indexing parallel trials.
    pub fn for_trial(seed: u64, index: u64) -> SplitMix64 {
        SplitMix64::new(mix64(
            seed.wrapping_add(index.wrapping_mul(GOLDEN_GAMMA))
                .wrapping_add(GOLDEN_GAMMA),
        ))
    }
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        self.draws += 1;
        mix64(self.state)
    }
}

impl TryRng for SplitMix64 {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next() >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next())
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_distinct() {
        let mut parent = SplitMix64::new(7);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn for_trial_is_pure() {
        let a = SplitMix64::for_trial(9, 4);
        let b = SplitMix64::for_trial(9, 4);
        assert_eq!(a, b);
        let c = SplitMix64::for_trial(9, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn draws_count_every_word() {
        let mut rng = SplitMix64::new(3);
        assert_eq!(rng.draws(), 0);
        let _ = rng.next_u64();
        let _ = rng.next_u32();
        assert_eq!(rng.draws(), 2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_eq!(rng.draws(), 4, "13 bytes = 2 words");
        let fresh = SplitMix64::new(3);
        let mut advanced = SplitMix64::new(3);
        let _ = advanced.next_u64();
        assert_ne!(fresh, advanced, "equality still tracks the stream state");
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniform_floats_look_uniform() {
        let mut rng = SplitMix64::new(99);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
