use std::fmt;

use rand::{Rng, RngExt};

use crate::prob::EPSILON;
use crate::{Prob, ProbError};

/// A finite probability distribution over values of type `T`.
///
/// This is the probability space `(Ω, F, P)` labelling each step of a
/// probabilistic automaton in Definition 2.1 of the paper, specialized (as
/// the paper does) to finite `Ω` with `F = 2^Ω`.
///
/// Invariants enforced at construction:
/// * the support is non-empty,
/// * every weight is a valid probability,
/// * the weights sum to one (within `1e-9`).
///
/// Entries with zero weight are dropped and duplicate support values are
/// merged, so `support()` enumerates distinct outcomes with positive
/// probability.
///
/// # Examples
///
/// ```
/// use pa_prob::{FiniteDist, Prob};
///
/// # fn main() -> Result<(), pa_prob::ProbError> {
/// let die = FiniteDist::uniform(1..=6)?;
/// assert_eq!(die.support().count(), 6);
/// assert!((die.prob_of(&3).value() - 1.0 / 6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FiniteDist<T> {
    entries: Vec<(T, f64)>,
}

impl<T: PartialEq> FiniteDist<T> {
    /// Creates a distribution from `(value, weight)` pairs.
    ///
    /// Duplicate values are merged and zero-weight entries dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::EmptySupport`] if no entry has positive weight,
    /// [`ProbError::OutOfRange`] if any weight is invalid, and
    /// [`ProbError::NotNormalized`] if the weights do not sum to one.
    pub fn new(pairs: impl IntoIterator<Item = (T, f64)>) -> Result<FiniteDist<T>, ProbError> {
        let mut entries: Vec<(T, f64)> = Vec::new();
        let mut sum = 0.0;
        for (value, w) in pairs {
            if !w.is_finite() || !(-EPSILON..=1.0 + EPSILON).contains(&w) {
                return Err(ProbError::OutOfRange { value: w });
            }
            sum += w;
            if w <= EPSILON {
                continue;
            }
            match entries.iter_mut().find(|(v, _)| *v == value) {
                Some((_, existing)) => *existing += w,
                None => entries.push((value, w)),
            }
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ProbError::NotNormalized { sum });
        }
        if entries.is_empty() {
            return Err(ProbError::EmptySupport);
        }
        Ok(FiniteDist { entries })
    }

    /// Creates the point distribution concentrated on `value` (a Dirac
    /// delta). Deterministic automaton steps use this constructor.
    pub fn point(value: T) -> FiniteDist<T> {
        FiniteDist {
            entries: vec![(value, 1.0)],
        }
    }

    /// Creates the two-point distribution assigning `p` to `hit` and `1-p`
    /// to `miss`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::EmptySupport`] if `hit == miss` would collapse
    /// the support to nothing — it cannot, so the only error path is a
    /// degenerate `p` handled by merging; this function is infallible in
    /// practice but kept fallible for uniformity with the other builders.
    pub fn bernoulli(hit: T, miss: T, p: Prob) -> Result<FiniteDist<T>, ProbError> {
        FiniteDist::new([(hit, p.value()), (miss, p.complement().value())])
    }

    /// Creates the uniform distribution over the given values.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::EmptySupport`] if the iterator is empty.
    pub fn uniform(values: impl IntoIterator<Item = T>) -> Result<FiniteDist<T>, ProbError> {
        let values: Vec<T> = values.into_iter().collect();
        if values.is_empty() {
            return Err(ProbError::EmptySupport);
        }
        let w = 1.0 / values.len() as f64;
        FiniteDist::new(values.into_iter().map(|v| (v, w)))
    }

    /// Returns the probability assigned to `value` (zero when outside the
    /// support).
    pub fn prob_of(&self, value: &T) -> Prob {
        self.entries
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, w)| Prob::clamped(*w))
            .unwrap_or(Prob::ZERO)
    }

    /// Returns the total probability of all support values satisfying
    /// `pred`. This is `P[U ∩ Ω]` as used in Proposition 4.2 of the paper.
    pub fn prob_where(&self, mut pred: impl FnMut(&T) -> bool) -> Prob {
        let sum: f64 = self
            .entries
            .iter()
            .filter(|(v, _)| pred(v))
            .map(|(_, w)| w)
            .sum();
        Prob::clamped(sum)
    }
}

impl<T> FiniteDist<T> {
    /// Iterates over the distinct support values.
    pub fn support(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(v, _)| v)
    }

    /// Iterates over `(value, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&T, Prob)> {
        self.entries.iter().map(|(v, w)| (v, Prob::clamped(*w)))
    }

    /// Number of distinct outcomes with positive probability.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the support contains exactly one value, i.e. the
    /// step is deterministic.
    pub fn is_point(&self) -> bool {
        self.entries.len() == 1
    }

    /// Always `false`: the support of a valid distribution is non-empty.
    /// Provided to satisfy the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if the weights sum to one within tolerance.
    ///
    /// Holds for every successfully constructed distribution; exposed for
    /// property tests and debugging assertions.
    pub fn is_normalized(&self) -> bool {
        let sum: f64 = self.entries.iter().map(|(_, w)| w).sum();
        (sum - 1.0).abs() <= 1e-6
    }

    /// Samples an outcome according to the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &T {
        let mut x: f64 = rng.random::<f64>();
        for (v, w) in &self.entries {
            if x < *w {
                return v;
            }
            x -= w;
        }
        // Floating-point underflow: fall back to the last entry.
        &self.entries.last().expect("support is non-empty").0
    }

    /// Maps the support through `f`, merging outcomes that collide.
    pub fn map<U: PartialEq>(&self, mut f: impl FnMut(&T) -> U) -> FiniteDist<U> {
        let mut entries: Vec<(U, f64)> = Vec::new();
        for (v, w) in &self.entries {
            let u = f(v);
            match entries.iter_mut().find(|(x, _)| *x == u) {
                Some((_, existing)) => *existing += w,
                None => entries.push((u, *w)),
            }
        }
        FiniteDist { entries }
    }

    /// Computes the expectation of `f` over the distribution.
    pub fn expect(&self, mut f: impl FnMut(&T) -> f64) -> f64 {
        self.entries.iter().map(|(v, w)| f(v) * w).sum()
    }

    /// Forms the product distribution over pairs, modelling two independent
    /// random choices (the situation analysed in Section 4 of the paper —
    /// *before* an adversary introduces scheduling dependence).
    pub fn product<'a, U: PartialEq + Clone>(
        &'a self,
        other: &'a FiniteDist<U>,
    ) -> FiniteDist<(T, U)>
    where
        T: Clone + PartialEq,
    {
        let mut entries = Vec::with_capacity(self.len() * other.len());
        for (a, wa) in &self.entries {
            for (b, wb) in &other.entries {
                entries.push(((a.clone(), b.clone()), wa * wb));
            }
        }
        FiniteDist { entries }
    }
}

impl<T: fmt::Display> fmt::Display for FiniteDist<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, w)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}: {w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn point_is_deterministic() {
        let d = FiniteDist::point(42);
        assert!(d.is_point());
        assert_eq!(d.prob_of(&42), Prob::ONE);
        assert_eq!(d.prob_of(&7), Prob::ZERO);
    }

    #[test]
    fn bernoulli_has_two_outcomes() {
        let d = FiniteDist::bernoulli('h', 't', Prob::HALF).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.prob_of(&'h'), Prob::HALF);
    }

    #[test]
    fn bernoulli_with_certain_p_collapses() {
        let d = FiniteDist::bernoulli('h', 't', Prob::ONE).unwrap();
        assert!(d.is_point());
        assert_eq!(d.prob_of(&'h'), Prob::ONE);
    }

    #[test]
    fn uniform_rejects_empty() {
        let empty: Vec<u8> = vec![];
        assert_eq!(FiniteDist::uniform(empty), Err(ProbError::EmptySupport));
    }

    #[test]
    fn new_rejects_unnormalized() {
        assert!(matches!(
            FiniteDist::new([(1, 0.3), (2, 0.3)]),
            Err(ProbError::NotNormalized { .. })
        ));
    }

    #[test]
    fn new_rejects_negative_weight() {
        assert!(matches!(
            FiniteDist::new([(1, -0.5), (2, 1.5)]),
            Err(ProbError::OutOfRange { .. })
        ));
    }

    #[test]
    fn new_merges_duplicates() {
        let d = FiniteDist::new([(1, 0.25), (1, 0.25), (2, 0.5)]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.prob_of(&1), Prob::HALF);
    }

    #[test]
    fn prob_where_sums_matching_outcomes() {
        let die = FiniteDist::uniform(1..=6).unwrap();
        let even = die.prob_where(|v| v % 2 == 0);
        assert!((even.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_merges_collisions() {
        let die = FiniteDist::uniform(1..=6).unwrap();
        let parity = die.map(|v| v % 2);
        assert_eq!(parity.len(), 2);
        assert!((parity.prob_of(&0).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_fair_die() {
        let die = FiniteDist::uniform(1..=6).unwrap();
        assert!((die.expect(|v| *v as f64) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn product_is_independent() {
        let c = FiniteDist::bernoulli(0u8, 1u8, Prob::HALF).unwrap();
        let p = c.product(&c);
        assert_eq!(p.len(), 4);
        assert_eq!(p.prob_of(&(0, 1)).value(), 0.25);
    }

    #[test]
    fn sampling_respects_weights() {
        let d = FiniteDist::new([(0u8, 0.9), (1u8, 0.1)]).unwrap();
        let mut rng = SplitMix64::new(7);
        let ones = (0..20_000).filter(|_| *d.sample(&mut rng) == 1).count();
        let freq = ones as f64 / 20_000.0;
        assert!((freq - 0.1).abs() < 0.02, "freq = {freq}");
    }
}
