use std::fmt;
use std::ops::{Add, Mul};

use crate::ProbError;

/// Tolerance used when validating probabilities and normalization sums.
///
/// Exact model-checking code in this workspace accumulates products of
/// floating-point probabilities; a tolerance of `1e-9` comfortably absorbs
/// that rounding while still rejecting genuinely malformed inputs.
pub(crate) const EPSILON: f64 = 1e-9;

/// A validated probability: a finite `f64` in `[0, 1]`.
///
/// `Prob` is the workspace-wide currency for probability *claims* (the `p` in
/// the paper's `U —t→_p U'` statements) and for distribution weights. Interior
/// numeric kernels (value iteration, backward induction) work on raw `f64`
/// for speed and convert at the API boundary.
///
/// # Examples
///
/// ```
/// use pa_prob::Prob;
///
/// # fn main() -> Result<(), pa_prob::ProbError> {
/// let half = Prob::new(0.5)?;
/// let quarter = half * half;
/// assert_eq!(quarter.value(), 0.25);
/// assert!(Prob::new(1.2).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Prob(f64);

impl Prob {
    /// The impossible event.
    pub const ZERO: Prob = Prob(0.0);
    /// The certain event.
    pub const ONE: Prob = Prob(1.0);
    /// A fair coin.
    pub const HALF: Prob = Prob(0.5);

    /// Creates a probability from a raw value.
    ///
    /// Values within [`EPSILON`](crate::Prob::clamped) of the unit interval
    /// are clamped onto it so that tiny floating-point excursions coming out
    /// of numeric kernels do not poison downstream claims.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::OutOfRange`] if `value` is not finite or lies
    /// outside `[-1e-9, 1 + 1e-9]`.
    pub fn new(value: f64) -> Result<Prob, ProbError> {
        if !value.is_finite() || !(-EPSILON..=1.0 + EPSILON).contains(&value) {
            return Err(ProbError::OutOfRange { value });
        }
        Ok(Prob(value.clamp(0.0, 1.0)))
    }

    /// Creates a probability, clamping any finite value onto `[0, 1]`.
    ///
    /// Use this at the exit of iterative numeric algorithms whose results are
    /// mathematically guaranteed to be probabilities but may drift by more
    /// than the strict tolerance of [`Prob::new`].
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN; a NaN probability always indicates a bug in
    /// the caller, never legitimate drift.
    pub fn clamped(value: f64) -> Prob {
        assert!(!value.is_nan(), "NaN is not a probability");
        Prob(value.clamp(0.0, 1.0))
    }

    /// Creates the probability `num / den` of a fair discrete choice.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::OutOfRange`] if `den` is zero or `num > den`.
    pub fn ratio(num: u64, den: u64) -> Result<Prob, ProbError> {
        if den == 0 || num > den {
            return Err(ProbError::OutOfRange {
                value: num as f64 / den as f64,
            });
        }
        Ok(Prob(num as f64 / den as f64))
    }

    /// Returns the raw `f64` value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the complement `1 - p`.
    pub fn complement(self) -> Prob {
        Prob(1.0 - self.0)
    }

    /// Returns `true` if this probability is within tolerance of one.
    pub fn is_one(self) -> bool {
        (self.0 - 1.0).abs() <= EPSILON
    }

    /// Returns `true` if this probability is within tolerance of zero.
    pub fn is_zero(self) -> bool {
        self.0 <= EPSILON
    }

    /// Returns `true` if `self` is at least `other - 1e-9`.
    ///
    /// This is the comparison used when checking a measured probability
    /// against a paper-claimed lower bound.
    pub fn at_least(self, other: Prob) -> bool {
        self.0 + EPSILON >= other.0
    }

    /// Returns the smaller of two probabilities.
    pub fn min(self, other: Prob) -> Prob {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two probabilities.
    pub fn max(self, other: Prob) -> Prob {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Mul for Prob {
    type Output = Prob;

    /// Multiplies two probabilities — the probability of the intersection of
    /// independent events, and the composition rule for arrow statements
    /// (Theorem 3.4 of the paper).
    fn mul(self, rhs: Prob) -> Prob {
        Prob((self.0 * rhs.0).clamp(0.0, 1.0))
    }
}

impl Add for Prob {
    type Output = Prob;

    /// Adds two probabilities, saturating at one.
    ///
    /// Saturation is appropriate for unions of disjoint events whose measured
    /// weights carry floating-point noise.
    fn add(self, rhs: Prob) -> Prob {
        Prob((self.0 + rhs.0).clamp(0.0, 1.0))
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Prob> for f64 {
    fn from(p: Prob) -> f64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_unit_interval() {
        for v in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(Prob::new(v).unwrap().value(), v);
        }
    }

    #[test]
    fn new_rejects_out_of_range_and_non_finite() {
        assert!(Prob::new(-0.1).is_err());
        assert!(Prob::new(1.1).is_err());
        assert!(Prob::new(f64::NAN).is_err());
        assert!(Prob::new(f64::INFINITY).is_err());
    }

    #[test]
    fn new_clamps_tolerable_drift() {
        assert_eq!(Prob::new(1.0 + 1e-12).unwrap().value(), 1.0);
        assert_eq!(Prob::new(-1e-12).unwrap().value(), 0.0);
    }

    #[test]
    fn ratio_builds_exact_fractions() {
        assert_eq!(Prob::ratio(1, 8).unwrap().value(), 0.125);
        assert!(Prob::ratio(3, 2).is_err());
        assert!(Prob::ratio(1, 0).is_err());
    }

    #[test]
    fn multiplication_composes() {
        let p = Prob::HALF * Prob::HALF * Prob::HALF;
        assert_eq!(p.value(), 0.125);
    }

    #[test]
    fn addition_saturates() {
        let p = Prob::new(0.75).unwrap() + Prob::new(0.75).unwrap();
        assert_eq!(p.value(), 1.0);
    }

    #[test]
    fn complement_and_predicates() {
        assert!(Prob::ONE.is_one());
        assert!(Prob::ZERO.is_zero());
        assert_eq!(Prob::HALF.complement(), Prob::HALF);
        assert!(Prob::HALF.at_least(Prob::HALF));
        assert!(!Prob::ZERO.at_least(Prob::HALF));
    }

    #[test]
    fn min_max_order_correctly() {
        assert_eq!(Prob::HALF.min(Prob::ONE), Prob::HALF);
        assert_eq!(Prob::HALF.max(Prob::ONE), Prob::ONE);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_rejects_nan() {
        let _ = Prob::clamped(f64::NAN);
    }
}
