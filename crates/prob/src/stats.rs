//! Online statistics and binomial confidence intervals.
//!
//! Monte-Carlo experiments estimate hitting probabilities (Bernoulli trials)
//! and hitting times (real-valued samples). [`BernoulliEstimator`] wraps
//! trial counting with Wilson-score confidence intervals; [`OnlineStats`]
//! implements Welford's numerically stable streaming mean/variance.

use crate::{Prob, ProbError, ProbInterval};

/// Two-sided z-value for a 99% normal confidence interval.
pub const Z_99: f64 = 2.5758;
/// Two-sided z-value for a 95% normal confidence interval.
pub const Z_95: f64 = 1.9600;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use pa_prob::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample seen.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::NoSamples`] when empty.
    pub fn min(&self) -> Result<f64, ProbError> {
        if self.count == 0 {
            Err(ProbError::NoSamples)
        } else {
            Ok(self.min)
        }
    }

    /// Largest sample seen.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::NoSamples`] when empty.
    pub fn max(&self) -> Result<f64, ProbError> {
        if self.count == 0 {
            Err(ProbError::NoSamples)
        } else {
            Ok(self.max)
        }
    }

    /// Normal-approximation confidence interval `mean ± z · stderr`.
    pub fn mean_ci(&self, z: f64) -> (f64, f64) {
        let half = z * self.std_err();
        (self.mean - half, self.mean + half)
    }
}

/// Counter of Bernoulli trials with Wilson-score confidence intervals.
///
/// # Examples
///
/// ```
/// use pa_prob::stats::{BernoulliEstimator, Z_95};
///
/// let mut est = BernoulliEstimator::new();
/// for i in 0..1000 {
///     est.record(i % 2 == 0);
/// }
/// let ci = est.wilson_interval(Z_95);
/// assert!(ci.contains(pa_prob::Prob::HALF));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BernoulliEstimator {
    successes: u64,
    trials: u64,
}

impl BernoulliEstimator {
    /// Creates an estimator with no trials.
    pub fn new() -> BernoulliEstimator {
        BernoulliEstimator::default()
    }

    /// Creates an estimator from pre-aggregated counts, clamping
    /// `successes` to `trials`. This is the bridge from integer-exact
    /// parallel accumulators (which merge counts, not estimators) into the
    /// interval machinery.
    pub fn from_counts(successes: u64, trials: u64) -> BernoulliEstimator {
        BernoulliEstimator {
            successes: successes.min(trials),
            trials,
        }
    }

    /// Records one trial.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Merges another estimator (parallel reduction).
    pub fn merge(&mut self, other: &BernoulliEstimator) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Number of successes recorded.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate `successes / trials`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::NoSamples`] when no trial has been recorded.
    pub fn point(&self) -> Result<Prob, ProbError> {
        if self.trials == 0 {
            return Err(ProbError::NoSamples);
        }
        Prob::new(self.successes as f64 / self.trials as f64)
    }

    /// Wilson-score confidence interval at the given z-value.
    ///
    /// The Wilson interval has good coverage even for extreme proportions
    /// and small counts, which matters when estimating probabilities near
    /// the paper's 1/8 bound. Returns the vacuous `[0, 1]` bracket when no
    /// trials have been recorded.
    pub fn wilson_interval(&self, z: f64) -> ProbInterval {
        if self.trials == 0 {
            return ProbInterval::UNKNOWN;
        }
        let n = self.trials as f64;
        let p_hat = self.successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p_hat + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt();
        ProbInterval::new(Prob::clamped(centre - half), Prob::clamped(centre + half))
            .expect("wilson interval endpoints are ordered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min().unwrap(), 2.0);
        assert_eq!(s.max().unwrap(), 9.0);
    }

    #[test]
    fn empty_stats_report_no_samples() {
        let s = OnlineStats::new();
        assert_eq!(s.min(), Err(ProbError::NoSamples));
        assert_eq!(s.max(), Err(ProbError::NoSamples));
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn bernoulli_point_estimate() {
        let mut e = BernoulliEstimator::new();
        for i in 0..8 {
            e.record(i == 0);
        }
        assert_eq!(e.point().unwrap(), Prob::ratio(1, 8).unwrap());
    }

    #[test]
    fn bernoulli_empty_errors() {
        assert_eq!(BernoulliEstimator::new().point(), Err(ProbError::NoSamples));
        assert_eq!(
            BernoulliEstimator::new().wilson_interval(Z_95),
            ProbInterval::UNKNOWN
        );
    }

    #[test]
    fn wilson_interval_contains_truth_for_fair_coin() {
        let mut e = BernoulliEstimator::new();
        // Deterministic alternation: exactly half successes.
        for i in 0..10_000 {
            e.record(i % 2 == 0);
        }
        let ci = e.wilson_interval(Z_99);
        assert!(ci.contains(Prob::HALF));
        assert!(ci.width() < 0.03);
    }

    #[test]
    fn wilson_interval_narrows_with_more_trials() {
        let mut small = BernoulliEstimator::new();
        let mut large = BernoulliEstimator::new();
        for i in 0..100 {
            small.record(i % 4 == 0);
        }
        for i in 0..10_000 {
            large.record(i % 4 == 0);
        }
        assert!(large.wilson_interval(Z_95).width() < small.wilson_interval(Z_95).width());
    }

    #[test]
    fn bernoulli_merge_adds_counts() {
        let mut a = BernoulliEstimator::new();
        a.record(true);
        let mut b = BernoulliEstimator::new();
        b.record(false);
        b.record(true);
        a.merge(&b);
        assert_eq!(a.trials(), 3);
        assert_eq!(a.successes(), 2);
    }
}
