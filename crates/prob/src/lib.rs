//! Probability substrate for the `timebounds` workspace.
//!
//! This crate provides the probability-theoretic building blocks used by the
//! probabilistic-automaton framework of Lynch, Saias & Segala (PODC 1994):
//!
//! * [`Prob`] — a validated probability value in `[0, 1]`.
//! * [`FiniteDist`] — a validated finite probability distribution over an
//!   arbitrary support, the object that labels every probabilistic step of an
//!   automaton (Definition 2.1 of the paper).
//! * [`ProbInterval`] — interval-valued probabilities `[lo, hi]`, used when an
//!   event's probability can only be bracketed on a depth-bounded execution
//!   tree.
//! * [`stats`] — online statistics and binomial confidence intervals for the
//!   Monte-Carlo experiments.
//! * [`rng`] — small, deterministic, splittable random number generators so
//!   every experiment in the workspace is reproducible from a single seed.
//!
//! # Examples
//!
//! ```
//! use pa_prob::{FiniteDist, Prob};
//!
//! # fn main() -> Result<(), pa_prob::ProbError> {
//! let coin = FiniteDist::bernoulli("heads", "tails", Prob::new(0.5)?)?;
//! assert_eq!(coin.support().count(), 2);
//! assert!(coin.is_normalized());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod error;
mod interval;
mod prob;
pub mod rng;
pub mod stats;

pub use dist::FiniteDist;
pub use error::ProbError;
pub use interval::ProbInterval;
pub use prob::Prob;
