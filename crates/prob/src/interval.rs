use std::fmt;

use crate::{Prob, ProbError};

/// An interval `[lo, hi]` bracketing an unknown probability.
///
/// Event-schema probabilities can only be *bracketed* on a depth-bounded
/// execution tree: executions cut off at the depth bound are undecided, and
/// their mass is assigned against the event for the lower endpoint and in its
/// favour for the upper endpoint. All paper claims are checked against the
/// sound side of the bracket.
///
/// # Examples
///
/// ```
/// use pa_prob::{Prob, ProbInterval};
///
/// # fn main() -> Result<(), pa_prob::ProbError> {
/// let i = ProbInterval::new(Prob::new(0.25)?, Prob::new(0.3)?)?;
/// assert!(i.certainly_at_least(Prob::new(0.25)?));
/// assert!(!i.certainly_at_least(Prob::new(0.26)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbInterval {
    lo: Prob,
    hi: Prob,
}

impl ProbInterval {
    /// The vacuous bracket `[0, 1]`.
    pub const UNKNOWN: ProbInterval = ProbInterval {
        lo: Prob::ZERO,
        hi: Prob::ONE,
    };

    /// Creates an interval from its endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvertedInterval`] if `lo > hi` (beyond
    /// floating-point tolerance).
    pub fn new(lo: Prob, hi: Prob) -> Result<ProbInterval, ProbError> {
        if lo.value() > hi.value() + 1e-9 {
            return Err(ProbError::InvertedInterval {
                lo: lo.value(),
                hi: hi.value(),
            });
        }
        Ok(ProbInterval { lo: lo.min(hi), hi })
    }

    /// Creates the degenerate interval `[p, p]` for an exactly known
    /// probability.
    pub fn exact(p: Prob) -> ProbInterval {
        ProbInterval { lo: p, hi: p }
    }

    /// Lower endpoint.
    pub fn lo(self) -> Prob {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(self) -> Prob {
        self.hi
    }

    /// Width `hi - lo` of the bracket.
    pub fn width(self) -> f64 {
        self.hi.value() - self.lo.value()
    }

    /// Returns `true` if the bracket has collapsed to a point (within
    /// floating-point tolerance).
    pub fn is_exact(self) -> bool {
        self.width() <= 1e-9
    }

    /// Returns `true` if every probability in the bracket is at least
    /// `bound` — the sound check for a paper claim `p ≥ bound`.
    pub fn certainly_at_least(self, bound: Prob) -> bool {
        self.lo.at_least(bound)
    }

    /// Returns `true` if every probability in the bracket is at most
    /// `bound`.
    pub fn certainly_at_most(self, bound: Prob) -> bool {
        bound.at_least(self.hi)
    }

    /// Returns `true` if `p` lies inside the bracket (inclusive, with
    /// tolerance). Used to cross-validate Monte-Carlo estimates against
    /// exact brackets.
    pub fn contains(self, p: Prob) -> bool {
        p.at_least(self.lo) && self.hi.at_least(p)
    }

    /// Interval product: the bracket for the product of two independent
    /// bracketed probabilities (both endpoints are monotone, so endpoints
    /// multiply).
    pub fn product(self, other: ProbInterval) -> ProbInterval {
        ProbInterval {
            lo: self.lo * other.lo,
            hi: self.hi * other.hi,
        }
    }

    /// Pointwise intersection of two brackets for the *same* quantity.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvertedInterval`] if the brackets are disjoint,
    /// which means the two analyses contradict each other.
    pub fn intersect(self, other: ProbInterval) -> Result<ProbInterval, ProbError> {
        ProbInterval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }
}

impl fmt::Display for ProbInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl From<Prob> for ProbInterval {
    fn from(p: Prob) -> ProbInterval {
        ProbInterval::exact(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    #[test]
    fn new_rejects_inverted() {
        assert!(ProbInterval::new(p(0.8), p(0.2)).is_err());
    }

    #[test]
    fn exact_has_zero_width() {
        let i = ProbInterval::exact(Prob::HALF);
        assert!(i.is_exact());
        assert_eq!(i.width(), 0.0);
    }

    #[test]
    fn soundness_checks_use_correct_sides() {
        let i = ProbInterval::new(p(0.3), p(0.6)).unwrap();
        assert!(i.certainly_at_least(p(0.3)));
        assert!(!i.certainly_at_least(p(0.31)));
        assert!(i.certainly_at_most(p(0.6)));
        assert!(!i.certainly_at_most(p(0.59)));
    }

    #[test]
    fn contains_is_inclusive() {
        let i = ProbInterval::new(p(0.3), p(0.6)).unwrap();
        assert!(i.contains(p(0.3)));
        assert!(i.contains(p(0.45)));
        assert!(!i.contains(p(0.61)));
    }

    #[test]
    fn product_multiplies_endpoints() {
        let a = ProbInterval::new(p(0.5), p(0.6)).unwrap();
        let b = ProbInterval::new(p(0.5), p(0.5)).unwrap();
        let c = a.product(b);
        assert_eq!(c.lo(), p(0.25));
        assert_eq!(c.hi(), p(0.3));
    }

    #[test]
    fn intersect_narrows_and_detects_contradiction() {
        let a = ProbInterval::new(p(0.2), p(0.7)).unwrap();
        let b = ProbInterval::new(p(0.5), p(0.9)).unwrap();
        let c = a.intersect(b).unwrap();
        assert_eq!(c.lo(), p(0.5));
        assert_eq!(c.hi(), p(0.7));
        let d = ProbInterval::new(p(0.8), p(0.9)).unwrap();
        assert!(a.intersect(d).is_err());
    }

    #[test]
    fn display_formats_exact_and_wide() {
        assert_eq!(ProbInterval::exact(Prob::HALF).to_string(), "0.5");
        assert_eq!(
            ProbInterval::new(p(0.25), p(0.5)).unwrap().to_string(),
            "[0.25, 0.5]"
        );
    }
}
