use std::error::Error;
use std::fmt;

/// Error type for invalid probabilistic data.
///
/// Every fallible constructor in this crate returns `Result<_, ProbError>`;
/// the variants describe exactly which validation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// A probability value was outside `[0, 1]` or not finite.
    OutOfRange {
        /// The offending value.
        value: f64,
    },
    /// The weights of a distribution did not sum to (approximately) one.
    NotNormalized {
        /// The actual sum of weights.
        sum: f64,
    },
    /// A distribution was constructed with an empty support.
    EmptySupport,
    /// An interval was constructed with `lo > hi`.
    InvertedInterval {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
    /// A statistic was requested from an estimator with no samples.
    NoSamples,
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::OutOfRange { value } => {
                write!(f, "probability {value} is not a finite value in [0, 1]")
            }
            ProbError::NotNormalized { sum } => {
                write!(f, "distribution weights sum to {sum}, expected 1")
            }
            ProbError::EmptySupport => write!(f, "distribution has empty support"),
            ProbError::InvertedInterval { lo, hi } => {
                write!(f, "interval lower bound {lo} exceeds upper bound {hi}")
            }
            ProbError::NoSamples => write!(f, "estimator holds no samples"),
        }
    }
}

impl Error for ProbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = [
            ProbError::OutOfRange { value: 1.5 },
            ProbError::NotNormalized { sum: 0.9 },
            ProbError::EmptySupport,
            ProbError::InvertedInterval { lo: 0.8, hi: 0.2 },
            ProbError::NoSamples,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn Error> = Box::new(ProbError::EmptySupport);
        assert!(err.to_string().contains("empty"));
    }
}
