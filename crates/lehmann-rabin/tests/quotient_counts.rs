//! Quotient-vs-full state counts of the saturating protocol: the measured
//! table behind `pa-batch`'s tier selection and the bench `symmetry`
//! block.

use pa_lehmann_rabin::{LrProtocol, UserModel};
use pa_mdp::{Explore, RingRotation};

const LIMIT: usize = 50_000_000;

fn full_states(n: usize) -> usize {
    let protocol = LrProtocol::new(n, UserModel::saturating()).unwrap();
    let explored = Explore::new(&protocol)
        .limit(LIMIT)
        .parallel()
        .run()
        .unwrap();
    explored.mdp.num_states()
}

fn quotient_states(n: usize) -> usize {
    let protocol = LrProtocol::new(n, UserModel::saturating()).unwrap();
    let explored = Explore::new(&protocol)
        .limit(LIMIT)
        .parallel()
        .symmetry(RingRotation::new(n))
        .run()
        .unwrap();
    explored.mdp.num_states()
}

/// One-off measurement helper: prints the full/quotient table.
#[test]
#[ignore = "measurement helper, run with --ignored --nocapture"]
fn print_quotient_counts() {
    for n in 3..=7 {
        let full = full_states(n);
        let quot = quotient_states(n);
        println!(
            "n={n}: full={full} quotient={quot} reduction={:.3}",
            full as f64 / quot as f64
        );
    }
}

/// One-off measurement helper: times the quotient arrow checker as `n`
/// grows (run with `--ignored --nocapture`).
#[test]
#[ignore = "measurement helper, run with --ignored --nocapture"]
fn time_quotient_arrows() {
    use pa_lehmann_rabin::{check_arrow_quotient, paper, RoundConfig, RoundMdp};
    use std::io::Write;
    let range = std::env::var("QC_RANGE").unwrap_or_else(|_| "4:5".to_string());
    let (lo, hi) = range.split_once(':').unwrap();
    for n in lo.parse().unwrap()..=hi.parse::<usize>().unwrap() {
        let mdp = RoundMdp::new(RoundConfig::new(n).unwrap());
        for (arrow, _why) in paper::all_arrows() {
            let t0 = std::time::Instant::now();
            let check = check_arrow_quotient(&mdp, &arrow, 200_000_000).unwrap();
            println!(
                "n={n} {arrow}: {:.2}s starts={} holds={}",
                t0.elapsed().as_secs_f64(),
                check.states_checked,
                check.holds()
            );
            std::io::stdout().flush().unwrap();
        }
    }
}

/// One-off measurement helper: quotient-only protocol exploration at large
/// `n` with wall time and interner memory (run with `--ignored
/// --nocapture`, range via `QC_RANGE=lo:hi`).
#[test]
#[ignore = "measurement helper, run with --ignored --nocapture"]
fn time_protocol_quotient() {
    use std::io::Write;
    let range = std::env::var("QC_RANGE").unwrap_or_else(|_| "7:8".to_string());
    let (lo, hi) = range.split_once(':').unwrap();
    for n in lo.parse().unwrap()..=hi.parse::<usize>().unwrap() {
        let protocol = LrProtocol::new(n, UserModel::saturating()).unwrap();
        let t0 = std::time::Instant::now();
        let explored = Explore::new(&protocol)
            .limit(LIMIT)
            .symmetry(RingRotation::new(n))
            .run()
            .unwrap();
        println!(
            "n={n}: quotient={} ({:.2}s, space {} MB, {} choices, {} transitions)",
            explored.mdp.num_states(),
            t0.elapsed().as_secs_f64(),
            explored.mem_bytes() / (1 << 20),
            explored.mdp.num_choices(),
            explored.mdp.num_transitions(),
        );
        std::io::stdout().flush().unwrap();
    }
}

/// One-off measurement helper: times the quotient expected-time bracket
/// as `n` grows (run with `--ignored --nocapture`, range via
/// `QC_RANGE=lo:hi`).
#[test]
#[ignore = "measurement helper, run with --ignored --nocapture"]
fn time_quotient_expected_time() {
    use pa_core::SetExpr;
    use pa_lehmann_rabin::{
        max_expected_time_quotient, min_expected_time_quotient, RoundConfig, RoundMdp,
    };
    use std::io::Write;
    let range = std::env::var("QC_RANGE").unwrap_or_else(|_| "5:5".to_string());
    let (lo, hi) = range.split_once(':').unwrap();
    let (t, c) = (SetExpr::named("T"), SetExpr::named("C"));
    for n in lo.parse().unwrap()..=hi.parse::<usize>().unwrap() {
        let mdp = RoundMdp::new(RoundConfig::new(n).unwrap());
        let t0 = std::time::Instant::now();
        let hi_v = max_expected_time_quotient(&mdp, &t, &c, 200_000_000).unwrap();
        let t_max = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let lo_v = min_expected_time_quotient(&mdp, &t, &c, 200_000_000).unwrap();
        println!(
            "n={n} E[T->C]: max={hi_v:.4} ({t_max:.2}s) min={lo_v:.4} ({:.2}s)",
            t0.elapsed().as_secs_f64()
        );
        std::io::stdout().flush().unwrap();
    }
}
