//! Property-based tests for the Lehmann–Rabin protocol semantics.

use pa_core::{Automaton, Step};
use pa_lehmann_rabin::{
    lemma_6_1_invariant, regions, Config, LrAction, LrProtocol, Pc, ProcState, RoundConfig,
    RoundMdp, Side, UserModel,
};
use pa_mdp::{Explore, Objective, Query};
use pa_prob::rng::SplitMix64;
use proptest::prelude::*;
use rand::RngExt;

fn side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Left), Just(Side::Right)]
}

fn pc() -> impl Strategy<Value = Pc> {
    prop::sample::select(Pc::ALL.to_vec())
}

fn proc_state() -> impl Strategy<Value = ProcState> {
    (pc(), side()).prop_map(|(pc, s)| ProcState::new(pc, s))
}

/// A random *reachable-looking* configuration: local states are arbitrary
/// but resources are set to the Lemma 6.1-derived values, and exclusivity
/// is enforced by assumption filtering.
fn consistent_config() -> impl Strategy<Value = Config> {
    (2usize..6, prop::collection::vec(proc_state(), 6))
        .prop_map(|(n, procs)| {
            let procs: Vec<ProcState> = procs.into_iter().take(n).collect();
            let probe = Config::from_parts(procs.clone(), []).expect("valid size");
            let taken: Vec<usize> = (0..n).filter(|&i| probe.derived_res_taken(i)).collect();
            Config::from_parts(procs, taken).expect("valid size")
        })
        .prop_filter("exclusive resources", |c| {
            (0..c.n()).all(|i| c.resource_exclusive(i))
        })
}

/// The protocol automaton re-rooted at an arbitrary configuration, so
/// analyses can start from any (not just the canonical initial) state.
struct FromStart {
    protocol: LrProtocol,
    start: Config,
}

impl Automaton for FromStart {
    type State = Config;
    type Action = LrAction;

    fn start_states(&self) -> Vec<Config> {
        vec![self.start.clone()]
    }

    fn steps(&self, state: &Config) -> Vec<Step<Config, LrAction>> {
        self.protocol.steps(state)
    }
}

/// Rotates the ring by `r`: new process `i` is old process `i + r`, new
/// `Res_j` is old `Res_{j+r}` (which keeps "right resource of process `i`
/// is `Res_i`" intact).
fn rotate(c: &Config, r: usize) -> Config {
    let n = c.n();
    Config::from_parts(
        (0..n).map(|i| c.proc(i + r)).collect(),
        (0..n).filter(|&j| c.res_taken(j + r)),
    )
    .unwrap()
}

/// Like [`consistent_config`], but capped at `n ≤ 4` so that exhaustive
/// exploration from the configuration stays cheap inside a property.
fn small_consistent_config() -> impl Strategy<Value = Config> {
    (2usize..5, prop::collection::vec(proc_state(), 4))
        .prop_map(|(n, procs)| {
            let procs: Vec<ProcState> = procs.into_iter().take(n).collect();
            let probe = Config::from_parts(procs.clone(), []).expect("valid size");
            let taken: Vec<usize> = (0..n).filter(|&i| probe.derived_res_taken(i)).collect();
            Config::from_parts(procs, taken).expect("valid size")
        })
        .prop_filter("exclusive resources", |c| {
            (0..c.n()).all(|i| c.resource_exclusive(i))
        })
}

proptest! {
    #[test]
    fn consistent_configs_satisfy_lemma_6_1(c in consistent_config()) {
        prop_assert!(lemma_6_1_invariant(&c));
    }

    #[test]
    fn transitions_preserve_lemma_6_1(c in consistent_config(), picks in prop::collection::vec((0usize..6, 0usize..2, any::<u64>()), 1..30)) {
        let protocol = LrProtocol::new(c.n(), UserModel::full()).unwrap();
        let mut config = c;
        for (i, variant, seed) in picks {
            let i = i % config.n();
            let steps = protocol.steps_of_process(&config, i);
            if steps.is_empty() {
                continue;
            }
            let step = &steps[variant % steps.len()];
            let mut rng = SplitMix64::new(seed);
            config = step.target.sample(&mut rng).clone();
            prop_assert!(lemma_6_1_invariant(&config), "after {:?} at {config}", step.action);
        }
    }

    #[test]
    fn region_containments_hold(c in consistent_config()) {
        // G ⊆ RT ⊆ T and F ⊆ RT.
        if regions::in_g(&c) {
            prop_assert!(regions::in_rt(&c));
        }
        if regions::in_f(&c) {
            prop_assert!(regions::in_rt(&c));
        }
        if regions::in_rt(&c) {
            prop_assert!(regions::in_t(&c));
            prop_assert!(!regions::in_c(&c), "RT excludes critical states");
        }
    }

    #[test]
    fn good_processes_are_committed(c in consistent_config()) {
        for i in regions::good_processes(&c) {
            prop_assert!(regions::is_committed(&c, i));
        }
    }

    #[test]
    fn ready_mask_matches_pc_readiness(c in consistent_config()) {
        let mask = c.ready_mask();
        for i in 0..c.n() {
            prop_assert_eq!(mask & (1 << i) != 0, c.proc(i).pc.is_ready());
        }
    }

    #[test]
    fn canonicalization_is_idempotent(c in consistent_config()) {
        let again = Config::from_parts(
            c.procs().to_vec(),
            (0..c.n()).filter(|&i| c.res_taken(i)),
        ).unwrap();
        prop_assert_eq!(again, c);
    }

    #[test]
    fn round_steps_discharge_obligations_monotonically(
        c in consistent_config(),
        picks in prop::collection::vec((0usize..16, any::<u64>()), 1..20),
    ) {
        let mdp = RoundMdp::new(RoundConfig::new(c.n()).unwrap());
        let mut state = mdp.fresh(c);
        for (pick, seed) in picks {
            let steps = mdp.steps(&state);
            prop_assert!(!steps.is_empty(), "round model never deadlocks");
            let step = &steps[pick % steps.len()];
            let before_obliged = state.obliged.count_ones();
            let mut rng = SplitMix64::new(seed);
            let next = step.target.sample(&mut rng).clone();
            match step.action {
                pa_lehmann_rabin::RoundAction::Schedule(a) => {
                    let i = a.process();
                    prop_assert!(next.budget_of(i) < state.budget_of(i));
                    prop_assert!(next.obliged.count_ones() <= before_obliged);
                }
                pa_lehmann_rabin::RoundAction::EndRound => {
                    prop_assert_eq!(state.obliged, 0, "EndRound only when discharged");
                    prop_assert_eq!(next.obliged, next.config.ready_mask());
                }
            }
            state = next;
        }
    }

    #[test]
    fn ring_rotation_preserves_invariant_and_regions(c in consistent_config(), r in 0usize..6) {
        // The ring is anonymous: relabelling process i as i - r (and
        // resource j as j - r) maps reachable configurations to reachable
        // configurations and preserves every region. Rotate so that new
        // process i is old process (i + r) and new Res_j is old Res_{j+r},
        // which keeps "right resource of process i is Res_i" intact.
        let n = c.n();
        let r = r % n;
        let procs: Vec<ProcState> = (0..n).map(|i| c.proc(i + r)).collect();
        let rot = Config::from_parts(
            procs,
            (0..n).filter(|&j| c.res_taken(j + r)),
        ).unwrap();

        prop_assert_eq!(lemma_6_1_invariant(&rot), lemma_6_1_invariant(&c));
        prop_assert_eq!(regions::in_t(&rot), regions::in_t(&c));
        prop_assert_eq!(regions::in_rt(&rot), regions::in_rt(&c));
        prop_assert_eq!(regions::in_g(&rot), regions::in_g(&c));
        prop_assert_eq!(regions::in_f(&rot), regions::in_f(&c));
        prop_assert_eq!(regions::in_c(&rot), regions::in_c(&c));
        for i in 0..n {
            prop_assert_eq!(
                regions::is_committed(&rot, i),
                regions::is_committed(&c, i + r),
                "process {} vs {}", i, (i + r) % n
            );
            prop_assert_eq!(
                rot.ready_mask() & (1 << i) != 0,
                c.ready_mask() & (1 << ((i + r) % n)) != 0
            );
        }
        // Good processes rotate as a set.
        let mut good_rot: Vec<usize> = regions::good_processes(&rot);
        let mut good_src: Vec<usize> =
            regions::good_processes(&c).into_iter().map(|i| (i + n - r) % n).collect();
        good_rot.sort_unstable();
        good_src.sort_unstable();
        prop_assert_eq!(good_rot, good_src);
    }

    #[test]
    fn rotation_canon_is_idempotent_and_orbit_invariant(c in consistent_config(), k in 0usize..6) {
        // The two laws the `pa_mdp::Symmetry` contract demands, on real
        // protocol configurations: canon(canon(s)) == canon(s) and
        // canon(rotate(s, k)) == canon(s) for every rotation amount.
        use pa_mdp::{RingRotation, Symmetry};
        let n = c.n();
        let sym = RingRotation::new(n);
        let canon = sym.canon(&c);
        prop_assert_eq!(sym.canon(&canon), canon.clone(), "idempotent on {}", c);
        prop_assert_eq!(sym.canon(&rotate(&c, k % n)), canon, "orbit-invariant on {}", c);
    }

    #[test]
    fn round_state_canon_is_idempotent_and_orbit_invariant(c in consistent_config(), k in 0usize..6) {
        // Same laws one layer up, on round states (config + obligations +
        // budgets), which is what quotient exploration actually
        // canonicalizes.
        use pa_mdp::{RingRotation, Symmetry};
        let n = c.n();
        let mdp = RoundMdp::new(RoundConfig::new(n).unwrap());
        let s = mdp.fresh(c);
        let sym = RingRotation::new(n);
        let canon = sym.canon(&s);
        prop_assert_eq!(sym.canon(&canon), canon.clone(), "idempotent");
        prop_assert_eq!(sym.canon(&s.rotated(k % n)), canon, "orbit-invariant");
    }

    #[test]
    fn round_state_codec_round_trips_along_random_walks(
        c in consistent_config(),
        picks in prop::collection::vec((0usize..16, any::<u64>()), 1..20),
    ) {
        // The bit-packed codec must be lossless on every state the round
        // model can actually reach, not just on fresh starts: walk a
        // random trajectory and round-trip each state on the way.
        use pa_lehmann_rabin::RoundStateCodec;
        use pa_mdp::StateCodec;
        let n = c.n();
        let codec = RoundStateCodec::new(n).unwrap();
        let mdp = RoundMdp::new(RoundConfig::new(n).unwrap());
        let mut state = mdp.fresh(c);
        for (pick, seed) in picks {
            prop_assert_eq!(&codec.unpack(&codec.pack(&state)), &state);
            let steps = mdp.steps(&state);
            prop_assert!(!steps.is_empty());
            let step = &steps[pick % steps.len()];
            let mut rng = SplitMix64::new(seed);
            state = step.target.sample(&mut rng).clone();
        }
    }

    #[test]
    fn value_iteration_from_rotated_start_agrees(
        c in small_consistent_config(),
        r in 1usize..4,
        budget in 0u32..5,
    ) {
        // The ring is anonymous, so the probability of reaching the
        // critical region within any time budget is invariant under
        // rotating the start configuration. The two explorations visit
        // isomorphic (but differently ordered) state spaces, so values
        // agree up to value-iteration tolerance, not bitwise.
        let n = c.n();
        let r = r % n;
        let protocol = LrProtocol::new(n, UserModel::full()).unwrap();
        let rot = rotate(&c, r);
        let ea = Explore::new(&FromStart { protocol, start: c })
            .cost(|_, _| 1)
            .limit(500_000)
            .run()
            .unwrap();
        let eb = Explore::new(&FromStart { protocol, start: rot })
            .cost(|_, _| 1)
            .limit(500_000)
            .run()
            .unwrap();
        prop_assert_eq!(ea.mdp.num_states(), eb.mdp.num_states(), "isomorphic spaces");
        let ta = ea.target_where(regions::in_c);
        let tb = eb.target_where(regions::in_c);
        for objective in [Objective::MinProb, Objective::MaxProb] {
            let va = Query::over(&ea.mdp)
                .objective(objective)
                .target(&ta)
                .horizon(budget)
                .run()
                .unwrap()
                .values;
            let vb = Query::over(&eb.mdp)
                .objective(objective)
                .target(&tb)
                .horizon(budget)
                .run()
                .unwrap()
                .values;
            let sa = ea.mdp.initial_states()[0];
            let sb = eb.mdp.initial_states()[0];
            prop_assert!(
                (va[sa] - vb[sb]).abs() <= 1e-12,
                "{:?}: {} vs {}", objective, va[sa], vb[sb]
            );
        }
    }

    #[test]
    fn simulation_rounds_preserve_regions_invariants(n in 2usize..6, seed in any::<u64>()) {
        use pa_lehmann_rabin::sims::{all_trying, LrSim, UniformRandom};
        use pa_sim::Simulable;
        let sim = LrSim::new(n, UniformRandom).unwrap().with_start(all_trying(n).unwrap());
        let mut rng = SplitMix64::new(seed);
        let mut state = sim.initial(&mut rng);
        for _ in 0..40 {
            state = sim.step_round(state, &mut rng);
            prop_assert!(lemma_6_1_invariant(&state.config));
            // At most floor(n/2) philosophers hold both resources.
            let both = state.config.procs().iter().filter(|p| p.pc.holds_both()).count();
            prop_assert!(both <= n / 2);
        }
        let _ = rng.random_bool(0.5);
    }
}
