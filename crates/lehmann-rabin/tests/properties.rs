//! Property-based tests for the Lehmann–Rabin protocol semantics.

use pa_core::Automaton;
use pa_lehmann_rabin::{
    lemma_6_1_invariant, regions, Config, LrProtocol, Pc, ProcState, RoundConfig, RoundMdp, Side,
    UserModel,
};
use pa_prob::rng::SplitMix64;
use proptest::prelude::*;
use rand::RngExt;

fn side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Left), Just(Side::Right)]
}

fn pc() -> impl Strategy<Value = Pc> {
    prop::sample::select(Pc::ALL.to_vec())
}

fn proc_state() -> impl Strategy<Value = ProcState> {
    (pc(), side()).prop_map(|(pc, s)| ProcState::new(pc, s))
}

/// A random *reachable-looking* configuration: local states are arbitrary
/// but resources are set to the Lemma 6.1-derived values, and exclusivity
/// is enforced by assumption filtering.
fn consistent_config() -> impl Strategy<Value = Config> {
    (2usize..6, prop::collection::vec(proc_state(), 6))
        .prop_map(|(n, procs)| {
            let procs: Vec<ProcState> = procs.into_iter().take(n).collect();
            let probe = Config::from_parts(procs.clone(), []).expect("valid size");
            let taken: Vec<usize> = (0..n).filter(|&i| probe.derived_res_taken(i)).collect();
            Config::from_parts(procs, taken).expect("valid size")
        })
        .prop_filter("exclusive resources", |c| {
            (0..c.n()).all(|i| c.resource_exclusive(i))
        })
}

proptest! {
    #[test]
    fn consistent_configs_satisfy_lemma_6_1(c in consistent_config()) {
        prop_assert!(lemma_6_1_invariant(&c));
    }

    #[test]
    fn transitions_preserve_lemma_6_1(c in consistent_config(), picks in prop::collection::vec((0usize..6, 0usize..2, any::<u64>()), 1..30)) {
        let protocol = LrProtocol::new(c.n(), UserModel::full()).unwrap();
        let mut config = c;
        for (i, variant, seed) in picks {
            let i = i % config.n();
            let steps = protocol.steps_of_process(&config, i);
            if steps.is_empty() {
                continue;
            }
            let step = &steps[variant % steps.len()];
            let mut rng = SplitMix64::new(seed);
            config = step.target.sample(&mut rng).clone();
            prop_assert!(lemma_6_1_invariant(&config), "after {:?} at {config}", step.action);
        }
    }

    #[test]
    fn region_containments_hold(c in consistent_config()) {
        // G ⊆ RT ⊆ T and F ⊆ RT.
        if regions::in_g(&c) {
            prop_assert!(regions::in_rt(&c));
        }
        if regions::in_f(&c) {
            prop_assert!(regions::in_rt(&c));
        }
        if regions::in_rt(&c) {
            prop_assert!(regions::in_t(&c));
            prop_assert!(!regions::in_c(&c), "RT excludes critical states");
        }
    }

    #[test]
    fn good_processes_are_committed(c in consistent_config()) {
        for i in regions::good_processes(&c) {
            prop_assert!(regions::is_committed(&c, i));
        }
    }

    #[test]
    fn ready_mask_matches_pc_readiness(c in consistent_config()) {
        let mask = c.ready_mask();
        for i in 0..c.n() {
            prop_assert_eq!(mask & (1 << i) != 0, c.proc(i).pc.is_ready());
        }
    }

    #[test]
    fn canonicalization_is_idempotent(c in consistent_config()) {
        let again = Config::from_parts(
            c.procs().to_vec(),
            (0..c.n()).filter(|&i| c.res_taken(i)),
        ).unwrap();
        prop_assert_eq!(again, c);
    }

    #[test]
    fn round_steps_discharge_obligations_monotonically(
        c in consistent_config(),
        picks in prop::collection::vec((0usize..16, any::<u64>()), 1..20),
    ) {
        let mdp = RoundMdp::new(RoundConfig::new(c.n()).unwrap());
        let mut state = mdp.fresh(c);
        for (pick, seed) in picks {
            let steps = mdp.steps(&state);
            prop_assert!(!steps.is_empty(), "round model never deadlocks");
            let step = &steps[pick % steps.len()];
            let before_obliged = state.obliged.count_ones();
            let mut rng = SplitMix64::new(seed);
            let next = step.target.sample(&mut rng).clone();
            match step.action {
                pa_lehmann_rabin::RoundAction::Schedule(a) => {
                    let i = a.process();
                    prop_assert!(next.budget_of(i) < state.budget_of(i));
                    prop_assert!(next.obliged.count_ones() <= before_obliged);
                }
                pa_lehmann_rabin::RoundAction::EndRound => {
                    prop_assert_eq!(state.obliged, 0, "EndRound only when discharged");
                    prop_assert_eq!(next.obliged, next.config.ready_mask());
                }
            }
            state = next;
        }
    }

    #[test]
    fn simulation_rounds_preserve_regions_invariants(n in 2usize..6, seed in any::<u64>()) {
        use pa_lehmann_rabin::sims::{all_trying, LrSim, UniformRandom};
        use pa_sim::Simulable;
        let sim = LrSim::new(n, UniformRandom).unwrap().with_start(all_trying(n).unwrap());
        let mut rng = SplitMix64::new(seed);
        let mut state = sim.initial(&mut rng);
        for _ in 0..40 {
            state = sim.step_round(state, &mut rng);
            prop_assert!(lemma_6_1_invariant(&state.config));
            // At most floor(n/2) philosophers hold both resources.
            let both = state.config.procs().iter().filter(|p| p.pc.holds_both()).count();
            prop_assert!(both <= n / 2);
        }
        let _ = rng.random_bool(0.5);
    }
}
