//! Quotient-vs-full lifting checks: every paper arrow and the expected-
//! time bracket, pinned equal between the full-space engine and the
//! rotation-quotient engine on `n = 3..5`.
//!
//! Bounded-horizon arrow checks are pinned **bitwise** (the quotient's
//! backward induction performs the same per-orbit f64 operations in the
//! same outcome order); the unbounded expected-time solves are pinned to
//! `1e-7` (value iteration stops on a tolerance, and the two engines sweep
//! different state orders).

use pa_core::SetExpr;
use pa_lehmann_rabin::{
    check_arrow_quotient, check_arrow_with_limit, max_expected_time, max_expected_time_quotient,
    min_expected_time, min_expected_time_quotient, paper, RoundConfig, RoundMdp,
};

const LIMIT: usize = 30_000_000;

#[test]
fn arrow_checks_agree_bitwise_on_n3_to_n5() {
    for n in 3..=5usize {
        let mdp = RoundMdp::new(RoundConfig::new(n).unwrap());
        for (arrow, _why) in paper::all_arrows() {
            let full = check_arrow_with_limit(&mdp, &arrow, LIMIT).unwrap();
            let quot = check_arrow_quotient(&mdp, &arrow, LIMIT).unwrap();
            assert_eq!(
                full.measured.lo(),
                quot.measured.lo(),
                "n={n} {arrow}: full {} vs quotient {}",
                full.measured.lo(),
                quot.measured.lo()
            );
            assert_eq!(full.holds(), quot.holds(), "n={n} {arrow}");
            assert!(
                quot.states_checked <= full.states_checked,
                "n={n} {arrow}: quotient quantifies over orbits"
            );
        }
    }
}

#[test]
fn composed_arrow_agrees_bitwise_on_n3_to_n4() {
    let arrow = paper::arrow_t_to_c();
    for n in 3..=4usize {
        let mdp = RoundMdp::new(RoundConfig::new(n).unwrap());
        let full = check_arrow_with_limit(&mdp, &arrow, LIMIT).unwrap();
        let quot = check_arrow_quotient(&mdp, &arrow, LIMIT).unwrap();
        assert_eq!(full.measured.lo(), quot.measured.lo(), "n={n} {arrow}");
        assert_eq!(full.holds(), quot.holds(), "n={n} {arrow}");
    }
}

#[test]
fn expected_time_bracket_agrees_within_1e7_on_n3_to_n4() {
    let t = SetExpr::named("T");
    let c = SetExpr::named("C");
    for n in 3..=4usize {
        let mdp = RoundMdp::new(RoundConfig::new(n).unwrap());
        let full_hi = max_expected_time(&mdp, &t, &c, LIMIT).unwrap();
        let quot_hi = max_expected_time_quotient(&mdp, &t, &c, LIMIT).unwrap();
        assert!(
            (full_hi - quot_hi).abs() < 1e-7,
            "n={n} max: full {full_hi} vs quotient {quot_hi}"
        );
        let full_lo = min_expected_time(&mdp, &t, &c, LIMIT).unwrap();
        let quot_lo = min_expected_time_quotient(&mdp, &t, &c, LIMIT).unwrap();
        assert!(
            (full_lo - quot_lo).abs() < 1e-7,
            "n={n} min: full {full_lo} vs quotient {quot_lo}"
        );
        assert!(quot_lo <= quot_hi + 1e-9, "bracket stays ordered");
    }
}
