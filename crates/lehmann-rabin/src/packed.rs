//! Bit-packed encodings of the ring's state types for
//! [`pa_mdp::PackedSpace`].
//!
//! A boxed [`RoundState`] costs a heap allocation per state (the `Vec` of
//! process states inside [`Config`]) plus the struct itself — roughly 100
//! bytes resident per interned state, twice that with the interner's key
//! copy. [`RoundStateCodec`] packs the same information into three `u64`
//! words (24 bytes, no heap), which is what keeps the quotient round
//! models of `n = 8..9` inside the bench box's memory.
//!
//! Layout (`n ≤ 16` processes, the crate-wide ring bound):
//!
//! | word | bits | content |
//! |------|------|---------|
//! | 0 | `5·i .. 5·i+5`, `i < 12` | process `i` as `pc · 2 + side` |
//! | 1 | `0 .. 20` | processes `12 .. 16`, same 5-bit encoding |
//! | 1 | `20 .. 36` | resource bitmask (`Res_j` taken) |
//! | 1 | `36 .. 52` | obligation bitmask |
//! | 2 | `0 .. 64` | per-process budget nibbles |
//!
//! The round-trip `unpack(pack(s)) == s` is pinned by property tests; it
//! holds because stored states are already side-canonicalized
//! ([`crate::ProcState::new`]) and use only the low `n` bits/nibbles of
//! their masks.

use pa_mdp::StateCodec;

use crate::{Config, LrError, Pc, ProcState, RoundState, Side};

/// Packs one process state into 5 bits (`pc` in the paper's numbering,
/// doubled, plus the side bit).
fn pack_proc(p: ProcState) -> u64 {
    (p.pc as u64) << 1 | u64::from(p.side == Side::Right)
}

/// Decodes [`pack_proc`] (re-canonicalizing dead sides, a no-op on stored
/// states).
fn unpack_proc(bits: u64) -> ProcState {
    let pc = Pc::ALL[(bits >> 1) as usize];
    let side = if bits & 1 == 1 {
        Side::Right
    } else {
        Side::Left
    };
    ProcState::new(pc, side)
}

/// Packs a [`Config`] into the low words of the layout above (words 0 and
/// the low 36 bits of word 1).
fn pack_config(c: &Config) -> (u64, u64) {
    let n = c.n();
    let mut w0 = 0u64;
    let mut w1 = 0u64;
    for i in 0..n {
        let bits = pack_proc(c.proc(i));
        if i < 12 {
            w0 |= bits << (5 * i);
        } else {
            w1 |= bits << (5 * (i - 12));
        }
    }
    for j in 0..n {
        if c.res_taken(j) {
            w1 |= 1 << (20 + j);
        }
    }
    (w0, w1)
}

/// Decodes [`pack_config`] for a ring of `n`.
fn unpack_config(n: usize, w0: u64, w1: u64) -> Config {
    let procs = (0..n)
        .map(|i| {
            let bits = if i < 12 {
                (w0 >> (5 * i)) & 0x1F
            } else {
                (w1 >> (5 * (i - 12))) & 0x1F
            };
            unpack_proc(bits)
        })
        .collect();
    let taken = (0..n).filter(|j| (w1 >> (20 + j)) & 1 == 1);
    Config::from_parts(procs, taken).expect("codec ring size was validated at construction")
}

/// Fixed-width codec for [`RoundState`]: three `u64` words per state.
#[derive(Debug, Clone, Copy)]
pub struct RoundStateCodec {
    n: usize,
}

impl RoundStateCodec {
    /// A codec for rings of `n` processes.
    ///
    /// # Errors
    ///
    /// Returns [`LrError::BadRingSize`] outside the crate's `2..=16`
    /// bound (the bound the bit layout is sized for).
    pub fn new(n: usize) -> Result<RoundStateCodec, LrError> {
        Config::initial(n)?;
        Ok(RoundStateCodec { n })
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl StateCodec for RoundStateCodec {
    type State = RoundState;
    type Word = [u64; 3];

    fn pack(&self, s: &RoundState) -> [u64; 3] {
        debug_assert_eq!(s.config.n(), self.n);
        let (w0, mut w1) = pack_config(&s.config);
        w1 |= u64::from(s.obliged) << 36;
        [w0, w1, s.budget]
    }

    fn unpack(&self, w: &[u64; 3]) -> RoundState {
        RoundState {
            config: unpack_config(self.n, w[0], w[1]),
            obliged: ((w[1] >> 36) & 0xFFFF) as u32,
            budget: w[2],
        }
    }
}

/// Fixed-width codec for plain [`Config`] states (the protocol-level
/// automaton): two `u64` words per state.
#[derive(Debug, Clone, Copy)]
pub struct ConfigCodec {
    n: usize,
}

impl ConfigCodec {
    /// A codec for rings of `n` processes.
    ///
    /// # Errors
    ///
    /// Returns [`LrError::BadRingSize`] outside `2..=16`.
    pub fn new(n: usize) -> Result<ConfigCodec, LrError> {
        Config::initial(n)?;
        Ok(ConfigCodec { n })
    }
}

impl StateCodec for ConfigCodec {
    type State = Config;
    type Word = [u64; 2];

    fn pack(&self, c: &Config) -> [u64; 2] {
        debug_assert_eq!(c.n(), self.n);
        let (w0, w1) = pack_config(c);
        [w0, w1]
    }

    fn unpack(&self, w: &[u64; 2]) -> Config {
        unpack_config(self.n, w[0], w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_bits_round_trip() {
        for pc in Pc::ALL {
            for side in [Side::Left, Side::Right] {
                let p = ProcState::new(pc, side);
                assert_eq!(unpack_proc(pack_proc(p)), p);
            }
        }
    }

    #[test]
    fn config_codec_round_trips_structured_configs() {
        let codec = ConfigCodec::new(5).unwrap();
        let c = Config::initial(5)
            .unwrap()
            .with_proc(0, ProcState::new(Pc::S, Side::Right))
            .with_proc(2, ProcState::new(Pc::C, Side::Left))
            .with_proc(4, ProcState::new(Pc::W, Side::Left))
            .with_res(0, true)
            .with_res(1, true)
            .with_res(3, true);
        assert_eq!(codec.unpack(&codec.pack(&c)), c);
    }

    #[test]
    fn round_codec_round_trips_budgets_and_obligations() {
        let codec = RoundStateCodec::new(4).unwrap();
        let config = Config::initial(4)
            .unwrap()
            .with_proc(1, ProcState::new(Pc::F, Side::Left));
        let s = RoundState {
            config,
            obliged: 0b0010,
            budget: 0x2122,
        };
        assert_eq!(codec.unpack(&codec.pack(&s)), s);
    }

    #[test]
    fn sixteen_process_rings_use_the_high_word_lanes() {
        let codec = ConfigCodec::new(16).unwrap();
        let mut c = Config::initial(16).unwrap();
        for i in 12..16 {
            c = c.with_proc(i, ProcState::new(Pc::D, Side::Right));
        }
        c = c.with_res(15, true);
        assert_eq!(codec.unpack(&codec.pack(&c)), c);
    }

    #[test]
    fn codecs_validate_ring_sizes() {
        assert!(RoundStateCodec::new(1).is_err());
        assert!(ConfigCodec::new(17).is_err());
        assert!(RoundStateCodec::new(16).is_ok());
    }
}
