//! The state-set classifiers of Section 6.2: `T`, `C`, `RT`, `F`, `G`, `P`
//! and the *good process* notion behind `G`.

use crate::{Config, Pc, Side};

/// `T`: some process is in its trying region
/// (`∃i Xᵢ ∈ {F, W, S, D, P}`).
pub fn in_t(c: &Config) -> bool {
    c.procs().iter().any(|p| p.pc.in_trying())
}

/// `C`: some process is in its critical region.
pub fn in_c(c: &Config) -> bool {
    c.procs().iter().any(|p| p.pc == Pc::C)
}

/// `P`: some process is in its pre-critical region.
pub fn in_p(c: &Config) -> bool {
    c.procs().iter().any(|p| p.pc == Pc::P)
}

/// `RT`: some process is trying and *every* process is in
/// `{E_R, R} ∪ T` — no process is critical or holds resources while
/// exiting.
pub fn in_rt(c: &Config) -> bool {
    in_t(c)
        && c.procs()
            .iter()
            .all(|p| matches!(p.pc, Pc::Er | Pc::R) || p.pc.in_trying())
}

/// `F`: a state of `RT` where some process is ready to flip.
pub fn in_f(c: &Config) -> bool {
    in_rt(c) && c.procs().iter().any(|p| p.pc == Pc::F)
}

/// Whether process `i` is *committed*: `Xᵢ ∈ {W, S}`.
pub fn is_committed(c: &Config, i: usize) -> bool {
    matches!(c.proc(i).pc, Pc::W | Pc::S)
}

/// Whether process `i` *potentially controls* its resource on `side`:
/// it is pursuing or holding its first resource there
/// (`Xᵢ ∈ {W, S, D}` pointing that way).
pub fn potentially_controls(c: &Config, i: usize, side: Side) -> bool {
    let p = c.proc(i);
    matches!(p.pc, Pc::W | Pc::S | Pc::D) && p.side == side
}

/// Whether process `i` is a *good process*: committed, with its second
/// resource not potentially controlled by the neighbour on that side.
///
/// Formally (the paper's `G` definition): `Xᵢ ∈ {W←, S←}` and
/// `Xᵢ₊₁ ∈ {E_R, R, F, W→, S→, D→}`, or the symmetric right-pointing case
/// with neighbour `i−1`.
pub fn is_good(c: &Config, i: usize) -> bool {
    let n = c.n();
    let p = c.proc(i);
    if !matches!(p.pc, Pc::W | Pc::S) {
        return false;
    }
    match p.side {
        Side::Left => {
            let r = c.proc((i + 1) % n);
            matches!(r.pc, Pc::Er | Pc::R | Pc::F)
                || (matches!(r.pc, Pc::W | Pc::S | Pc::D) && r.side == Side::Right)
        }
        Side::Right => {
            let l = c.proc((i + n - 1) % n);
            matches!(l.pc, Pc::Er | Pc::R | Pc::F)
                || (matches!(l.pc, Pc::W | Pc::S | Pc::D) && l.side == Side::Left)
        }
    }
}

/// `G`: a state of `RT` containing a good process.
pub fn in_g(c: &Config) -> bool {
    in_rt(c) && (0..c.n()).any(|i| is_good(c, i))
}

/// The good processes of a configuration.
pub fn good_processes(c: &Config) -> Vec<usize> {
    (0..c.n()).filter(|&i| is_good(c, i)).collect()
}

// ---------------------------------------------------------------------------
// Fault-aware region calculus.
//
// Under fault injection the region predicates must distinguish live from
// crashed processes (`crashed` is a bitmask, bit `i` = process `i` is
// down). Two principles govern the variants below:
//
// * *Progress witnesses must be live.* `T`, `C`, `F`, `P` assert that some
//   process is about to make (or has made) progress; a crashed process in
//   that program counter will never move again, so it cannot witness the
//   region. This is what makes survival maps honest: an arrow into `C`
//   must be satisfied by a live process entering its critical section.
// * *Obstacles need not be live.* A crashed philosopher still *holds* the
//   forks it held (crash-stop does not release resources), so a crashed
//   `S`/`D` neighbour keeps potentially controlling a resource forever —
//   it blocks `first(flipᵢ, …)` progress exactly like a live one, only
//   without ever releasing. A crashed `W`, by contrast, will never grab:
//   it stops being a threat the moment it crashes.

/// Whether process `i` is live under the crash mask.
#[inline]
pub fn is_live(crashed: u32, i: usize) -> bool {
    crashed & (1u32 << i) == 0
}

/// Fault-aware `T`: some *live* process is trying.
pub fn in_t_under(c: &Config, crashed: u32) -> bool {
    c.procs()
        .iter()
        .enumerate()
        .any(|(i, p)| is_live(crashed, i) && p.pc.in_trying())
}

/// Fault-aware `C`: some *live* process is critical.
pub fn in_c_under(c: &Config, crashed: u32) -> bool {
    c.procs()
        .iter()
        .enumerate()
        .any(|(i, p)| is_live(crashed, i) && p.pc == Pc::C)
}

/// Fault-aware `P`: some *live* process is pre-critical.
pub fn in_p_under(c: &Config, crashed: u32) -> bool {
    c.procs()
        .iter()
        .enumerate()
        .any(|(i, p)| is_live(crashed, i) && p.pc == Pc::P)
}

/// Fault-aware `RT`: a live process is trying, and *every* process — live
/// or crashed — is in `{E_R, R} ∪ T`. A crashed critical process still
/// holds both forks, so it keeps its neighbours blocked; that is exactly
/// the situation `RT` is meant to exclude.
pub fn in_rt_under(c: &Config, crashed: u32) -> bool {
    in_t_under(c, crashed)
        && c.procs()
            .iter()
            .all(|p| matches!(p.pc, Pc::Er | Pc::R) || p.pc.in_trying())
}

/// Fault-aware `F`: a state of fault-aware `RT` where some *live* process
/// is ready to flip.
pub fn in_f_under(c: &Config, crashed: u32) -> bool {
    in_rt_under(c, crashed)
        && c.procs()
            .iter()
            .enumerate()
            .any(|(i, p)| is_live(crashed, i) && p.pc == Pc::F)
}

/// Fault-aware potential control: a live process potentially controls its
/// `side` resource as usual (`{W, S, D}` pointing that way); a *crashed*
/// process only blocks what it actually holds (`{S, D}` pointing that way
/// — a crashed `W` never grabs the fork, a crashed holder never releases
/// it).
pub fn potentially_controls_under(c: &Config, i: usize, side: Side, crashed: u32) -> bool {
    let p = c.proc(i);
    if p.side != side {
        return false;
    }
    if is_live(crashed, i) {
        matches!(p.pc, Pc::W | Pc::S | Pc::D)
    } else {
        matches!(p.pc, Pc::S | Pc::D)
    }
}

/// Fault-aware good process: `i` must be live and committed, and its
/// second resource must not be potentially controlled (fault-aware) by the
/// neighbour on that side. A crashed neighbour that merely *waits* no
/// longer contends, so crashes can create good processes; a crashed
/// neighbour that *holds* blocks forever, so crashes can also destroy
/// them permanently.
pub fn is_good_under(c: &Config, i: usize, crashed: u32) -> bool {
    let n = c.n();
    let p = c.proc(i);
    if !is_live(crashed, i) || !matches!(p.pc, Pc::W | Pc::S) {
        return false;
    }
    // The neighbour on the second-resource side is benign if it is in the
    // paper's benign set, or if it is a crashed waiter (it will never grab
    // the fork it was waiting for).
    let benign = |j: usize, away: Side| {
        let r = c.proc(j);
        matches!(r.pc, Pc::Er | Pc::R | Pc::F)
            || (matches!(r.pc, Pc::W | Pc::S | Pc::D) && r.side == away)
            || (!is_live(crashed, j) && r.pc == Pc::W)
    };
    match p.side {
        Side::Left => benign((i + 1) % n, Side::Right),
        Side::Right => benign((i + n - 1) % n, Side::Left),
    }
}

/// Fault-aware `G`: a state of fault-aware `RT` containing a fault-aware
/// good process.
pub fn in_g_under(c: &Config, crashed: u32) -> bool {
    in_rt_under(c, crashed) && (0..c.n()).any(|i| is_good_under(c, i, crashed))
}

/// The fault-aware good processes of a configuration.
pub fn good_processes_under(c: &Config, crashed: u32) -> Vec<usize> {
    (0..c.n())
        .filter(|&i| is_good_under(c, i, crashed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcState;

    fn cfg(pcs: &[(Pc, Side)]) -> Config {
        Config::from_parts(
            pcs.iter().map(|&(pc, s)| ProcState::new(pc, s)).collect(),
            [],
        )
        .unwrap()
    }

    const L: Side = Side::Left;
    const R: Side = Side::Right;

    #[test]
    fn initial_state_is_in_no_region() {
        let c = Config::initial(3).unwrap();
        assert!(!in_t(&c));
        assert!(!in_c(&c));
        assert!(!in_rt(&c));
        assert!(!in_f(&c));
        assert!(!in_g(&c));
        assert!(!in_p(&c));
    }

    #[test]
    fn t_requires_a_trying_process() {
        let c = cfg(&[(Pc::F, L), (Pc::R, L), (Pc::R, L)]);
        assert!(in_t(&c));
        assert!(in_rt(&c));
        assert!(in_f(&c));
    }

    #[test]
    fn rt_excludes_critical_and_resource_holding_exits() {
        let critical = cfg(&[(Pc::W, L), (Pc::C, L), (Pc::R, L)]);
        assert!(in_t(&critical));
        assert!(!in_rt(&critical));
        let exiting = cfg(&[(Pc::W, L), (Pc::Ef, L), (Pc::R, L)]);
        assert!(!in_rt(&exiting));
        let exit_done = cfg(&[(Pc::W, L), (Pc::Er, L), (Pc::R, L)]);
        assert!(in_rt(&exit_done));
    }

    #[test]
    fn p_region_ignores_other_processes() {
        let c = cfg(&[(Pc::P, L), (Pc::C, L), (Pc::R, L)]);
        assert!(in_p(&c));
        assert!(in_c(&c));
    }

    #[test]
    fn committed_and_potential_control() {
        let c = cfg(&[(Pc::W, R), (Pc::S, L), (Pc::D, R)]);
        assert!(is_committed(&c, 0));
        assert!(is_committed(&c, 1));
        assert!(!is_committed(&c, 2), "D is not committed");
        assert!(potentially_controls(&c, 0, R));
        assert!(!potentially_controls(&c, 0, L));
        assert!(potentially_controls(&c, 2, R));
    }

    #[test]
    fn good_process_left_pointing_with_benign_right_neighbour() {
        // X₀ = W←, X₁ = F: process 0 is good (its second resource Res_0 is
        // not potentially controlled by process 1).
        let c = cfg(&[(Pc::W, L), (Pc::F, L), (Pc::R, L)]);
        assert!(is_good(&c, 0));
        assert!(in_g(&c));
        assert_eq!(good_processes(&c), vec![0]);
    }

    #[test]
    fn good_process_fails_when_neighbour_contends() {
        // X₀ = W←, X₁ = W←: process 1 potentially controls Res_0 (its own
        // left resource = process 0's right... careful: process 0 points
        // left, so its second resource is its *right* one, Res_0, which
        // process 1 potentially controls when pointing left).
        let c = cfg(&[(Pc::W, L), (Pc::W, L), (Pc::R, L)]);
        assert!(!is_good(&c, 0));
        // Process 1 points left; its second resource is Res_1; process 2 is
        // in R, so process 1 IS good.
        assert!(is_good(&c, 1));
        assert!(in_g(&c));
    }

    #[test]
    fn good_process_right_pointing_symmetric_case() {
        // X₁ = S→, X₀ = D←: neighbour to the left points away — good.
        let c = cfg(&[(Pc::D, L), (Pc::S, R), (Pc::R, L)]);
        assert!(is_good(&c, 1));
        // Flip neighbour to point right: now it contends for Res_0 which is
        // process 1's second resource — not good.
        let c2 = cfg(&[(Pc::D, R), (Pc::S, R), (Pc::R, L)]);
        assert!(!is_good(&c2, 1));
        assert!(!in_g(&c2));
    }

    #[test]
    fn g_requires_rt() {
        // A good-shaped pair next to a critical process is not in G.
        let c = cfg(&[(Pc::W, L), (Pc::F, L), (Pc::C, L)]);
        assert!(is_good(&c, 0));
        assert!(!in_g(&c));
    }

    #[test]
    fn zero_crash_mask_reduces_to_the_plain_calculus() {
        // Enumerate a structured family of configurations; with an empty
        // crash mask every `_under` predicate must agree with its plain
        // counterpart bit for bit.
        let pcs = [Pc::F, Pc::W, Pc::S, Pc::D, Pc::P, Pc::C, Pc::Er, Pc::R];
        for &a in &pcs {
            for &b in &pcs {
                for &c3 in &pcs {
                    for side in [L, R] {
                        let c = cfg(&[(a, side), (b, L), (c3, R)]);
                        assert_eq!(in_t(&c), in_t_under(&c, 0));
                        assert_eq!(in_c(&c), in_c_under(&c, 0));
                        assert_eq!(in_p(&c), in_p_under(&c, 0));
                        assert_eq!(in_rt(&c), in_rt_under(&c, 0));
                        assert_eq!(in_f(&c), in_f_under(&c, 0));
                        assert_eq!(in_g(&c), in_g_under(&c, 0), "{c:?}");
                        for i in 0..3 {
                            assert_eq!(is_good(&c, i), is_good_under(&c, i, 0));
                            for s in [L, R] {
                                assert_eq!(
                                    potentially_controls(&c, i, s),
                                    potentially_controls_under(&c, i, s, 0)
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn crashed_processes_cannot_witness_progress_regions() {
        // Only process 0 is trying; crash it and T empties.
        let c = cfg(&[(Pc::F, L), (Pc::R, L), (Pc::R, L)]);
        assert!(in_t_under(&c, 0));
        assert!(!in_t_under(&c, 0b001));
        assert!(!in_f_under(&c, 0b001));
        // Only process 1 is critical; crash it and C empties.
        let c = cfg(&[(Pc::W, L), (Pc::C, L), (Pc::R, L)]);
        assert!(in_c_under(&c, 0));
        assert!(!in_c_under(&c, 0b010));
    }

    #[test]
    fn crashed_waiter_stops_contending_but_crashed_holder_blocks_forever() {
        // X₀ = W←, X₁ = W←: process 1 contends for Res_0 → 0 not good.
        let c = cfg(&[(Pc::W, L), (Pc::W, L), (Pc::R, L)]);
        assert!(!is_good_under(&c, 0, 0));
        // Crash the waiting neighbour: it will never grab Res_0 → 0 good.
        assert!(is_good_under(&c, 0, 0b010));
        // But a crashed *holder* (S←) keeps the fork forever → 0 not good.
        let c = cfg(&[(Pc::W, L), (Pc::S, L), (Pc::R, L)]);
        assert!(!is_good_under(&c, 0, 0b010));
        assert!(!potentially_controls_under(&c, 0, L, 0b001), "crashed W");
        assert!(potentially_controls_under(&c, 1, L, 0b010), "crashed S");
    }

    #[test]
    fn crashing_the_only_good_process_destroys_g() {
        let c = cfg(&[(Pc::W, L), (Pc::F, L), (Pc::R, L)]);
        assert!(in_g_under(&c, 0));
        assert_eq!(good_processes_under(&c, 0), vec![0]);
        assert!(!is_good_under(&c, 0, 0b001), "good process must be live");
        assert!(!in_g_under(&c, 0b011), "no live good process remains");
    }

    #[test]
    fn all_waiting_same_direction_has_no_good_process() {
        // The fully symmetric contention pattern: everyone W←. Every
        // process's second resource is potentially controlled by its right
        // neighbour (also pointing left)? No: pointing left means
        // controlling one's LEFT resource. Process i's second resource is
        // its right one, Res_i, potentially controlled by process i+1 iff
        // i+1 points left — which it does. So nobody is good.
        let c = cfg(&[(Pc::W, L), (Pc::W, L), (Pc::W, L)]);
        assert!(!in_g(&c));
        assert!(good_processes(&c).is_empty());
    }
}
