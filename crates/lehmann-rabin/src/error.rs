use std::error::Error;
use std::fmt;

use pa_core::CoreError;
use pa_mdp::MdpError;

/// Error type for the Lehmann–Rabin case study.
#[derive(Debug, Clone, PartialEq)]
pub enum LrError {
    /// The ring size is unsupported (must be between 2 and 16).
    BadRingSize {
        /// The requested size.
        n: usize,
    },
    /// An arrow referred to a region atom the resolver does not know.
    UnknownRegion(String),
    /// A burst cap of zero was requested (every ready process must be able
    /// to take at least one step per round).
    ZeroBurst,
    /// An underlying model-checking error.
    Mdp(MdpError),
    /// An underlying framework error.
    Core(CoreError),
    /// The concurrent implementation failed (a worker thread panicked or a
    /// channel closed unexpectedly).
    Concurrency(String),
}

impl fmt::Display for LrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LrError::BadRingSize { n } => {
                write!(f, "ring size {n} unsupported (need 2 ≤ n ≤ 16)")
            }
            LrError::UnknownRegion(name) => write!(f, "unknown region atom {name}"),
            LrError::ZeroBurst => write!(f, "burst cap must be at least 1"),
            LrError::Mdp(e) => write!(f, "{e}"),
            LrError::Core(e) => write!(f, "{e}"),
            LrError::Concurrency(msg) => write!(f, "concurrent run failed: {msg}"),
        }
    }
}

impl Error for LrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LrError::Mdp(e) => Some(e),
            LrError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MdpError> for LrError {
    fn from(e: MdpError) -> LrError {
        LrError::Mdp(e)
    }
}

impl From<CoreError> for LrError {
    fn from(e: CoreError) -> LrError {
        LrError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = [
            LrError::BadRingSize { n: 1 },
            LrError::UnknownRegion("X".into()),
            LrError::ZeroBurst,
            LrError::Mdp(MdpError::NoInitialStates),
            LrError::Core(CoreError::FragmentMismatch),
            LrError::Concurrency("oops".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        assert!(LrError::Mdp(MdpError::NoInitialStates).source().is_some());
        assert!(LrError::ZeroBurst.source().is_none());
    }
}
