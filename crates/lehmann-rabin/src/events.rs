//! Timestamped event logging for the concurrent implementation.
//!
//! Philosopher threads emit [`TimedEvent`]s through a `crossbeam` channel;
//! [`TrialLog`] collects and orders them, and offers the consistency
//! checks the tests use to validate the threaded implementation against
//! Figure 1's semantics (every critical entry is preceded by acquiring
//! both resources; every failed second check is followed by a re-flip;
//! at most one thread holds a given resource at any instant).

use std::time::Duration;

use crate::Side;

/// What a philosopher thread did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Line 1: chose a side.
    Flip(Side),
    /// Line 2 completed: acquired the first resource (by global index).
    FirstAcquired(usize),
    /// Line 3 succeeded: acquired the second resource and entered the
    /// critical region.
    CritEntered(usize),
    /// Line 3 failed: the second resource (by global index) was taken;
    /// the first was released (line 4).
    SecondFailed(usize),
    /// The thread observed the trial end and exited.
    Exited,
}

/// One logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Time since the trial start.
    pub at: Duration,
    /// The philosopher (ring index) that performed the event.
    pub thread: usize,
    /// What happened.
    pub kind: EventKind,
}

/// The ordered event log of one concurrent trial.
#[derive(Debug, Clone, Default)]
pub struct TrialLog {
    events: Vec<TimedEvent>,
}

impl TrialLog {
    /// Builds a log from unordered events (sorted by timestamp; ties keep
    /// the channel arrival order, which respects per-thread order).
    pub fn new(mut events: Vec<TimedEvent>) -> TrialLog {
        events.sort_by_key(|e| e.at);
        TrialLog { events }
    }

    /// The events in time order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one thread, in order.
    pub fn of_thread(&self, thread: usize) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter().filter(move |e| e.thread == thread)
    }

    /// Count of events matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&TimedEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// The first critical entry, if any.
    pub fn first_crit(&self) -> Option<&TimedEvent> {
        self.events
            .iter()
            .find(|e| matches!(e.kind, EventKind::CritEntered(_)))
    }

    /// Figure 1 consistency: on each thread, events follow the protocol
    /// order — `Flip` then `FirstAcquired` then (`CritEntered` |
    /// `SecondFailed`), with `SecondFailed` looping back to `Flip`.
    /// Returns the offending event on violation.
    pub fn check_thread_order(&self, n: usize) -> Result<(), TimedEvent> {
        #[derive(Clone, Copy, PartialEq)]
        enum Phase {
            NeedFlip,
            NeedFirst,
            NeedSecond,
            Done,
        }
        let mut phase = vec![Phase::NeedFlip; n];
        for e in &self.events {
            let p = &mut phase[e.thread];
            let ok = match e.kind {
                EventKind::Flip(_) => {
                    if *p == Phase::NeedFlip {
                        *p = Phase::NeedFirst;
                        true
                    } else {
                        false
                    }
                }
                EventKind::FirstAcquired(_) => {
                    if *p == Phase::NeedFirst {
                        *p = Phase::NeedSecond;
                        true
                    } else {
                        false
                    }
                }
                EventKind::CritEntered(_) => {
                    if *p == Phase::NeedSecond {
                        *p = Phase::Done;
                        true
                    } else {
                        false
                    }
                }
                EventKind::SecondFailed(_) => {
                    if *p == Phase::NeedSecond {
                        *p = Phase::NeedFlip;
                        true
                    } else {
                        false
                    }
                }
                // A thread may exit from any phase when the trial ends.
                EventKind::Exited => true,
            };
            if !ok {
                return Err(*e);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, thread: usize, kind: EventKind) -> TimedEvent {
        TimedEvent {
            at: Duration::from_millis(ms),
            thread,
            kind,
        }
    }

    #[test]
    fn log_orders_by_time() {
        let log = TrialLog::new(vec![
            ev(5, 0, EventKind::FirstAcquired(0)),
            ev(1, 0, EventKind::Flip(Side::Right)),
        ]);
        assert_eq!(log.len(), 2);
        assert!(matches!(log.events()[0].kind, EventKind::Flip(_)));
    }

    #[test]
    fn protocol_order_accepts_valid_run() {
        let log = TrialLog::new(vec![
            ev(1, 0, EventKind::Flip(Side::Right)),
            ev(2, 0, EventKind::FirstAcquired(0)),
            ev(3, 0, EventKind::SecondFailed(2)),
            ev(4, 0, EventKind::Flip(Side::Left)),
            ev(5, 0, EventKind::FirstAcquired(2)),
            ev(6, 0, EventKind::CritEntered(0)),
            ev(7, 1, EventKind::Exited),
        ]);
        assert!(log.check_thread_order(2).is_ok());
        assert_eq!(log.first_crit().unwrap().thread, 0);
    }

    #[test]
    fn protocol_order_rejects_crit_without_first() {
        let log = TrialLog::new(vec![
            ev(1, 0, EventKind::Flip(Side::Right)),
            ev(2, 0, EventKind::CritEntered(0)),
        ]);
        let bad = log.check_thread_order(1).unwrap_err();
        assert!(matches!(bad.kind, EventKind::CritEntered(_)));
    }

    #[test]
    fn of_thread_filters() {
        let log = TrialLog::new(vec![
            ev(1, 0, EventKind::Flip(Side::Right)),
            ev(2, 1, EventKind::Flip(Side::Left)),
        ]);
        assert_eq!(log.of_thread(0).count(), 1);
        assert_eq!(log.count(|e| matches!(e.kind, EventKind::Flip(_))), 2);
    }
}
