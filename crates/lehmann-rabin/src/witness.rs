//! Worst-case witness extraction: turn the optimal adverse policy computed
//! by backward induction into a concrete, human-readable schedule.
//!
//! The exact checker proves statements of the form "no adversary can push
//! the probability below `p`"; this module answers the follow-up question
//! *what does the worst adversary actually do?* by replaying the extracted
//! cost-indexed policy from the worst start state, resolving each coin
//! flip to its most adverse outcome (the successor minimizing the
//! remaining reachability value). The result is the unluckiest execution
//! under the most hostile schedule — e.g. the all-`W←` lockstep pattern
//! that forces repeated flip retries in the composed `T —13→ C` claim.

use pa_core::Arrow;
use pa_mdp::{Explore, Objective};

use crate::{
    reachable_configs, round_cost, set_pred, time_to_budget, Config, LrError, RoundAction, RoundMdp,
};

/// One step of a worst-case witness trace.
#[derive(Debug, Clone)]
pub struct WitnessStep {
    /// The action the worst-case adversary schedules.
    pub action: RoundAction,
    /// The configuration after the step (most adverse coin outcome).
    pub config: Config,
    /// Whole time units elapsed after the step.
    pub time: u32,
}

/// A worst-case witness for an arrow claim.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The start configuration minimizing the reachability value.
    pub start: Config,
    /// The exact minimal probability from that start.
    pub min_prob: f64,
    /// The replayed schedule (most adverse outcomes).
    pub steps: Vec<WitnessStep>,
    /// Whether the unluckiest path still reached the target in time.
    pub reached: bool,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "worst start {} (min P = {:.6}); unluckiest schedule:",
            self.start, self.min_prob
        )?;
        for s in &self.steps {
            writeln!(f, "  t≤{:<2} {:?} → {}", s.time + 1, s.action, s.config)?;
        }
        write!(
            f,
            "  outcome: target {} on this path",
            if self.reached { "reached" } else { "missed" }
        )
    }
}

/// Extracts the worst-case adversary for `arrow` on the round model and
/// replays it from the worst start configuration, resolving every random
/// outcome adversely. The trace is truncated at the arrow's time bound.
///
/// # Errors
///
/// Returns region-resolution and exploration errors.
pub fn worst_case_witness(mdp: &RoundMdp, arrow: &Arrow, limit: usize) -> Result<Witness, LrError> {
    let from = set_pred(arrow.from())?;
    let to = set_pred(arrow.to())?;
    let n = mdp.config().n;
    let starts: Vec<Config> = reachable_configs(n, limit)?
        .into_iter()
        .filter(|c| from(c))
        .collect();
    let to_for_absorb = set_pred(arrow.to())?;
    let model = mdp
        .clone()
        .with_starts(starts)
        .with_absorb(move |c| to_for_absorb(c));
    let explored = Explore::new(&model)
        .cost(round_cost)
        .limit(limit)
        .parallel()
        .run()?;
    let target = explored.target_where(|rs| to(&rs.config));
    let budget = time_to_budget(arrow.time());
    let analysis = explored
        .query()
        .objective(Objective::MinProb)
        .target(target.clone())
        .horizon(budget)
        .with_policy()
        .run()?;
    let values = analysis.values;
    let policy = analysis
        .policy
        .expect("with_policy() query returns a policy");

    let &worst_start = explored
        .mdp
        .initial_states()
        .iter()
        .min_by(|&&a, &&b| values[a].total_cmp(&values[b]))
        .expect("nonempty start set");

    let mut steps = Vec::new();
    let mut state = worst_start;
    let mut remaining = budget;
    let mut reached = target[worst_start];
    // Bound the walk defensively: at most (n·burst + 1) micro-steps per
    // round.
    let max_steps = (budget as usize + 1) * (n * usize::from(mdp.config().burst) + 1) + 8;
    for _ in 0..max_steps {
        if target[state] {
            reached = true;
            break;
        }
        let Some(choice_idx) = policy.choice(state, remaining) else {
            break;
        };
        let choice = &explored.mdp.choices(state)[choice_idx as usize];
        if choice.cost > remaining {
            break;
        }
        remaining -= choice.cost;
        // Most adverse outcome: the successor with the smallest value at
        // the post-step budget level.
        let next = choice
            .transitions
            .iter()
            .filter(|&&(_, p)| p > 0.0)
            .min_by(|a, b| values[a.0].total_cmp(&values[b.0]))
            .expect("valid distribution")
            .0;
        // Recover the action by matching the choice index against the
        // implicit model's step order (preserved by exploration).
        let action = {
            use pa_core::Automaton;
            model.steps(&explored.state(state))[choice_idx as usize].action
        };
        state = next;
        steps.push(WitnessStep {
            action,
            config: explored.state(state).config,
            time: budget - remaining,
        });
    }

    Ok(Witness {
        start: explored.state(worst_start).config,
        min_prob: values[worst_start],
        steps,
        reached,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper, regions, RoundConfig};

    #[test]
    fn witness_for_g_to_p_starts_in_g_and_halves() {
        let mdp = RoundMdp::new(RoundConfig::new(3).unwrap());
        let w = worst_case_witness(&mdp, &paper::arrow_g_to_p(), 10_000_000).unwrap();
        assert!(regions::in_g(&w.start), "start {} not in G", w.start);
        assert!((w.min_prob - 0.5).abs() < 1e-9);
        assert!(!w.steps.is_empty());
    }

    #[test]
    fn witness_for_deterministic_arrow_reaches_target() {
        let mdp = RoundMdp::new(RoundConfig::new(3).unwrap());
        let w = worst_case_witness(&mdp, &paper::arrow_p_to_c(), 10_000_000).unwrap();
        assert!((w.min_prob - 1.0).abs() < 1e-9);
        assert!(w.reached, "even the unluckiest path must reach C:\n{w}");
        assert!(regions::in_c(&w.steps.last().unwrap().config));
    }

    #[test]
    fn witness_times_respect_the_bound() {
        let mdp = RoundMdp::new(RoundConfig::new(3).unwrap());
        let arrow = paper::arrow_t_to_c();
        let w = worst_case_witness(&mdp, &arrow, 10_000_000).unwrap();
        for s in &w.steps {
            assert!(f64::from(s.time) < arrow.time());
        }
        // The composed claim's worst n=3 start is the symmetric all-W←
        // (or its mirror) lockstep configuration.
        let all_w = w.start.procs().iter().all(|p| p.pc == crate::Pc::W);
        assert!(all_w, "worst start {}", w.start);
    }
}
