//! Mechanical verification of the appendix lemmas (A.4–A.10).
//!
//! Each appendix lemma has the shape: *assume a local state pattern around
//! an anchor process `i`; condition on the outcomes of specific processes'
//! first coin flips (the `first(flip_j, side)` events of Section 4); then
//! within time `t` a local goal holds (with certainty).*
//!
//! Conditioning on `first(flip_j, side)` is implemented by *forcing*: the
//! first `flip_j` scheduled in the model deterministically yields `side`.
//! Executions where `flip_j` never occurs belong to the event by
//! definition, and on the others forcing reproduces exactly the
//! conditional behaviour, so "the lemma holds" becomes "minimal
//! probability 1 of reaching the goal within `t` in the forced model" —
//! checkable by the same backward induction as the arrows.
//!
//! Also here: [`progress_time_lower_bound`], the paper's first suggested
//! future-work item (Section 7) — the largest time for which some
//! adversary can still surely prevent progress.

use pa_core::{Automaton, Step};
use pa_mdp::{cost_bounded_reach_levels, Explore, Objective};
use pa_prob::FiniteDist;

use crate::{
    reachable_configs, round_cost, set_pred, time_to_budget, Config, LrAction, LrError, Pc,
    RoundAction, RoundMdp, RoundState, Side,
};

/// A conditioned round model: the first `flip_j` of each listed process is
/// forced to the given side (the sub-model induced by the event
/// `∩_j first(flip_j, side_j)`).
#[derive(Debug, Clone)]
pub struct ForcedRoundMdp {
    inner: RoundMdp,
    forced: Vec<(usize, Side)>,
}

/// State of the forced model: the round state plus the set of forcings not
/// yet consumed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ForcedState {
    /// The underlying round state.
    pub round: RoundState,
    /// Bitmask of processes whose first flip is still forced.
    pub pending: u32,
}

impl ForcedRoundMdp {
    /// Wraps a round model with first-flip forcings.
    pub fn new(inner: RoundMdp, forced: Vec<(usize, Side)>) -> ForcedRoundMdp {
        ForcedRoundMdp { inner, forced }
    }

    fn initial_pending(&self) -> u32 {
        self.forced.iter().fold(0, |m, (i, _)| m | (1 << i))
    }

    fn forced_side(&self, process: usize) -> Side {
        self.forced
            .iter()
            .find(|(i, _)| *i == process)
            .map(|(_, s)| *s)
            .expect("pending bit implies a forcing entry")
    }
}

impl Automaton for ForcedRoundMdp {
    type State = ForcedState;
    type Action = RoundAction;

    fn start_states(&self) -> Vec<ForcedState> {
        let pending = self.initial_pending();
        self.inner
            .start_states()
            .into_iter()
            .map(|round| ForcedState { round, pending })
            .collect()
    }

    fn steps(&self, state: &ForcedState) -> Vec<Step<ForcedState, RoundAction>> {
        self.inner
            .steps(&state.round)
            .into_iter()
            .map(|step| {
                let is_forced_flip = matches!(
                    step.action,
                    RoundAction::Schedule(LrAction::Flip(p))
                        if state.pending & (1 << p) != 0
                );
                match step.action {
                    RoundAction::Schedule(LrAction::Flip(p)) if is_forced_flip => {
                        let side = self.forced_side(p as usize);
                        let outcome = step
                            .target
                            .support()
                            .find(|rs| rs.config.proc(p as usize).side == side)
                            .expect("flip offers both sides")
                            .clone();
                        Step::deterministic(
                            step.action,
                            ForcedState {
                                round: outcome,
                                pending: state.pending & !(1 << p),
                            },
                        )
                    }
                    _ => Step {
                        action: step.action,
                        target: step.target.map(|rs| ForcedState {
                            round: rs.clone(),
                            pending: state.pending,
                        }),
                    },
                }
            })
            .collect()
    }

    fn is_external(&self, action: &RoundAction) -> bool {
        self.inner.is_external(action)
    }
}

/// Local-state shorthand used by the lemma hypotheses: the paper's
/// `{E_R, R, F}` etc.
fn in_err_r_f(c: &Config, j: usize) -> bool {
    matches!(c.proc(j).pc, Pc::Er | Pc::R | Pc::F)
}

fn in_err_r_t(c: &Config, j: usize) -> bool {
    matches!(c.proc(j).pc, Pc::Er | Pc::R) || c.proc(j).pc.in_trying()
}

fn is(c: &Config, j: usize, pc: Pc, side: Option<Side>) -> bool {
    c.proc(j).matches(pc, side)
}

/// Whether process `j` is in `{E_R, R, F, #→}` (benign right-pointing
/// neighbour set of the `G` definition).
#[allow(dead_code)]
fn benign_right(c: &Config, j: usize) -> bool {
    in_err_r_f(c, j)
        || (matches!(c.proc(j).pc, Pc::W | Pc::S | Pc::D) && c.proc(j).side == Side::Right)
}

type HypFn = fn(&Config, usize) -> bool;
type ForcedFn = fn(usize, usize) -> Vec<(usize, Side)>;
type GoalFn = fn(&Config, usize) -> bool;

/// One appendix lemma as checkable data. The anchor index `i` ranges over
/// all ring positions; indices in hypothesis/goal are relative to it.
pub struct LemmaSpec {
    /// Paper name, e.g. "A.4(1)".
    pub name: &'static str,
    /// Time bound `t` of the lemma.
    pub time: f64,
    /// Hypothesis pattern at anchor `i`.
    pub hypothesis: HypFn,
    /// First-flip forcings as `(process, side)`, given `(i, n)`.
    pub forced: ForcedFn,
    /// Goal predicate at anchor `i` (must hold with certainty in time).
    pub goal: GoalFn,
}

impl std::fmt::Debug for LemmaSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LemmaSpec({}, t={})", self.name, self.time)
    }
}

fn prev(i: usize, n: usize) -> usize {
    (i + n - 1) % n
}

fn next(i: usize, n: usize) -> usize {
    (i + 1) % n
}

/// Goal of the A.4/A.5 family: `X_{i-1} = P` or `X_i = S`.
fn goal_a4(c: &Config, i: usize) -> bool {
    is(c, prev(i, c.n()), Pc::P, None) || is(c, i, Pc::S, None)
}

/// Goal of the A.7/A.8 family: `i` or `i+1` is in `P`.
fn goal_pair_p(c: &Config, i: usize) -> bool {
    is(c, i, Pc::P, None) || is(c, next(i, c.n()), Pc::P, None)
}

/// Goal of A.9: one of `i-1`, `i`, `i+1` is in `P`.
fn goal_triple_p(c: &Config, i: usize) -> bool {
    let n = c.n();
    is(c, prev(i, n), Pc::P, None) || is(c, i, Pc::P, None) || is(c, next(i, n), Pc::P, None)
}

/// Goal of A.10: one of `i`, `i+1`, `i+2` is in `P`.
fn goal_triple_p_fwd(c: &Config, i: usize) -> bool {
    let n = c.n();
    is(c, i, Pc::P, None) || is(c, next(i, n), Pc::P, None) || is(c, (i + 2) % n, Pc::P, None)
}

/// The checkable appendix lemmas. The symmetric mirror cases of A.7/A.8
/// are included explicitly where the paper states them.
pub fn appendix_lemmas() -> Vec<LemmaSpec> {
    vec![
        LemmaSpec {
            name: "A.4(1)",
            time: 1.0,
            hypothesis: |c, i| in_err_r_f(c, prev(i, c.n())) && is(c, i, Pc::W, Some(Side::Left)),
            forced: |i, n| vec![(prev(i, n), Side::Left)],
            goal: goal_a4,
        },
        LemmaSpec {
            name: "A.4(2)",
            time: 2.0,
            hypothesis: |c, i| {
                is(c, prev(i, c.n()), Pc::D, None) && is(c, i, Pc::W, Some(Side::Left))
            },
            forced: |i, n| vec![(prev(i, n), Side::Left)],
            goal: goal_a4,
        },
        LemmaSpec {
            name: "A.4(3)",
            time: 3.0,
            hypothesis: |c, i| {
                is(c, prev(i, c.n()), Pc::S, None) && is(c, i, Pc::W, Some(Side::Left))
            },
            forced: |i, n| vec![(prev(i, n), Side::Left)],
            goal: goal_a4,
        },
        LemmaSpec {
            name: "A.4(4)",
            time: 4.0,
            hypothesis: |c, i| {
                is(c, prev(i, c.n()), Pc::W, None) && is(c, i, Pc::W, Some(Side::Left))
            },
            forced: |i, n| vec![(prev(i, n), Side::Left)],
            goal: goal_a4,
        },
        LemmaSpec {
            name: "A.5",
            time: 4.0,
            hypothesis: |c, i| in_err_r_t(c, prev(i, c.n())) && is(c, i, Pc::W, Some(Side::Left)),
            forced: |i, n| vec![(prev(i, n), Side::Left)],
            goal: goal_a4,
        },
        LemmaSpec {
            name: "A.7a",
            time: 1.0,
            hypothesis: |c, i| {
                let n = c.n();
                is(c, i, Pc::S, Some(Side::Left))
                    && matches!(c.proc(next(i, n)).pc, Pc::W | Pc::S)
                    && c.proc(next(i, n)).side == Side::Right
            },
            forced: |_, _| vec![],
            goal: goal_pair_p,
        },
        LemmaSpec {
            name: "A.7b",
            time: 1.0,
            hypothesis: |c, i| {
                let n = c.n();
                matches!(c.proc(i).pc, Pc::W | Pc::S)
                    && c.proc(i).side == Side::Left
                    && is(c, next(i, n), Pc::S, Some(Side::Right))
            },
            forced: |_, _| vec![],
            goal: goal_pair_p,
        },
        LemmaSpec {
            name: "A.8a",
            time: 1.0,
            hypothesis: |c, i| {
                let n = c.n();
                let r = next(i, n);
                is(c, i, Pc::S, Some(Side::Left))
                    && (in_err_r_f(c, r) || is(c, r, Pc::D, Some(Side::Right)))
            },
            forced: |i, n| vec![(next(i, n), Side::Right)],
            goal: goal_pair_p,
        },
        LemmaSpec {
            // The paper writes the mirror hypothesis as `X_i ∈ {E_R,R,F,D}`;
            // by the symmetry with A.8a (and with Lemma A.6, which it
            // instantiates) the `D` must point left — a right-pointing `D`
            // holds the contested resource `Res_i` itself, and the checker
            // indeed refutes that reading (min P = 0).
            name: "A.8b",
            time: 1.0,
            hypothesis: |c, i| {
                let n = c.n();
                (in_err_r_f(c, i) || is(c, i, Pc::D, Some(Side::Left)))
                    && is(c, next(i, n), Pc::S, Some(Side::Right))
            },
            forced: |i, _| vec![(i, Side::Left)],
            goal: goal_pair_p,
        },
        LemmaSpec {
            name: "A.9",
            time: 5.0,
            hypothesis: |c, i| {
                let n = c.n();
                let l = prev(i, n);
                let r = next(i, n);
                in_err_r_t(c, l)
                    && is(c, i, Pc::W, Some(Side::Left))
                    && (in_err_r_f(c, r)
                        || is(c, r, Pc::W, Some(Side::Right))
                        || is(c, r, Pc::D, Some(Side::Right)))
            },
            forced: |i, n| vec![(prev(i, n), Side::Left), (next(i, n), Side::Right)],
            goal: goal_triple_p,
        },
        LemmaSpec {
            name: "A.10",
            time: 5.0,
            hypothesis: |c, i| {
                let n = c.n();
                let r = next(i, n);
                let rr = (i + 2) % n;
                (in_err_r_f(c, i)
                    || is(c, i, Pc::W, Some(Side::Left))
                    || is(c, i, Pc::D, Some(Side::Left)))
                    && is(c, r, Pc::W, Some(Side::Right))
                    && in_err_r_t(c, rr)
            },
            forced: |i, n| vec![(i, Side::Left), ((i + 2) % n, Side::Right)],
            goal: goal_triple_p_fwd,
        },
    ]
}

/// The verdict of checking one appendix lemma.
#[derive(Debug, Clone)]
pub struct LemmaCheck {
    /// The lemma name.
    pub name: &'static str,
    /// Total `(anchor, configuration)` hypothesis instances checked.
    pub instances: usize,
    /// The minimal probability of the goal within the time bound, over
    /// all instances and all adversaries of the conditioned model.
    pub min_prob: f64,
}

impl LemmaCheck {
    /// The lemma claims certainty: it holds iff the minimum is 1.
    pub fn holds(&self) -> bool {
        self.instances == 0 || self.min_prob >= 1.0 - 1e-9
    }
}

impl std::fmt::Display for LemmaCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lemma {}: min P = {:.6} over {} instances → {}",
            self.name,
            self.min_prob,
            self.instances,
            if self.holds() { "HOLDS" } else { "VIOLATED" }
        )
    }
}

/// Checks one appendix lemma exhaustively on a ring of `n`: over every
/// anchor position, every reachable configuration matching the hypothesis,
/// and every adversary of the conditioned round model.
///
/// # Errors
///
/// Propagates ring validation and exploration errors.
pub fn check_lemma(n: usize, spec: &LemmaSpec, limit: usize) -> Result<LemmaCheck, LrError> {
    let universe = reachable_configs(n, limit)?;
    let base = RoundMdp::new(crate::RoundConfig::new(n)?);
    let budget = time_to_budget(spec.time);
    let mut instances = 0usize;
    let mut min_prob = 1.0f64;
    for i in 0..n {
        let starts: Vec<Config> = universe
            .iter()
            .filter(|c| (spec.hypothesis)(c, i))
            .cloned()
            .collect();
        if starts.is_empty() {
            continue;
        }
        instances += starts.len();
        let goal = spec.goal;
        let inner = base
            .clone()
            .with_starts(starts)
            .with_absorb(move |c: &Config| goal(c, i));
        let model = ForcedRoundMdp::new(inner, (spec.forced)(i, n));
        let explored = Explore::new(&model)
            .cost(|s: &ForcedState, a: &RoundAction| round_cost(&s.round, a))
            .limit(limit)
            .parallel()
            .run()?;
        let target = explored.target_where(|fs| (spec.goal)(&fs.round.config, i));
        let values = explored
            .query()
            .objective(Objective::MinProb)
            .target(target)
            .horizon(budget)
            .run()?
            .values;
        for &s in explored.mdp.initial_states() {
            if values[s] < min_prob {
                min_prob = values[s];
            }
        }
    }
    Ok(LemmaCheck {
        name: spec.name,
        instances,
        min_prob,
    })
}

/// The paper's future-work item (Section 7): a *lower* bound on the time
/// for progress. Returns the largest time `t` (up to `max_time`) for which
/// some adversary surely prevents any state of `to_set` within `t`, i.e.
/// `min P[reach within t] = 0` — one less than the first time at which
/// progress has positive worst-case probability.
///
/// # Errors
///
/// Propagates region resolution and exploration errors.
pub fn progress_time_lower_bound(
    mdp: &RoundMdp,
    from_set: &pa_core::SetExpr,
    to_set: &pa_core::SetExpr,
    max_time: u32,
    limit: usize,
) -> Result<Option<u32>, LrError> {
    let from = set_pred(from_set)?;
    let to = set_pred(to_set)?;
    let n = mdp.config().n;
    let starts: Vec<Config> = reachable_configs(n, limit)?
        .into_iter()
        .filter(|c| from(c))
        .collect();
    if starts.is_empty() {
        return Ok(None);
    }
    let to_for_absorb = set_pred(to_set)?;
    let model = mdp
        .clone()
        .with_starts(starts)
        .with_absorb(move |c| to_for_absorb(c));
    let explored = Explore::new(&model)
        .cost(round_cost)
        .limit(limit)
        .parallel()
        .run()?;
    let target = explored.target_where(|rs| to(&rs.config));
    let initials: Vec<usize> = explored.mdp.initial_states().to_vec();
    let mut first_positive: Option<u32> = None;
    cost_bounded_reach_levels(
        &explored.mdp,
        &target,
        time_to_budget(f64::from(max_time)),
        Objective::MinProb,
        |k, v| {
            if first_positive.is_none() {
                let worst = initials.iter().map(|&s| v[s]).fold(1.0f64, f64::min);
                if worst > 1e-12 {
                    first_positive = Some(k + 1); // budget k ⇔ time k+1
                }
            }
        },
    )?;
    Ok(match first_positive {
        Some(t) => Some(t - 1),
        None => Some(max_time),
    })
}

// Re-export FiniteDist so the module doc example can reference it without
// an extra import in downstream code.
#[allow(unused)]
fn _type_anchor(_: FiniteDist<u8>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_core::SetExpr;

    #[test]
    fn forced_flip_is_deterministic_and_consumed() {
        let base = RoundMdp::new(crate::RoundConfig::new(3).unwrap())
            .with_starts(vec![crate::sims::all_trying(3).unwrap()]);
        let m = ForcedRoundMdp::new(base, vec![(0, Side::Right)]);
        let start = m.start_states().remove(0);
        assert_eq!(start.pending, 0b001);
        let flip0 = m
            .steps(&start)
            .into_iter()
            .find(|s| matches!(s.action, RoundAction::Schedule(LrAction::Flip(0))))
            .expect("process 0 can flip");
        assert!(flip0.target.is_point(), "forced flip has one outcome");
        let next = flip0.target.support().next().unwrap();
        assert_eq!(next.round.config.proc(0).side, Side::Right);
        assert_eq!(next.pending, 0, "forcing consumed");
        // Subsequent flips of process 0 are fair again.
        let flip1 = m
            .steps(&start)
            .into_iter()
            .find(|s| matches!(s.action, RoundAction::Schedule(LrAction::Flip(1))))
            .expect("process 1 can flip");
        assert_eq!(flip1.target.len(), 2, "unforced flips stay fair");
    }

    #[test]
    fn lemma_a4_1_holds_for_n3() {
        let spec = &appendix_lemmas()[0];
        assert_eq!(spec.name, "A.4(1)");
        let check = check_lemma(3, spec, 10_000_000).unwrap();
        assert!(check.instances > 0);
        assert!(check.holds(), "{check}");
    }

    #[test]
    fn lemma_a7_holds_for_n3() {
        let lemmas = appendix_lemmas();
        let spec = lemmas.iter().find(|l| l.name == "A.7a").unwrap();
        let check = check_lemma(3, spec, 10_000_000).unwrap();
        assert!(check.instances > 0);
        assert!(check.holds(), "{check}");
    }

    #[test]
    fn progress_needs_at_least_four_rounds_from_trying_starts() {
        let mdp = RoundMdp::new(crate::RoundConfig::new(3).unwrap());
        let bound = progress_time_lower_bound(
            &mdp,
            &SetExpr::named("T"),
            &SetExpr::named("C"),
            20,
            10_000_000,
        )
        .unwrap()
        .expect("T is nonempty");
        // A meal needs at least flip, wait, second, crit — and the worst
        // trying state needs at least that.
        assert!(bound >= 3, "lower bound {bound}");
        assert!(
            bound < 13,
            "paper's upper bound must exceed the lower bound"
        );
    }
}
