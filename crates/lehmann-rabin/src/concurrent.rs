//! A real multi-threaded implementation of the Lehmann–Rabin algorithm.
//!
//! Each philosopher is an OS thread; each resource is a `parking_lot`
//! mutex. Figure 1's atomic test-and-take (`if Res free then take`) maps
//! exactly to `Mutex::try_lock`, and the wait loop of line 2 maps to a spin
//! on `try_lock` with a yield. The OS scheduler plays the adversary; the
//! `Unit-Time` assumption corresponds to threads not being starved
//! indefinitely, which holds on any fair scheduler.
//!
//! This is experiment E13: the executable counterpart of the model — it
//! demonstrates that the verified algorithm actually runs, makes progress,
//! and never deadlocks, and measures wall-clock time-to-critical-section
//! distributions under real lock contention.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use pa_prob::rng::SplitMix64;
use pa_prob::stats::OnlineStats;
use parking_lot::Mutex;
use rand::RngExt;

use crate::events::{EventKind, TimedEvent, TrialLog};
use crate::{LrError, Side};

/// Results of a batch of concurrent trials.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Number of trials run.
    pub trials: u64,
    /// Wall-clock seconds from trial start to the *first* process entering
    /// its critical region, over successful trials.
    pub time_to_crit: OnlineStats,
    /// Total critical-section entries observed (first per trial).
    pub crit_entries: u64,
    /// Trials that timed out before any process entered (should be zero —
    /// the algorithm guarantees progress with probability 1).
    pub timeouts: u64,
    /// Total flip operations performed across all trials (a measure of the
    /// retry work the randomized symmetry breaking needs).
    pub total_flips: u64,
}

/// Runs `trials` independent races of `n` philosopher threads, each trial
/// ending when the first philosopher enters its critical section (or at
/// `timeout`).
///
/// Determinism caveat: coin flips are seeded per `(seed, trial, thread)`,
/// but the interleaving is the OS scheduler's, so timing statistics vary
/// across runs — that is the point of the experiment.
///
/// # Errors
///
/// Returns [`LrError::BadRingSize`] for unsupported `n` and
/// [`LrError::Concurrency`] if a worker panics.
pub fn run_trials(
    n: usize,
    trials: u64,
    seed: u64,
    timeout: Duration,
) -> Result<ConcurrentReport, LrError> {
    if !(2..=16).contains(&n) {
        return Err(LrError::BadRingSize { n });
    }
    let mut report = ConcurrentReport {
        trials,
        time_to_crit: OnlineStats::new(),
        crit_entries: 0,
        timeouts: 0,
        total_flips: 0,
    };
    for trial in 0..trials {
        let (elapsed, flips) = run_one_trial(n, seed, trial, timeout)?;
        report.total_flips += flips;
        match elapsed {
            Some(d) => {
                report.time_to_crit.push(d.as_secs_f64());
                report.crit_entries += 1;
            }
            None => report.timeouts += 1,
        }
    }
    Ok(report)
}

fn run_one_trial(
    n: usize,
    seed: u64,
    trial: u64,
    timeout: Duration,
) -> Result<(Option<Duration>, u64), LrError> {
    let resources: Arc<Vec<Mutex<()>>> = Arc::new((0..n).map(|_| Mutex::new(())).collect());
    let done = Arc::new(AtomicBool::new(false));
    let flips = Arc::new(AtomicU64::new(0));
    let winner_at: Arc<Mutex<Option<Duration>>> = Arc::new(Mutex::new(None));
    let start = Instant::now();

    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let resources = Arc::clone(&resources);
        let done = Arc::clone(&done);
        let flips = Arc::clone(&flips);
        let winner_at = Arc::clone(&winner_at);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::for_trial(seed ^ (trial.wrapping_mul(0x9E37)), i as u64);
            let left = (i + n - 1) % n;
            let right = i;
            philosopher_loop(
                &resources, left, right, &done, &flips, &winner_at, start, timeout, &mut rng, None,
            );
        }));
    }
    for h in handles {
        h.join()
            .map_err(|_| LrError::Concurrency("philosopher thread panicked".into()))?;
    }
    let elapsed = *winner_at.lock();
    Ok((elapsed, flips.load(Ordering::Relaxed)))
}

/// Runs one trial with full event logging: every flip, acquisition,
/// failed second check, critical entry and thread exit is timestamped and
/// streamed through a `crossbeam` channel. Returns the ordered log and the
/// time of the first critical entry (if any).
///
/// # Errors
///
/// Returns [`LrError::BadRingSize`] for unsupported `n` and
/// [`LrError::Concurrency`] if a worker panics.
pub fn run_logged_trial(
    n: usize,
    seed: u64,
    timeout: Duration,
) -> Result<(TrialLog, Option<Duration>), LrError> {
    if !(2..=16).contains(&n) {
        return Err(LrError::BadRingSize { n });
    }
    let resources: Arc<Vec<Mutex<()>>> = Arc::new((0..n).map(|_| Mutex::new(())).collect());
    let done = Arc::new(AtomicBool::new(false));
    let flips = Arc::new(AtomicU64::new(0));
    let winner_at: Arc<Mutex<Option<Duration>>> = Arc::new(Mutex::new(None));
    let (tx, rx) = crossbeam::channel::unbounded::<TimedEvent>();
    let start = Instant::now();

    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let resources = Arc::clone(&resources);
        let done = Arc::clone(&done);
        let flips = Arc::clone(&flips);
        let winner_at = Arc::clone(&winner_at);
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::for_trial(seed, i as u64);
            let left = (i + n - 1) % n;
            let right = i;
            philosopher_loop(
                &resources,
                left,
                right,
                &done,
                &flips,
                &winner_at,
                start,
                timeout,
                &mut rng,
                Some((&tx, i)),
            );
        }));
    }
    drop(tx);
    for h in handles {
        h.join()
            .map_err(|_| LrError::Concurrency("philosopher thread panicked".into()))?;
    }
    let events: Vec<TimedEvent> = rx.try_iter().collect();
    let elapsed = *winner_at.lock();
    Ok((TrialLog::new(events), elapsed))
}

#[allow(clippy::too_many_arguments)]
fn philosopher_loop(
    resources: &[Mutex<()>],
    left: usize,
    right: usize,
    done: &AtomicBool,
    flips: &AtomicU64,
    winner_at: &Mutex<Option<Duration>>,
    start: Instant,
    timeout: Duration,
    rng: &mut SplitMix64,
    log: Option<(&Sender<TimedEvent>, usize)>,
) {
    let emit = |kind: EventKind| {
        if let Some((tx, thread)) = log {
            // A closed channel only means the collector is gone; ignore.
            let _ = tx.send(TimedEvent {
                at: start.elapsed(),
                thread,
                kind,
            });
        }
    };
    while !done.load(Ordering::Acquire) {
        if start.elapsed() > timeout {
            done.store(true, Ordering::Release);
            emit(EventKind::Exited);
            return;
        }
        // Line 1: choose a side uniformly.
        flips.fetch_add(1, Ordering::Relaxed);
        let (first, second, side) = if rng.random_bool(0.5) {
            (left, right, Side::Left)
        } else {
            (right, left, Side::Right)
        };
        emit(EventKind::Flip(side));
        // Line 2: wait for the first resource (atomic test-and-take).
        let first_guard = loop {
            if done.load(Ordering::Acquire) || start.elapsed() > timeout {
                emit(EventKind::Exited);
                return;
            }
            match resources[first].try_lock() {
                Some(g) => break g,
                None => std::thread::yield_now(),
            }
        };
        emit(EventKind::FirstAcquired(first));
        // Line 3: one-shot check of the second resource.
        match resources[second].try_lock() {
            Some(second_guard) => {
                // Critical section: record the win (first writer only).
                let mut w = winner_at.lock();
                if w.is_none() {
                    *w = Some(start.elapsed());
                }
                drop(w);
                emit(EventKind::CritEntered(second));
                done.store(true, Ordering::Release);
                drop(second_guard);
                drop(first_guard);
                return;
            }
            None => {
                // Line 4: put down the first resource and retry.
                emit(EventKind::SecondFailed(second));
                drop(first_guard);
                std::thread::yield_now();
            }
        }
    }
    emit(EventKind::Exited);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_philosophers_make_progress() {
        let report = run_trials(3, 20, 42, Duration::from_secs(10)).unwrap();
        assert_eq!(report.timeouts, 0, "starvation observed");
        assert_eq!(report.crit_entries, 20);
        assert!(report.time_to_crit.mean() < 1.0, "suspiciously slow");
        assert!(report.total_flips >= 20, "each trial flips at least once");
    }

    #[test]
    fn two_philosophers_contend_on_shared_resources() {
        let report = run_trials(2, 10, 7, Duration::from_secs(10)).unwrap();
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.crit_entries, 10);
    }

    #[test]
    fn larger_ring_still_progresses() {
        let report = run_trials(8, 5, 99, Duration::from_secs(10)).unwrap();
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.crit_entries, 5);
    }

    #[test]
    fn logged_trial_respects_protocol_order() {
        let (log, winner) = run_logged_trial(3, 7, Duration::from_secs(10)).unwrap();
        assert!(winner.is_some(), "someone must eat");
        assert!(!log.is_empty());
        log.check_thread_order(3).expect("Figure 1 order violated");
        let crit = log.first_crit().expect("a crit event is logged");
        // The winner flipped before entering.
        assert!(log
            .of_thread(crit.thread)
            .any(|e| matches!(e.kind, EventKind::Flip(_)) && e.at <= crit.at));
    }

    #[test]
    fn logged_trial_counts_match_kinds() {
        let (log, _) = run_logged_trial(4, 99, Duration::from_secs(10)).unwrap();
        let crits = log.count(|e| matches!(e.kind, EventKind::CritEntered(_)));
        assert_eq!(crits, 1, "trial stops at the first meal");
        let flips = log.count(|e| matches!(e.kind, EventKind::Flip(_)));
        assert!(flips >= 1);
    }

    #[test]
    fn bad_ring_size_is_rejected() {
        assert!(matches!(
            run_trials(1, 1, 0, Duration::from_secs(1)),
            Err(LrError::BadRingSize { n: 1 })
        ));
    }
}
