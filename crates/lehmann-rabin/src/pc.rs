use std::fmt;

/// The program counter of a Lehmann–Rabin process, following the table in
/// Section 6.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pc {
    /// 0 — Remainder region (idle).
    R,
    /// 1 — Ready to Flip.
    F,
    /// 2 — Waiting for the first resource.
    W,
    /// 3 — Checking for the Second resource (holds the first).
    S,
    /// 4 — Dropping the first resource.
    D,
    /// 5 — Pre-critical region (holds both resources).
    P,
    /// 6 — Critical region (holds both resources).
    C,
    /// 7 — Exit: drop First resource (holds both).
    Ef,
    /// 8 — Exit: drop Second resource (holds one).
    Es,
    /// 9 — Exit: move to Remainder region (holds none).
    Er,
}

impl Pc {
    /// All program-counter values, in the paper's numbering.
    pub const ALL: [Pc; 10] = [
        Pc::R,
        Pc::F,
        Pc::W,
        Pc::S,
        Pc::D,
        Pc::P,
        Pc::C,
        Pc::Ef,
        Pc::Es,
        Pc::Er,
    ];

    /// `true` for the trying region `T = {F, W, S, D, P}`.
    pub fn in_trying(self) -> bool {
        matches!(self, Pc::F | Pc::W | Pc::S | Pc::D | Pc::P)
    }

    /// `true` for the exit region `E = {E_F, E_S, E_R}`.
    pub fn in_exit(self) -> bool {
        matches!(self, Pc::Ef | Pc::Es | Pc::Er)
    }

    /// `true` when the process is *ready* in the sense of the `Unit-Time`
    /// schema: it enables an action other than `try` and `exit` (which are
    /// user/adversary controlled). Ready processes must be scheduled within
    /// one time unit.
    pub fn is_ready(self) -> bool {
        !matches!(self, Pc::R | Pc::C)
    }

    /// `true` when the private variable `uᵢ` is semantically relevant for
    /// this program counter: it selects the first resource in `{W, S, D}`
    /// and the still-held resource in `E_S`. Everywhere else the paper's
    /// `uᵢ` is dead and we canonicalize it to reduce the state space.
    pub fn side_matters(self) -> bool {
        matches!(self, Pc::W | Pc::S | Pc::D | Pc::Es)
    }

    /// `true` when a process with this pc and side `u` holds the resource
    /// on side `u` (its "first" resource).
    pub fn holds_first(self) -> bool {
        matches!(self, Pc::S | Pc::D | Pc::Es)
    }

    /// `true` when the process holds both adjacent resources.
    pub fn holds_both(self) -> bool {
        matches!(self, Pc::P | Pc::C | Pc::Ef)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pc::R => "R",
            Pc::F => "F",
            Pc::W => "W",
            Pc::S => "S",
            Pc::D => "D",
            Pc::P => "P",
            Pc::C => "C",
            Pc::Ef => "EF",
            Pc::Es => "ES",
            Pc::Er => "ER",
        };
        f.write_str(s)
    }
}

/// The value of the private variable `uᵢ`: which adjacent resource the
/// process pursues (or holds) first. `Left` is clockwise in the paper's
/// ring orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The resource between process `i-1` and process `i` (`Res_{i-1}`).
    Left,
    /// The resource between process `i` and process `i+1` (`Res_i`).
    Right,
}

impl Side {
    /// The paper's `opp` operator.
    pub fn opp(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Left => "←",
            Side::Right => "→",
        })
    }
}

/// The local state `Xᵢ = (pcᵢ, uᵢ)` of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcState {
    /// The program counter.
    pub pc: Pc,
    /// The side variable `uᵢ` (canonicalized to `Left` when irrelevant).
    pub side: Side,
}

impl ProcState {
    /// Creates a local state, canonicalizing the side when it is dead.
    pub fn new(pc: Pc, side: Side) -> ProcState {
        ProcState {
            pc,
            side: if pc.side_matters() { side } else { Side::Left },
        }
    }

    /// The idle state `(R, ·)`.
    pub fn idle() -> ProcState {
        ProcState::new(Pc::R, Side::Left)
    }

    /// Shorthand membership test against the paper's arrow-annotated sets,
    /// e.g. `W←` is `matches(Pc::W, Some(Side::Left))`; `F` (any side) is
    /// `matches(Pc::F, None)`.
    pub fn matches(self, pc: Pc, side: Option<Side>) -> bool {
        self.pc == pc && side.is_none_or(|s| self.side == s)
    }
}

impl fmt::Display for ProcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pc.side_matters() {
            write!(f, "{}{}", self.pc, self.side)
        } else {
            write!(f, "{}", self.pc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_predicates_partition_sensibly() {
        assert!(Pc::F.in_trying());
        assert!(Pc::P.in_trying());
        assert!(!Pc::C.in_trying());
        assert!(Pc::Ef.in_exit());
        assert!(!Pc::R.in_exit());
    }

    #[test]
    fn readiness_excludes_user_controlled_states() {
        assert!(!Pc::R.is_ready());
        assert!(!Pc::C.is_ready());
        for pc in [Pc::F, Pc::W, Pc::S, Pc::D, Pc::P, Pc::Ef, Pc::Es, Pc::Er] {
            assert!(pc.is_ready(), "{pc} should be ready");
        }
    }

    #[test]
    fn resource_holding_matches_lemma_6_1_table() {
        // Holders of the first resource on their side.
        for pc in [Pc::S, Pc::D, Pc::Es] {
            assert!(pc.holds_first());
            assert!(!pc.holds_both());
        }
        for pc in [Pc::P, Pc::C, Pc::Ef] {
            assert!(pc.holds_both());
        }
        for pc in [Pc::R, Pc::F, Pc::W, Pc::Er] {
            assert!(!pc.holds_first());
            assert!(!pc.holds_both());
        }
    }

    #[test]
    fn opp_is_involutive() {
        assert_eq!(Side::Left.opp(), Side::Right);
        assert_eq!(Side::Right.opp().opp(), Side::Right);
    }

    #[test]
    fn proc_state_canonicalizes_dead_sides() {
        let a = ProcState::new(Pc::F, Side::Right);
        let b = ProcState::new(Pc::F, Side::Left);
        assert_eq!(a, b);
        let c = ProcState::new(Pc::W, Side::Right);
        let d = ProcState::new(Pc::W, Side::Left);
        assert_ne!(c, d);
    }

    #[test]
    fn matches_checks_pc_and_optionally_side() {
        let w_left = ProcState::new(Pc::W, Side::Left);
        assert!(w_left.matches(Pc::W, None));
        assert!(w_left.matches(Pc::W, Some(Side::Left)));
        assert!(!w_left.matches(Pc::W, Some(Side::Right)));
        assert!(!w_left.matches(Pc::S, None));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(ProcState::new(Pc::W, Side::Left).to_string(), "W←");
        assert_eq!(ProcState::new(Pc::S, Side::Right).to_string(), "S→");
        assert_eq!(ProcState::new(Pc::F, Side::Right).to_string(), "F");
        assert_eq!(ProcState::new(Pc::Es, Side::Right).to_string(), "ES→");
    }
}
